#!/usr/bin/env python3
"""Figure 1 excerpt — rebuild the paper's illustrative map fragment.

Figure 1 shows "one OVH router, several peerings, associated network
links, and links loads": router ``fra-fr5-pb6-nc5`` linked to ARELION
(42 %/9 %, label #1 at both ends), OMANTEL over parallel links, and
VODAFONE over parallel links sharing the same label.  This example
reconstructs that scene, renders it to ``figure1_excerpt.svg``, and
proves the extraction pipeline recovers it — duplicate labels included.

Run:  python examples/figure1_excerpt.py
"""

from datetime import datetime, timezone
from pathlib import Path

from repro.constants import MapName
from repro.layout import MapRenderer
from repro.parsing import parse_svg
from repro.topology.model import Link, LinkEnd, MapSnapshot, Node


def build_figure1_scene() -> MapSnapshot:
    """The entities visible in the paper's Figure 1."""
    snapshot = MapSnapshot(
        map_name=MapName.EUROPE,
        timestamp=datetime(2022, 9, 12, tzinfo=timezone.utc),
    )
    for name in (
        "fra-fr5-pb6-nc5",
        "fra-fr5-sbb1-nc8",  # the westward OVH neighbour
        "ARELION",
        "OMANTEL",
        "VODAFONE",
    ):
        snapshot.add_node(Node.from_name(name))

    def link(a, la, load_a, b, lb, load_b):
        snapshot.add_link(
            Link(a=LinkEnd(a, la, load_a), b=LinkEnd(b, lb, load_b))
        )

    # "a link between the OVH router and the ARELION peering which is
    # used at 42 % (resp. 9 %) ... the label #1 in both directions".
    link("fra-fr5-pb6-nc5", "#1", 42, "ARELION", "#1", 9)
    # "several parallel links can connect two routers (e.g., between
    # fra-fr5-pb6-nc5 and OMANTEL)".
    link("fra-fr5-pb6-nc5", "#1", 18, "OMANTEL", "#1", 22)
    link("fra-fr5-pb6-nc5", "#2", 17, "OMANTEL", "#2", 23)
    # "some parallel links, such as the ones connecting the VODAFONE
    # peering, can have non-unique labels".
    link("fra-fr5-pb6-nc5", "#1", 31, "VODAFONE", "#1", 12)
    link("fra-fr5-pb6-nc5", "#1", 30, "VODAFONE", "#1", 13)
    # "OVH routers can also be connected together, as illustrated by the
    # arrows pointing west of the fra-fr5-pb6-nc5 router".
    link("fra-fr5-pb6-nc5", "#1", 25, "fra-fr5-sbb1-nc8", "#1", 27)
    link("fra-fr5-pb6-nc5", "#2", 26, "fra-fr5-sbb1-nc8", "#2", 24)
    return snapshot


def main() -> None:
    scene = build_figure1_scene()
    svg = MapRenderer(seed=1).render(scene)
    target = Path(__file__).resolve().parent / "figure1_excerpt.svg"
    target.write_text(svg, encoding="utf-8")
    print(f"wrote {target} ({len(svg) / 1024:.0f} KiB)")

    parsed = parse_svg(svg, MapName.EUROPE, scene.timestamp)
    print(f"extracted {parsed.report.router_count} router, "
          f"{parsed.report.peering_count} peerings, "
          f"{parsed.report.link_count} links")

    vodafone = [
        link for link in parsed.snapshot.links if "VODAFONE" in link.nodes
    ]
    labels = sorted(link.end_for("VODAFONE").label for link in vodafone)
    print(f"VODAFONE parallel links recovered with labels {labels} "
          "(duplicates handled by label consumption)")
    assert labels == ["#1", "#1"]
    assert parsed.snapshot.summary_counts() == scene.summary_counts()
    print("round trip exact ✓")


if __name__ == "__main__":
    main()
