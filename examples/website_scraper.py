#!/usr/bin/env python3
"""Website scraper — collect the way the paper's authors actually did.

Stands up the simulated OVH Network Weathermap *website* (current map
replaced every five minutes, same-day hourly archive) and points the
polling crawler at it for two simulated hours, with the pre-fix flaky
crontab.  Shows how the hourly archive lets the crawler recover
snapshots its failed polls missed.

Run:  python examples/website_scraper.py
"""

import tempfile
from datetime import datetime, timedelta, timezone

from repro import BackboneSimulator, MapName
from repro.analysis.collection import collection_quality
from repro.dataset.gaps import AvailabilityModel, CollectionSegment
from repro.dataset.store import DatasetStore
from repro.website.site import WeathermapWebsite
from repro.website.webcollector import PollingCollector

START = datetime(2022, 2, 8, 9, 0, tzinfo=timezone.utc)
END = START + timedelta(hours=2)


def flaky_cron(simulator) -> AvailabilityModel:
    """A crawler that misses ~25 % of its ticks (pre-May-2022 style)."""
    window = CollectionSegment(
        simulator.config.window_start, simulator.config.window_end
    )
    return AvailabilityModel(
        seed=7,
        segments={map_name: (window,) for map_name in MapName},
        europe_miss_rate=0.25,
        other_miss_rate_before_fix=0.25,
        other_miss_rate_after_fix=0.25,
        outage_day_rate=0.0,
    )


def crawl(simulator, site, root: str, backfill: bool):
    collector = PollingCollector(
        site,
        DatasetStore(root),
        availability=flaky_cron(simulator),
        backfill=backfill,
    )
    stats = collector.run(START, END, maps=[MapName.ASIA_PACIFIC])
    stamps = collector.store.timestamps(MapName.ASIA_PACIFIC)
    return stats, collection_quality(stamps)


def main() -> None:
    simulator = BackboneSimulator()
    site = WeathermapWebsite(simulator)
    print(f"site: one document per map, replaced every "
          f"{site.update_interval.total_seconds() / 60:.0f} minutes; "
          "hourly same-day archive\n")

    with tempfile.TemporaryDirectory() as plain_root, \
            tempfile.TemporaryDirectory() as backfill_root:
        plain_stats, plain_quality = crawl(simulator, site, plain_root, backfill=False)
        backfill_stats, backfill_quality = crawl(
            simulator, site, backfill_root, backfill=True
        )

    print("flaky crawler, no backfill:")
    print(f"  polls {plain_stats.polls}, fetched {plain_stats.fetched}, "
          f"failed {plain_stats.failed_polls}")
    print(f"  snapshots stored: {plain_quality.snapshot_count}, "
          f"at 5-min resolution: {plain_quality.fraction_at_resolution * 100:.0f}%")

    print("\nsame crawler, hourly-archive backfill:")
    print(f"  fetched {backfill_stats.fetched} live + "
          f"{backfill_stats.backfilled} recovered from the archive")
    print(f"  snapshots stored: {backfill_quality.snapshot_count}, "
          f"longest gap: {backfill_quality.longest_gap}")

    assert backfill_quality.snapshot_count >= plain_quality.snapshot_count
    print("\nthe archive bounds data loss at one hour — which is why the real")
    print("dataset's gaps cluster at 5-10 minutes with rare 1-hour strides.")


if __name__ == "__main__":
    main()
