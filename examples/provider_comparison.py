#!/usr/bin/env python3
"""Cross-provider comparison — OVH vs a Scaleway-like backbone.

The paper's discussion invites comparing the OVH Weather dataset with
Scaleway's smaller SVG netmap "to understand the differences that could
exist between the two networks".  This example runs the identical
analysis stack over both simulated providers and contrasts topology
shape, provisioning headroom, and ECMP discipline.

Run:  python examples/provider_comparison.py
"""

from datetime import datetime, timedelta, timezone

import numpy

from repro import BackboneSimulator, MapName
from repro.analysis.degrees import degree_statistics
from repro.analysis.imbalance import collect_imbalances
from repro.analysis.loads import collect_load_samples
from repro.analysis.stats import fraction_at_most
from repro.simulation import scaleway_like_config
from repro.simulation.events import UpgradeScenario
from repro.topology.graph import mean_parallel_link_count

SAMPLE_START = datetime(2022, 6, 13, tzinfo=timezone.utc)


def provider_report(name: str, simulator: BackboneSimulator, map_name: MapName) -> dict:
    """One day of snapshots → the comparison metrics."""
    snapshots = [
        simulator.snapshot(map_name, SAMPLE_START + timedelta(hours=h))
        for h in range(24)
    ]
    reference = snapshots[-1]
    loads = collect_load_samples(snapshots)
    imbalances = collect_imbalances(snapshots)
    degrees = degree_statistics(reference)
    return {
        "name": name,
        "routers": len(reference.routers),
        "links": len(reference.links),
        "parallel": mean_parallel_link_count(reference),
        "degree_mean": degrees.mean,
        "load_median": float(numpy.median(loads.all_loads)),
        "load_over_60": 1 - fraction_at_most(loads.all_loads, 60),
        "imbalance_1": imbalances.fraction_within(1.0),
    }


def main() -> None:
    ovh = BackboneSimulator()
    # The scripted AMS-IX upgrade belongs to OVH's history, not the
    # comparison provider's; aim it at a map the small config lacks.
    scaleway = BackboneSimulator(
        config=scaleway_like_config(),
        upgrade=UpgradeScenario(map_name=MapName.WORLD),
    )

    reports = [
        provider_report("OVH (Europe map)", ovh, MapName.EUROPE),
        provider_report("Scaleway-like", scaleway, MapName.EUROPE),
    ]

    header = f"{'metric':<28}" + "".join(f"{r['name']:>20}" for r in reports)
    print(header)
    print("-" * len(header))
    rows = (
        ("routers", "routers", "{:.0f}"),
        ("links on the map", "links", "{:.0f}"),
        ("parallel links / pair", "parallel", "{:.2f}"),
        ("mean router degree", "degree_mean", "{:.1f}"),
        ("median link load (%)", "load_median", "{:.0f}"),
        ("loads above 60 % (frac)", "load_over_60", "{:.3f}"),
        ("imbalance ≤1 % (frac)", "imbalance_1", "{:.2f}"),
    )
    for label, key, fmt in rows:
        print(f"{label:<28}" + "".join(f"{fmt.format(r[key]):>20}" for r in reports))

    print("\nreading: the smaller provider runs hotter (less headroom), with")
    print("fewer parallel links per adjacency and looser ECMP balance —")
    print("exactly the contrasts a cross-provider study would surface.")


if __name__ == "__main__":
    main()
