#!/usr/bin/env python3
"""Traffic-engineering study — diurnal loads and ECMP balance (Figure 5).

Samples two simulated days of the Europe map, then reports:

* the hour-of-day load cycle (trough ~3 a.m., peak ~8 p.m.),
* the internal-vs-external load gap (peering links run cooler),
* the effectiveness of ECMP spreading over parallel links (imbalance
  mostly at or below one percentage point, with a skewed-hashing tail).

Run:  python examples/imbalance_study.py
"""

from datetime import datetime, timedelta, timezone

import numpy

from repro import BackboneSimulator, MapName
from repro.analysis.imbalance import collect_imbalances
from repro.analysis.loads import collect_load_samples, hour_of_day_bands
from repro.analysis.stats import fraction_at_most
from repro.charts.ascii import sparkline


def main() -> None:
    simulator = BackboneSimulator()
    start = datetime(2022, 5, 16, tzinfo=timezone.utc)
    snapshots = [
        simulator.snapshot(MapName.EUROPE, start + timedelta(hours=h))
        for h in range(48)
    ]

    samples = collect_load_samples(snapshots)
    bands = hour_of_day_bands(samples)
    medians = bands.bands[50.0]
    print("hour-of-day load cycle (median %):")
    print(f"  {sparkline(medians, width=24)}")
    print(f"  trough at {bands.median_trough_hour():02d}:00, "
          f"peak at {bands.median_peak_hour():02d}:00")

    print("\nload distribution:")
    print(f"  {len(samples):,} directed samples over two days")
    print(f"  below 33 %: {fraction_at_most(samples.all_loads, 33) * 100:.0f}%")
    print(f"  above 60 %: {(1 - fraction_at_most(samples.all_loads, 60)) * 100:.1f}%")
    print(f"  internal mean {numpy.mean(samples.internal):.1f}%  "
          f"external mean {numpy.mean(samples.external):.1f}%")

    imbalances = collect_imbalances(snapshots)
    print("\nECMP imbalance over directed parallel groups (max − min load):")
    print(f"  ≤1 %: {imbalances.fraction_within(1.0) * 100:.0f}% of groups")
    print(f"  external ≤2 %: {imbalances.fraction_within(2.0, 'external') * 100:.0f}%")
    print(f"  worst observed: {max(imbalances.all_values):.0f} points "
          "(persistently skewed hashing)")


if __name__ == "__main__":
    main()
