#!/usr/bin/env python3
"""Evolution study — how the backbone changed over two years (Figure 4).

Walks the Europe map's router and link counts across the collection
window, classifies the structural events the paper narrates
(make-before-break upgrades, maintenance dips, stepwise internal growth),
and plots the degree distribution.

Run:  python examples/evolution_study.py
"""

from datetime import timedelta

from repro import BackboneSimulator, MapName, REFERENCE_DATE
from repro.analysis.degrees import degree_statistics
from repro.analysis.infrastructure import infrastructure_evolution, structural_events
from repro.charts.ascii import sparkline


def main() -> None:
    simulator = BackboneSimulator()
    evolution = infrastructure_evolution(
        simulator, MapName.EUROPE, interval=timedelta(hours=12)
    )

    print("Europe map, July 2020 → September 2022")
    print(f"  routers : {sparkline(evolution.routers.values)}")
    print(f"            {evolution.routers.values[0]:.0f} → "
          f"{evolution.routers.values[-1]:.0f}")
    print(f"  internal: {sparkline(evolution.internal_links.values)}")
    print(f"            {evolution.internal_links.values[0]:.0f} → "
          f"{evolution.internal_links.values[-1]:.0f}")
    print(f"  external: {sparkline(evolution.external_links.values)}")
    print(f"            {evolution.external_links.values[0]:.0f} → "
          f"{evolution.external_links.values[-1]:.0f}")

    print("\nstructural events on the router series:")
    for event in structural_events(
        evolution.routers, min_delta=2.0, pairing_window=timedelta(days=45)
    ):
        print(f"  {event.start.date()} .. {event.end.date()}  "
              f"{event.kind:<18} net {event.delta:+.0f} routers")

    print("\nlargest internal-link growth steps:")
    steps = sorted(
        (delta, when) for when, delta in evolution.internal_links.deltas() if delta > 5
    )
    for delta, when in sorted(steps, reverse=True)[:5]:
        print(f"  {when.date()}  +{delta:.0f} links")

    snapshot = simulator.snapshot(MapName.EUROPE, REFERENCE_DATE)
    stats = degree_statistics(snapshot)
    print(f"\nrouter degree on {REFERENCE_DATE.date()}:")
    print(f"  mean {stats.mean:.1f}, median {stats.median:.0f}, max {stats.max}")
    print(f"  {stats.fraction_single_link * 100:.0f}% of routers have a single link")
    print(f"  {stats.fraction_over_20 * 100:.0f}% of routers have more than 20 links")


if __name__ == "__main__":
    main()
