#!/usr/bin/env python3
"""Upgrade case study — the Figure 6 AMS-IX capacity increase.

Watches the parallel-link group towards AMS-IX through March 2022,
detects the link addition (A) and activation (C) from the weathermap
alone, correlates with the (synthetic) PeeringDB capacity record (B),
and infers the per-link capacity the paper concludes: 100 Gbps.

Run:  python examples/upgrade_case_study.py
"""

from datetime import timedelta

from repro import BackboneSimulator, MapName
from repro.analysis.upgrades import (
    correlate_with_peeringdb,
    detect_upgrades,
    track_peering_group,
)
from repro.charts.ascii import sparkline
from repro.peeringdb.feed import SyntheticPeeringDB


def main() -> None:
    simulator = BackboneSimulator()
    scenario = simulator.upgrade

    # Observe the Europe map every six hours around the event window.
    snapshots = []
    current = scenario.added_at - timedelta(days=8)
    end = scenario.activated_at + timedelta(days=12)
    while current < end:
        snapshots.append(simulator.snapshot(MapName.EUROPE, current))
        current += timedelta(hours=6)

    observations = track_peering_group(snapshots, scenario.peering)
    mean_loads = [obs.mean_active_load for obs in observations]
    print(f"links towards {scenario.peering}, "
          f"{observations[0].when.date()} → {observations[-1].when.date()}")
    print(f"  mean active load: {sparkline(mean_loads)}")
    print(f"  active links    : "
          f"{sparkline([obs.active_size for obs in observations])}")

    events = detect_upgrades(observations)
    peeringdb = SyntheticPeeringDB(simulator)
    correlated = correlate_with_peeringdb(events, peeringdb, scenario.peering)

    for item in correlated:
        event = item.event
        print("\ndetected upgrade:")
        print(f"  A  {event.added_at.date()}  new parallel link appears (0 % load)")
        print(f"  B  {item.peeringdb_updated.date()}  PeeringDB updated: "
              f"{item.capacity_before_gbps} → {item.capacity_after_gbps} Gbps")
        print(f"  C  {event.activated_at.date()}  link activated; load "
              f"{event.load_before:.0f}% → {event.load_after:.0f}% per link")
        print(f"\n  links {event.links_before} → {event.links_after}, capacity "
              f"+{item.capacity_after_gbps - item.capacity_before_gbps} Gbps")
        print(f"  ⇒ each parallel link carries "
              f"{item.inferred_per_link_capacity_gbps:.0f} Gbps")


if __name__ == "__main__":
    main()
