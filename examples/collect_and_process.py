#!/usr/bin/env python3
"""Collection campaign — replay the dataset-building workflow (Table 2).

Collects half an hour of five-minute snapshots for all four maps into a
temporary dataset directory, processes every SVG into its YAML twin,
and prints the catalog and tables the paper reports.

Run:  python examples/collect_and_process.py
"""

import tempfile
from datetime import timedelta

from repro import BackboneSimulator, REFERENCE_DATE, MapName
from repro.dataset.catalog import DatasetCatalog
from repro.dataset.collector import SimulatedCollector
from repro.dataset.processor import process_map
from repro.dataset.store import DatasetStore
from repro.dataset.summary import build_table1, build_table2, format_table1, format_table2
from repro.yamlio.deserialize import snapshot_from_yaml


def main() -> None:
    simulator = BackboneSimulator()
    with tempfile.TemporaryDirectory(prefix="ovh-weather-") as root:
        store = DatasetStore(root)
        collector = SimulatedCollector(simulator, store)

        start = REFERENCE_DATE - timedelta(minutes=30)
        print(f"collecting {start.isoformat()} → {REFERENCE_DATE.isoformat()} ...")
        stats = collector.collect(start, REFERENCE_DATE)
        for map_name, files in stats.files_written.items():
            print(f"  {map_name.value:<15} {files:>3} SVGs  "
                  f"{stats.bytes_written[map_name] / 1024:,.0f} KiB")

        print("\nprocessing SVG → YAML ...")
        for map_name in simulator.map_names:
            result = process_map(store, map_name)
            print(f"  {map_name.value:<15} processed {result.processed:>3}, "
                  f"unprocessed {result.unprocessed}")

        catalog = DatasetCatalog(store)
        print("\ncollection quality:")
        for map_name in simulator.map_names:
            fraction = catalog.fraction_at_resolution(map_name)
            print(f"  {map_name.value:<15} {fraction * 100:5.1f}% of gaps at "
                  "the 5-minute resolution")

        # Table 1 from the *processed* YAML files, like a dataset user would.
        snapshots = {}
        for map_name in simulator.map_names:
            refs = list(store.iter_refs(map_name, "yaml"))
            snapshots[map_name] = snapshot_from_yaml(
                refs[-1].path.read_text(encoding="utf-8")
            )
        print("\nTable 1 (from processed YAMLs):")
        print(format_table1(build_table1(snapshots)))
        print("\nTable 2 (this campaign):")
        print(format_table2(build_table2(store)))


if __name__ == "__main__":
    main()
