#!/usr/bin/env python3
"""Quickstart — the whole reproduction in one page.

Simulates the OVH backbone on the paper's reference date, renders the
Europe weathermap to SVG, extracts the topology back with the paper's
Algorithms 1+2, and verifies the round trip.

Run:  python examples/quickstart.py
"""

from repro import BackboneSimulator, MapName, REFERENCE_DATE
from repro.layout import MapRenderer
from repro.parsing import parse_svg
from repro.topology.graph import mean_parallel_link_count


def main() -> None:
    # 1. A deterministic stand-in for the live OVH Network Weathermap.
    simulator = BackboneSimulator()

    # 2. The Europe map on 12 September 2022 (Table 1's reference date).
    snapshot = simulator.snapshot(MapName.EUROPE, REFERENCE_DATE)
    routers, internal, external = snapshot.summary_counts()
    print(f"Europe map on {REFERENCE_DATE.date()}:")
    print(f"  routers        : {routers}")
    print(f"  internal links : {internal}")
    print(f"  external links : {external}")
    print(f"  parallel links per connected pair: "
          f"{mean_parallel_link_count(snapshot):.2f}")

    # 3. Render it the way the weathermap publishes it: a flat SVG.
    svg = MapRenderer().render(snapshot)
    print(f"\nrendered SVG: {len(svg) / 1024:.0f} KiB "
          f"({svg.count('<polygon')} arrow polygons)")

    # 4. Extract the topology back from coordinates alone (the paper's
    #    contribution: Algorithm 1 + Algorithm 2 + sanity checks).
    parsed = parse_svg(svg, MapName.EUROPE, REFERENCE_DATE)
    print(f"extracted     : {parsed.report.router_count} routers, "
          f"{parsed.report.peering_count} peerings, "
          f"{parsed.report.link_count} links")

    # 5. The round trip is exact.
    assert parsed.snapshot.summary_counts() == snapshot.summary_counts()
    extracted_loads = sorted(
        load for _, _, load in parsed.snapshot.iter_loads()
    )
    original_loads = sorted(load for _, _, load in snapshot.iter_loads())
    assert extracted_loads == original_loads
    print("\nround trip exact: every router, link, label and load recovered ✓")


if __name__ == "__main__":
    main()
