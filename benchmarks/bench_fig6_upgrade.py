"""Figure 6 — links load towards AMS-IX over March 2022.

Replays the paper's link-upgrade case study end to end:

* arrow **A**: a fifth parallel link towards AMS-IX appears on the map at
  0 % load;
* arrow **B**: PeeringDB is updated nine days later, announcing the
  capacity increase from 400 Gbps to 500 Gbps;
* arrow **C**: the link activates two weeks after its addition and
  "traffic was rapidly spread among all parallel links", cutting per-link
  load by the 4/5 capacity ratio;
* combining the observations, each link is inferred to carry 100 Gbps.

The detection runs on snapshots extracted through the full render→parse
pipeline for the days around each event, and on direct simulator
snapshots for the filler days.
"""

from __future__ import annotations

from datetime import timedelta

from conftest import print_header

from repro.analysis.upgrades import (
    correlate_with_peeringdb,
    detect_upgrades,
    track_peering_group,
)
from repro.charts.export import series_to_csv
from repro.charts.svgchart import ChartRenderer, Series
from repro.constants import MapName
from repro.layout.renderer import MapRenderer
from repro.parsing.pipeline import parse_svg
from repro.peeringdb.feed import SyntheticPeeringDB


def test_fig6_amsix_upgrade(benchmark, simulator, output_dir):
    """Detect A and C on the map, correlate B in PeeringDB, infer capacity."""
    scenario = simulator.upgrade
    start = scenario.added_at - timedelta(days=8)
    end = scenario.activated_at + timedelta(days=12)

    # Verify the SVG pipeline agrees with the simulator on event days.
    renderer = MapRenderer()
    for probe in (scenario.added_at + timedelta(days=1), scenario.activated_at + timedelta(days=1)):
        snapshot = simulator.snapshot(MapName.EUROPE, probe)
        parsed = parse_svg(renderer.render(snapshot), MapName.EUROPE, probe)
        direct = track_peering_group([snapshot], scenario.peering)[0]
        extracted = track_peering_group([parsed.snapshot], scenario.peering)[0]
        assert extracted.loads == direct.loads

    snapshots = []
    current = start
    while current < end:
        snapshots.append(simulator.snapshot(MapName.EUROPE, current))
        current += timedelta(hours=6)

    def analyse():
        observations = track_peering_group(snapshots, scenario.peering)
        events = detect_upgrades(observations)
        peeringdb = SyntheticPeeringDB(simulator)
        return observations, events, correlate_with_peeringdb(
            events, peeringdb, scenario.peering
        )

    observations, events, correlated = benchmark.pedantic(
        analyse, rounds=1, iterations=1
    )

    print_header("Figure 6 — AMS-IX link upgrade case study")
    assert len(correlated) == 1
    item = correlated[0]
    event = item.event
    print(f"peering                 : {item.peering}")
    print(f"A  link added           : {event.added_at.date()} "
          f"(paper: {scenario.added_at.date()})")
    print(f"B  PeeringDB updated    : {item.peeringdb_updated.date()} "
          f"({item.capacity_before_gbps} → {item.capacity_after_gbps} Gbps)")
    print(f"C  link activated       : {event.activated_at.date()} "
          f"(paper: {scenario.activated_at.date()})")
    print(f"parallel links          : {event.links_before} → {event.links_after}")
    print(f"per-link load           : {event.load_before:.1f}% → {event.load_after:.1f}% "
          f"(capacity ratio {event.expected_load_ratio:.2f})")
    print(f"inferred link capacity  : {item.inferred_per_link_capacity_gbps:.0f} Gbps "
          "(paper: 100 Gbps)")

    chart = ChartRenderer(
        title="Figure 6 — Loads towards AMS-IX (March 2022)",
        x_label="epoch (s)",
        y_label="load (%)",
    )
    times = tuple(obs.when.timestamp() for obs in observations)
    max_links = max(obs.size for obs in observations)
    for index in range(max_links):
        ys = tuple(
            obs.loads[index] if index < len(obs.loads) else 0.0
            for obs in observations
        )
        chart.add_series(Series(name=f"link #{index + 1}", xs=times, ys=ys))
    chart.write(output_dir / "fig6_amsix_upgrade.svg")
    series_to_csv(
        {
            "time": [obs.when.isoformat() for obs in observations],
            "mean_active_load": [obs.mean_active_load for obs in observations],
            "active_links": [obs.active_size for obs in observations],
        },
        output_dir / "fig6_amsix_upgrade.csv",
    )

    # Arrow A: detected within a day of the scripted addition.
    assert abs((event.added_at - scenario.added_at).total_seconds()) < 86400
    # Arrow B: nine days after A, 400 → 500 Gbps.
    assert item.peeringdb_updated == scenario.peeringdb_at
    assert (item.capacity_before_gbps, item.capacity_after_gbps) == (400, 500)
    # Arrow C: two weeks after A.
    assert abs((event.activated_at - scenario.activated_at).total_seconds()) < 86400
    # The per-link capacity inference: 100 Gbps.
    assert item.inferred_per_link_capacity_gbps == 100.0
    # The load drop is in the ballpark of the 4/5 capacity ratio.
    assert 0.55 < event.observed_load_ratio < 0.95
