"""Ingestion benchmark: sustained throughput, crash recovery, shard compaction.

The paper's collection campaign ran for 26 months and accumulated
542,049 SVGs (227.93 GiB); the ingestion daemon exists so that corpus
can be processed — and *re*-processed after a crash — without ever
holding more than a bounded window of it in memory.  This benchmark
replays that workload at ≥100k-file scale over a sharded store and
measures the three claims the daemon makes:

1. **Sustained throughput** (``ingest_sustained_fps``): a multi-map
   corpus is ingested by a daemon subprocess with bounded queues,
   write-ahead journalling, and per-shard compaction at every
   checkpoint.  The parent samples the daemon's RSS from ``/proc``
   throughout — ``peak_rss_mb`` must stay flat regardless of corpus
   size, because the pipeline never materialises more than its queues.

2. **Crash recovery** (``recovery_seconds``): the daemon is SIGKILL'd
   mid-run (no warning, no cleanup — the parent waits for the status
   file to show ≥50 % progress).  ``resume_ingest`` then replays the
   journal tail into the manifest and skips every durable file with one
   dict lookup and one ``stat()``; ``recovery_seconds`` is that replay
   phase alone, and the benchmark asserts the resumed run re-parsed
   **no** file the journal already proved durable.

3. **O(new shard) compaction** (``compact_incremental_seconds`` vs.
   ``monolithic_refresh_seconds``): after the corpus is fully ingested,
   one new day of files lands and a single ``compact_map_shards`` call
   is timed — it must rebuild only the new day's shard.  The comparator
   is a forced full rebuild of the same map: what every index refresh
   would cost if maintenance were O(corpus).

The corpus mixes three maps with very different per-file extraction
costs (asia-pacific ~16 ms, world ~11 ms, north-america ~54 ms on the
reference single-core host) so the sustained number reflects a
heterogeneous campaign, not the cheapest map.  Rendering is amortised:
a small pool of distinct SVGs per map is rendered once and written
across the full timestamp range — timestamps are authoritative from
file names, so the ingest cost per file is unchanged.

Results go to ``BENCH_ingest.json`` at the repo root;
``scripts/check_bench_regression.py`` guards ``ingest_sustained_fps``
(higher is better) and the ``*_seconds`` keys (lower is better) against
that baseline.

Run standalone (not under pytest)::

    PYTHONPATH=src python benchmarks/bench_ingest.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import time
from datetime import datetime, timedelta, timezone
from pathlib import Path

from repro.constants import MapName, SNAPSHOT_INTERVAL
from repro.dataset.ingest import (
    IngestConfig,
    IngestDaemon,
    read_ingest_status,
    resume_ingest,
)
from repro.dataset.shards import compact_map_shards
from repro.dataset.store import ShardedDatasetStore
from repro.layout.renderer import MapRenderer
from repro.simulation.network import BackboneSimulator

REPO_ROOT = Path(__file__).resolve().parents[1]
T0 = datetime(2022, 3, 1, tzinfo=timezone.utc)

# Corpus mix: fractions of the total file count per map.  Weighted
# toward the cheap maps so a 100k-file run fits a single-core host in
# well under an hour while still exercising three extraction profiles.
MIX = (
    (MapName.ASIA_PACIFIC, 0.50),
    (MapName.WORLD, 0.45),
    (MapName.NORTH_AMERICA, 0.05),
)
# The map used for the compaction-cost measurement: the smallest slice,
# so the O(corpus) comparator stays affordable.
COMPACT_MAP = MapName.NORTH_AMERICA

DAEMON_SCRIPT = """
import sys
from repro.constants import MapName
from repro.dataset.ingest import IngestConfig, IngestDaemon
from repro.dataset.store import open_store

store = open_store(sys.argv[1])
config = IngestConfig(
    workers=1,
    checkpoint_every=int(sys.argv[2]),
    fsync_every=int(sys.argv[3]),
)
maps = [MapName(value) for value in sys.argv[4].split(",")]
IngestDaemon(store, config).run(maps)
"""


def render_pool(map_name: MapName, size: int) -> list[str]:
    """``size`` distinct SVGs for one map, from fresh instances.

    A shared simulator carries cross-map churn state that occasionally
    renders an unparseable document (the paper's Table 2 tail); the
    benchmark wants a fully parseable corpus, so each pool gets its own
    simulator and renderer.
    """
    simulator = BackboneSimulator()
    renderer = MapRenderer()
    when = T0
    pool = []
    for _ in range(size):
        pool.append(renderer.render(simulator.snapshot(map_name, when)))
        when += SNAPSHOT_INTERVAL
    return pool


def build_corpus(
    store: ShardedDatasetStore, total: int, pool_size: int
) -> dict[str, int]:
    """Write the mixed corpus at the 5-minute cadence; returns per-map counts."""
    counts: dict[str, int] = {}
    remaining = total
    for position, (map_name, fraction) in enumerate(MIX):
        files = remaining if position == len(MIX) - 1 else int(total * fraction)
        remaining -= files
        pool = render_pool(map_name, min(pool_size, files))
        when = T0
        for index in range(files):
            store.write(map_name, when, "svg", pool[index % len(pool)])
            when += SNAPSHOT_INTERVAL
        counts[map_name.value] = files
    return counts


def sample_rss_mb(pid: int) -> float | None:
    """VmRSS of ``pid`` in MiB, or ``None`` once the process is gone."""
    try:
        text = Path(f"/proc/{pid}/status").read_text(encoding="ascii")
    except OSError:
        return None
    for line in text.splitlines():
        if line.startswith("VmRSS:"):
            return int(line.split()[1]) / 1024.0
    return None


def run_daemon_until_kill(
    root: Path, config: IngestConfig, maps: list[MapName], kill_at: int
) -> dict[str, float]:
    """Run the daemon as a subprocess, SIGKILL it at ``kill_at`` files.

    Returns wall time until the kill, the last checkpointed progress,
    and the RSS trajectory sampled from ``/proc`` while it ran.
    """
    env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
    argv = [
        sys.executable,
        "-c",
        DAEMON_SCRIPT,
        str(root),
        str(config.checkpoint_every),
        str(config.fsync_every),
        ",".join(map_name.value for map_name in maps),
    ]
    started = time.perf_counter()
    process = subprocess.Popen(
        argv, env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL
    )
    rss_samples: list[float] = []
    processed = 0
    try:
        deadline = time.monotonic() + 3600
        while time.monotonic() < deadline:
            rss = sample_rss_mb(process.pid)
            if rss is not None:
                rss_samples.append(rss)
            status = read_ingest_status(root)
            if status is not None:
                processed = int(status.get("processed") or 0)
                if status.get("pid") == process.pid and processed >= kill_at:
                    break
            if process.poll() is not None:
                raise SystemExit(
                    "daemon finished before the kill point — corpus too "
                    "small for the checkpoint cadence"
                )
            time.sleep(0.05)
        else:
            raise SystemExit("daemon made no progress before the deadline")
        process.send_signal(signal.SIGKILL)
        if process.wait(timeout=60) != -signal.SIGKILL:
            raise SystemExit("daemon exited before the SIGKILL landed")
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=60)
    elapsed = time.perf_counter() - started
    return {
        "elapsed": elapsed,
        "processed_at_kill": processed,
        "peak_rss_mb": max(rss_samples) if rss_samples else 0.0,
        "rss_start_mb": rss_samples[0] if rss_samples else 0.0,
        "rss_end_mb": rss_samples[-1] if rss_samples else 0.0,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--files", type=int, default=100_000, help="total corpus size across maps"
    )
    parser.add_argument(
        "--quick", action="store_true", help="small corpus (540 files) for CI"
    )
    parser.add_argument(
        "--output",
        default=str(REPO_ROOT / "BENCH_ingest.json"),
        help="where to write the JSON artifact",
    )
    args = parser.parse_args(argv)
    files = 540 if args.quick else args.files
    pool_size = 16 if args.quick else 48
    config = IngestConfig(
        workers=1,
        checkpoint_every=25 if args.quick else 2000,
        fsync_every=8 if args.quick else 256,
    )
    maps = [map_name for map_name, _ in MIX]

    print(
        f"corpus: {files} files across {len(maps)} maps "
        f"(checkpoint every {config.checkpoint_every}, "
        f"fsync every {config.fsync_every}), {os.cpu_count()} CPUs"
    )
    workdir = Path(tempfile.mkdtemp(prefix="bench-ingest-"))
    try:
        store = ShardedDatasetStore(workdir)
        store.mark()
        started = time.perf_counter()
        counts = build_corpus(store, files, pool_size)
        corpus_seconds = time.perf_counter() - started
        print(
            f"  corpus written in {corpus_seconds:.1f} s "
            f"({', '.join(f'{k}={v}' for k, v in counts.items())})"
        )

        kill_at = files // 2
        run1 = run_daemon_until_kill(workdir, config, maps, kill_at)
        print(
            f"  daemon killed after {run1['elapsed']:.1f} s "
            f"at ≥{run1['processed_at_kill']} files "
            f"(peak RSS {run1['peak_rss_mb']:.0f} MiB, "
            f"{run1['rss_start_mb']:.0f} → {run1['rss_end_mb']:.0f})"
        )

        started = time.perf_counter()
        stats = resume_ingest(store, config)
        resume_seconds = time.perf_counter() - started
        durable_before_kill = stats.skipped + stats.replayed
        total_done = durable_before_kill + stats.ingested
        print(
            f"  resume: {stats.replayed} replayed, {stats.skipped} skipped, "
            f"{stats.ingested} ingested in {resume_seconds:.1f} s "
            f"(recovery {stats.recovery_seconds:.2f} s)"
        )

        ok = True
        if total_done < files:
            ok = False
            print(
                f"ERROR: {files - total_done} files unaccounted for after "
                "resume",
                file=sys.stderr,
            )
        if stats.ingested >= files:
            ok = False
            print(
                "ERROR: resume re-parsed the whole corpus — recovery did "
                "not skip durable work",
                file=sys.stderr,
            )
        # The pools render fully parseable documents, so every corpus
        # file must end up with a YAML twin.
        yaml_files = sum(
            1 for map_name in maps for _ in store.iter_refs(map_name, "yaml")
        )
        if yaml_files != files or stats.failed:
            ok = False
            print(
                f"ERROR: {yaml_files}/{files} YAML files on disk, "
                f"{stats.failed} failures",
                file=sys.stderr,
            )

        sustained_fps = total_done / (run1["elapsed"] + stats.run_seconds)

        # O(new shard): one new day lands on the comparison map...
        new_day = T0 + timedelta(days=400)
        pool = render_pool(COMPACT_MAP, 1)
        for slot in range(12):
            store.write(
                COMPACT_MAP, new_day + slot * SNAPSHOT_INTERVAL, "svg", pool[0]
            )
        # ...process it with index maintenance off (outside the clock),
        # then time the pure compaction the daemon pays at a checkpoint.
        no_index = IngestConfig(workers=1, update_index=False)
        IngestDaemon(store, no_index).run([COMPACT_MAP])
        started = time.perf_counter()
        incremental = compact_map_shards(store, COMPACT_MAP)
        compact_incremental_seconds = time.perf_counter() - started
        if len(incremental.built) != 1:
            ok = False
            print(
                f"ERROR: incremental compaction rebuilt "
                f"{len(incremental.built)} shards, expected exactly the new "
                "day's one",
                file=sys.stderr,
            )
        started = time.perf_counter()
        full = compact_map_shards(store, COMPACT_MAP, rebuild=True)
        monolithic_refresh_seconds = time.perf_counter() - started
        shard_count = len(full.built)
        print(
            f"  compaction: one new day {compact_incremental_seconds:.2f} s "
            f"vs. full {COMPACT_MAP.value} rebuild "
            f"{monolithic_refresh_seconds:.1f} s ({shard_count} shards)"
        )
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    report = {
        "benchmark": "sustained ingestion, crash recovery, shard compaction",
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "corpus_files": files,
        "maps": counts,
        "layout": "sharded",
        "cpu_count": os.cpu_count(),
        "single_core_host": (os.cpu_count() or 1) <= 1,
        "checkpoint_every": config.checkpoint_every,
        "fsync_every": config.fsync_every,
        # Corpus setup rate, files/s — deliberately not named *_fps so the
        # regression gate ignores it (rendering the pool dominates small
        # runs; it is not a claim the ingestion subsystem makes).
        "corpus_write_rate": round(files / corpus_seconds, 2),
        "ingest_sustained_fps": round(sustained_fps, 2),
        "seconds_until_kill": round(run1["elapsed"], 2),
        "durable_before_kill": durable_before_kill,
        "resume_reparsed_files": stats.ingested,
        "recovery_seconds": round(stats.recovery_seconds, 3),
        "peak_rss_mb": round(run1["peak_rss_mb"], 1),
        "rss_start_mb": round(run1["rss_start_mb"], 1),
        "rss_end_mb": round(run1["rss_end_mb"], 1),
        "compact_map": COMPACT_MAP.value,
        "compact_map_shards": shard_count,
        "compact_incremental_seconds": round(compact_incremental_seconds, 3),
        "monolithic_refresh_seconds": round(monolithic_refresh_seconds, 2),
        "compact_speedup": round(
            monolithic_refresh_seconds / compact_incremental_seconds, 1
        )
        if compact_incremental_seconds > 0
        else 0.0,
        "outputs_consistent": ok,
    }
    output = Path(args.output)
    output.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(
        f"sustained {report['ingest_sustained_fps']} files/s, "
        f"recovery {report['recovery_seconds']} s, "
        f"peak RSS {report['peak_rss_mb']} MiB, "
        f"incremental compaction {report['compact_speedup']}x cheaper than "
        "a full rebuild"
    )
    print(f"wrote {output}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
