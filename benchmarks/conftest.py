"""Shared fixtures and output helpers for the benchmark harness.

Every bench module regenerates one table or figure of the paper, prints
the paper-vs-measured comparison to the console, and writes SVG charts and
CSV series under ``benchmarks/output/``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.simulation.network import BackboneSimulator

OUTPUT_DIR = Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def simulator() -> BackboneSimulator:
    """The paper-calibrated simulator shared across benches."""
    return BackboneSimulator()


@pytest.fixture(scope="session")
def output_dir() -> Path:
    """Where benches drop their charts and CSV series."""
    OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    return OUTPUT_DIR


def print_header(title: str) -> None:
    """A visible banner separating each experiment's console output."""
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)
