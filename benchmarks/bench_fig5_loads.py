"""Figure 5 — links loads in the Europe map.

* **5a** load percentiles (1/25/50/75/99) by hour of day: sinusoidal
  median with its trough between 2-4 a.m. and peak between 7-9 p.m., and
  variance growing with load;
* **5b** load CDF: "75 % of the loads are below 33 % and very few loads
  exceed 60 %", external links loading lower than internal ones;
* **5c** ECMP imbalance CDF over directed parallel groups: >60 % of
  imbalances at or below 1 %, external groups tighter (>90 % at or below
  2 %).

The sample is one simulated week of Europe snapshots at hourly cadence —
cadence-invariant statistics, so the shapes match the paper's full-rate
two-year sample.
"""

from __future__ import annotations

from datetime import datetime, timedelta, timezone

import numpy
import pytest

from conftest import print_header

from repro.analysis.imbalance import collect_imbalances, imbalance_cdfs
from repro.analysis.loads import collect_load_samples, hour_of_day_bands, load_cdfs
from repro.analysis.stats import fraction_at_most
from repro.charts.ascii import sparkline
from repro.charts.export import series_to_csv
from repro.charts.svgchart import BandSeries, ChartRenderer, Series, StepSeries
from repro.constants import MapName

SAMPLE_START = datetime(2022, 4, 4, tzinfo=timezone.utc)
SAMPLE_DAYS = 7


@pytest.fixture(scope="module")
def week_snapshots(simulator):
    """One week of hourly Europe snapshots."""
    return [
        simulator.snapshot(MapName.EUROPE, SAMPLE_START + timedelta(hours=h))
        for h in range(24 * SAMPLE_DAYS)
    ]


def test_fig5a_hour_of_day_bands(benchmark, simulator, week_snapshots, output_dir):
    """Figure 5a: load percentiles grouped by hour of day."""

    def compute():
        samples = collect_load_samples(week_snapshots)
        return samples, hour_of_day_bands(samples)

    samples, bands = benchmark.pedantic(compute, rounds=1, iterations=1)

    print_header("Figure 5a — Link loads by hour of day (Europe, 1 week)")
    medians = bands.bands[50.0]
    print(f"median by hour: {sparkline(medians, width=24)}")
    print(f"{'hour':>4} {'p1':>6} {'p25':>6} {'median':>7} {'p75':>6} {'p99':>6}")
    for index, hour in enumerate(bands.hours):
        print(
            f"{hour:>4} {bands.bands[1.0][index]:>6.1f} {bands.bands[25.0][index]:>6.1f} "
            f"{bands.bands[50.0][index]:>7.1f} {bands.bands[75.0][index]:>6.1f} "
            f"{bands.bands[99.0][index]:>6.1f}"
        )

    chart = ChartRenderer(
        title="Figure 5a — Load by hour of day (Europe)",
        x_label="hour of day",
        y_label="load (%)",
    )
    chart.add_band(
        BandSeries(
            name="p25-p75",
            xs=tuple(float(h) for h in bands.hours),
            lows=bands.bands[25.0],
            highs=bands.bands[75.0],
        )
    )
    chart.add_series(
        Series(name="median", xs=tuple(float(h) for h in bands.hours), ys=medians)
    )
    chart.write(output_dir / "fig5a_hour_of_day.svg")
    series_to_csv(
        {
            "hour": list(bands.hours),
            **{f"p{int(p)}": list(values) for p, values in bands.bands.items()},
        },
        output_dir / "fig5a_hour_of_day.csv",
    )

    # Trough between ~2-4 a.m., peak between ~7-9 p.m.
    assert bands.median_trough_hour() in (1, 2, 3, 4, 5)
    assert bands.median_peak_hour() in (18, 19, 20, 21)
    # Variance grows with load: the peak hour's spread beats the trough's.
    assert bands.spread_at(bands.median_peak_hour()) > bands.spread_at(
        bands.median_trough_hour()
    )
    # The day cycle is material: peak median well above trough median.
    assert max(medians) > 1.3 * min(medians)


def test_fig5b_load_cdf(benchmark, week_snapshots, output_dir):
    """Figure 5b: CDF of link loads, internal vs external."""

    def compute():
        samples = collect_load_samples(week_snapshots)
        return samples, load_cdfs(samples)

    samples, cdfs = benchmark.pedantic(compute, rounds=1, iterations=1)

    at_33 = fraction_at_most(samples.all_loads, 33)
    over_60 = 1 - fraction_at_most(samples.all_loads, 60)
    print_header("Figure 5b — CDF of link loads (Europe, 1 week)")
    print(f"samples: {len(samples):,}")
    print(f"fraction of loads <= 33 %: {at_33 * 100:.1f}%  (paper: ~75 %)")
    print(f"fraction of loads  > 60 %: {over_60 * 100:.2f}%  (paper: very few)")
    print(
        f"mean internal load: {numpy.mean(samples.internal):.1f}%   "
        f"mean external load: {numpy.mean(samples.external):.1f}%"
    )

    chart = ChartRenderer(
        title="Figure 5b — Load CDF (Europe)", x_label="load (%)", y_label="CDF"
    )
    for name in ("internal", "external", "all"):
        xs, fractions = cdfs[name]
        # Subsample for the chart (CDF over ~2M points).
        stride = max(1, xs.size // 500)
        chart.add_series(
            StepSeries(
                name=name, xs=tuple(xs[::stride]), ys=tuple(fractions[::stride])
            )
        )
    chart.write(output_dir / "fig5b_load_cdf.svg")

    # "75 % of the loads are below 33 %" — allow scaled-sample slack.
    assert 0.60 < at_33 < 0.92
    # "very few loads exceed 60 %".
    assert over_60 < 0.07
    # External links load lower than internal on average.
    assert numpy.mean(samples.external) < numpy.mean(samples.internal)
    internal_median = numpy.median(samples.internal)
    external_median = numpy.median(samples.external)
    assert external_median < internal_median


def test_fig5c_imbalance_cdf(benchmark, week_snapshots, output_dir):
    """Figure 5c: CDF of ECMP imbalance over directed parallel groups."""

    def compute():
        return collect_imbalances(week_snapshots)

    result = benchmark.pedantic(compute, rounds=1, iterations=1)
    cdfs = imbalance_cdfs(result)

    within_1 = result.fraction_within(1.0, "all")
    external_within_2 = result.fraction_within(2.0, "external")
    print_header("Figure 5c — ECMP imbalance CDF (Europe, 1 week)")
    print(f"directed group samples: internal {len(result.internal):,}, "
          f"external {len(result.external):,}")
    print(f"imbalance <= 1 %  (all)      : {within_1 * 100:.1f}%  (paper: >60 %)")
    print(f"imbalance <= 2 %  (external) : {external_within_2 * 100:.1f}%  (paper: >90 %)")
    print(f"max imbalance observed       : {max(result.all_values):.0f}%")

    chart = ChartRenderer(
        title="Figure 5c — Imbalance CDF (Europe)",
        x_label="imbalance (%)",
        y_label="CDF",
    )
    for name in ("internal", "external"):
        xs, fractions = cdfs[name]
        stride = max(1, xs.size // 500)
        chart.add_series(
            StepSeries(name=name, xs=tuple(xs[::stride]), ys=tuple(fractions[::stride]))
        )
    chart.write(output_dir / "fig5c_imbalance_cdf.svg")
    series_to_csv(
        {
            "internal_imbalance": sorted(result.internal)[:: max(1, len(result.internal) // 2000)],
            "external_imbalance": sorted(result.external)[:: max(1, len(result.external) // 2000)],
        },
        output_dir / "fig5c_imbalance.csv",
    )

    # ">60 % of the imbalance values are lower or equal to 1 %".
    assert within_1 > 0.60
    # External groups tighter: ">90 % ... lower or equal to 2 %".
    assert external_within_2 > 0.90
    assert result.fraction_within(1.0, "external") >= result.fraction_within(
        1.0, "internal"
    )
    # The skewed-group minority produces a real tail.
    assert max(result.all_values) > 3
