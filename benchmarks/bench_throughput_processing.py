"""Throughput benchmark: serial vs. parallel vs. incremental bulk processing.

The paper's workload — 542,049 SVGs extracted into YAML, then re-read for
every Section 5 figure — is replayed here at small scale over a generated
corpus:

1. ``process`` serial on the streaming fast path (the default), with the
   per-stage wall-time breakdown,
2. ``process`` serial forced down the faithful DOM path
   (``ParseOptions(fast_path=False)``) — the fast-path speedup baseline,
3. ``process`` parallel (the engine's process-pool fan-out),
4. ``process`` incremental (warm manifest re-run — the steady state of a
   collection campaign that only ever appends files),
5. ``load_all`` serial vs. parallel (both forced down the YAML path) —
   skipped when :func:`~repro.dataset.workers.resolve_workers` collapses
   the request to one worker (a pool that cannot win measures nothing,
   and two serial runs timed against each other only report noise),
6. the columnar index: one ``build_index`` compaction, then ``load_all``
   served entirely from it,
6b. the zero-copy query engine: whole-series scans over a mapped
    :class:`~repro.dataset.query.MappedIndex` — the full-corpus load
    aggregate off the scan batches plus a pushed-down hot-link filter
    (``scan_series_fps``, ``speedup_scan`` vs. the object-reconstruction
    ``load_index_fps``); the scan aggregates and the scan-derived
    Figure 5 sample set are both checked against the object path,
7. ``process`` serial again with the telemetry registry swapped for a
   :class:`~repro.telemetry.NullRegistry` — the with/without-sink pair
   that prices the telemetry subsystem itself
   (``telemetry_overhead_pct``, budget <=2%, CI guard at 5%).

Byte-identical output between the fast-path, DOM-path, and parallel runs
is asserted, not assumed, the index-served snapshot list is compared
against the YAML-parsed one object for object, and the scan-derived load
samples are compared against ``collect_load_samples`` element for
element.  Results go to ``BENCH_throughput.json`` at the repo root to
seed the perf trajectory; ``cpu_count`` is recorded because process-pool
speedup is capped by the cores actually available, and on a single-core
host the report carries ``"single_core_host": true`` — the parallel
speedup and telemetry-overhead numbers are pure noise there, so the
printed summary suppresses them and ``check_bench_regression.py`` skips
those keys.

Run standalone (not under pytest)::

    PYTHONPATH=src python benchmarks/bench_throughput_processing.py [--quick]
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import shutil
import sys
import tempfile
import time
from datetime import timedelta
from pathlib import Path

from repro.analysis.columnar import load_samples as columnar_load_samples
from repro.analysis.loads import collect_load_samples
from repro.constants import REFERENCE_DATE, MapName, SNAPSHOT_INTERVAL
from repro.dataset.engine import process_map_parallel
from repro.parsing.pipeline import ParseOptions, StageTimings
from repro.dataset.index import build_index
from repro.dataset.loader import load_all
from repro.dataset.processor import process_map
from repro.dataset.query import ScanPredicate, open_query
from repro.dataset.store import DatasetStore
from repro.dataset.workers import resolve_workers
from repro.layout.renderer import MapRenderer
from repro.simulation.network import BackboneSimulator
from repro.telemetry import MetricsRegistry, NullRegistry, use_registry

REPO_ROOT = Path(__file__).resolve().parents[1]


def generate_corpus(store: DatasetStore, map_name: MapName, files: int) -> None:
    """Render one map at the 5-minute cadence until ``files`` SVGs exist."""
    simulator = BackboneSimulator()
    renderer = MapRenderer()
    when = REFERENCE_DATE - files * SNAPSHOT_INTERVAL
    for _ in range(files):
        svg = renderer.render(simulator.snapshot(map_name, when))
        store.write(map_name, when, "svg", svg)
        when += SNAPSHOT_INTERVAL


def yaml_tree_digest(store: DatasetStore, map_name: MapName) -> str:
    """One hash over every YAML file name + content, in timestamp order."""
    digest = hashlib.sha256()
    for ref in store.iter_refs(map_name, "yaml"):
        digest.update(ref.path.name.encode())
        digest.update(ref.path.read_bytes())
    return digest.hexdigest()


def reset_outputs(store: DatasetStore, map_name: MapName) -> None:
    """Drop the YAML twins, manifest, and index, keeping the SVG corpus."""
    shutil.rmtree(store.root / map_name.value / "yaml", ignore_errors=True)
    store.manifest_path(map_name).unlink(missing_ok=True)
    store.index_path(map_name).unlink(missing_ok=True)


def timed(label: str, files: int, fn):
    """Run ``fn``, print and return (result, files/sec)."""
    start = time.perf_counter()
    result = fn()
    elapsed = time.perf_counter() - start
    fps = files / elapsed if elapsed > 0 else float("inf")
    print(f"  {label:<28} {elapsed:>7.2f} s   {fps:>8.1f} files/s")
    return result, fps


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--files", type=int, default=520, help="corpus size")
    parser.add_argument("--workers", type=int, default=4, help="pool width")
    parser.add_argument(
        "--map", default=MapName.ASIA_PACIFIC.value, help="map to generate"
    )
    parser.add_argument(
        "--quick", action="store_true", help="small corpus (120 files) for CI"
    )
    parser.add_argument(
        "--output",
        default=str(REPO_ROOT / "BENCH_throughput.json"),
        help="where to write the JSON artifact",
    )
    args = parser.parse_args(argv)
    files = 120 if args.quick else args.files
    map_name = MapName(args.map)

    print(
        f"corpus: {files} {map_name.value} SVGs, "
        f"{args.workers} workers, {os.cpu_count()} CPUs"
    )
    workdir = Path(tempfile.mkdtemp(prefix="bench-throughput-"))
    try:
        store = DatasetStore(workdir)
        _, gen_fps = timed(
            "generate", files, lambda: generate_corpus(store, map_name, files)
        )

        stage_timings = StageTimings()
        serial_stats, serial_fps = timed(
            "process serial (fast path)",
            files,
            lambda: process_map(store, map_name, timings=stage_timings),
        )
        serial_digest = yaml_tree_digest(store, map_name)

        reset_outputs(store, map_name)
        dom_stats, dom_fps = timed(
            "process serial (DOM path)",
            files,
            lambda: process_map(
                store, map_name, options=ParseOptions(fast_path=False)
            ),
        )
        dom_digest = yaml_tree_digest(store, map_name)

        # Telemetry overhead: the same serial fast-path run under a live
        # registry vs. a NullRegistry sink.  Both runs are cold (outputs
        # reset), so the only variable is the metrics subsystem.
        reset_outputs(store, map_name)
        with use_registry(MetricsRegistry()):
            _, telemetry_fps = timed(
                "process serial (telemetry)",
                files,
                lambda: process_map(store, map_name),
            )
        telemetry_digest = yaml_tree_digest(store, map_name)
        reset_outputs(store, map_name)
        with use_registry(NullRegistry()):
            _, no_telemetry_fps = timed(
                "process serial (null sink)",
                files,
                lambda: process_map(store, map_name),
            )
        no_telemetry_digest = yaml_tree_digest(store, map_name)
        telemetry_overhead_pct = (
            (no_telemetry_fps - telemetry_fps) / no_telemetry_fps * 100.0
            if no_telemetry_fps > 0
            else 0.0
        )

        reset_outputs(store, map_name)
        # update_index=False isolates the processing cost being measured;
        # the compaction is timed on its own below.
        parallel_stats, parallel_fps = timed(
            f"process parallel x{args.workers}",
            files,
            lambda: process_map_parallel(
                store, map_name, workers=args.workers, update_index=False
            ),
        )
        parallel_digest = yaml_tree_digest(store, map_name)

        identical = (
            serial_digest == parallel_digest
            and serial_digest == dom_digest
            and serial_digest == telemetry_digest
            and serial_digest == no_telemetry_digest
            and serial_stats.processed == parallel_stats.processed
            and serial_stats.processed == dom_stats.processed
            and serial_stats.unprocessed == parallel_stats.unprocessed
            and serial_stats.yaml_bytes == parallel_stats.yaml_bytes
            and serial_stats.failure_causes == parallel_stats.failure_causes
        )
        if not identical:
            print(
                "ERROR: fast/DOM/parallel outputs differ", file=sys.stderr
            )

        _, incremental_fps = timed(
            "process incremental (warm)",
            files,
            lambda: process_map_parallel(
                store, map_name, workers=args.workers, update_index=False
            ),
        )

        serial_snapshots, load_serial_fps = timed(
            "load serial (YAML)",
            files,
            lambda: load_all(store, map_name, use_index=False),
        )
        # A pool that resolve_workers collapses to one worker would rerun
        # the serial path and report noise as "parallel speedup"; skip it.
        effective_load_workers = resolve_workers(args.workers)
        load_parallel_fps = None
        if effective_load_workers > 1:
            _, load_parallel_fps = timed(
                f"load parallel x{args.workers} (YAML)",
                files,
                lambda: load_all(
                    store, map_name, workers=args.workers, use_index=False
                ),
            )
        else:
            print("  load parallel (YAML)          skipped: pool collapses "
                  "to one worker on this host")

        _, index_build_fps = timed(
            "index build (cold)",
            files,
            lambda: build_index(store, map_name, workers=args.workers),
        )
        indexed_snapshots, load_index_fps = timed(
            "load via index", files, lambda: load_all(store, map_name)
        )
        if indexed_snapshots != serial_snapshots:
            identical = False
            print("ERROR: index-served snapshots differ from YAML", file=sys.stderr)

        # The zero-copy path: whole-series scans through the mapped query
        # engine, repeated to out-run timer resolution.  One pass =
        # the full-corpus load aggregate consumed straight off the scan
        # batches plus a pushed-down hot-link filter — the work load_all
        # pays object construction for, so fps is directly comparable
        # with load_index_fps.
        def scan_pass(engine):
            total = 0.0
            matched = 0
            for batch in engine.scan().batches():
                a_loads, b_loads = batch.a_loads, batch.b_loads
                if hasattr(a_loads, "sum"):  # numpy backend
                    total += float(a_loads.sum()) + float(b_loads.sum())
                else:  # memoryview backend
                    total += sum(a_loads) + sum(b_loads)
                matched += len(batch)
            hot = len(engine.scan(ScanPredicate(min_load=90.0)))
            return matched, hot, total

        engine = open_query(store, map_name)
        scan_series_fps = 0.0
        scan_backend = None
        if engine is None:
            identical = False
            print("ERROR: query engine found no fresh index", file=sys.stderr)
        else:
            with engine:
                scan_backend = engine.backend
                repeats = 20 if args.quick else 10
                scan_pass(engine)  # warm the mapping outside the clock
                (matched, hot, total), scan_series_fps = timed(
                    f"scan via query engine x{repeats}",
                    files * repeats,
                    lambda: [scan_pass(engine) for _ in range(repeats)][-1],
                )
                scan_samples = columnar_load_samples(engine)
            # The scan aggregates must equal a brute-force object walk...
            expected_matched = sum(len(s.links) for s in serial_snapshots)
            expected_hot = sum(
                max(link.a.load, link.b.load) >= 90.0
                for s in serial_snapshots
                for link in s.links
            )
            expected_total = sum(
                link.a.load + link.b.load
                for s in serial_snapshots
                for link in s.links
            )
            if (
                matched != expected_matched
                or hot != expected_hot
                or abs(total - expected_total) > 1e-6 * max(1.0, expected_total)
            ):
                identical = False
                print(
                    "ERROR: scan aggregates differ from the object path",
                    file=sys.stderr,
                )
            # ...and so must the scan-served Figure 5 sample set.
            expected_samples = collect_load_samples(serial_snapshots)
            if (
                scan_samples.all_loads != expected_samples.all_loads
                or scan_samples.internal != expected_samples.internal
                or scan_samples.external != expected_samples.external
            ):
                identical = False
                print(
                    "ERROR: scan-derived load samples differ from the "
                    "object path",
                    file=sys.stderr,
                )
            del scan_samples, expected_samples
        del serial_snapshots, indexed_snapshots
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    single_core_host = (os.cpu_count() or 1) <= 1
    report = {
        "benchmark": "bulk SVG→YAML processing throughput",
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "map": map_name.value,
        "corpus_files": files,
        "workers": args.workers,
        "cpu_count": os.cpu_count(),
        # Flags speedup_parallel and telemetry_overhead_pct as noise: on
        # one core the "parallel" runs are serial reruns and the overhead
        # delta is run-to-run jitter.  check_bench_regression.py skips
        # those keys when this is set.
        "single_core_host": single_core_host,
        "generate_fps": round(gen_fps, 2),
        "process_serial_fps": round(serial_fps, 2),
        "process_serial_dom_fps": round(dom_fps, 2),
        "process_serial_no_telemetry_fps": round(no_telemetry_fps, 2),
        "telemetry_overhead_pct": round(telemetry_overhead_pct, 2),
        "process_parallel_fps": round(parallel_fps, 2),
        "process_incremental_fps": round(incremental_fps, 2),
        "load_serial_fps": round(load_serial_fps, 2),
        "index_build_fps": round(index_build_fps, 2),
        "load_index_fps": round(load_index_fps, 2),
        "scan_series_fps": round(scan_series_fps, 2),
        "scan_backend": scan_backend,
        "speedup_fast_path": round(serial_fps / dom_fps, 2),
        "speedup_parallel": round(parallel_fps / serial_fps, 2),
        "speedup_incremental": round(incremental_fps / serial_fps, 2),
        "speedup_index": round(load_index_fps / load_serial_fps, 2),
        "speedup_scan": round(scan_series_fps / load_index_fps, 2)
        if load_index_fps > 0
        else 0.0,
        "outputs_identical": identical,
        "stage_breakdown": stage_timings.as_dict(),
    }
    speedup_load_ok = True
    if load_parallel_fps is not None:
        report["load_parallel_fps"] = round(load_parallel_fps, 2)
        report["speedup_load"] = round(load_parallel_fps / load_serial_fps, 2)
        # The pool ran for real, so it must actually win; anything under
        # 1.0 means the load path regressed into its parallel overhead.
        speedup_load_ok = report["speedup_load"] >= 1.0
        if not speedup_load_ok:
            print(
                f"ERROR: parallel load is slower than serial "
                f"(speedup_load = {report['speedup_load']})",
                file=sys.stderr,
            )
    output = Path(args.output)
    output.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    stages = report["stage_breakdown"]["seconds"]
    print("\nfast-path stage breakdown (serial run):")
    for stage, seconds in stages.items():
        print(f"  {stage:<10} {seconds:>8.2f} s")
    if single_core_host:
        print("single-core host: parallel speedup and telemetry overhead "
              "are noise here; omitted from this summary")
    else:
        print(f"telemetry overhead {report['telemetry_overhead_pct']}% "
              f"(live registry vs. null sink)")
    claims = [
        f"fast path speedup {report['speedup_fast_path']}x over DOM",
        f"incremental {report['speedup_incremental']}x",
        f"indexed load {report['speedup_index']}x",
        f"zero-copy scan {report['speedup_scan']}x over indexed load",
    ]
    if not single_core_host:
        claims.insert(1, f"parallel {report['speedup_parallel']}x")
        if "speedup_load" in report:
            claims.insert(2, f"load {report['speedup_load']}x")
    print(", ".join(claims))
    print(f"wrote {output}")
    return 0 if identical and speedup_load_ok else 1


if __name__ == "__main__":
    sys.exit(main())
