"""Throughput benchmark: serial vs. parallel vs. incremental bulk processing.

The paper's workload — 542,049 SVGs extracted into YAML, then re-read for
every Section 5 figure — is replayed here at small scale over a generated
corpus:

1. ``process`` serial on the streaming fast path (the default), with the
   per-stage wall-time breakdown,
2. ``process`` serial forced down the faithful DOM path
   (``ParseOptions(fast_path=False)``) — the fast-path speedup baseline,
3. ``process`` parallel (the engine's process-pool fan-out),
4. ``process`` incremental (warm manifest re-run — the steady state of a
   collection campaign that only ever appends files),
5. ``load_all`` serial vs. parallel (both forced down the YAML path),
6. the columnar index: one ``build_index`` compaction, then ``load_all``
   served entirely from it,
7. ``process`` serial again with the telemetry registry swapped for a
   :class:`~repro.telemetry.NullRegistry` — the with/without-sink pair
   that prices the telemetry subsystem itself
   (``telemetry_overhead_pct``, budget <=2%, CI guard at 5%).

Byte-identical output between the fast-path, DOM-path, and parallel runs
is asserted, not assumed, and the index-served snapshot list is compared
against the YAML-parsed one object for object.  Results go to
``BENCH_throughput.json`` at the repo root to seed the perf trajectory;
``cpu_count`` is recorded because process-pool speedup is capped by the
cores actually available.

Run standalone (not under pytest)::

    PYTHONPATH=src python benchmarks/bench_throughput_processing.py [--quick]
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import shutil
import sys
import tempfile
import time
from datetime import timedelta
from pathlib import Path

from repro.constants import REFERENCE_DATE, MapName, SNAPSHOT_INTERVAL
from repro.dataset.engine import process_map_parallel
from repro.parsing.pipeline import ParseOptions, StageTimings
from repro.dataset.index import build_index
from repro.dataset.loader import load_all
from repro.dataset.processor import process_map
from repro.dataset.store import DatasetStore
from repro.layout.renderer import MapRenderer
from repro.simulation.network import BackboneSimulator
from repro.telemetry import MetricsRegistry, NullRegistry, use_registry

REPO_ROOT = Path(__file__).resolve().parents[1]


def generate_corpus(store: DatasetStore, map_name: MapName, files: int) -> None:
    """Render one map at the 5-minute cadence until ``files`` SVGs exist."""
    simulator = BackboneSimulator()
    renderer = MapRenderer()
    when = REFERENCE_DATE - files * SNAPSHOT_INTERVAL
    for _ in range(files):
        svg = renderer.render(simulator.snapshot(map_name, when))
        store.write(map_name, when, "svg", svg)
        when += SNAPSHOT_INTERVAL


def yaml_tree_digest(store: DatasetStore, map_name: MapName) -> str:
    """One hash over every YAML file name + content, in timestamp order."""
    digest = hashlib.sha256()
    for ref in store.iter_refs(map_name, "yaml"):
        digest.update(ref.path.name.encode())
        digest.update(ref.path.read_bytes())
    return digest.hexdigest()


def reset_outputs(store: DatasetStore, map_name: MapName) -> None:
    """Drop the YAML twins, manifest, and index, keeping the SVG corpus."""
    shutil.rmtree(store.root / map_name.value / "yaml", ignore_errors=True)
    store.manifest_path(map_name).unlink(missing_ok=True)
    store.index_path(map_name).unlink(missing_ok=True)


def timed(label: str, files: int, fn):
    """Run ``fn``, print and return (result, files/sec)."""
    start = time.perf_counter()
    result = fn()
    elapsed = time.perf_counter() - start
    fps = files / elapsed if elapsed > 0 else float("inf")
    print(f"  {label:<28} {elapsed:>7.2f} s   {fps:>8.1f} files/s")
    return result, fps


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--files", type=int, default=520, help="corpus size")
    parser.add_argument("--workers", type=int, default=4, help="pool width")
    parser.add_argument(
        "--map", default=MapName.ASIA_PACIFIC.value, help="map to generate"
    )
    parser.add_argument(
        "--quick", action="store_true", help="small corpus (120 files) for CI"
    )
    parser.add_argument(
        "--output",
        default=str(REPO_ROOT / "BENCH_throughput.json"),
        help="where to write the JSON artifact",
    )
    args = parser.parse_args(argv)
    files = 120 if args.quick else args.files
    map_name = MapName(args.map)

    print(
        f"corpus: {files} {map_name.value} SVGs, "
        f"{args.workers} workers, {os.cpu_count()} CPUs"
    )
    workdir = Path(tempfile.mkdtemp(prefix="bench-throughput-"))
    try:
        store = DatasetStore(workdir)
        _, gen_fps = timed(
            "generate", files, lambda: generate_corpus(store, map_name, files)
        )

        stage_timings = StageTimings()
        serial_stats, serial_fps = timed(
            "process serial (fast path)",
            files,
            lambda: process_map(store, map_name, timings=stage_timings),
        )
        serial_digest = yaml_tree_digest(store, map_name)

        reset_outputs(store, map_name)
        dom_stats, dom_fps = timed(
            "process serial (DOM path)",
            files,
            lambda: process_map(
                store, map_name, options=ParseOptions(fast_path=False)
            ),
        )
        dom_digest = yaml_tree_digest(store, map_name)

        # Telemetry overhead: the same serial fast-path run under a live
        # registry vs. a NullRegistry sink.  Both runs are cold (outputs
        # reset), so the only variable is the metrics subsystem.
        reset_outputs(store, map_name)
        with use_registry(MetricsRegistry()):
            _, telemetry_fps = timed(
                "process serial (telemetry)",
                files,
                lambda: process_map(store, map_name),
            )
        telemetry_digest = yaml_tree_digest(store, map_name)
        reset_outputs(store, map_name)
        with use_registry(NullRegistry()):
            _, no_telemetry_fps = timed(
                "process serial (null sink)",
                files,
                lambda: process_map(store, map_name),
            )
        no_telemetry_digest = yaml_tree_digest(store, map_name)
        telemetry_overhead_pct = (
            (no_telemetry_fps - telemetry_fps) / no_telemetry_fps * 100.0
            if no_telemetry_fps > 0
            else 0.0
        )

        reset_outputs(store, map_name)
        # update_index=False isolates the processing cost being measured;
        # the compaction is timed on its own below.
        parallel_stats, parallel_fps = timed(
            f"process parallel x{args.workers}",
            files,
            lambda: process_map_parallel(
                store, map_name, workers=args.workers, update_index=False
            ),
        )
        parallel_digest = yaml_tree_digest(store, map_name)

        identical = (
            serial_digest == parallel_digest
            and serial_digest == dom_digest
            and serial_digest == telemetry_digest
            and serial_digest == no_telemetry_digest
            and serial_stats.processed == parallel_stats.processed
            and serial_stats.processed == dom_stats.processed
            and serial_stats.unprocessed == parallel_stats.unprocessed
            and serial_stats.yaml_bytes == parallel_stats.yaml_bytes
            and serial_stats.failure_causes == parallel_stats.failure_causes
        )
        if not identical:
            print(
                "ERROR: fast/DOM/parallel outputs differ", file=sys.stderr
            )

        _, incremental_fps = timed(
            "process incremental (warm)",
            files,
            lambda: process_map_parallel(
                store, map_name, workers=args.workers, update_index=False
            ),
        )

        serial_snapshots, load_serial_fps = timed(
            "load serial (YAML)",
            files,
            lambda: load_all(store, map_name, use_index=False),
        )
        _, load_parallel_fps = timed(
            f"load parallel x{args.workers} (YAML)",
            files,
            lambda: load_all(store, map_name, workers=args.workers, use_index=False),
        )

        _, index_build_fps = timed(
            "index build (cold)",
            files,
            lambda: build_index(store, map_name, workers=args.workers),
        )
        indexed_snapshots, load_index_fps = timed(
            "load via index", files, lambda: load_all(store, map_name)
        )
        if indexed_snapshots != serial_snapshots:
            identical = False
            print("ERROR: index-served snapshots differ from YAML", file=sys.stderr)
        del serial_snapshots, indexed_snapshots
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    report = {
        "benchmark": "bulk SVG→YAML processing throughput",
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "map": map_name.value,
        "corpus_files": files,
        "workers": args.workers,
        "cpu_count": os.cpu_count(),
        "generate_fps": round(gen_fps, 2),
        "process_serial_fps": round(serial_fps, 2),
        "process_serial_dom_fps": round(dom_fps, 2),
        "process_serial_no_telemetry_fps": round(no_telemetry_fps, 2),
        "telemetry_overhead_pct": round(telemetry_overhead_pct, 2),
        "process_parallel_fps": round(parallel_fps, 2),
        "process_incremental_fps": round(incremental_fps, 2),
        "load_serial_fps": round(load_serial_fps, 2),
        "load_parallel_fps": round(load_parallel_fps, 2),
        "index_build_fps": round(index_build_fps, 2),
        "load_index_fps": round(load_index_fps, 2),
        "speedup_fast_path": round(serial_fps / dom_fps, 2),
        "speedup_parallel": round(parallel_fps / serial_fps, 2),
        "speedup_incremental": round(incremental_fps / serial_fps, 2),
        "speedup_load": round(load_parallel_fps / load_serial_fps, 2),
        "speedup_index": round(load_index_fps / load_serial_fps, 2),
        "outputs_identical": identical,
        "stage_breakdown": stage_timings.as_dict(),
    }
    output = Path(args.output)
    output.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    stages = report["stage_breakdown"]["seconds"]
    print("\nfast-path stage breakdown (serial run):")
    for stage, seconds in stages.items():
        print(f"  {stage:<10} {seconds:>8.2f} s")
    print(f"telemetry overhead {report['telemetry_overhead_pct']}% "
          f"(live registry vs. null sink)")
    print(f"fast path speedup {report['speedup_fast_path']}x over DOM, "
          f"parallel {report['speedup_parallel']}x, "
          f"incremental {report['speedup_incremental']}x, "
          f"load {report['speedup_load']}x, "
          f"indexed load {report['speedup_index']}x")
    print(f"wrote {output}")
    return 0 if identical else 1


if __name__ == "__main__":
    sys.exit(main())
