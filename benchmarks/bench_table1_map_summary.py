"""Table 1 — routers, internal links, and external links per map.

Regenerates the paper's Table 1 through the *full* pipeline: simulate each
map on the reference date, render it to a weathermap SVG, extract the
topology back with Algorithms 1+2, and tabulate.  The reproduced rows must
match the paper exactly, including the total row's de-duplication of
shared routers (181 of 212) and shared gateway links (1,186 of 1,323).

The timed section is the extraction of the Europe map — the paper's core
contribution applied to its largest input.
"""

from __future__ import annotations

from conftest import print_header

from repro.constants import (
    MapName,
    REFERENCE_DATE,
    TABLE1_PAPER,
    TABLE1_PAPER_TOTAL,
)
from repro.dataset.summary import build_table1, format_table1
from repro.layout.renderer import MapRenderer
from repro.parsing.pipeline import parse_svg


def test_table1_full_pipeline(benchmark, simulator, output_dir):
    """Reproduce every Table 1 row via simulate → render → parse."""
    svgs: dict[MapName, str] = {}
    for map_name in simulator.map_names:
        snapshot = simulator.snapshot(map_name, REFERENCE_DATE)
        svgs[map_name] = MapRenderer().render(snapshot)

    europe_svg = svgs[MapName.EUROPE]
    benchmark.extra_info["europe_svg_kib"] = len(europe_svg) // 1024

    def extract_europe():
        return parse_svg(europe_svg, MapName.EUROPE, REFERENCE_DATE)

    europe_parsed = benchmark(extract_europe)

    snapshots = {
        map_name: parse_svg(svg, map_name, REFERENCE_DATE).snapshot
        for map_name, svg in svgs.items()
    }
    snapshots[MapName.EUROPE] = europe_parsed.snapshot
    rows = build_table1(snapshots)

    print_header("Table 1 — Summary of routers, internal and external links")
    print("measured (via SVG extraction):")
    print(format_table1(rows))
    print()
    print("paper:")
    for map_name, (routers, internal, external) in TABLE1_PAPER.items():
        print(f"{map_name.title:<15} {routers:>12,} {internal:>15,} {external:>15,}")
    total = TABLE1_PAPER_TOTAL
    print(f"{'Total':<15} {total[0]:>12,} {total[1]:>15,} {total[2]:>15,}")

    by_map = {row.map_name: row for row in rows if row.map_name is not None}
    for map_name, expected in TABLE1_PAPER.items():
        row = by_map[map_name]
        assert (row.routers, row.internal_links, row.external_links) == expected
    total_row = rows[-1]
    assert (
        total_row.routers,
        total_row.internal_links,
        total_row.external_links,
    ) == TABLE1_PAPER_TOTAL
