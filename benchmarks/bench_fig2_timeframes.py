"""Figure 2 — collected data time frame by network weather map.

Replays the full two-year collection availability per map (no files
written — the availability model decides tick by tick) and extracts the
maximal collection segments.  Shape checks against the paper:

* Europe spans the whole campaign in essentially one segment;
* World / North America / Asia Pacific were collected "between July and
  September 2020 and after October 2021" — one early block, one hole,
  one late block;
* discontinuities (long outages) are rare.
"""

from __future__ import annotations

from datetime import timedelta

from conftest import print_header

from repro.charts.export import series_to_csv
from repro.charts.gantt import GanttChart
from repro.constants import COLLECTION_START, MapName, REFERENCE_DATE
from repro.dataset.catalog import time_frames_from
from repro.dataset.gaps import AvailabilityModel

#: Coarser probe cadence: segment boundaries move by at most one step,
#: which is invisible at the figure's two-year scale.
PROBE_INTERVAL = timedelta(hours=1)

#: Segments split on gaps of more than two days, as in the figure.
SPLIT_GAP = timedelta(days=2)


def test_fig2_collection_timeframes(benchmark, simulator, output_dir):
    """Regenerate the Figure 2 segment bars for all four maps."""
    availability = AvailabilityModel(seed=simulator.config.seed)

    def compute_frames():
        frames = {}
        for map_name in simulator.map_names:
            ticks = availability.ticks(
                map_name, COLLECTION_START, REFERENCE_DATE, interval=PROBE_INTERVAL
            )
            frames[map_name] = time_frames_from(ticks, max_gap=SPLIT_GAP)
        return frames

    frames = benchmark.pedantic(compute_frames, rounds=1, iterations=1)

    print_header("Figure 2 — Collected time frames by map")
    csv_columns: dict[str, list] = {}
    for map_name, map_frames in frames.items():
        print(f"{map_name.title}:")
        for frame in map_frames:
            days = frame.duration.total_seconds() / 86400
            print(
                f"  {frame.start.date()} .. {frame.end.date()}  ({days:7.1f} days)"
            )
        csv_columns[f"{map_name.value}_start"] = [
            f.start.isoformat() for f in map_frames
        ]
        csv_columns[f"{map_name.value}_end"] = [f.end.isoformat() for f in map_frames]
    series_to_csv(csv_columns, output_dir / "fig2_timeframes.csv")

    gantt = GanttChart(title="Figure 2 — Collected data time frame by map")
    for map_name, map_frames in frames.items():
        gantt.add_row(
            map_name.title, [(frame.start, frame.end) for frame in map_frames]
        )
    gantt.write(output_dir / "fig2_timeframes.svg")

    campaign_days = (REFERENCE_DATE - COLLECTION_START).days

    # Europe: nearly continuous coverage of the whole campaign.
    europe_covered = sum(
        (f.duration for f in frames[MapName.EUROPE]), timedelta()
    )
    assert europe_covered.days > 0.97 * campaign_days
    assert frames[MapName.EUROPE][0].start == COLLECTION_START

    # The other maps: early block ending Sep 2020, hole, late block from
    # Oct 2021 to the reference date.
    for map_name in (MapName.WORLD, MapName.NORTH_AMERICA, MapName.ASIA_PACIFIC):
        map_frames = frames[map_name]
        assert map_frames[0].start == COLLECTION_START
        assert map_frames[0].end.month == 9 and map_frames[0].end.year == 2020
        late_start = map_frames[1].start if len(map_frames) > 1 else None
        assert late_start is not None
        assert (late_start.year, late_start.month) == (2021, 10)
        assert map_frames[-1].end.date() >= (REFERENCE_DATE - timedelta(days=2)).date()
        # The 2021 hole dominates; other discontinuities are rare.
        assert len(map_frames) <= 8
