"""Serving benchmark: cached read throughput over the mmap query engine.

The read API's claim is that a weathermap dashboard refresh costs a
cache lookup, not an index scan: responses are rendered once per index
generation, revalidated by ETag, and hot-swapped — never dropped — when
an ingest checkpoint rewrites a shard.  This benchmark drives a real
``WeatherServer`` (in-process, ephemeral port, persistent HTTP/1.1
connections) through four phases and measures the claims:

1. **Cold vs warm** (``cold_warm_ratio``): every endpoint URL is
   requested once against an empty response cache, then repeatedly
   against a full one.  The ratio is how much work the cache absorbs.

2. **Steady state under ingest** (``serving_rps``, per-endpoint
   ``*_p50_seconds`` / ``*_p99_seconds``, ``http_5xx``): a zipf-ish
   request mix (snapshot-heavy, the dashboard profile) runs while a
   writer thread lands live ingest checkpoints — new YAML plus a
   targeted ``compact_map_shards`` — under the readers.  The engine
   cache must absorb every generation change: ``http_5xx`` must be 0
   and ``zero_5xx_during_checkpoint`` true.

3. **Cached hot path** (``serving_cached_rps``): one snapshot URL
   hammered back-to-back.  The acceptance floor is 1,000 req/s on the
   single-core reference host; the response never touches the columns
   after the first render.

4. **Live feed fan-out** (``feed_notify_p50_seconds`` /
   ``feed_notify_p99_seconds``, ``feed_fanout_rps``): N SSE
   subscribers hold ``/v1/maps/<m>/events`` streams through real
   sockets while a writer lands paced checkpoints.  Every subscriber
   must see every checkpoint as consecutive event ids
   (``feed_missed_events`` == 0); notify latency is measured from the
   generation file's mtime to client receipt.  Subscriber count and
   checkpoint pacing are identical in quick and full mode so the keys
   stay comparable under the regression gate.

``cache_hit_rate`` is read from the server's own
``repro_server_cache_total`` counters across the whole run and must
stay ≥ 0.8 under the mixed phase's invalidations.

Results go to ``BENCH_serving.json`` at the repo root;
``scripts/check_bench_regression.py`` guards ``serving_rps`` /
``serving_cached_rps`` / ``feed_fanout_rps`` (higher is better) and
every ``*_seconds`` key (lower is better) against that baseline.

Run standalone (not under pytest)::

    PYTHONPATH=src python benchmarks/bench_serving.py [--quick]
"""

from __future__ import annotations

import argparse
import http.client
import json
import os
import random
import shutil
import sys
import tempfile
import threading
import time
from datetime import datetime, timedelta, timezone
from pathlib import Path

from repro.constants import MapName
from repro.dataset.processor import process_svg_bytes
from repro.dataset.shards import compact_map_shards
from repro.dataset.store import ShardedDatasetStore
from repro.layout.renderer import MapRenderer
from repro.server import ServeOptions, create_server
from repro.simulation.network import BackboneSimulator
from repro.telemetry import MetricsRegistry, use_registry

REPO_ROOT = Path(__file__).resolve().parents[1]
T0 = datetime(2022, 9, 12, tzinfo=timezone.utc)
MAP = MapName.ASIA_PACIFIC

#: Feed-phase constants, deliberately identical in quick and full mode
#: so the latency and fan-out keys regress against the same shape.
FEED_SUBSCRIBERS = 8
FEED_TICK = 0.1       # the server's watch interval during the bench
FEED_PAUSE = 0.3      # >= 2 ticks, so every checkpoint is its own event

#: The dashboard profile: a few hot URLs dominate, analytics trail off.
#: (endpoint label, relative weight, URL template index)
MIX_WEIGHTS = {
    "snapshot": 10,
    "maps": 4,
    "series": 3,
    "evolution": 2,
    "imbalance": 1,
}


def build_corpus(
    root: Path, days: int, per_day: int
) -> tuple[ShardedDatasetStore, str]:
    """A compacted multi-day shard corpus from one rendered document."""
    simulator = BackboneSimulator()
    svg = MapRenderer().render(simulator.snapshot(MAP, T0))
    outcome = process_svg_bytes(svg.encode("utf-8"), MAP, T0)
    if outcome.yaml_text is None:
        raise SystemExit("reference document failed to process")
    store = ShardedDatasetStore(root)
    store.mark()
    for day in range(days):
        for slot in range(per_day):
            when = T0 + timedelta(days=day, minutes=5 * slot)
            store.write(MAP, when, "yaml", outcome.yaml_text)
    compact_map_shards(store, MAP)
    return store, outcome.yaml_text


class Client:
    """One persistent connection; every GET is timed."""

    def __init__(self, port: int) -> None:
        self.conn = http.client.HTTPConnection("127.0.0.1", port, timeout=60)

    def get(self, path: str) -> tuple[int, bytes, float]:
        started = time.perf_counter()
        self.conn.request("GET", path)
        response = self.conn.getresponse()
        body = response.read()
        return response.status, body, time.perf_counter() - started

    def close(self) -> None:
        self.conn.close()


def percentile(samples: list[float], q: float) -> float:
    """The ``q``-quantile of ``samples`` (nearest-rank, q in [0, 1])."""
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[rank]


def request_urls(client: Client) -> dict[str, list[str]]:
    """The URL population per endpoint, derived from the live corpus."""
    status, body, _ = client.get(f"/v1/maps/{MAP.value}/snapshot")
    if status != 200:
        raise SystemExit(f"corpus probe failed: {status} {body[:200]!r}")
    link = json.loads(body)["links"][0]
    pair = f"{link['node_a']}:{link['node_b']}"
    day2 = T0 + timedelta(days=1)
    window = (
        f"start={int(day2.timestamp())}"
        f"&end={int((day2 + timedelta(days=1)).timestamp())}"
    )
    return {
        "snapshot": [
            f"/v1/maps/{MAP.value}/snapshot",
            f"/v1/maps/{MAP.value}/snapshot?at={int(day2.timestamp())}",
        ],
        "maps": ["/v1/maps"],
        "series": [
            f"/v1/maps/{MAP.value}/series?link={pair}",
            f"/v1/maps/{MAP.value}/series?link={pair}&{window}",
        ],
        "evolution": [
            f"/v1/maps/{MAP.value}/evolution",
            f"/v1/maps/{MAP.value}/evolution?{window}",
        ],
        "imbalance": [f"/v1/maps/{MAP.value}/imbalance"],
    }


def sse_subscriber(
    port: int,
    events_wanted: int,
    ready: threading.Event,
    latencies: list[float],
    errors: list[str],
    lock: threading.Lock,
) -> None:
    """One feed subscriber: baseline, then ``events_wanted`` live events.

    Appends one checkpoint-to-receipt latency per live event (receipt
    wall clock minus the event's ``changed_at``, i.e. the generation
    file's mtime — the same definition as ``repro_feed_notify_seconds``
    but measured across a real socket).
    """
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        conn.request("GET", f"/v1/maps/{MAP.value}/events")
        response = conn.getresponse()
        if response.status != 200:
            with lock:
                errors.append(f"subscribe failed: {response.status}")
            ready.set()
            return
        last_id = None
        received = 0
        first = True
        while received < events_wanted:
            lines: list[bytes] = []
            while True:
                line = response.readline()
                if not line:
                    with lock:
                        errors.append("stream ended early")
                    return
                if line == b"\n":
                    break
                lines.append(line.rstrip(b"\n"))
            if not lines or lines[0].startswith(b":"):
                continue  # heartbeat
            received_at = time.time()
            fields = dict(
                line.split(b": ", 1) for line in lines if b": " in line
            )
            payload = json.loads(fields[b"data"])
            if first:
                # The replayed baseline: current generation, not a
                # checkpoint we timed — sync the writer and move on.
                first = False
                last_id = payload["id"]
                ready.set()
                continue
            if last_id is not None and payload["id"] != last_id + 1:
                with lock:
                    errors.append(
                        f"missed events: {last_id} -> {payload['id']}"
                    )
            last_id = payload["id"]
            changed_at = datetime.fromisoformat(payload["changed_at"])
            with lock:
                latencies.append(received_at - changed_at.timestamp())
            received += 1
    except (OSError, http.client.HTTPException) as exc:
        with lock:
            errors.append(f"transport error: {exc}")
    finally:
        ready.set()
        conn.close()


def cache_totals(registry: MetricsRegistry) -> tuple[float, float]:
    """(hits, misses) summed from ``repro_server_cache_total``."""
    hits = misses = 0.0
    for metric in registry.snapshot()["metrics"]:
        if metric["name"] != "repro_server_cache_total":
            continue
        for labels, value in metric["series"]:
            outcome = dict(labels).get("outcome")
            if outcome == "hit":
                hits += value
            elif outcome == "miss":
                misses += value
    return hits, misses


def run_checkpoints(
    store: ShardedDatasetStore,
    yaml_text: str,
    first_day: datetime,
    rounds: int,
    pause: float,
) -> None:
    """Land ``rounds`` live ingest checkpoints on one fresh day-shard."""
    key = first_day.strftime("%Y-%m-%d")
    for round_no in range(rounds):
        when = first_day + timedelta(minutes=5 * round_no)
        store.write(MAP, when, "yaml", yaml_text)
        compact_map_shards(store, MAP, only=[key])
        time.sleep(pause)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small corpus + short phases for CI"
    )
    parser.add_argument(
        "--output",
        default=str(REPO_ROOT / "BENCH_serving.json"),
        help="where to write the JSON artifact",
    )
    args = parser.parse_args(argv)

    days = 3 if args.quick else 7
    per_day = 6 if args.quick else 24
    warm_repeats = 10 if args.quick else 30
    steady_requests = 800 if args.quick else 4000
    cached_requests = 2000 if args.quick else 10000
    checkpoints = 5 if args.quick else 10
    feed_checkpoints = 6 if args.quick else 10

    print(
        f"corpus: {days} day-shards x {per_day} snapshots of {MAP.value}, "
        f"{os.cpu_count()} CPUs"
    )
    registry = MetricsRegistry()
    workdir = Path(tempfile.mkdtemp(prefix="bench-serving-"))
    server = None
    try:
        store, yaml_text = build_corpus(workdir, days, per_day)
        with use_registry(registry):
            server = create_server(
                store, ServeOptions(port=0, watch_interval=FEED_TICK)
            )
            thread = threading.Thread(target=server.serve_forever, daemon=True)
            thread.start()
            client = Client(server.server_address[1])

            urls = request_urls(client)
            # The probe warmed the default-snapshot URL; reset so the
            # cold phase sees a genuinely empty cache.
            server.cache.clear()
            server.engines.invalidate(MAP)

            # -- phase 1: cold vs warm -------------------------------------
            cold: list[float] = []
            warm: list[float] = []
            for endpoint_urls in urls.values():
                for url in endpoint_urls:
                    status, body, elapsed = client.get(url)
                    if status != 200:
                        raise SystemExit(f"cold {url}: {status} {body[:200]!r}")
                    cold.append(elapsed)
            for endpoint_urls in urls.values():
                for url in endpoint_urls:
                    repeats = []
                    for _ in range(warm_repeats):
                        _, _, elapsed = client.get(url)
                        repeats.append(elapsed)
                    warm.append(percentile(repeats, 0.5))
            cold_mean = sum(cold) / len(cold)
            warm_mean = sum(warm) / len(warm)
            cold_warm_ratio = cold_mean / warm_mean if warm_mean > 0 else 0.0
            print(
                f"  cold {cold_mean * 1e3:.2f} ms vs warm "
                f"{warm_mean * 1e3:.3f} ms per request "
                f"({cold_warm_ratio:.0f}x)"
            )

            # -- phase 2: zipf-ish mix under live ingest checkpoints -------
            rng = random.Random(7)
            population = [
                (endpoint, url)
                for endpoint, endpoint_urls in urls.items()
                for url in endpoint_urls
            ]
            weights = [
                MIX_WEIGHTS[endpoint] / len(urls[endpoint])
                for endpoint, _ in population
            ]
            checkpoint_day = T0 + timedelta(days=days)
            writer = threading.Thread(
                target=run_checkpoints,
                args=(store, yaml_text, checkpoint_day, checkpoints, 0.05),
            )
            latencies: dict[str, list[float]] = {name: [] for name in urls}
            http_5xx = 0
            writer.start()
            started = time.perf_counter()
            issued = 0
            try:
                while issued < steady_requests or writer.is_alive():
                    endpoint, url = rng.choices(population, weights)[0]
                    status, _, elapsed = client.get(url)
                    latencies[endpoint].append(elapsed)
                    if status >= 500:
                        http_5xx += 1
                    issued += 1
            finally:
                writer.join()
            steady_seconds = time.perf_counter() - started
            serving_rps = issued / steady_seconds
            print(
                f"  steady mix: {issued} requests in {steady_seconds:.1f} s "
                f"({serving_rps:.0f} req/s) across {checkpoints} live "
                f"checkpoints, {http_5xx} 5xx"
            )

            # -- phase 3: the cached snapshot hot path ---------------------
            hot_url = urls["snapshot"][0]
            client.get(hot_url)  # render once for the new generation
            started = time.perf_counter()
            for _ in range(cached_requests):
                status, _, _ = client.get(hot_url)
                if status >= 500:
                    http_5xx += 1
            cached_seconds = time.perf_counter() - started
            serving_cached_rps = cached_requests / cached_seconds
            print(
                f"  cached snapshot: {cached_requests} requests in "
                f"{cached_seconds:.1f} s ({serving_cached_rps:.0f} req/s)"
            )

            # -- phase 4: live feed fan-out --------------------------------
            port = server.server_address[1]
            notify_latencies: list[float] = []
            feed_errors: list[str] = []
            feed_lock = threading.Lock()
            ready_flags = [threading.Event() for _ in range(FEED_SUBSCRIBERS)]
            subscribers = [
                threading.Thread(
                    target=sse_subscriber,
                    args=(
                        port, feed_checkpoints, ready,
                        notify_latencies, feed_errors, feed_lock,
                    ),
                )
                for ready in ready_flags
            ]
            for subscriber in subscribers:
                subscriber.start()
            for ready in ready_flags:
                ready.wait(timeout=30)
            feed_day = T0 + timedelta(days=days + 1)
            feed_started = time.perf_counter()
            run_checkpoints(
                store, yaml_text, feed_day, feed_checkpoints, FEED_PAUSE
            )
            for subscriber in subscribers:
                subscriber.join(timeout=60)
            feed_seconds = time.perf_counter() - feed_started
            expected_events = FEED_SUBSCRIBERS * feed_checkpoints
            delivered_events = len(notify_latencies)
            feed_missed = expected_events - delivered_events
            feed_fanout_rps = delivered_events / feed_seconds
            print(
                f"  feed: {FEED_SUBSCRIBERS} subscribers x "
                f"{feed_checkpoints} checkpoints -> {delivered_events}/"
                f"{expected_events} events in {feed_seconds:.1f} s "
                f"({feed_fanout_rps:.0f} ev/s), notify p99 "
                f"{percentile(notify_latencies, 0.99) * 1e3:.0f} ms"
                if notify_latencies
                else "  feed: no events delivered"
            )

            client.close()
        hits, misses = cache_totals(registry)
        cache_hit_rate = hits / (hits + misses) if hits + misses else 0.0
    finally:
        if server is not None:
            server.shutdown()
            server.server_close()
        shutil.rmtree(workdir, ignore_errors=True)

    ok = True
    if http_5xx:
        ok = False
        print(f"ERROR: {http_5xx} 5xx responses under live ingest", file=sys.stderr)
    if cache_hit_rate < 0.8:
        ok = False
        print(
            f"ERROR: cache hit rate {cache_hit_rate:.2f} below the 0.8 floor",
            file=sys.stderr,
        )
    if serving_cached_rps < 1000:
        ok = False
        print(
            f"ERROR: cached reads at {serving_cached_rps:.0f} req/s, "
            "below the 1,000 req/s floor",
            file=sys.stderr,
        )
    if feed_errors:
        ok = False
        print(f"ERROR: feed subscribers reported: {feed_errors[:3]}", file=sys.stderr)
    if feed_missed:
        ok = False
        print(
            f"ERROR: {feed_missed} of {expected_events} feed events never "
            "reached a subscriber",
            file=sys.stderr,
        )

    report = {
        "benchmark": "cached HTTP read API over the shared mmap query engine",
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "corpus_snapshots": days * per_day,
        "day_shards": days,
        "map": MAP.value,
        "cpu_count": os.cpu_count(),
        "single_core_host": (os.cpu_count() or 1) <= 1,
        "steady_requests": issued,
        "cached_requests": cached_requests,
        "ingest_checkpoints": checkpoints,
        "serving_rps": round(serving_rps, 1),
        "serving_cached_rps": round(serving_cached_rps, 1),
        "cache_hit_rate": round(cache_hit_rate, 4),
        "cold_warm_ratio": round(cold_warm_ratio, 1),
        "http_5xx": http_5xx,
        "zero_5xx_during_checkpoint": http_5xx == 0,
        "feed_subscribers": FEED_SUBSCRIBERS,
        "feed_checkpoints": feed_checkpoints,
        "feed_delivered_events": delivered_events,
        "feed_missed_events": feed_missed,
        "feed_fanout_rps": round(feed_fanout_rps, 1),
        "outputs_consistent": ok,
    }
    if notify_latencies:
        report["feed_notify_p50_seconds"] = round(
            percentile(notify_latencies, 0.50), 6
        )
        report["feed_notify_p99_seconds"] = round(
            percentile(notify_latencies, 0.99), 6
        )
    # Quick mode's latency tails are bimodal noise (how many cold
    # renders land in the small sample depends on checkpoint timing), so
    # their keys get a prefix the regression gate won't find in the full
    # committed baseline: reported, compared only between quick runs,
    # never fatal against the full run.
    prefix = "quick_" if args.quick else ""
    for endpoint, samples in latencies.items():
        if not samples:
            continue
        report[f"{prefix}{endpoint}_p50_seconds"] = round(
            percentile(samples, 0.50), 6
        )
        report[f"{prefix}{endpoint}_p99_seconds"] = round(
            percentile(samples, 0.99), 6
        )

    output = Path(args.output)
    output.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(
        f"steady {report['serving_rps']} req/s, cached "
        f"{report['serving_cached_rps']} req/s, hit rate "
        f"{report['cache_hit_rate']}, {http_5xx} 5xx"
    )
    print(f"wrote {output}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
