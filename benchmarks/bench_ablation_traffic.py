"""Ablations on the traffic model's mechanisms.

Each mechanism of the load model exists to reproduce one observation of
the paper; switching it off must erase exactly that observation:

* **demand dilution** — without it, the Figure 6 activation produces no
  per-link load drop;
* **skewed hashing minority** — without it, the Figure 5c imbalance tail
  collapses;
* **diurnal cycle** — without it, the Figure 5a hour-of-day bands
  flatten.
"""

from __future__ import annotations

import dataclasses
from datetime import datetime, timedelta, timezone

import numpy

from conftest import print_header

from repro.analysis.imbalance import collect_imbalances
from repro.analysis.loads import collect_load_samples, hour_of_day_bands
from repro.constants import MapName
from repro.simulation.config import default_config
from repro.simulation.network import BackboneSimulator


def _variant(**traffic_overrides) -> BackboneSimulator:
    config = default_config()
    traffic = dataclasses.replace(config.traffic, **traffic_overrides)
    return BackboneSimulator(config=dataclasses.replace(config, traffic=traffic))


def _upgrade_ratio(simulator: BackboneSimulator) -> float:
    """Mean per-link load after the activation relative to before."""
    scenario = simulator.upgrade

    def window_mean(anchor, day_range):
        values = []
        for day in day_range:
            for hour in (0, 6, 12, 18):
                when = anchor + timedelta(days=day, hours=hour)
                values.extend(
                    load[0]
                    for load in simulator.upgrade_loads(when).values()
                    if load[0] >= 2
                )
        return float(numpy.mean(values))

    before = window_mean(scenario.added_at, range(-8, 0))
    after = window_mean(scenario.activated_at, range(1, 9))
    return after / before


def test_ablation_dilution(benchmark, simulator):
    """No dilution → no Figure 6 load drop."""
    without = _variant(dilution_recovery_days=0.0)

    ratios = benchmark.pedantic(
        lambda: (_upgrade_ratio(simulator), _upgrade_ratio(without)),
        rounds=1,
        iterations=1,
    )
    with_dilution, without_dilution = ratios

    print_header("Ablation — demand dilution (the Figure 6 mechanism)")
    print(f"post/pre activation load ratio, dilution on : {with_dilution:.2f} "
          f"(capacity ratio 0.80)")
    print(f"post/pre activation load ratio, dilution off: {without_dilution:.2f}")

    assert with_dilution < 0.92  # the drop exists
    assert abs(without_dilution - 1.0) < 0.12  # and vanishes without dilution
    assert without_dilution - with_dilution > 0.08


def test_ablation_skewed_groups(benchmark):
    """No skewed minority → the imbalance tail collapses."""
    base = datetime(2022, 4, 6, tzinfo=timezone.utc)

    def tail(simulator):
        snapshots = [
            simulator.snapshot(MapName.EUROPE, base + timedelta(hours=h))
            for h in range(0, 24, 4)
        ]
        result = collect_imbalances(snapshots)
        values = numpy.asarray(result.all_values)
        heavy_tail = float(numpy.mean(values > 4.0))
        return heavy_tail, result.fraction_within(1.0)

    with_skew = BackboneSimulator()
    without_skew = _variant(skewed_group_fraction=0.0)
    (tail_with, within_with), (tail_without, within_without) = benchmark.pedantic(
        lambda: (tail(with_skew), tail(without_skew)), rounds=1, iterations=1
    )

    print_header("Ablation — persistently skewed hashing (Figure 5c's tail)")
    print(f"with skewed minority   : {tail_with * 100:.1f}% of imbalances >4 pts, "
          f"{within_with * 100:.0f}% <=1pt")
    print(f"without skewed minority: {tail_without * 100:.1f}% of imbalances >4 pts, "
          f"{within_without * 100:.0f}% <=1pt")

    # The skewed minority carries the heavy tail (a small residual tail
    # remains from dilution divergence on freshly grown groups).
    assert tail_with >= 3 * max(tail_without, 1e-6)
    assert within_without > within_with


def test_ablation_diurnal_cycle(benchmark):
    """No day cycle → flat hour-of-day medians."""
    base = datetime(2022, 4, 6, tzinfo=timezone.utc)

    def swing(simulator):
        snapshots = [
            simulator.snapshot(MapName.ASIA_PACIFIC, base + timedelta(hours=h))
            for h in range(48)
        ]
        bands = hour_of_day_bands(collect_load_samples(snapshots))
        medians = bands.bands[50.0]
        return max(medians) / max(1e-9, min(medians))

    with_cycle = BackboneSimulator()
    without_cycle = _variant(diurnal_amplitude=0.0)
    swings = benchmark.pedantic(
        lambda: (swing(with_cycle), swing(without_cycle)), rounds=1, iterations=1
    )

    print_header("Ablation — diurnal cycle (Figure 5a's shape)")
    print(f"peak/trough median ratio with cycle   : {swings[0]:.2f}")
    print(f"peak/trough median ratio without cycle: {swings[1]:.2f}")

    assert swings[0] > 1.5
    assert swings[1] < swings[0] - 0.3
