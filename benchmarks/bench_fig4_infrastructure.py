"""Figure 4 — network infrastructure of the Europe map.

* **4a** router-count evolution: +10 routers Aug-Sep 2020, −4 shortly
  after (make-before-break), −4 in June 2021, a short dip in Aug 2021;
* **4b** link evolution: external links grow gradually; internal links
  grow by steps with "an important event of increase" in Nov 2021;
* **4c** router-degree CCDF: >20 % of routers at a single link, >20 %
  above 20 links.
"""

from __future__ import annotations

from datetime import datetime, timedelta, timezone

from conftest import print_header

from repro.analysis.degrees import degree_ccdf, degree_statistics
from repro.analysis.infrastructure import infrastructure_evolution, structural_events
from repro.charts.ascii import sparkline
from repro.charts.export import series_to_csv
from repro.charts.svgchart import ChartRenderer, Series, StepSeries
from repro.constants import MapName, REFERENCE_DATE


def _utc(*args) -> datetime:
    return datetime(*args, tzinfo=timezone.utc)


def test_fig4a_router_evolution(benchmark, simulator, output_dir):
    """Figure 4a: number of OVH routers over the campaign."""

    def compute():
        return infrastructure_evolution(
            simulator, MapName.EUROPE, interval=timedelta(hours=12)
        )

    evolution = benchmark.pedantic(compute, rounds=1, iterations=1)
    routers = evolution.routers

    print_header("Figure 4a — Evolution of the number of OVH routers (Europe)")
    print(f"routers over time: {sparkline(routers.values)}")
    print(f"start {routers.values[0]:.0f} … end {routers.values[-1]:.0f}")

    events = structural_events(routers, min_delta=2.0, pairing_window=timedelta(days=45))
    for event in events:
        print(f"  {event.kind:<18} {event.start.date()} → {event.end.date()} "
              f"(net {event.delta:+.0f})")

    chart = ChartRenderer(
        title="Figure 4a — OVH routers (Europe)", x_label="epoch (s)", y_label="# routers"
    )
    xs, values = routers.as_arrays()
    chart.add_series(StepSeries(name="routers", xs=tuple(xs), ys=tuple(values)))
    chart.write(output_dir / "fig4a_routers.svg")
    series_to_csv(
        {"time": [t.isoformat() for t in routers.times], "routers": list(routers.values)},
        output_dir / "fig4a_routers.csv",
    )

    # The Aug-Sep 2020 growth of ten routers.
    growth = routers.value_at(_utc(2020, 9, 20)) - routers.value_at(_utc(2020, 7, 25))
    assert growth == 10
    # Followed by four removals (make-before-break).
    assert routers.value_at(_utc(2020, 9, 26)) - routers.value_at(_utc(2020, 10, 2)) == 4
    # Four more removed in June 2021.
    assert routers.value_at(_utc(2021, 6, 9)) - routers.value_at(_utc(2021, 6, 11)) == 4
    # The August 2021 dip recovers.
    assert routers.value_at(_utc(2021, 8, 11)) < routers.value_at(_utc(2021, 8, 8))
    assert routers.value_at(_utc(2021, 8, 20)) == routers.value_at(_utc(2021, 8, 8))
    # A make-before-break event is classified as such.
    assert any(event.kind == "make-before-break" for event in events)
    # Reference-date value matches Table 1.
    assert routers.values[-1] == 113


def test_fig4b_link_evolution(benchmark, simulator, output_dir):
    """Figure 4b: internal vs external link counts over the campaign."""

    def compute():
        return infrastructure_evolution(
            simulator, MapName.EUROPE, interval=timedelta(hours=12)
        )

    evolution = benchmark.pedantic(compute, rounds=1, iterations=1)
    internal = evolution.internal_links
    external = evolution.external_links

    print_header("Figure 4b — Evolution of the number of links (Europe)")
    print(f"internal: {sparkline(internal.values)}")
    print(f"external: {sparkline(external.values)}")
    print(
        f"internal {internal.values[0]:.0f} → {internal.values[-1]:.0f}, "
        f"external {external.values[0]:.0f} → {external.values[-1]:.0f}"
    )

    chart = ChartRenderer(
        title="Figure 4b — Links (Europe)", x_label="epoch (s)", y_label="# links"
    )
    xs, internal_values = internal.as_arrays()
    _, external_values = external.as_arrays()
    chart.add_series(StepSeries(name="internal", xs=tuple(xs), ys=tuple(internal_values)))
    chart.add_series(StepSeries(name="external", xs=tuple(xs), ys=tuple(external_values)))
    chart.write(output_dir / "fig4b_links.svg")
    series_to_csv(
        {
            "time": [t.isoformat() for t in internal.times],
            "internal": list(internal.values),
            "external": list(external.values),
        },
        output_dir / "fig4b_links.csv",
    )

    # Both categories grow over the campaign; reference values exact.
    assert internal.values[-1] == 744 and external.values[-1] == 265
    assert internal.values[0] < internal.values[-1]
    assert external.values[0] < external.values[-1]

    # Internal growth is stepwise: the largest 1-day jump carries a big
    # share of total growth, and the Nov 2021 step is the biggest.
    internal_deltas = [(when, delta) for when, delta in internal.deltas() if delta > 0]
    biggest_when, biggest_delta = max(internal_deltas, key=lambda item: item[1])
    assert (biggest_when.year, biggest_when.month) == (2021, 11)
    assert biggest_delta > 30

    # External growth is gradual: its largest *new-growth* jump is far
    # smaller.  A jump that merely restores a preceding dip (links coming
    # back with routers after the Aug 2021 maintenance) is not growth.
    deltas = external.deltas()
    new_growth = []
    for index, (when, delta) in enumerate(deltas):
        if delta <= 0:
            continue
        recent_drop = sum(
            -d
            for w, d in deltas[max(0, index - 28):index]
            if d < 0 and (when - w) <= timedelta(days=14)
        )
        new_growth.append(delta - min(delta, recent_drop))
    assert max(new_growth) <= 4


def test_fig4c_degree_ccdf(benchmark, simulator, output_dir):
    """Figure 4c: CCDF of router node degree on the reference date."""
    snapshot = simulator.snapshot(MapName.EUROPE, REFERENCE_DATE)

    def compute():
        return degree_ccdf(snapshot)

    degrees, fractions = benchmark(compute)
    stats = degree_statistics(snapshot)

    print_header("Figure 4c — CCDF of OVH router node degree (Europe)")
    print(f"routers: {stats.count}  mean degree: {stats.mean:.1f}  max: {stats.max}")
    print(f"fraction with a single link : {stats.fraction_single_link * 100:.1f}% "
          "(paper: >20%)")
    print(f"fraction with >20 links     : {stats.fraction_over_20 * 100:.1f}% "
          "(paper: >20%)")

    chart = ChartRenderer(
        title="Figure 4c — Router degree CCDF (Europe)",
        x_label="node degree",
        y_label="CCDF",
        x_log=True,
    )
    chart.add_series(
        StepSeries(name="degree CCDF", xs=tuple(degrees), ys=tuple(fractions))
    )
    chart.write(output_dir / "fig4c_degree_ccdf.svg")
    series_to_csv(
        {"degree": list(degrees), "ccdf": list(fractions)},
        output_dir / "fig4c_degree_ccdf.csv",
    )

    assert stats.fraction_single_link > 0.20
    assert stats.fraction_over_20 > 0.20
