"""Ablations on the extraction pipeline's design choices.

Three studies backing DESIGN.md §6:

* **faithful vs accelerated attribution** — the paper's quadratic
  formulation of Algorithm 2 against the grid-indexed equivalent (output
  is asserted identical; the speedup is what makes half-a-million-file
  processing practical);
* **parser throughput vs map size** — Europe-, North-America- and
  World-scale documents through the full pipeline;
* **label-distance threshold sweep** — how tolerant the attribution is to
  the paper's "few pixels" threshold choice.
"""

from __future__ import annotations

from collections import Counter

import pytest

from conftest import print_header

from repro.constants import MapName, REFERENCE_DATE
from repro.errors import MissingLabelError
from repro.layout.renderer import MapRenderer
from repro.parsing.algorithm1 import extract_objects
from repro.parsing.algorithm2 import attribute_objects
from repro.parsing.pipeline import parse_svg
from repro.svgdoc.reader import read_svg_tags


@pytest.fixture(scope="module")
def europe_svg(simulator):
    snapshot = simulator.snapshot(MapName.EUROPE, REFERENCE_DATE)
    return MapRenderer().render(snapshot)


@pytest.fixture(scope="module")
def europe_extraction(europe_svg):
    return extract_objects(read_svg_tags(europe_svg))


def _signatures(links) -> Counter:
    return Counter(
        tuple(
            sorted(
                (
                    (link.a.router.name, link.a.label.text, link.a.load),
                    (link.b.router.name, link.b.label.text, link.b.load),
                )
            )
        )
        for link in links
    )


def test_ablation_faithful_attribution(benchmark, europe_extraction):
    """The paper's exact quadratic Algorithm 2 on the Europe map."""
    result = benchmark.pedantic(
        lambda: attribute_objects(europe_extraction, accelerated=False),
        rounds=2,
        iterations=1,
    )
    assert len(result) == 1009


def test_ablation_accelerated_attribution(benchmark, europe_extraction):
    """Grid-indexed Algorithm 2: identical output, order-of-magnitude faster."""
    result = benchmark(lambda: attribute_objects(europe_extraction, accelerated=True))
    faithful = attribute_objects(europe_extraction, accelerated=False)
    assert _signatures(result) == _signatures(faithful)

    print_header("Ablation — faithful vs accelerated Algorithm 2")
    print("outputs identical on the Europe map (1,009 links); see the")
    print("benchmark table for the speedup.")


@pytest.mark.parametrize(
    "map_name", [MapName.WORLD, MapName.NORTH_AMERICA, MapName.EUROPE]
)
def test_ablation_parser_throughput_by_map_size(benchmark, simulator, map_name):
    """Full-pipeline extraction cost across map sizes."""
    snapshot = simulator.snapshot(map_name, REFERENCE_DATE)
    svg = MapRenderer().render(snapshot)
    benchmark.extra_info["links"] = len(snapshot.links)
    benchmark.extra_info["svg_kib"] = len(svg) // 1024
    parsed = benchmark(lambda: parse_svg(svg, map_name, REFERENCE_DATE))
    assert parsed.snapshot.summary_counts() == snapshot.summary_counts()


def test_ablation_label_threshold_sweep(benchmark, simulator, europe_svg):
    """Sweep the Algorithm 2 label-distance threshold.

    On well-formed maps each link end's label box *contains* the arrow
    base (attribution distance zero), so the extraction succeeds at every
    positive threshold — the paper's "few pixels" threshold is a guard
    against malformed or displaced labels, not a tuned parameter.  The
    sweep confirms that, and a displaced-label probe confirms the guard
    actually fires.
    """

    def outcome(threshold: float, svg: str) -> str:
        try:
            parse_svg(
                svg,
                MapName.EUROPE,
                REFERENCE_DATE,
                label_distance_threshold=threshold,
            )
            return "ok"
        except MissingLabelError:
            return "label-miss"

    thresholds = (0.5, 2.0, 5.0, 10.0, 20.0, 40.0, 80.0)
    results = benchmark.pedantic(
        lambda: {t: outcome(t, europe_svg) for t in thresholds},
        rounds=1,
        iterations=1,
    )

    print_header("Ablation — label-distance threshold sweep (Europe map)")
    for threshold, status in results.items():
        print(f"  threshold {threshold:>5.1f} px : {status}")

    # Every positive threshold works on a well-formed map: labels sit on
    # the arrow bases, the attribution distance is ~0.
    assert all(status == "ok" for status in results.values())

    # The guard fires on displaced labels: strip every label *box* x
    # offset by shifting one of them far away.
    import re

    displaced = re.sub(
        r'<rect class="node" x="([\d.]+)"',
        lambda m: f'<rect class="node" x="{float(m.group(1)) + 500:.2f}"',
        europe_svg,
        count=1,
    )
    assert outcome(40.0, displaced) == "label-miss"
    print("  displaced-label probe  : label-miss (guard fires)")
