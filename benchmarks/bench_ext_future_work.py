"""Extension benches — the paper's §5/§6 future-work directions.

Not tables or figures of the paper, but analyses it explicitly proposes:

* **status-feed correlation** — "OVH also reports planned maintenance
  events and the failures happening in their network ... These events
  could give insights on the purpose of some modifications";
* **per-site growth** — "future work could use router names to identify
  the spread of these variations in the network";
* **core path diversity** — "the network topology thus presents path
  diversity among the core routers";
* **cross-provider comparison** — "researchers could compare the
  collected data [with Scaleway's netmap] to understand the differences
  that could exist between the two networks".
"""

from __future__ import annotations

from datetime import datetime, timedelta, timezone

import numpy

from conftest import print_header

from repro.analysis.diversity import core_path_diversity
from repro.analysis.infrastructure import infrastructure_evolution, structural_events
from repro.analysis.loads import collect_load_samples
from repro.analysis.sites import fastest_growing_sites
from repro.constants import MapName, REFERENCE_DATE
from repro.simulation import BackboneSimulator, scaleway_like_config
from repro.simulation.events import UpgradeScenario
from repro.statusfeed.correlate import correlate_events
from repro.statusfeed.feed import SyntheticStatusFeed


def test_ext_status_correlation(benchmark, simulator):
    """Every scripted map change is explained by a status entry."""
    feed = SyntheticStatusFeed(simulator)
    evolution = infrastructure_evolution(
        simulator, MapName.EUROPE, interval=timedelta(hours=12)
    )
    changes = structural_events(
        evolution.routers, min_delta=2.0, pairing_window=timedelta(days=45)
    )

    report = benchmark(lambda: correlate_events(changes, feed))

    print_header("Extension — status-feed correlation (Europe)")
    print(f"status entries: {len(feed.events())} "
          f"({len(feed.structural_events())} structural, rest routine noise)")
    print(f"map changes: {report.total}, explained: "
          f"{report.explained_fraction * 100:.0f}%")

    assert report.total >= 5
    assert report.explained_fraction == 1.0
    # Noise never explains anything: matches exclude routine notices.
    from repro.statusfeed.model import EventKind

    for item in report.explained:
        assert all(m.kind is not EventKind.ROUTINE_NOTICE for m in item.matches)


def test_ext_site_growth(benchmark, simulator):
    """Rank sites by growth between campaign start and reference date."""
    first = simulator.snapshot(MapName.EUROPE, simulator.config.window_start)
    last = simulator.snapshot(MapName.EUROPE, REFERENCE_DATE)

    top = benchmark(lambda: fastest_growing_sites([first, last], top=5))

    print_header("Extension — fastest-growing sites (Europe)")
    print(f"{'site':<8} {'Δrouters':>9} {'Δlink-ends':>11}")
    for item in top:
        print(f"{item.site:<8} {item.router_delta:>+9} {item.link_delta:>+11}")

    assert len(top) == 5
    assert top[0].link_delta > 0
    # Growth is uneven across sites — the question the paper raises: the
    # busiest site grows far faster than the typical one.
    from repro.analysis.sites import site_growth
    import statistics

    all_sites = site_growth(first, last)
    deltas = sorted(item.link_delta for item in all_sites)
    median_growth = statistics.median(deltas)
    slowest = deltas[0]
    print(f"median site growth {median_growth:+.0f}, slowest {slowest:+.0f}")
    assert top[0].link_delta > 1.5 * max(1.0, median_growth)
    assert top[0].link_delta > 3 * max(1.0, slowest)


def test_ext_core_path_diversity(benchmark, simulator):
    """Edge-disjoint paths between heavily connected core routers."""
    snapshot = simulator.snapshot(MapName.EUROPE, REFERENCE_DATE)

    report = benchmark.pedantic(
        lambda: core_path_diversity(snapshot, max_pairs=25), rounds=1, iterations=1
    )

    print_header("Extension — path diversity among core routers (Europe)")
    print(f"pairs sampled          : {report.pairs_sampled}")
    print(f"edge-disjoint paths    : mean {report.mean_disjoint_paths:.1f}, "
          f"min {report.min_disjoint_paths}, max {report.max_disjoint_paths}")
    print(f"pairs with >=2 paths   : {report.fraction_multipath * 100:.0f}%")

    assert report.fraction_multipath == 1.0
    assert report.mean_disjoint_paths > 5


def test_ext_provider_comparison(benchmark, simulator):
    """OVH-Europe vs a Scaleway-like backbone on identical analyses."""
    scaleway = BackboneSimulator(
        config=scaleway_like_config(),
        upgrade=UpgradeScenario(map_name=MapName.WORLD),
    )
    base = datetime(2022, 6, 13, tzinfo=timezone.utc)

    def contrast():
        ovh_day = [
            simulator.snapshot(MapName.EUROPE, base + timedelta(hours=h))
            for h in range(0, 24, 3)
        ]
        scw_day = [
            scaleway.snapshot(MapName.EUROPE, base + timedelta(hours=h))
            for h in range(0, 24, 3)
        ]
        return collect_load_samples(ovh_day), collect_load_samples(scw_day)

    ovh_loads, scw_loads = benchmark.pedantic(contrast, rounds=1, iterations=1)

    ovh_counts = simulator.counts(MapName.EUROPE, base)
    scw_counts = scaleway.counts(MapName.EUROPE, base)
    print_header("Extension — cross-provider comparison")
    print(f"{'':<22} {'OVH Europe':>12} {'Scaleway-like':>14}")
    print(f"{'routers':<22} {ovh_counts[0]:>12} {scw_counts[0]:>14}")
    print(f"{'links':<22} {ovh_counts[1] + ovh_counts[2]:>12} "
          f"{scw_counts[1] + scw_counts[2]:>14}")
    print(f"{'median load (%)':<22} {numpy.median(ovh_loads.all_loads):>12.0f} "
          f"{numpy.median(scw_loads.all_loads):>14.0f}")

    # The smaller provider runs a hotter network.
    assert scw_counts[0] < ovh_counts[0] / 2
    assert numpy.median(scw_loads.all_loads) > numpy.median(ovh_loads.all_loads)
