"""Figure 3 — distribution of time distance between consecutive snapshots.

Replays two months of collection at the real five-minute cadence per map
and builds the inter-snapshot-distance CDF.  Shape checks from the paper:

* "For the Europe map, more than 99.8 % of the snapshots are available at
  the highest resolution of five minutes";
* "for the three other maps, the resolution can be coarser less than 10 %
  of the time but in a very large amount of cases the gap is not larger
  than ten minutes, corresponding to one missing snapshot";
* after the May 2022 collector fix, the other maps gap less.
"""

from __future__ import annotations

from datetime import datetime, timedelta, timezone

import numpy

from conftest import print_header

from repro.analysis.collection import inter_snapshot_distances
from repro.analysis.stats import cdf, fraction_at_most
from repro.charts.export import series_to_csv
from repro.charts.svgchart import ChartRenderer, StepSeries
from repro.constants import COLLECTION_FIX_DATE, MapName
from repro.dataset.gaps import AvailabilityModel

WINDOW_START = datetime(2022, 1, 10, tzinfo=timezone.utc)
WINDOW = timedelta(days=60)


_distances = inter_snapshot_distances


def test_fig3_snapshot_distances(benchmark, simulator, output_dir):
    """Regenerate the Figure 3 distance CDFs for all four maps."""
    availability = AvailabilityModel(seed=simulator.config.seed)

    def collect_distances():
        result = {}
        for map_name in simulator.map_names:
            ticks = availability.ticks(
                map_name, WINDOW_START, WINDOW_START + WINDOW
            )
            result[map_name] = _distances(ticks)
        return result

    distances = benchmark.pedantic(collect_distances, rounds=1, iterations=1)

    chart = ChartRenderer(
        title="Figure 3 — Distance between consecutive snapshots",
        x_label="Distance (sec.)",
        y_label="CDF",
        x_log=True,
    )
    csv_columns: dict[str, list] = {}
    print_header("Figure 3 — Inter-snapshot distance distribution (60 days)")
    print(f"{'map':<15} {'<=5 min':>9} {'<=10 min':>9} {'max gap':>12}")
    for map_name, values in distances.items():
        at_5min = fraction_at_most(values, 301)
        at_10min = fraction_at_most(values, 601)
        print(
            f"{map_name.value:<15} {at_5min * 100:>8.2f}% {at_10min * 100:>8.2f}% "
            f"{values.max():>10.0f} s"
        )
        xs, fractions = cdf(values)
        chart.add_series(
            StepSeries(name=map_name.title, xs=tuple(xs), ys=tuple(fractions))
        )
        csv_columns[f"{map_name.value}_seconds"] = list(xs)
        csv_columns[f"{map_name.value}_cdf"] = list(fractions)
    chart.write(output_dir / "fig3_snapshot_distance.svg")
    series_to_csv(csv_columns, output_dir / "fig3_snapshot_distance.csv")

    # Europe: >99.8 % at the 5-minute resolution.
    assert fraction_at_most(distances[MapName.EUROPE], 301) > 0.998

    for map_name in (MapName.WORLD, MapName.NORTH_AMERICA, MapName.ASIA_PACIFIC):
        values = distances[map_name]
        # Coarser than 5 minutes less than 10 % of the time...
        assert fraction_at_most(values, 301) > 0.90
        # ...and mostly a single missing snapshot (<= 10 minutes).
        assert fraction_at_most(values, 601) > 0.985

    # The May 2022 fix reduces short gaps on the non-Europe maps.
    def five_minute_fraction(map_name, start):
        ticks = availability.ticks(map_name, start, start + timedelta(days=21))
        return fraction_at_most(_distances(ticks), 301)

    before = five_minute_fraction(
        MapName.NORTH_AMERICA, COLLECTION_FIX_DATE - timedelta(days=24)
    )
    after = five_minute_fraction(
        MapName.NORTH_AMERICA, COLLECTION_FIX_DATE + timedelta(days=3)
    )
    print(f"\nNorth America at 5-min resolution: {before * 100:.2f}% before fix, "
          f"{after * 100:.2f}% after (May 2022 collector fix)")
    assert after > before
