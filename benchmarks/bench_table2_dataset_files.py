"""Table 2 — collected and processed files per map.

The paper's Table 2 accounts 542,049 SVGs (227.93 GiB) collected over 26
months and 541,819 processed YAMLs (28.46 GiB), with "less than a hundred
files per map unprocessed".  We replay the same workflow at 1/~10,000
scale: a one-hour collection campaign over all four maps at the full
five-minute cadence, with the corruption injector dialled up so the
unprocessed column is non-empty at this scale.

Shape checks:

* per-map SVG counts follow the availability model (Europe complete,
  the others may drop ticks);
* every uncorrupted SVG processes to a YAML;
* corrupted files are counted as unprocessed, never fatal;
* YAMLs are several times smaller than SVGs (paper: ~8.0x overall);
* per-map size ordering matches the paper (Europe largest, World
  smallest per file).
"""

from __future__ import annotations

from datetime import timedelta

from conftest import print_header

from repro.constants import MapName, REFERENCE_DATE, TABLE2_PAPER, TABLE2_PAPER_TOTAL
from repro.dataset.collector import SimulatedCollector
from repro.dataset.corruption import CorruptionInjector
from repro.dataset.processor import process_map
from repro.dataset.store import DatasetStore
from repro.dataset.summary import build_table2, format_table2

#: One hour of collection at the 5-minute cadence (12 ticks per map).
WINDOW = timedelta(hours=1)


def test_table2_collection_and_processing(benchmark, simulator, tmp_path_factory):
    """Collect, corrupt, process, tabulate — the Table 2 workflow."""
    root = tmp_path_factory.mktemp("table2")
    store = DatasetStore(root)
    collector = SimulatedCollector(
        simulator,
        store,
        corruption=CorruptionInjector(seed=simulator.config.seed, rate=0.04),
    )
    start = REFERENCE_DATE - WINDOW
    collect_stats = collector.collect(start, REFERENCE_DATE)

    def process_all():
        return {
            map_name: process_map(store, map_name, overwrite=True)
            for map_name in simulator.map_names
        }

    processing = benchmark.pedantic(process_all, rounds=1, iterations=1)
    rows = build_table2(store, processing)

    print_header("Table 2 — Collected and processed files (scaled: 1 hour)")
    print("measured:")
    print(format_table2(rows))
    print()
    print("paper (26 months):")
    for map_name, (svgs, svg_gib, yamls, yaml_gib) in TABLE2_PAPER.items():
        print(
            f"{map_name.title:<15} {svgs:>10,} {svg_gib:>10.2f} "
            f"{yamls:>10,} {yaml_gib:>10.2f} {svgs - yamls:>8,}"
        )
    total = TABLE2_PAPER_TOTAL
    print(
        f"{'Total':<15} {total[0]:>10,} {total[1]:>10.2f} "
        f"{total[2]:>10,} {total[3]:>10.2f} {total[0] - total[2]:>8,}"
    )

    by_map = {row.map_name: row for row in rows if row.map_name is not None}

    # Every map collected something; Europe collected (nearly) every tick.
    expected_ticks = int(WINDOW / timedelta(minutes=5))
    assert by_map[MapName.EUROPE].svg_files >= expected_ticks - 1
    for map_name in simulator.map_names:
        assert by_map[map_name].svg_files > 0

    # Unprocessed files are exactly the corrupted ones.
    for map_name in simulator.map_names:
        assert by_map[map_name].unprocessed == collect_stats.corrupted[map_name]
        assert (
            processing[map_name].unprocessed == collect_stats.corrupted[map_name]
        )

    # YAML compression factor in the paper's ballpark (~8x overall).
    total_row = rows[-1]
    assert 3.0 < total_row.compression_factor < 20.0

    # Per-file size ordering matches the paper: Europe SVGs are the
    # largest, World SVGs the smallest.
    per_file = {
        map_name: by_map[map_name].svg_bytes / by_map[map_name].svg_files
        for map_name in simulator.map_names
    }
    assert per_file[MapName.EUROPE] == max(per_file.values())
    assert per_file[MapName.WORLD] == min(per_file.values())
