#!/usr/bin/env python3
"""Guard the throughput trajectory: fail on benchmark regressions.

Compares a freshly produced benchmark report against the committed
baseline (``BENCH_throughput.json`` at the repo root; pass
``--baseline BENCH_ingest.json`` for the ingestion benchmark, or
``--baseline BENCH_serving.json`` for the HTTP read API).  Every
``*_fps`` and ``*_rps`` key present in both documents is checked —
including the zero-copy query engine's ``scan_series_fps``, the
ingestion daemon's ``ingest_sustained_fps``, and the serving layer's
``serving_cached_rps`` — and any throughput drop beyond the tolerance
fails the run.  Every ``*_seconds`` key present in both documents is
checked the other way around (lower is better): ``recovery_seconds`` or
``compact_incremental_seconds`` *growing* beyond the tolerance fails.
Keys only present on one side are reported but never fatal (benchmarks
grow new measurements over time).

A fresh report carrying ``"single_core_host": true`` marks its parallel
and telemetry-overhead numbers as noise (on one core the "parallel" runs
are serial reruns): the ``*_parallel_fps`` keys are skipped in the
comparison and the telemetry-overhead ceiling is not enforced.

Absolute numbers depend on the machine, so this is a *relative* guard
meant for comparing two runs on the same host — e.g. the quick-mode run
inside ``scripts/reproduce_all.sh`` against the repository baseline::

    python3 scripts/check_bench_regression.py fresh.json \
        [--baseline BENCH_throughput.json] [--tolerance 0.20] \
        [--max-telemetry-overhead 5.0]

The fresh report's ``telemetry_overhead_pct`` (the benchmark's
with/without-sink comparison) is additionally checked as an *absolute*
ceiling: the telemetry subsystem promises <=2% overhead, and the guard
fails at 5% to leave room for benchmark noise.  A fresh report without
the key (older benchmark) skips the check.

Exit status: 0 when no throughput or duration key regressed beyond the tolerance and
the telemetry overhead is under its ceiling, 1 otherwise (or when either
document cannot be read).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
DEFAULT_BASELINE = REPO_ROOT / "BENCH_throughput.json"


def load_report(path: Path) -> dict:
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise SystemExit(f"cannot read benchmark report {path}: {exc}")
    if not isinstance(document, dict):
        raise SystemExit(f"benchmark report {path} is not a JSON object")
    return document


def throughput_keys(report: dict) -> dict[str, float]:
    """Higher-is-better measurements: numeric ``*_fps`` / ``*_rps`` entries."""
    return {
        key: float(value)
        for key, value in report.items()
        if key.endswith(("_fps", "_rps")) and isinstance(value, (int, float))
    }


def duration_keys(report: dict) -> dict[str, float]:
    """The lower-is-better measurements: every numeric ``*_seconds`` entry."""
    return {
        key: float(value)
        for key, value in report.items()
        if key.endswith("_seconds") and isinstance(value, (int, float))
    }


def comparable_keys(report: dict) -> set[str]:
    return throughput_keys(report).keys() | duration_keys(report).keys()


def compare(
    baseline: dict, fresh: dict, tolerance: float
) -> list[tuple[str, float, float, float]]:
    """Regressed keys as ``(key, baseline, fresh, change_ratio)``.

    ``change_ratio`` is the relative move in the *bad* direction: a
    throughput drop for ``*_fps`` keys, a duration increase for
    ``*_seconds`` keys.
    """
    base_fps, new_fps = throughput_keys(baseline), throughput_keys(fresh)
    base_sec, new_sec = duration_keys(baseline), duration_keys(fresh)
    regressions = []
    for key in sorted(base_fps.keys() & new_fps.keys()):
        if fresh.get("single_core_host") and key.endswith("_parallel_fps"):
            print(f"note: {key} skipped (single_core_host: parallel "
                  f"numbers are noise on one core)")
            continue
        before, after = base_fps[key], new_fps[key]
        if before <= 0:
            continue
        drop = 1.0 - after / before
        if drop > tolerance:
            regressions.append((key, before, after, drop))
    for key in sorted(base_sec.keys() & new_sec.keys()):
        before, after = base_sec[key], new_sec[key]
        if before <= 0:
            continue
        growth = after / before - 1.0
        if growth > tolerance:
            regressions.append((key, before, after, growth))
    for key in sorted(comparable_keys(baseline) ^ comparable_keys(fresh)):
        side = "baseline" if key in comparable_keys(baseline) else "fresh report"
        print(f"note: {key} only present in the {side}; skipped")
    return regressions


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("fresh", type=Path, help="freshly produced report")
    parser.add_argument(
        "--baseline",
        type=Path,
        default=DEFAULT_BASELINE,
        help="committed reference report (default: repo BENCH_throughput.json)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.20,
        help="maximum allowed relative throughput drop (default: 0.20)",
    )
    parser.add_argument(
        "--max-telemetry-overhead",
        type=float,
        default=5.0,
        help="maximum allowed telemetry_overhead_pct in the fresh report "
        "(absolute percent; default: 5.0)",
    )
    args = parser.parse_args(argv)

    baseline = load_report(args.baseline)
    fresh = load_report(args.fresh)
    regressions = compare(baseline, fresh, args.tolerance)

    failed = False
    checked = len(comparable_keys(baseline) & comparable_keys(fresh))
    if regressions:
        failed = True
        print(
            f"FAIL: {len(regressions)}/{checked} benchmark keys regressed "
            f"more than {args.tolerance:.0%}:"
        )
        for key, before, after, change in regressions:
            print(f"  {key:<28} {before:>9.2f} -> {after:>9.2f}  ({change:+.0%})")
    else:
        print(f"OK: {checked} benchmark keys within {args.tolerance:.0%} of baseline")

    overhead = fresh.get("telemetry_overhead_pct")
    if fresh.get("single_core_host"):
        print("note: telemetry overhead ceiling skipped "
              "(single_core_host: the with/without-sink delta is noise)")
    elif isinstance(overhead, (int, float)):
        if overhead > args.max_telemetry_overhead:
            failed = True
            print(
                f"FAIL: telemetry overhead {overhead:.2f}% exceeds the "
                f"{args.max_telemetry_overhead:.1f}% ceiling"
            )
        else:
            print(
                f"OK: telemetry overhead {overhead:.2f}% within the "
                f"{args.max_telemetry_overhead:.1f}% ceiling"
            )
    else:
        print("note: fresh report has no telemetry_overhead_pct; skipped")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
