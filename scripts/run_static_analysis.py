#!/usr/bin/env python3
"""Aggregate static-analysis gate: invariant linter + ruff + mypy + budget.

Drives every static check the repository defines, in order:

1. the project-native invariant linter (``repro-weather check``,
   rules REP001–REP012) — always available, always fatal on findings,
   with per-rule finding counts printed for the concurrency pack;
2. the ``# type: ignore`` budget — the count under ``src/repro`` may
   only decrease; the ceiling lives in ``pyproject.toml`` under
   ``[tool.repro.devtools] type-ignore-budget``;
3. ``ruff check`` and 4. ``mypy`` on the strict-listed packages — run
   when the tools are installed (``pip install -e .[lint]``), skipped
   with a notice otherwise so the gate works on minimal containers.

Exit status: non-zero if any check that *ran* failed.  Wired into
``scripts/reproduce_all.sh`` ahead of the test suite.
"""

from __future__ import annotations

import argparse
import io
import os
import shutil
import subprocess
import sys
import tokenize
import tomllib
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"

#: Packages mypy must pass in strict mode (grown over time; never shrunk).
MYPY_STRICT_TARGETS = (
    "repro.geometry",
    "repro.telemetry",
    "repro.parsing",
    "repro.dataset.workers",
    "repro.dataset.query",
    "repro.devtools.concurrency",
    "repro.devtools.sanitizer",
)


def _heading(title: str) -> None:
    print(f"-- {title}")


def run_invariant_linter(json_path: str | None = None) -> bool:
    """The project's own rule pack; fatal on any finding."""
    sys.path.insert(0, str(SRC))
    try:
        from repro.devtools import (
            default_config,
            render_human,
            render_json,
            run_checks,
        )

        result = run_checks(default_config(root=REPO_ROOT))
    except Exception as exc:  # pragma: no cover - defensive surface
        print(f"invariant linter failed to run: {exc}", file=sys.stderr)
        return False
    print(render_human(result))
    counts: dict[str, int] = {}
    for finding in result.findings:
        counts[finding.rule] = counts.get(finding.rule, 0) + 1
    if counts:
        per_rule = ", ".join(
            f"{rule}={count}" for rule, count in sorted(counts.items())
        )
        print(f"findings by rule: {per_rule}")
    if json_path is not None:
        Path(json_path).write_text(render_json(result) + "\n", encoding="utf-8")
        print(f"json report written to {json_path}")
    return result.ok


def type_ignore_budget() -> int:
    """The committed ceiling from pyproject.toml (default 0)."""
    pyproject = tomllib.loads(
        (REPO_ROOT / "pyproject.toml").read_text(encoding="utf-8")
    )
    return int(
        pyproject.get("tool", {})
        .get("repro", {})
        .get("devtools", {})
        .get("type-ignore-budget", 0)
    )


def run_type_ignore_budget() -> bool:
    """Count ``# type: ignore`` comments; the budget may only decrease."""
    budget = type_ignore_budget()
    occurrences = []
    for path in sorted((SRC / "repro").rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        text = path.read_text(encoding="utf-8")
        # Tokenize so a "# type: ignore" quoted in a docstring is inert.
        for token in tokenize.generate_tokens(io.StringIO(text).readline):
            if token.type == tokenize.COMMENT and "type: ignore" in token.string:
                occurrences.append(
                    f"{path.relative_to(REPO_ROOT)}:{token.start[0]}"
                )
    count = len(occurrences)
    print(f"# type: ignore count: {count} (budget {budget})")
    if count > budget:
        print(
            "type-ignore budget exceeded — remove ignores or justify a "
            "budget increase in review:",
            file=sys.stderr,
        )
        for item in occurrences:
            print(f"  {item}", file=sys.stderr)
        return False
    if count < budget:
        print(
            f"note: budget can ratchet down to {count} in "
            f"[tool.repro.devtools] type-ignore-budget"
        )
    return True


def run_ruff() -> bool | None:
    """``ruff check`` with the pyproject config; ``None`` = not installed."""
    if shutil.which("ruff") is None:
        return None
    completed = subprocess.run(
        ["ruff", "check", "src", "scripts", "benchmarks", "tests"],
        cwd=REPO_ROOT,
    )
    return completed.returncode == 0


def run_mypy() -> bool | None:
    """mypy over the strict-listed packages; ``None`` = not installed."""
    if shutil.which("mypy") is None:
        return None
    packages: list[str] = []
    for target in MYPY_STRICT_TARGETS:
        packages.extend(["-p", target])
    completed = subprocess.run(
        ["mypy", *packages],
        cwd=REPO_ROOT,
        env={**os.environ, "MYPYPATH": str(SRC)},
    )
    return completed.returncode == 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--skip-external",
        action="store_true",
        help="run only the project-native checks (linter + budget), "
        "never ruff/mypy",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write the linter's machine-readable report "
        "(schema v2, with per-rule counts) to PATH",
    )
    args = parser.parse_args(argv)

    failed: list[str] = []
    _heading("invariant linter (repro-weather check)")
    if not run_invariant_linter(args.json):
        failed.append("invariant linter")
    _heading("type-ignore budget")
    if not run_type_ignore_budget():
        failed.append("type-ignore budget")
    if not args.skip_external:
        for name, runner in (("ruff", run_ruff), ("mypy", run_mypy)):
            _heading(name)
            outcome = runner()
            if outcome is None:
                print(f"{name}: not installed — skipped "
                      f"(pip install -e .[lint] to enable)")
            elif not outcome:
                failed.append(name)
    if failed:
        print(f"static analysis FAILED: {', '.join(failed)}", file=sys.stderr)
        return 1
    print("static analysis OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
