#!/usr/bin/env bash
# Reproduce the whole paper in one command.
#
#   scripts/reproduce_all.sh [ARTIFACT_DIR]
#
# Runs the test suite, regenerates every table and figure through the
# benchmark harness (console comparisons + SVG charts + CSV series), and
# builds a small demonstration dataset with its validation report and
# markdown summary under ARTIFACT_DIR (default: ./artifacts).

set -euo pipefail

ARTIFACTS="${1:-artifacts}"
mkdir -p "$ARTIFACTS"

echo "== 0/4 static analysis (invariant linter + ruff/mypy when installed) =="
python3 scripts/run_static_analysis.py

echo "== 1/4 test suite =="
python3 -m pytest tests/ -q

echo "== 1b/4 concurrency suites under the lock sanitizer =="
# The same server/feed/ingest tests, re-run with every repro-package
# lock instrumented: the run fails on any lock-order inversion or
# same-lock re-entry observed at runtime.  The overhead line is
# informational — see docs/static-analysis.md for the measured numbers.
python3 -m pytest tests/test_server.py tests/test_server_feed.py \
    tests/test_server_asgi.py tests/test_dataset_ingest.py \
    -q --repro-tsan
python3 - <<'PY'
from repro.devtools.sanitizer import measure_overhead

numbers = measure_overhead(iterations=20_000)
print(
    "sanitizer overhead (informational): "
    f"raw {numbers['raw_ns_per_pair']:.0f} ns/acquire-release, "
    f"instrumented {numbers['instrumented_ns_per_pair']:.0f} ns "
    f"({numbers['overhead_x']:.1f}x)"
)
PY

echo "== 2/4 tables and figures (benchmark harness) =="
python3 -m pytest benchmarks/ --benchmark-only -q -s | tee "$ARTIFACTS/benchmarks.txt"
cp -r benchmarks/output "$ARTIFACTS/figures" 2>/dev/null || true

echo "== 2b/4 bulk-processing throughput (quick mode) =="
# Write the fresh report next to the other artefacts first so the
# committed baseline survives for the regression comparison below.
python3 benchmarks/bench_throughput_processing.py --quick \
    --output "$ARTIFACTS/BENCH_throughput.json" \
    | tee "$ARTIFACTS/throughput.txt"
# Quick mode measures a 120-file corpus against the 520-file committed
# baseline and shares the host with whatever else runs here, so allow
# wide variance; the default 20% tolerance is for like-for-like runs.
# The telemetry with/without-sink overhead from the fresh report is an
# absolute ceiling (subsystem budget 2%, guard at 5% for noise).
python3 scripts/check_bench_regression.py "$ARTIFACTS/BENCH_throughput.json" \
    --tolerance 0.5 --max-telemetry-overhead 5.0

echo "== 2c/4 ingestion daemon smoke (quick mode: kill, resume, compact) =="
# A 540-file corpus against the 100k-file committed baseline: the quick
# run pays two interpreter startups over ~20 s of work, so its sustained
# number sits well below the amortised full-scale one — hence the wider
# tolerance.  The lower-is-better *_seconds keys shrink with corpus size
# and can only pass; they gate like-for-like full runs.
python3 benchmarks/bench_ingest.py --quick \
    --output "$ARTIFACTS/BENCH_ingest.json" \
    | tee "$ARTIFACTS/ingest.txt"
python3 scripts/check_bench_regression.py "$ARTIFACTS/BENCH_ingest.json" \
    --baseline BENCH_ingest.json --tolerance 0.6

echo "== 2d/4 HTTP read API (quick mode: cache, hot-swap, throughput) =="
# An 18-snapshot corpus against the 168-snapshot committed baseline; the
# rate keys (serving_rps, serving_cached_rps) are per-second and roughly
# comparable across corpus sizes — the wide tolerance absorbs the rest.
# Quick mode prefixes its latency-percentile keys (bimodal small-sample
# tails), so the gate notes them without comparing to the full baseline.
python3 benchmarks/bench_serving.py --quick \
    --output "$ARTIFACTS/BENCH_serving.json" \
    | tee "$ARTIFACTS/serving.txt"
python3 scripts/check_bench_regression.py "$ARTIFACTS/BENCH_serving.json" \
    --baseline BENCH_serving.json --tolerance 0.75

echo "== 3/4 demonstration dataset (1 hour, all four maps) =="
DATASET="$ARTIFACTS/dataset"
repro-weather generate "$DATASET" \
    --start 2022-09-11T23:00:00 --end 2022-09-12T00:00:00
repro-weather process "$DATASET" --metrics-out "$ARTIFACTS/metrics.json"
repro-weather metrics "$ARTIFACTS/metrics.json" --format prom \
    --output "$ARTIFACTS/metrics.prom"
repro-weather validate "$DATASET" --cross-check 0.5
repro-weather tables "$DATASET" | tee "$ARTIFACTS/tables.txt"

echo "== 4/4 report bundle =="
repro-weather report "$DATASET" --output "$ARTIFACTS/report"
repro-weather upgrade | tee "$ARTIFACTS/figure6.txt"
repro-weather changelog --map europe \
    --start 2022-02-20T00:00:00 --end 2022-04-10T00:00:00 \
    | tee "$ARTIFACTS/changelog.txt"

echo
echo "done — artefacts in $ARTIFACTS/"
