"""Unit tests for the structural evolution generator."""

from datetime import timedelta

import pytest

from repro.constants import COLLECTION_START, MapName, REFERENCE_DATE
from repro.simulation.evolution import FOREVER, RouterRole


@pytest.fixture(scope="module")
def europe(simulator):
    return simulator.evolution(MapName.EUROPE)


@pytest.fixture(scope="module")
def world(simulator):
    return simulator.evolution(MapName.WORLD)


class TestRouterRoster:
    def test_reference_roster_size(self, europe):
        alive = europe.alive_routers_at(REFERENCE_DATE)
        assert len(alive) == 113

    def test_roles_partition(self, europe):
        roles = {spec.role for spec in europe.routers}
        assert roles == {RouterRole.CORE, RouterRole.EDGE, RouterRole.STUB}

    def test_stub_fraction(self, europe):
        stubs = [s for s in europe.routers if s.role == RouterRole.STUB]
        assert 0.20 <= len(stubs) / len(europe.routers) <= 0.30

    def test_extra_routers_die_before_reference(self, europe):
        assert europe.extra_routers
        for spec in europe.extra_routers:
            assert spec.lifetime.death < REFERENCE_DATE

    def test_names_unique(self, europe):
        names = [spec.name for spec in europe.all_routers]
        assert len(names) == len(set(names))

    def test_borrowed_always_alive(self, world):
        for spec in world.routers:
            assert spec.borrowed
            assert spec.lifetime.birth == COLLECTION_START
            assert spec.lifetime.death == FOREVER


class TestLinkSpecs:
    def test_stub_groups_are_singletons(self, europe):
        stub_names = {s.name for s in europe.routers if s.role == RouterRole.STUB}
        for group in europe.groups:
            if group.a in stub_names or group.b in stub_names:
                assert group.size == 1

    def test_link_births_never_precede_endpoints(self, europe):
        lifetimes = {spec.name: spec.lifetime for spec in europe.all_routers}
        for peering in europe.peerings:
            lifetimes[peering.name] = peering.lifetime
        for group in europe.groups:
            floor = max(lifetimes[group.a].birth, lifetimes[group.b].birth)
            for link in group.links:
                assert link.lifetime.birth >= floor

    def test_every_internal_group_has_a_founding_link(self, europe):
        """Each internal group's first link is born with its endpoints, so
        no router is ever present but linkless (external groups attach to
        core/edge routers that already carry internal links)."""
        lifetimes = {spec.name: spec.lifetime for spec in europe.all_routers}
        for group in europe.groups:
            if group.shared or group.external:
                continue
            floor = max(lifetimes[group.a].birth, lifetimes[group.b].birth)
            assert min(link.lifetime.birth for link in group.links) == floor

    def test_duplicate_label_groups_exist(self, europe):
        duplicated = [
            group
            for group in europe.groups
            if group.size > 1
            and len({link.label_a for link in group.links}) == 1
        ]
        assert duplicated  # the VODAFONE case from Figure 1

    def test_most_groups_have_sequential_labels(self, europe):
        sequential = [
            group
            for group in europe.groups
            if group.size > 1
            and [link.label_a for link in group.links]
            == [f"#{i + 1}" for i in range(group.size)]
        ]
        multi = [g for g in europe.groups if g.size > 1]
        assert len(sequential) > 0.7 * len(multi)

    def test_link_ids_unique(self, europe):
        ids = [link.link_id for link in europe.all_links]
        assert len(ids) == len(set(ids))


class TestSharedBundles:
    def test_lent_bundle_contents(self, simulator):
        europe = simulator.evolution(MapName.EUROPE)
        bundle = europe.lent_bundle(MapName.WORLD)
        assert len(bundle.routers) == 7
        assert bundle.link_count == 40
        assert all(group.shared for group in bundle.groups)

    def test_unknown_borrower_raises(self, simulator):
        from repro.errors import SimulationError

        europe = simulator.evolution(MapName.EUROPE)
        with pytest.raises(SimulationError):
            europe.lent_bundle(MapName.EUROPE)

    def test_world_mirrors_everything(self, world):
        assert all(group.shared for group in world.groups)
        assert sum(group.size for group in world.groups) == 76

    def test_shared_groups_always_alive(self, simulator):
        europe = simulator.evolution(MapName.EUROPE)
        for bundle_target in (MapName.WORLD, MapName.NORTH_AMERICA, MapName.ASIA_PACIFIC):
            bundle = europe.lent_bundle(bundle_target)
            for group in bundle.groups:
                for link in group.links:
                    assert link.lifetime.birth == COLLECTION_START
                    assert link.lifetime.death == FOREVER

    def test_no_fresh_links_between_borrowed_pairs(self, simulator):
        north_america = simulator.evolution(MapName.NORTH_AMERICA)
        borrowed = {name for name, _ in north_america._borrowed}
        for group in north_america.groups:
            if group.a in borrowed and group.b in borrowed:
                assert group.shared


class TestCounters:
    def test_counts_match_materialisation(self, simulator):
        europe = simulator.evolution(MapName.EUROPE)
        for days in (0, 100, 400, 790):
            when = COLLECTION_START + timedelta(days=days)
            if when > REFERENCE_DATE:
                break
            fast_internal, fast_external = europe.link_counts_at(when)
            alive = europe.alive_links_at(when)
            assert fast_internal == sum(1 for l in alive if not l.external)
            assert fast_external == sum(1 for l in alive if l.external)
            assert europe.router_count_at(when) == len(europe.alive_routers_at(when))

    def test_upgrade_group_registered(self, europe, simulator):
        assert europe.upgrade_group_id is not None
        group = europe.group_lookup()[europe.upgrade_group_id]
        assert group.b == simulator.upgrade.peering
        assert group.size == simulator.upgrade.links_after
