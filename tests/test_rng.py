"""Unit tests for stable seed derivation."""

from datetime import datetime, timezone

from repro.rng import stable_seed, stable_uniform, substream


class TestStableSeed:
    def test_deterministic(self):
        assert stable_seed("a", 1) == stable_seed("a", 1)

    def test_namespaces_differ(self):
        assert stable_seed("a", 1) != stable_seed("b", 1)

    def test_part_order_matters(self):
        assert stable_seed("a", "b") != stable_seed("b", "a")

    def test_datetime_parts(self):
        when = datetime(2022, 3, 5, tzinfo=timezone.utc)
        assert stable_seed("x", when) == stable_seed("x", when)

    def test_no_prefix_collision(self):
        # ("ab", "c") must differ from ("a", "bc") — the separator works.
        assert stable_seed("ab", "c") != stable_seed("a", "bc")

    def test_64_bit_range(self):
        assert 0 <= stable_seed("anything") < 2**64


class TestSubstream:
    def test_substreams_independent(self):
        a = substream("stream-a").random()
        b = substream("stream-b").random()
        assert a != b

    def test_substream_reproducible(self):
        first = substream("s", 42).random()
        second = substream("s", 42).random()
        assert first == second

    def test_uniform_in_unit_interval(self):
        for index in range(100):
            value = stable_uniform("u", index)
            assert 0 <= value < 1

    def test_uniform_spread(self):
        values = [stable_uniform("spread", i) for i in range(200)]
        assert 0.4 < sum(values) / len(values) < 0.6
