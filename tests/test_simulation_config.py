"""Unit tests for simulation configuration validation."""

from datetime import datetime, timezone

import pytest

from repro.constants import MapName, TABLE1_PAPER
from repro.errors import SimulationError
from repro.simulation.config import (
    MapProfile,
    SharedRouters,
    SimulationConfig,
    default_config,
)
from repro.simulation.events import UpgradeScenario


class TestMapProfile:
    def test_valid_profile(self):
        MapProfile(reference_counts=(10, 30, 5), core_sites=3)

    def test_too_few_routers_rejected(self):
        with pytest.raises(SimulationError):
            MapProfile(reference_counts=(1, 0, 0), core_sites=1)

    def test_negative_external_rejected(self):
        with pytest.raises(SimulationError):
            MapProfile(reference_counts=(10, 30, -1), core_sites=3)

    def test_underconnected_rejected(self):
        with pytest.raises(SimulationError):
            MapProfile(reference_counts=(10, 3, 0), core_sites=3)


class TestSharedRouters:
    def test_self_sharing_rejected(self):
        with pytest.raises(SimulationError):
            SharedRouters(MapName.EUROPE, MapName.EUROPE, 4, 10)

    def test_single_router_rejected(self):
        with pytest.raises(SimulationError):
            SharedRouters(MapName.EUROPE, MapName.WORLD, 1, 10)

    def test_unconnectable_rejected(self):
        with pytest.raises(SimulationError):
            SharedRouters(MapName.EUROPE, MapName.WORLD, 5, 3)


class TestSimulationConfig:
    def test_empty_window_rejected(self):
        when = datetime(2022, 1, 1, tzinfo=timezone.utc)
        with pytest.raises(SimulationError):
            SimulationConfig(window_start=when, window_end=when)

    def test_unknown_profile_raises(self):
        config = SimulationConfig(maps={})
        with pytest.raises(SimulationError):
            config.profile(MapName.EUROPE)


class TestDefaultConfig:
    def test_reference_counts_match_table1(self):
        config = default_config()
        for map_name, expected in TABLE1_PAPER.items():
            assert config.profile(map_name).reference_counts == expected

    def test_sharing_arithmetic(self):
        # 31 duplicate router appearances and 137 duplicate links.
        config = default_config()
        assert sum(p.router_count for p in config.shared_routers) == 31
        assert sum(p.link_count for p in config.shared_routers) == 137

    def test_europe_has_scripted_events(self):
        profile = default_config().profile(MapName.EUROPE)
        assert profile.router_swaps
        assert profile.router_removals
        assert profile.outages
        assert profile.internal_step_dates

    def test_step_weights_match_dates(self):
        profile = default_config().profile(MapName.EUROPE)
        assert len(profile.internal_step_weights) == len(profile.internal_step_dates)

    def test_seed_threads_through(self):
        assert default_config(seed=7).seed == 7


class TestUpgradeScenario:
    def test_default_matches_paper(self):
        scenario = UpgradeScenario()
        assert scenario.capacity_before_gbps == 400
        assert scenario.capacity_after_gbps == 500
        assert scenario.expected_load_ratio == 0.8
        assert (scenario.peeringdb_at - scenario.added_at).days == 9
        assert (scenario.activated_at - scenario.added_at).days == 14

    def test_bad_ordering_rejected(self):
        from datetime import datetime, timezone

        with pytest.raises(SimulationError):
            UpgradeScenario(
                added_at=datetime(2022, 3, 10, tzinfo=timezone.utc),
                peeringdb_at=datetime(2022, 3, 5, tzinfo=timezone.utc),
                activated_at=datetime(2022, 3, 20, tzinfo=timezone.utc),
            )

    def test_bad_base_load_rejected(self):
        with pytest.raises(SimulationError):
            UpgradeScenario(base_load=0)

    def test_zero_links_rejected(self):
        with pytest.raises(SimulationError):
            UpgradeScenario(links_before=0)
