"""Generative round-trip fuzzing: random topologies survive render→parse.

The strongest correctness property of the reproduction: *any* structurally
valid map the simulator could plausibly produce — random node counts,
random parallel groups, duplicate labels, zero loads — must come back
identical through the renderer and the extraction pipeline.
"""

from collections import Counter
from datetime import datetime, timezone

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.constants import MapName
from repro.layout.renderer import MapRenderer
from repro.parsing.pipeline import StageTimings, parse_svg
from repro.topology.model import Link, LinkEnd, MapSnapshot, Node
from repro.yamlio.serialize import snapshot_to_yaml

NOW = datetime(2022, 9, 12, tzinfo=timezone.utc)

_SITES = ("fra", "rbx", "gra", "lon", "waw")
_PEERINGS = ("ARELION", "OMANTEL", "VODAFONE", "AMS-IX", "DE-CIX")


@st.composite
def renderable_snapshots(draw):
    """Small random snapshots with the weathermap's structural quirks.

    Every router must end up with at least one link (the parser's
    isolated-router check is part of the contract), so links are grown
    over a random tree first.
    """
    router_count = draw(st.integers(min_value=2, max_value=7))
    routers = [
        f"{_SITES[i % len(_SITES)]}-r{i}" for i in range(router_count)
    ]
    peering_count = draw(st.integers(min_value=0, max_value=3))
    peerings = list(_PEERINGS[:peering_count])

    snapshot = MapSnapshot(map_name=MapName.EUROPE, timestamp=NOW)
    for name in routers + peerings:
        snapshot.add_node(Node.from_name(name))

    loads = st.integers(min_value=0, max_value=100)

    def add_group(a: str, b: str) -> None:
        size = draw(st.integers(min_value=1, max_value=4))
        duplicate = draw(st.booleans())
        for index in range(size):
            label = "#1" if duplicate else f"#{index + 1}"
            snapshot.add_link(
                Link(
                    a=LinkEnd(a, label, float(draw(loads))),
                    b=LinkEnd(b, label, float(draw(loads))),
                )
            )

    # Spanning tree over routers keeps everyone connected.
    for index in range(1, router_count):
        parent = routers[draw(st.integers(min_value=0, max_value=index - 1))]
        add_group(routers[index], parent)
    # Each peering attaches to one router.
    for peering in peerings:
        target = routers[draw(st.integers(min_value=0, max_value=router_count - 1))]
        add_group(target, peering)
    # A few extra random adjacencies.
    for _ in range(draw(st.integers(min_value=0, max_value=2))):
        a = routers[draw(st.integers(min_value=0, max_value=router_count - 1))]
        b = routers[draw(st.integers(min_value=0, max_value=router_count - 1))]
        if a != b:
            add_group(a, b)
    return snapshot


def _signatures(snapshot) -> Counter:
    return Counter(
        tuple(
            sorted(
                (
                    (link.a.node, link.a.label, link.a.load),
                    (link.b.node, link.b.label, link.b.load),
                )
            )
        )
        for link in snapshot.links
    )


@given(renderable_snapshots(), st.integers(min_value=0, max_value=5))
@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_random_topology_round_trips(snapshot, seed):
    svg = MapRenderer(seed=seed).render(snapshot)
    parsed = parse_svg(svg, MapName.EUROPE, NOW)
    assert set(parsed.snapshot.nodes) == set(snapshot.nodes)
    assert _signatures(parsed.snapshot) == _signatures(snapshot)


@given(renderable_snapshots())
@settings(max_examples=15, deadline=None)
def test_faithful_mode_matches_accelerated(snapshot):
    svg = MapRenderer(seed=1).render(snapshot)
    fast = parse_svg(svg, MapName.EUROPE, NOW)
    slow = parse_svg(svg, MapName.EUROPE, NOW, accelerated=False)
    assert _signatures(fast.snapshot) == _signatures(slow.snapshot)


@given(renderable_snapshots(), st.integers(min_value=0, max_value=5))
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_fast_path_yaml_byte_identical_on_rendered_documents(snapshot, seed):
    """The streaming fast path must be invisible in the dataset.

    For any rendered document, the fused expat pass and the faithful DOM
    pipeline must serialise to *byte-identical* YAML — and the fast path
    must actually have run (zero fallbacks), or the equivalence proves
    nothing.
    """
    svg = MapRenderer(seed=seed).render(snapshot)
    timings = StageTimings()
    streamed = parse_svg(svg, MapName.EUROPE, NOW, timings=timings)
    faithful = parse_svg(svg, MapName.EUROPE, NOW, fast_path=False)
    assert timings.fast_path_hits == 1 and timings.fallbacks == 0
    assert snapshot_to_yaml(streamed.snapshot) == snapshot_to_yaml(
        faithful.snapshot
    )
