"""Unit tests for the dataset store layout."""

from datetime import datetime, timezone

import pytest

from repro.constants import MapName
from repro.dataset.store import (
    DatasetStore,
    format_timestamp,
    parse_timestamp,
)
from repro.errors import DatasetError, SnapshotNotFoundError

WHEN = datetime(2022, 9, 12, 10, 5, tzinfo=timezone.utc)


class TestTimestamps:
    def test_format(self):
        assert format_timestamp(WHEN) == "20220912T100500Z"

    def test_round_trip(self):
        assert parse_timestamp(format_timestamp(WHEN)) == WHEN

    def test_bad_timestamp_rejected(self):
        with pytest.raises(DatasetError):
            parse_timestamp("20220912-1005")

    def test_non_utc_normalised(self):
        from datetime import timedelta, timezone as tz

        paris = tz(timedelta(hours=2))
        local = datetime(2022, 9, 12, 12, 5, tzinfo=paris)
        assert format_timestamp(local) == "20220912T100500Z"


class TestPaths:
    def test_layout(self, tmp_path):
        store = DatasetStore(tmp_path)
        path = store.path_for(MapName.EUROPE, WHEN, "svg")
        assert path == (
            tmp_path / "europe" / "svg" / "2022" / "09" / "12"
            / "europe-20220912T100500Z.svg"
        )

    def test_unknown_kind_rejected(self, tmp_path):
        with pytest.raises(DatasetError):
            DatasetStore(tmp_path).path_for(MapName.EUROPE, WHEN, "json")


class TestReadWrite:
    def test_write_and_read(self, tmp_path):
        store = DatasetStore(tmp_path)
        store.write(MapName.WORLD, WHEN, "svg", "<svg/>")
        assert store.read_bytes(MapName.WORLD, WHEN, "svg") == b"<svg/>"

    def test_bytes_accepted(self, tmp_path):
        store = DatasetStore(tmp_path)
        ref = store.write(MapName.WORLD, WHEN, "yaml", b"map: world")
        assert ref.size_bytes == 10

    def test_missing_snapshot_raises(self, tmp_path):
        store = DatasetStore(tmp_path)
        with pytest.raises(SnapshotNotFoundError):
            store.read_bytes(MapName.WORLD, WHEN, "svg")


class TestIteration:
    def _populate(self, store: DatasetStore) -> list[datetime]:
        from datetime import timedelta

        stamps = [WHEN + timedelta(minutes=5 * i) for i in (2, 0, 1)]
        for stamp in stamps:
            store.write(MapName.EUROPE, stamp, "svg", "<svg/>")
        return sorted(stamps)

    def test_refs_sorted_by_time(self, tmp_path):
        store = DatasetStore(tmp_path)
        expected = self._populate(store)
        refs = list(store.iter_refs(MapName.EUROPE, "svg"))
        assert [ref.timestamp for ref in refs] == expected

    def test_timestamps_helper(self, tmp_path):
        store = DatasetStore(tmp_path)
        expected = self._populate(store)
        assert store.timestamps(MapName.EUROPE) == expected

    def test_maps_isolated(self, tmp_path):
        store = DatasetStore(tmp_path)
        self._populate(store)
        assert store.timestamps(MapName.WORLD) == []

    def test_file_stats(self, tmp_path):
        store = DatasetStore(tmp_path)
        self._populate(store)
        count, size = store.file_stats(MapName.EUROPE, "svg")
        assert count == 3
        assert size == 3 * len("<svg/>")

    def test_foreign_files_ignored(self, tmp_path):
        store = DatasetStore(tmp_path)
        self._populate(store)
        junk = tmp_path / "europe" / "svg" / "2022" / "09" / "12" / "junk.svg"
        junk.write_text("not a snapshot")
        assert len(store.timestamps(MapName.EUROPE)) == 3
