"""Edge-path coverage: error branches and small helpers across modules."""

from datetime import datetime, timedelta, timezone

import pytest

from repro.constants import MapName

NOON = datetime(2022, 9, 11, 12, 0, tzinfo=timezone.utc)


class TestCliParsing:
    def test_bad_timestamp_rejected(self):
        from repro.cli.main import main

        with pytest.raises(ValueError):
            main(["render", "--when", "not-a-time"])

    def test_render_when(self, tmp_path, capsys):
        from repro.cli.main import main

        target = tmp_path / "w.svg"
        code = main(
            ["render", "--map", "world", "--when", "2022-03-05T10:00:00",
             "--output", str(target)]
        )
        assert code == 0
        assert "2022-03-05" in target.read_text(encoding="utf-8")


class TestReaderBulk:
    def test_iter_svg_files_skips_malformed(self, tmp_path):
        from repro.svgdoc.reader import iter_svg_files

        good = tmp_path / "good.svg"
        good.write_text(
            '<svg xmlns="http://www.w3.org/2000/svg" width="10" height="10"></svg>'
        )
        bad = tmp_path / "bad.svg"
        bad.write_text("<svg unclosed")
        results = list(iter_svg_files([good, bad]))
        assert len(results) == 1
        assert results[0][0] == good


class TestPlacementOverflow:
    def test_crowded_canvas_raises(self):
        from repro.errors import SimulationError
        from repro.layout.placement import NodePlacer

        placer = NodePlacer("tiny")
        placer.plan([("r1", "s", 2), ("r2", "s", 2)], [])
        # Shrink the canvas behind the placer's back, then overflow it.
        placer.width = 260.0
        placer.height = 200.0
        with pytest.raises(SimulationError):
            for index in range(40):
                placer._place_router(f"extra{index}", "s", 2)


class TestNiceTicks:
    def test_basic_range(self):
        from repro.charts.svgchart import _nice_ticks

        ticks = _nice_ticks(0, 100)
        assert ticks[0] <= 0 and ticks[-1] >= 100
        assert all(b > a for a, b in zip(ticks, ticks[1:]))

    def test_degenerate_range(self):
        from repro.charts.svgchart import _nice_ticks

        ticks = _nice_ticks(5, 5)
        assert len(ticks) >= 2

    def test_negative_range(self):
        from repro.charts.svgchart import _nice_ticks

        ticks = _nice_ticks(-50, 50)
        assert any(t <= -50 for t in ticks) or ticks[0] <= -50
        assert ticks[-1] >= 50

    def test_tiny_values(self):
        from repro.charts.svgchart import _nice_ticks

        ticks = _nice_ticks(0.001, 0.009)
        assert len(ticks) >= 3


class TestWebsiteCorruptionPath:
    def test_site_served_corruption_counts_as_unprocessable(
        self, simulator, tmp_path
    ):
        """A corrupt document published by the *site* flows through the
        crawler into the store and surfaces in processing accounting."""
        from repro.dataset.corruption import CorruptionInjector
        from repro.dataset.gaps import AvailabilityModel, CollectionSegment
        from repro.dataset.processor import process_map
        from repro.dataset.store import DatasetStore
        from repro.website.site import WeathermapWebsite
        from repro.website.webcollector import PollingCollector

        site = WeathermapWebsite(
            simulator, corruption=CorruptionInjector(seed=3, rate=1.0)
        )
        window = CollectionSegment(
            simulator.config.window_start, simulator.config.window_end
        )
        availability = AvailabilityModel(
            seed=3,
            segments={m: (window,) for m in MapName},
            europe_miss_rate=0.0,
            other_miss_rate_before_fix=0.0,
            other_miss_rate_after_fix=0.0,
            outage_day_rate=0.0,
        )
        store = DatasetStore(tmp_path)
        collector = PollingCollector(
            site, store, availability=availability, backfill=False
        )
        collector.run(NOON, NOON + timedelta(minutes=15), maps=[MapName.WORLD])
        stats = process_map(store, MapName.WORLD)
        assert stats.total == 3
        assert stats.unprocessed == 3


class TestModelHelpers:
    def test_links_of(self):
        from repro.topology.model import Link, LinkEnd, MapSnapshot, Node

        snapshot = MapSnapshot(map_name=MapName.EUROPE, timestamp=NOON)
        for name in ("r1", "r2", "r3"):
            snapshot.add_node(Node.from_name(name))
        snapshot.add_link(Link(LinkEnd("r1", "#1", 1), LinkEnd("r2", "#1", 2)))
        snapshot.add_link(Link(LinkEnd("r2", "#1", 3), LinkEnd("r3", "#1", 4)))
        assert len(snapshot.links_of("r2")) == 2
        assert len(snapshot.links_of("r1")) == 1
        assert snapshot.links_of("ghost") == []

    def test_presence_without_changes(self):
        from repro.peeringdb.model import CapacityRecord, NetworkPresence

        presence = NetworkPresence(
            peering="X",
            records=(CapacityRecord("X", 100, NOON),),
        )
        assert presence.changes() == []

    def test_same_capacity_update_not_a_change(self):
        from repro.peeringdb.model import CapacityRecord, NetworkPresence

        presence = NetworkPresence(
            peering="X",
            records=(
                CapacityRecord("X", 100, NOON),
                CapacityRecord("X", 100, NOON + timedelta(days=1)),
            ),
        )
        assert presence.changes() == []


class TestStoreOverwrite:
    def test_rewrite_replaces_content(self, tmp_path):
        from repro.dataset.store import DatasetStore

        store = DatasetStore(tmp_path)
        store.write(MapName.WORLD, NOON, "svg", "first")
        store.write(MapName.WORLD, NOON, "svg", "second")
        assert store.read_bytes(MapName.WORLD, NOON, "svg") == b"second"
        assert store.file_stats(MapName.WORLD, "svg") == (1, 6)
