"""Tests for the Scaleway-like comparison provider."""

from datetime import datetime, timedelta, timezone

import numpy
import pytest

from repro.analysis.imbalance import collect_imbalances
from repro.analysis.loads import collect_load_samples
from repro.constants import MapName
from repro.layout.renderer import MapRenderer
from repro.parsing.pipeline import parse_svg
from repro.simulation import BackboneSimulator, scaleway_like_config
from repro.simulation.events import UpgradeScenario

WHEN = datetime(2022, 6, 15, 12, 0, tzinfo=timezone.utc)


@pytest.fixture(scope="module")
def scaleway():
    return BackboneSimulator(
        config=scaleway_like_config(),
        upgrade=UpgradeScenario(map_name=MapName.WORLD),
    )


class TestScalewayProfile:
    def test_single_map(self, scaleway):
        assert scaleway.map_names == [MapName.EUROPE]

    def test_reference_counts(self, scaleway):
        counts = scaleway.counts(MapName.EUROPE, scaleway.config.window_end)
        assert counts == (31, 148, 74)

    def test_smaller_than_ovh(self, scaleway, simulator):
        ours = scaleway.counts(MapName.EUROPE, WHEN)
        theirs = simulator.counts(MapName.EUROPE, WHEN)
        assert ours[0] < theirs[0] / 2

    def test_renders_and_parses(self, scaleway):
        snapshot = scaleway.snapshot(MapName.EUROPE, WHEN)
        svg = MapRenderer().render(snapshot)
        parsed = parse_svg(svg, MapName.EUROPE, WHEN)
        assert parsed.snapshot.summary_counts() == snapshot.summary_counts()

    def test_disjoint_from_ovh(self, scaleway, simulator):
        ovh_routers = {
            spec.name for spec in simulator.evolution(MapName.EUROPE).routers
        }
        scw_routers = {
            spec.name for spec in scaleway.evolution(MapName.EUROPE).routers
        }
        assert not (ovh_routers & scw_routers)


class TestComparisonContrasts:
    @pytest.fixture(scope="class")
    def day(self, scaleway, simulator):
        base = datetime(2022, 6, 13, tzinfo=timezone.utc)
        ovh = [
            simulator.snapshot(MapName.EUROPE, base + timedelta(hours=h))
            for h in range(0, 24, 2)
        ]
        scw = [
            scaleway.snapshot(MapName.EUROPE, base + timedelta(hours=h))
            for h in range(0, 24, 2)
        ]
        return ovh, scw

    def test_smaller_provider_runs_hotter(self, day):
        ovh, scw = day
        ovh_loads = collect_load_samples(ovh)
        scw_loads = collect_load_samples(scw)
        assert numpy.median(scw_loads.all_loads) > numpy.median(ovh_loads.all_loads)

    def test_smaller_provider_balances_worse(self, day):
        ovh, scw = day
        ovh_imbalance = collect_imbalances(ovh)
        scw_imbalance = collect_imbalances(scw)
        assert scw_imbalance.fraction_within(1.0) < ovh_imbalance.fraction_within(1.0)

    def test_no_upgrade_group(self, scaleway):
        from repro.errors import SimulationError

        with pytest.raises(SimulationError):
            scaleway.upgrade_group()
