"""Unit tests for the map renderer."""

from datetime import datetime, timezone

from repro.constants import MapName
from repro.geometry import Segment
from repro.layout.renderer import MapRenderer, render_snapshot
from repro.svgdoc.reader import read_svg_tags
from repro.topology.model import Link, LinkEnd, MapSnapshot, Node

NOW = datetime(2022, 9, 12, tzinfo=timezone.utc)


def _tiny_snapshot() -> MapSnapshot:
    snapshot = MapSnapshot(map_name=MapName.EUROPE, timestamp=NOW)
    for name in ("fra-r1", "par-r2", "ARELION"):
        snapshot.add_node(Node.from_name(name))
    snapshot.add_link(Link(LinkEnd("fra-r1", "#1", 42), LinkEnd("par-r2", "#1", 9)))
    snapshot.add_link(Link(LinkEnd("fra-r1", "#2", 10), LinkEnd("par-r2", "#2", 11)))
    snapshot.add_link(Link(LinkEnd("par-r2", "#1", 30), LinkEnd("ARELION", "#1", 5)))
    return snapshot


class TestDocumentStructure:
    def test_renders_valid_svg(self):
        svg = render_snapshot(_tiny_snapshot())
        stream = read_svg_tags(svg)
        assert stream.width > 0

    def test_arrow_and_load_counts(self):
        svg = render_snapshot(_tiny_snapshot())
        assert svg.count("<polygon") == 6  # 2 per link
        assert svg.count('class="labellink"') == 6  # 2 per link

    def test_object_count(self):
        svg = render_snapshot(_tiny_snapshot())
        assert svg.count('class="object object-router"') == 2
        assert svg.count('class="object object-peering"') == 1

    def test_label_pair_count(self):
        svg = render_snapshot(_tiny_snapshot())
        assert svg.count('class="node"') == 12  # rect + text per link end

    def test_load_percentages_present(self):
        svg = render_snapshot(_tiny_snapshot())
        for text in ("42%", "9%", "30%", "5%"):
            assert text in svg

    def test_title_carries_map_and_time(self):
        svg = render_snapshot(_tiny_snapshot())
        assert "Europe" in svg
        assert "2022-09-12" in svg

    def test_legend_rendered(self):
        svg = render_snapshot(_tiny_snapshot())
        assert 'class="legend"' in svg


class TestGeometryInvariants:
    def test_link_lines_cross_both_node_boxes(self):
        renderer = MapRenderer()
        snapshot = _tiny_snapshot()
        svg, rendered = renderer.render_with_geometry(snapshot)
        placer = renderer._placer
        for item in rendered:
            line = Segment(item.geometry.base_a, item.geometry.base_b)
            box_a = placer.placement(item.link.a.node).box
            box_b = placer.placement(item.link.b.node).box
            assert box_a.intersects_line(line)
            assert box_b.intersects_line(line)

    def test_each_end_closest_box_is_its_router(self):
        renderer = MapRenderer()
        svg, rendered = renderer.render_with_geometry(_tiny_snapshot())
        placer = renderer._placer
        boxes = {p.name: p.box for p in placer.placements()}
        for item in rendered:
            for end, node in (
                (item.geometry.base_a, item.link.a.node),
                (item.geometry.base_b, item.link.b.node),
            ):
                own = boxes[node].distance_to_point(end)
                others = [
                    box.distance_to_point(end)
                    for name, box in boxes.items()
                    if name != node
                ]
                assert own < min(others)


class TestLayoutStability:
    def test_layout_stable_across_snapshots(self):
        renderer = MapRenderer()
        first = _tiny_snapshot()
        renderer.render(first)
        box_before = renderer._placer.placement("fra-r1").box

        second = _tiny_snapshot()
        second.add_node(Node.from_name("new-router"))
        second.add_link(Link(LinkEnd("new-router", "#1", 1), LinkEnd("fra-r1", "#1", 2)))
        renderer.render(second)
        assert renderer._placer.placement("fra-r1").box == box_before
        assert "new-router" in renderer._placer

    def test_same_seed_same_svg(self):
        assert render_snapshot(_tiny_snapshot(), seed=3) == render_snapshot(
            _tiny_snapshot(), seed=3
        )

    def test_different_seed_different_svg(self):
        assert render_snapshot(_tiny_snapshot(), seed=3) != render_snapshot(
            _tiny_snapshot(), seed=4
        )


class TestColors:
    def test_arrow_color_follows_scale(self):
        from repro.svgdoc.colors import WEATHERMAP_SCALE

        svg = render_snapshot(_tiny_snapshot())
        # 42 % load renders in the 40-55 band colour.
        assert WEATHERMAP_SCALE.color_for(42) in svg

    def test_disabled_link_grey(self):
        snapshot = MapSnapshot(map_name=MapName.EUROPE, timestamp=NOW)
        snapshot.add_node(Node.from_name("r1"))
        snapshot.add_node(Node.from_name("r2"))
        snapshot.add_link(Link(LinkEnd("r1", "#1", 0), LinkEnd("r2", "#1", 0)))
        svg = render_snapshot(snapshot)
        assert "#c0c0c0" in svg
