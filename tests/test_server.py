"""Tests for the cached HTTP read API (repro.server).

The serving contracts pinned here, end to end over a real
``ThreadingHTTPServer`` bound to an ephemeral port:

* every cacheable response carries a strong ETag that is stable across
  identical queries, and ``If-None-Match`` revalidation answers 304
  with an empty body;
* the response cache keys on the index *generation*, so an ingest
  checkpoint (new YAML + ``compact_map_shards``) makes the very next
  request serve fresh data — no TTLs, no manual purges;
* concurrent readers never see a 5xx while compaction hot-swaps the
  engine under them;
* a windowed request opens only the day-shards its window overlaps
  (the shard-prune satellite, asserted through the HTTP layer).
"""

from __future__ import annotations

import http.client
import json
import threading
import warnings
from contextlib import contextmanager
from datetime import datetime, timedelta, timezone
from urllib.parse import quote

import pytest

from repro.constants import MapName
from repro.dataset.processor import process_svg_bytes
from repro.dataset.shards import ShardedMappedIndex, compact_map_shards
from repro.dataset.store import ShardedDatasetStore
from repro.errors import OptionsError, ServerError
from repro.server import (
    ServeOptions,
    ServerConfig,
    create_server,
    match_route,
    resolve_serve_options,
)
from repro.server.cache import CachedResponse, ResponseCache

T0 = datetime(2022, 9, 12, tzinfo=timezone.utc)
MAP = MapName.ASIA_PACIFIC
DAYS = (T0, T0 + timedelta(days=1), T0 + timedelta(days=2))
PER_DAY = 3


@pytest.fixture(scope="module")
def reference_yaml(apac_svg) -> str:
    outcome = process_svg_bytes(apac_svg.encode("utf-8"), MAP, T0)
    assert outcome.yaml_text is not None
    return outcome.yaml_text


def build_corpus(root, yaml_text: str) -> ShardedDatasetStore:
    """Three compacted day-shards of snapshots in a marked sharded store."""
    store = ShardedDatasetStore(root)
    store.mark()
    for day in DAYS:
        for slot in range(PER_DAY):
            store.write(MAP, day + timedelta(minutes=5 * slot), "yaml", yaml_text)
    compact_map_shards(store, MAP)
    return store


@contextmanager
def running_server(store, **option_kwargs):
    """A live server on an ephemeral port, torn down afterwards."""
    server = create_server(store, ServeOptions(port=0, **option_kwargs))
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


class Client:
    """A persistent HTTP/1.1 connection with JSON conveniences."""

    def __init__(self, port: int) -> None:
        self.conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)

    def get(self, path, headers=None):
        self.conn.request("GET", path, headers=headers or {})
        response = self.conn.getresponse()
        body = response.read()
        return response.status, response.getheader("ETag"), body

    def get_full(self, path, headers=None):
        """(status, headers-dict, body) — for header-sensitive assertions."""
        self.conn.request("GET", path, headers=headers or {})
        response = self.conn.getresponse()
        body = response.read()
        return response.status, dict(response.getheaders()), body

    def get_json(self, path, expect=200):
        status, _, body = self.get(path)
        assert status == expect, body.decode("utf-8", "replace")
        return json.loads(body)

    def close(self) -> None:
        self.conn.close()


@pytest.fixture(scope="module")
def corpus_store(tmp_path_factory, reference_yaml):
    return build_corpus(tmp_path_factory.mktemp("serving"), reference_yaml)


@pytest.fixture(scope="module")
def served(corpus_store):
    """One shared read-only server + client for the endpoint tests."""
    with running_server(corpus_store) as server:
        client = Client(server.server_address[1])
        yield client
        client.close()


class TestRouting:
    def test_literal_routes(self):
        assert match_route("/healthz").endpoint == "healthz"
        assert match_route("/metrics").endpoint == "metrics"
        match = match_route("/maps")
        assert match.endpoint == "maps" and match.map_slug is None

    def test_map_view_routes(self):
        for view in ("snapshot", "series", "imbalance", "evolution"):
            match = match_route(f"/maps/asia-pacific/{view}")
            assert match is not None
            assert match.endpoint == view
            assert match.map_slug == "asia-pacific"
            assert match.versioned is False

    def test_v1_routes_are_versioned(self):
        for path in ("/v1/healthz", "/v1/metrics", "/v1/maps"):
            match = match_route(path)
            assert match is not None and match.versioned is True
        match = match_route("/v1/maps/asia-pacific/snapshot")
        assert match.endpoint == "snapshot"
        assert match.map_slug == "asia-pacific"
        assert match.versioned is True

    def test_feed_routes_exist_only_under_v1(self):
        events = match_route("/v1/maps/europe/events")
        assert events.endpoint == "events" and events.versioned
        generation = match_route("/v1/maps/europe/generation")
        assert generation.endpoint == "generation" and generation.versioned
        # the feed was born versioned: no deprecated unversioned alias
        assert match_route("/maps/europe/events") is None
        assert match_route("/maps/europe/generation") is None

    def test_unroutable_paths(self):
        for path in ("/", "/maps/", "/maps/europe", "/maps/europe/latest",
                     "/maps/EUROPE/snapshot", "/healthz/extra",
                     "/v1", "/v1/", "/v2/maps", "/v1/v1/maps"):
            assert match_route(path) is None


class TestEndpoints:
    def test_healthz(self, served):
        assert served.get_json("/healthz") == {"status": "ok"}

    def test_maps_lists_extent(self, served):
        payload = served.get_json("/maps")
        assert [entry["name"] for entry in payload["maps"]] == [MAP.value]
        entry = payload["maps"][0]
        assert entry["snapshots"] == len(DAYS) * PER_DAY
        assert entry["first"] == T0.isoformat()
        last = DAYS[-1] + timedelta(minutes=5 * (PER_DAY - 1))
        assert entry["last"] == last.isoformat()

    def test_snapshot_serves_newest_row(self, served):
        payload = served.get_json(f"/maps/{MAP.value}/snapshot")
        last = DAYS[-1] + timedelta(minutes=5 * (PER_DAY - 1))
        assert payload["timestamp"] == last.isoformat()
        assert payload["map"] == MAP.value
        assert payload["routers"] and payload["peerings"] and payload["links"]
        link = payload["links"][0]
        assert set(link) == {
            "node_a", "label_a", "load_a", "node_b", "label_b", "load_b",
        }

    def test_snapshot_at_pins_a_row(self, served):
        at = quote((T0 + timedelta(minutes=5)).isoformat())
        payload = served.get_json(f"/maps/{MAP.value}/snapshot?at={at}")
        assert payload["timestamp"] == (T0 + timedelta(minutes=5)).isoformat()
        # epoch seconds are accepted too, and floor to the row at or before
        epoch = int(T0.timestamp()) + 60
        payload = served.get_json(f"/maps/{MAP.value}/snapshot?at={epoch}")
        assert payload["timestamp"] == T0.isoformat()

    def test_series_normalises_direction(self, served):
        snapshot = served.get_json(f"/maps/{MAP.value}/snapshot")
        link = snapshot["links"][0]
        a, b = link["node_a"], link["node_b"]
        forward = served.get_json(f"/maps/{MAP.value}/series?link={a}:{b}")
        assert forward["link"] == {"a": a, "b": b}
        assert len(forward["points"]) >= len(DAYS) * PER_DAY
        times = [point["time"] for point in forward["points"]]
        assert times == sorted(times)
        backward = served.get_json(f"/maps/{MAP.value}/series?link={b}:{a}")
        assert len(backward["points"]) == len(forward["points"])
        assert backward["points"][0]["a_to_b"] == forward["points"][0]["b_to_a"]
        assert backward["points"][0]["b_to_a"] == forward["points"][0]["a_to_b"]

    def test_series_honours_the_window(self, served):
        snapshot = served.get_json(f"/maps/{MAP.value}/snapshot")
        link = snapshot["links"][0]
        day2 = DAYS[1]
        path = (
            f"/maps/{MAP.value}/series?link={link['node_a']}:{link['node_b']}"
            f"&start={int(day2.timestamp())}"
            f"&end={int((day2 + timedelta(days=1)).timestamp())}"
        )
        windowed = served.get_json(path)
        times = {point["time"] for point in windowed["points"]}
        assert times == {
            (day2 + timedelta(minutes=5 * slot)).isoformat()
            for slot in range(PER_DAY)
        }

    def test_imbalance_summary(self, served):
        payload = served.get_json(f"/maps/{MAP.value}/imbalance")
        assert payload["internal"]["count"] > 0
        assert 0.0 <= payload["internal"]["fraction_within"]["5.0"] <= 1.0
        strict = served.get_json(f"/maps/{MAP.value}/imbalance?min_load=99.5")
        assert strict["minimum_load"] == 99.5
        assert strict["internal"]["count"] <= payload["internal"]["count"]

    def test_evolution_counts(self, served):
        payload = served.get_json(f"/maps/{MAP.value}/evolution")
        assert len(payload["routers"]["times"]) == len(DAYS) * PER_DAY
        assert len(payload["routers"]["values"]) == len(DAYS) * PER_DAY
        day2 = DAYS[1]
        windowed = served.get_json(
            f"/maps/{MAP.value}/evolution"
            f"?start={int(day2.timestamp())}"
            f"&end={int((day2 + timedelta(days=1)).timestamp())}"
        )
        assert len(windowed["routers"]["times"]) == PER_DAY

    def test_metrics_exposition(self, served):
        status, _, body = served.get("/metrics")
        assert status == 200
        text = body.decode("utf-8")
        assert "repro_server_requests_total" in text
        assert "# TYPE repro_server_request_seconds histogram" in text


class TestErrorMapping:
    def test_envelope_shape(self, served):
        payload = served.get_json("/nope", expect=404)
        assert set(payload) == {"error"}
        assert set(payload["error"]) == {"code", "message"}

    def test_unknown_path_is_404(self, served):
        error = served.get_json("/nope", expect=404)["error"]
        assert error["code"] == "unknown_endpoint"
        assert "no such path" in error["message"]

    def test_unknown_map_is_404(self, served):
        error = served.get_json("/maps/atlantis/snapshot", expect=404)["error"]
        assert error["code"] == "unknown_endpoint"
        assert "atlantis" in error["message"]

    def test_unindexed_map_is_404(self, served):
        # europe exists as a map name but holds no data in this store
        error = served.get_json("/maps/europe/snapshot", expect=404)["error"]
        assert error["code"] == "snapshot_not_found"
        assert "europe" in error["message"]
        assert error["map"] == "europe"

    def test_unknown_parameter_is_400(self, served):
        error = served.get_json(
            f"/maps/{MAP.value}/snapshot?bogus=1", expect=400
        )["error"]
        assert error["code"] == "bad_query"
        assert "bogus" in error["message"]

    def test_repeated_parameter_is_400(self, served):
        served.get_json(f"/maps/{MAP.value}/snapshot?at=1&at=2", expect=400)

    def test_bad_timestamp_is_400(self, served):
        error = served.get_json(
            f"/maps/{MAP.value}/snapshot?at=yesterday", expect=400
        )["error"]
        assert "yesterday" in error["message"]

    def test_missing_link_is_400(self, served):
        error = served.get_json(f"/maps/{MAP.value}/series", expect=400)["error"]
        assert error["code"] == "bad_query"
        assert "link" in error["message"]

    def test_malformed_link_is_400(self, served):
        served.get_json(f"/maps/{MAP.value}/series?link=lonely", expect=400)

    def test_min_load_out_of_range_is_400(self, served):
        served.get_json(f"/maps/{MAP.value}/imbalance?min_load=101", expect=400)

    def test_empty_evolution_window_is_400(self, served):
        early = int((T0 - timedelta(days=30)).timestamp())
        served.get_json(
            f"/maps/{MAP.value}/evolution?start={early}&end={early + 60}",
            expect=400,
        )

    def test_snapshot_before_corpus_is_404(self, served):
        early = int((T0 - timedelta(days=30)).timestamp())
        served.get_json(f"/maps/{MAP.value}/snapshot?at={early}", expect=404)


class TestVersionedSurface:
    """``/v1`` is the stable surface; unversioned paths still answer,
    identically, but flag themselves deprecated."""

    PATHS = (
        "/healthz",
        "/maps",
        f"/maps/{MAP.value}/snapshot",
        f"/maps/{MAP.value}/evolution",
        # even errors serve the same envelope on both surfaces
        "/maps/atlantis/snapshot",
    )

    def test_v1_and_legacy_payloads_are_identical(self, served):
        for path in self.PATHS:
            legacy_status, _, legacy_body = served.get(path)
            v1_status, _, v1_body = served.get(f"/v1{path}")
            assert v1_status == legacy_status, path
            assert v1_body == legacy_body, path

    def test_legacy_paths_carry_deprecation_headers(self, served):
        status, headers, _ = served.get_full(f"/maps/{MAP.value}/snapshot")
        assert status == 200
        assert headers.get("Deprecation") == "true"
        assert (
            headers.get("Link")
            == f'</v1/maps/{MAP.value}/snapshot>; rel="successor-version"'
        )

    def test_v1_paths_are_not_deprecated(self, served):
        status, headers, _ = served.get_full(f"/v1/maps/{MAP.value}/snapshot")
        assert status == 200
        assert "Deprecation" not in headers
        assert "Link" not in headers

    def test_etags_agree_across_surfaces(self, served):
        path = f"/maps/{MAP.value}/snapshot"
        _, legacy_etag, _ = served.get(path)
        _, v1_etag, _ = served.get(f"/v1{path}")
        assert legacy_etag == v1_etag
        # a validator minted on one surface revalidates on the other
        status, _, body = served.get(
            f"/v1{path}", headers={"If-None-Match": legacy_etag}
        )
        assert status == 304 and body == b""

    def test_deprecated_requests_are_counted(self, served):
        served.get("/healthz")
        status, _, body = served.get("/metrics")
        assert status == 200
        text = body.decode("utf-8")
        assert "repro_server_deprecated_requests_total" in text
        assert 'endpoint="healthz"' in text


class TestCaching:
    def test_etag_stable_across_identical_queries(self, served):
        path = f"/maps/{MAP.value}/evolution"
        status_a, etag_a, body_a = served.get(path)
        status_b, etag_b, body_b = served.get(path)
        assert status_a == status_b == 200
        assert etag_a is not None and etag_a == etag_b
        assert body_a == body_b

    def test_if_none_match_answers_304(self, served):
        path = f"/maps/{MAP.value}/snapshot"
        _, etag, _ = served.get(path)
        status, revalidated, body = served.get(
            path, headers={"If-None-Match": etag}
        )
        assert status == 304
        assert revalidated == etag
        assert body == b""

    def test_star_and_lists_revalidate(self, served):
        path = f"/maps/{MAP.value}/snapshot"
        _, etag, _ = served.get(path)
        status, _, _ = served.get(path, headers={"If-None-Match": "*"})
        assert status == 304
        status, _, _ = served.get(
            path, headers={"If-None-Match": f'"stale", {etag}'}
        )
        assert status == 304

    def test_stale_etag_gets_a_full_response(self, served):
        path = f"/maps/{MAP.value}/snapshot"
        status, _, body = served.get(path, headers={"If-None-Match": '"stale"'})
        assert status == 200 and body

    def test_generation_change_invalidates_mid_flight(
        self, tmp_path, reference_yaml
    ):
        store = build_corpus(tmp_path, reference_yaml)
        with running_server(store) as server:
            client = Client(server.server_address[1])
            path = f"/maps/{MAP.value}/snapshot"
            _, old_etag, _ = client.get(path)
            before = client.get_json("/maps")["maps"][0]["snapshots"]

            # An ingest checkpoint lands: new day of data, shard compacted.
            new_day = DAYS[-1] + timedelta(days=1)
            store.write(MAP, new_day, "yaml", reference_yaml)
            compact_map_shards(store, MAP, only=["2022-09-15"])

            payload = client.get_json(path)
            assert payload["timestamp"] == new_day.isoformat()
            status, new_etag, _ = client.get(
                path, headers={"If-None-Match": old_etag}
            )
            assert status == 200  # the old validator no longer matches
            assert new_etag != old_etag
            assert client.get_json("/maps")["maps"][0]["snapshots"] == before + 1
            client.close()


class TestHotSwap:
    def test_no_5xx_while_compaction_hot_swaps(self, tmp_path, reference_yaml):
        """Readers hammer the API while checkpoints rewrite the shards."""
        store = build_corpus(tmp_path, reference_yaml)
        with running_server(store) as server:
            port = server.server_address[1]
            stop = threading.Event()
            statuses: list[int] = []
            failures: list[str] = []
            lock = threading.Lock()
            paths = (
                f"/maps/{MAP.value}/snapshot",
                f"/maps/{MAP.value}/evolution",
                "/maps",
            )

            def reader(offset: int) -> None:
                client = Client(port)
                try:
                    turn = 0
                    while not stop.is_set():
                        status, _, body = client.get(
                            paths[(turn + offset) % len(paths)]
                        )
                        with lock:
                            statuses.append(status)
                            if status >= 500:
                                failures.append(body.decode("utf-8", "replace"))
                        turn += 1
                except (OSError, http.client.HTTPException) as exc:
                    with lock:
                        failures.append(f"transport error: {exc}")
                finally:
                    client.close()

            readers = [
                threading.Thread(target=reader, args=(i,)) for i in range(3)
            ]
            for thread in readers:
                thread.start()
            try:
                # Five checkpoints: append a snapshot, recompact its shard.
                for round_no in range(5):
                    when = DAYS[-1] + timedelta(days=1, minutes=5 * round_no)
                    store.write(MAP, when, "yaml", reference_yaml)
                    compact_map_shards(store, MAP, only=["2022-09-15"])
            finally:
                stop.set()
                for thread in readers:
                    thread.join(timeout=30)

            assert not failures, failures[:3]
            assert statuses and all(status < 500 for status in statuses)
            final = Client(port)
            payload = final.get_json(f"/maps/{MAP.value}/snapshot")
            expected = DAYS[-1] + timedelta(days=1, minutes=5 * 4)
            assert payload["timestamp"] == expected.isoformat()
            final.close()


class TestShardPruning:
    def test_windowed_request_opens_only_its_shards(
        self, tmp_path, reference_yaml
    ):
        """The prune satellite, asserted through the HTTP layer."""
        store = build_corpus(tmp_path, reference_yaml)
        with running_server(store) as server:
            client = Client(server.server_address[1])
            snapshot_keys = None
            day2 = DAYS[1]
            client.get_json(
                f"/maps/{MAP.value}/evolution"
                f"?start={int(day2.timestamp())}"
                f"&end={int((day2 + timedelta(days=1)).timestamp())}"
            )
            pinned = server.engines.pinned(MAP)
            assert pinned is not None
            assert isinstance(pinned.handle, ShardedMappedIndex)
            snapshot_keys = pinned.handle.opened_shard_keys
            assert snapshot_keys == ["2022-09-13"]
            client.close()


class TestCacheUnits:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ServerError):
            ResponseCache(0)

    def test_lru_eviction(self):
        cache = ResponseCache(2)
        cache.put(("a",), b"1", "application/json")
        cache.put(("b",), b"2", "application/json")
        assert cache.get("t", ("a",)) is not None  # refresh "a"
        cache.put(("c",), b"3", "application/json")
        assert cache.get("t", ("b",)) is None  # "b" was the LRU entry
        assert cache.get("t", ("a",)) is not None
        assert cache.get("t", ("c",)) is not None
        assert len(cache) == 2

    def test_etag_is_a_strong_body_hash(self):
        one = CachedResponse(b"payload", "application/json")
        two = CachedResponse(b"payload", "text/plain")
        other = CachedResponse(b"different", "application/json")
        assert one.etag == two.etag
        assert one.etag != other.etag
        assert one.etag.startswith('"') and one.etag.endswith('"')

    def test_matches_handles_weak_and_lists(self):
        cached = CachedResponse(b"payload", "application/json")
        assert cached.matches(cached.etag)
        assert cached.matches(f"W/{cached.etag}")
        assert cached.matches(f'"zzz", {cached.etag}')
        assert cached.matches("*")
        assert not cached.matches(None)
        assert not cached.matches('"zzz"')


class TestConfigUnits:
    def test_bad_port_rejected(self):
        with pytest.raises(ServerError):
            ServeOptions(port=70000)

    def test_bad_cache_entries_rejected(self):
        with pytest.raises(ServerError):
            ServeOptions(cache_entries=0)

    def test_bad_watch_interval_rejected(self):
        with pytest.raises(ServerError):
            ServeOptions(watch_interval=0.0)

    def test_bad_feed_ring_size_rejected(self):
        with pytest.raises(ServerError):
            ServeOptions(feed_ring_size=0)

    def test_options_pass_through_unwarned(self):
        options = ServeOptions(port=0, watch_interval=0.5)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_serve_options(options) is options
            assert resolve_serve_options(None) == ServeOptions()

    def test_server_config_converts_with_a_deprecation_warning(self):
        config = ServerConfig(port=0, cache_entries=7)
        with pytest.warns(DeprecationWarning, match="ServerConfig"):
            resolved = resolve_serve_options(config)
        assert resolved == ServeOptions(port=0, cache_entries=7)

    def test_deprecated_keywords_warn_once(self):
        with pytest.warns(DeprecationWarning, match="port"):
            resolved = resolve_serve_options(port=0, cache_entries=9)
        assert resolved == ServeOptions(port=0, cache_entries=9)

    def test_mixing_options_and_keywords_raises(self):
        with pytest.raises(OptionsError, match="not both"):
            resolve_serve_options(ServeOptions(), port=0)
        with pytest.raises(OptionsError, match="not both"):
            resolve_serve_options(ServerConfig(), port=0)
        assert issubclass(OptionsError, TypeError)

    def test_legacy_server_config_still_validates(self):
        with pytest.raises(ServerError):
            ServerConfig(port=70000)
