"""Calibration and behaviour tests for the backbone simulator.

These assert the headline numbers of the paper directly against the
simulator: Table 1 counts, the Figure 4 narrative, the Figure 5 load
behaviours, and the Figure 6 scenario wiring.
"""

from datetime import datetime, timedelta, timezone

import pytest

from repro.constants import (
    COLLECTION_START,
    MapName,
    REFERENCE_DATE,
    TABLE1_PAPER,
    TABLE1_PAPER_TOTAL,
)
from repro.errors import SimulationError
from repro.simulation.network import BackboneSimulator
from repro.topology.graph import isolated_routers, node_degrees


def _utc(*args) -> datetime:
    return datetime(*args, tzinfo=timezone.utc)


class TestTable1Calibration:
    def test_per_map_counts_exact(self, simulator):
        for map_name, expected in TABLE1_PAPER.items():
            assert simulator.counts(map_name, REFERENCE_DATE) == expected

    def test_distinct_router_total(self, simulator):
        assert simulator.distinct_router_count(REFERENCE_DATE) == TABLE1_PAPER_TOTAL[0]

    def test_snapshot_matches_fast_counts(self, simulator, europe_reference):
        assert europe_reference.summary_counts() == simulator.counts(
            MapName.EUROPE, REFERENCE_DATE
        )


class TestDeterminism:
    def test_two_simulators_identical(self, simulator):
        other = BackboneSimulator()
        t = _utc(2021, 5, 3, 14, 35)
        a = simulator.snapshot(MapName.ASIA_PACIFIC, t)
        b = other.snapshot(MapName.ASIA_PACIFIC, t)
        assert [(l.a, l.b) for l in a.links] == [(l.a, l.b) for l in b.links]

    def test_different_seeds_differ(self, simulator):
        from repro.simulation.config import default_config

        other = BackboneSimulator(config=default_config(seed=999))
        t = _utc(2021, 5, 3, 14, 35)
        a = simulator.snapshot(MapName.EUROPE, t)
        b = other.snapshot(MapName.EUROPE, t)
        assert {n for n in a.nodes} != {n for n in b.nodes}


class TestEvolutionNarrative:
    """The Figure 4a Europe events."""

    def test_router_growth_aug_sep_2020(self, simulator):
        before = simulator.counts(MapName.EUROPE, _utc(2020, 7, 25))[0]
        after = simulator.counts(MapName.EUROPE, _utc(2020, 9, 20))[0]
        assert after - before == 10

    def test_removal_after_growth(self, simulator):
        before = simulator.counts(MapName.EUROPE, _utc(2020, 9, 26))[0]
        after = simulator.counts(MapName.EUROPE, _utc(2020, 10, 2))[0]
        assert before - after == 4

    def test_june_2021_removal(self, simulator):
        before = simulator.counts(MapName.EUROPE, _utc(2021, 6, 9))[0]
        after = simulator.counts(MapName.EUROPE, _utc(2021, 6, 11))[0]
        assert before - after == 4

    def test_august_2021_dip_recovers(self, simulator):
        before = simulator.counts(MapName.EUROPE, _utc(2021, 8, 8))[0]
        during = simulator.counts(MapName.EUROPE, _utc(2021, 8, 11))[0]
        after = simulator.counts(MapName.EUROPE, _utc(2021, 8, 20))[0]
        assert during < before
        assert after == before

    def test_november_2021_internal_step(self, simulator):
        before = simulator.counts(MapName.EUROPE, _utc(2021, 11, 8))[1]
        after = simulator.counts(MapName.EUROPE, _utc(2021, 11, 10))[1]
        # "An important event of increase" — the largest scripted step.
        assert after - before > 30

    def test_external_links_grow_gradually(self, simulator):
        counts = [
            simulator.counts(MapName.EUROPE, COLLECTION_START + timedelta(days=30 * k))[2]
            for k in range(0, 26, 2)
        ]
        assert counts[-1] > counts[0]
        # Gradual: no single 2-month step carries more than half the growth.
        total_growth = counts[-1] - counts[0]
        biggest_step = max(b - a for a, b in zip(counts, counts[1:]))
        assert biggest_step < max(2, total_growth * 0.5)

    def test_counts_monotone_nowhere_negative(self, simulator):
        for k in range(0, 26):
            routers, internal, external = simulator.counts(
                MapName.EUROPE, COLLECTION_START + timedelta(days=30 * k)
            )
            assert routers > 0 and internal > 0 and external >= 0


class TestSnapshotIntegrity:
    def test_no_isolated_routers(self, simulator, europe_reference):
        assert isolated_routers(europe_reference) == []

    def test_no_isolated_routers_mid_window(self, simulator):
        snapshot = simulator.snapshot(MapName.EUROPE, _utc(2021, 2, 14, 7, 25))
        assert isolated_routers(snapshot) == []

    def test_world_has_no_peerings(self, simulator):
        snapshot = simulator.snapshot(MapName.WORLD, REFERENCE_DATE)
        assert snapshot.peerings == []

    def test_degree_distribution_matches_paper(self, europe_reference):
        degrees = list(node_degrees(europe_reference).values())
        single = sum(1 for d in degrees if d <= 1) / len(degrees)
        heavy = sum(1 for d in degrees if d > 20) / len(degrees)
        # ">20 % of the OVH routers ... are connected with a single link"
        assert single > 0.20
        # ">20 % of the OVH routers have more than 20 links"
        assert heavy > 0.20

    def test_loads_are_integer_percentages(self, europe_reference):
        for _, _, load in europe_reference.iter_loads():
            assert load == int(load)
            assert 0 <= load <= 100

    def test_window_enforced(self, simulator):
        with pytest.raises(SimulationError):
            simulator.snapshot(MapName.EUROPE, _utc(2019, 1, 1))
        with pytest.raises(SimulationError):
            simulator.counts(MapName.EUROPE, _utc(2030, 1, 1))


class TestSharedGateways:
    def test_world_routers_all_borrowed(self, simulator):
        world = {spec.name for spec in simulator.evolution(MapName.WORLD).all_routers}
        continental = set()
        for map_name in (MapName.EUROPE, MapName.NORTH_AMERICA, MapName.ASIA_PACIFIC):
            continental.update(
                spec.name for spec in simulator.evolution(map_name).routers
            )
        assert world <= continental

    def test_shared_links_have_same_loads_on_both_maps(self, simulator):
        """A gateway link shown on two maps reports one load value."""
        when = _utc(2022, 4, 1, 10, 0)
        europe = simulator.snapshot(MapName.EUROPE, when)
        world = simulator.snapshot(MapName.WORLD, when)

        def signatures(snapshot):
            return {
                tuple(
                    sorted(
                        (
                            (link.a.node, link.a.label, link.a.load),
                            (link.b.node, link.b.label, link.b.load),
                        )
                    )
                )
                for link in snapshot.links
            }

        world_signatures = signatures(world)
        europe_signatures = signatures(europe)
        shared = world_signatures & europe_signatures
        # Europe lends 40 of World's links; every one of them must agree
        # on loads (same physical link).
        assert len(shared) >= 30


class TestUpgradeScenario:
    def test_group_size_before_and_after(self, simulator):
        scenario = simulator.upgrade
        before = simulator.upgrade_loads(scenario.added_at - timedelta(days=1))
        assert len(before) == scenario.links_before
        visible = simulator.upgrade_loads(scenario.added_at + timedelta(days=1))
        assert len(visible) == scenario.links_after

    def test_new_link_unused_until_activation(self, simulator):
        scenario = simulator.upgrade
        mid = simulator.upgrade_loads(scenario.added_at + timedelta(days=5))
        zero_loads = [loads for loads in mid.values() if loads == (0, 0)]
        assert len(zero_loads) == 1

    def test_all_links_active_after_activation(self, simulator):
        scenario = simulator.upgrade
        after = simulator.upgrade_loads(scenario.activated_at + timedelta(days=1))
        assert all(loads[0] > 0 for loads in after.values())

    def test_load_drop_matches_capacity_ratio(self, simulator):
        """Per-link load around activation drops by ~links_before/links_after."""
        import statistics

        scenario = simulator.upgrade

        def daily_mean(day_offsets, reference):
            values = []
            for offset in day_offsets:
                for hour in (0, 6, 12, 18):
                    when = reference + timedelta(days=offset, hours=hour)
                    loads = [
                        l[0] for l in simulator.upgrade_loads(when).values() if l[0] >= 2
                    ]
                    values.extend(loads)
            return statistics.mean(values)

        before = daily_mean(range(-10, 0), scenario.added_at)
        after = daily_mean(range(1, 11), scenario.activated_at)
        ratio = after / before
        assert 0.6 < ratio < 0.95  # around the 4/5 capacity ratio
