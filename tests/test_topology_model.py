"""Unit tests for the topology data model."""

from datetime import datetime, timezone

import pytest

from repro.constants import MapName
from repro.errors import LoadRangeError, SchemaError
from repro.topology.model import (
    Link,
    LinkEnd,
    MapSnapshot,
    Node,
    NodeKind,
    ParallelGroup,
)

NOW = datetime(2022, 9, 12, tzinfo=timezone.utc)


def _link(a: str, b: str, load_a: float = 10, load_b: float = 20, label: str = "#1") -> Link:
    return Link(
        a=LinkEnd(node=a, label=label, load=load_a),
        b=LinkEnd(node=b, label=label, load=load_b),
    )


def _snapshot_with(*names: str) -> MapSnapshot:
    snapshot = MapSnapshot(map_name=MapName.EUROPE, timestamp=NOW)
    for name in names:
        snapshot.add_node(Node.from_name(name))
    return snapshot


class TestNode:
    def test_lowercase_is_router(self):
        assert Node.from_name("fra-fr5-pb6-nc5").kind is NodeKind.ROUTER

    def test_uppercase_is_peering(self):
        assert Node.from_name("ARELION").kind is NodeKind.PEERING

    def test_hyphenated_peering(self):
        assert Node.from_name("AMS-IX").is_peering


class TestLinkEnd:
    def test_load_bounds_enforced(self):
        with pytest.raises(LoadRangeError):
            LinkEnd(node="a", label="#1", load=101)
        with pytest.raises(LoadRangeError):
            LinkEnd(node="a", label="#1", load=-1)

    def test_boundary_loads_allowed(self):
        assert LinkEnd(node="a", label="#1", load=0).load == 0
        assert LinkEnd(node="a", label="#1", load=100).load == 100


class TestLink:
    def test_self_link_rejected(self):
        with pytest.raises(SchemaError):
            _link("r1", "r1")

    def test_key_is_order_independent(self):
        assert _link("b", "a").key == _link("a", "b").key

    def test_load_from(self):
        link = _link("a", "b", load_a=10, load_b=20)
        assert link.load_from("a") == 10
        assert link.load_from("b") == 20

    def test_load_from_unknown_raises(self):
        with pytest.raises(KeyError):
            _link("a", "b").load_from("c")

    def test_disabled(self):
        assert _link("a", "b", 0, 0).is_disabled()
        assert not _link("a", "b", 0, 1).is_disabled()


class TestSnapshot:
    def test_link_requires_known_nodes(self):
        snapshot = _snapshot_with("r1")
        with pytest.raises(SchemaError):
            snapshot.add_link(_link("r1", "r2"))

    def test_conflicting_node_rejected(self):
        snapshot = _snapshot_with("r1")
        with pytest.raises(SchemaError):
            snapshot.add_node(Node(name="r1", kind=NodeKind.PEERING))

    def test_idempotent_node_add(self):
        snapshot = _snapshot_with("r1")
        snapshot.add_node(Node.from_name("r1"))
        assert len(snapshot.nodes) == 1

    def test_internal_vs_external(self):
        snapshot = _snapshot_with("r1", "r2", "PEER")
        snapshot.add_link(_link("r1", "r2"))
        snapshot.add_link(_link("r1", "PEER"))
        assert len(snapshot.internal_links) == 1
        assert len(snapshot.external_links) == 1

    def test_summary_counts(self):
        snapshot = _snapshot_with("r1", "r2", "PEER")
        snapshot.add_link(_link("r1", "r2"))
        snapshot.add_link(_link("r2", "PEER"))
        assert snapshot.summary_counts() == (2, 1, 1)

    def test_degree_counts_parallel_links(self):
        snapshot = _snapshot_with("r1", "r2")
        snapshot.add_link(_link("r1", "r2", label="#1"))
        snapshot.add_link(_link("r1", "r2", label="#2"))
        assert snapshot.degree("r1") == 2

    def test_iter_loads_both_directions(self):
        snapshot = _snapshot_with("r1", "r2")
        snapshot.add_link(_link("r1", "r2", 10, 20))
        loads = {(source, load) for _, source, load in snapshot.iter_loads()}
        assert loads == {("r1", 10.0), ("r2", 20.0)}


class TestParallelGroup:
    def test_imbalance_simple(self):
        group = ParallelGroup("a", "b", loads=(10, 12, 11), external=False)
        assert group.imbalance() == 2

    def test_zero_loads_filtered(self):
        # "We ignore links with 0 % load as they are unused."
        group = ParallelGroup("a", "b", loads=(0, 10, 12), external=False)
        assert group.imbalance() == 2

    def test_one_percent_loads_filtered(self):
        # "We also discount links with 1 % load."
        group = ParallelGroup("a", "b", loads=(1, 10, 12), external=False)
        assert group.imbalance() == 2

    def test_singleton_after_filter_dropped(self):
        # "We remove sets with only one remaining link."
        group = ParallelGroup("a", "b", loads=(0, 1, 12), external=False)
        assert group.imbalance() is None

    def test_empty_after_filter_dropped(self):
        group = ParallelGroup("a", "b", loads=(0, 1), external=False)
        assert group.imbalance() is None

    def test_perfectly_balanced(self):
        group = ParallelGroup("a", "b", loads=(30, 30, 30, 30), external=True)
        assert group.imbalance() == 0
