"""Unit tests for repro.geometry.point."""

import math

import pytest

from repro.geometry import Point


class TestArithmetic:
    def test_addition(self):
        assert Point(1, 2) + Point(3, 4) == Point(4, 6)

    def test_subtraction(self):
        assert Point(3, 4) - Point(1, 2) == Point(2, 2)

    def test_scalar_multiplication(self):
        assert Point(1, -2) * 3 == Point(3, -6)

    def test_right_multiplication(self):
        assert 2 * Point(1, 2) == Point(2, 4)

    def test_division(self):
        assert Point(4, 6) / 2 == Point(2, 3)

    def test_negation(self):
        assert -Point(1, -2) == Point(-1, 2)


class TestProducts:
    def test_dot_product(self):
        assert Point(1, 2).dot(Point(3, 4)) == 11

    def test_dot_orthogonal_is_zero(self):
        assert Point(1, 0).dot(Point(0, 5)) == 0

    def test_cross_product_sign(self):
        # In screen coords, (1,0) x (0,1) is positive (clockwise visual).
        assert Point(1, 0).cross(Point(0, 1)) == 1

    def test_cross_parallel_is_zero(self):
        assert Point(2, 4).cross(Point(1, 2)) == 0


class TestMetrics:
    def test_norm(self):
        assert Point(3, 4).norm() == 5

    def test_distance(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == 5

    def test_midpoint(self):
        assert Point(0, 0).midpoint(Point(4, 6)) == Point(2, 3)

    def test_is_close_within_tolerance(self):
        assert Point(1, 1).is_close(Point(1 + 1e-12, 1))

    def test_is_close_outside_tolerance(self):
        assert not Point(1, 1).is_close(Point(1.1, 1))


class TestDirections:
    def test_normalized_unit_length(self):
        assert Point(3, 4).normalized().norm() == pytest.approx(1.0)

    def test_normalized_zero_vector_raises(self):
        with pytest.raises(ValueError):
            Point(0, 0).normalized()

    def test_perpendicular_is_orthogonal(self):
        p = Point(3, 7)
        assert p.dot(p.perpendicular()) == 0

    def test_rotated_quarter_turn(self):
        rotated = Point(1, 0).rotated(math.pi / 2)
        assert rotated.is_close(Point(0, 1), tolerance=1e-9)

    def test_rotated_preserves_norm(self):
        assert Point(3, 4).rotated(1.234).norm() == pytest.approx(5.0)


class TestSerialisation:
    def test_as_tuple(self):
        assert Point(1.5, -2.5).as_tuple() == (1.5, -2.5)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            Point(1, 2).x = 3  # type: ignore[misc]
