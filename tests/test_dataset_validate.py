"""Tests for dataset validation."""

from datetime import timedelta

import pytest

from repro.cli.main import main
from repro.constants import MapName, REFERENCE_DATE
from repro.dataset.collector import SimulatedCollector
from repro.dataset.corruption import CorruptionInjector
from repro.dataset.processor import process_map
from repro.dataset.store import DatasetStore
from repro.dataset.validate import validate_dataset, validate_map


@pytest.fixture()
def clean_dataset(tmp_path, simulator):
    store = DatasetStore(tmp_path)
    collector = SimulatedCollector(
        simulator,
        store,
        corruption=CorruptionInjector(seed=simulator.config.seed, rate=0.0),
    )
    start = REFERENCE_DATE - timedelta(minutes=30)
    collector.collect(start, REFERENCE_DATE, maps=[MapName.WORLD])
    process_map(store, MapName.WORLD)
    return store


class TestCleanDataset:
    def test_valid(self, clean_dataset):
        report = validate_map(clean_dataset, MapName.WORLD, cross_check_fraction=1.0)
        assert report.ok
        assert report.yaml_files == 6
        assert report.cross_checked == 6
        assert report.cross_check_failures == 0
        assert report.unprocessed_svg == 0

    def test_dataset_wide(self, clean_dataset):
        reports = validate_dataset(clean_dataset)
        assert set(reports) == {MapName.WORLD}
        assert reports[MapName.WORLD].ok

    def test_cross_check_sampling_deterministic(self, clean_dataset):
        first = validate_map(clean_dataset, MapName.WORLD, cross_check_fraction=0.5)
        second = validate_map(clean_dataset, MapName.WORLD, cross_check_fraction=0.5)
        assert first.cross_checked == second.cross_checked


class TestDefects:
    def test_schema_failure_detected(self, clean_dataset):
        ref = next(iter(clean_dataset.iter_refs(MapName.WORLD, "yaml")))
        ref.path.write_text("routers: [unclosed", encoding="utf-8")
        report = validate_map(clean_dataset, MapName.WORLD)
        assert not report.ok
        assert report.schema_failures == 1
        assert report.problems

    def test_tampered_yaml_detected_by_cross_check(self, clean_dataset):
        ref = next(iter(clean_dataset.iter_refs(MapName.WORLD, "yaml")))
        import re

        text = ref.path.read_text(encoding="utf-8")
        # Flip one load value: schema-valid, but no longer matches the SVG.
        tampered = re.sub(
            r"load: (\d+)",
            lambda m: f"load: {(int(m.group(1)) + 7) % 101}",
            text,
            count=1,
        )
        assert tampered != text
        ref.path.write_text(tampered, encoding="utf-8")
        report = validate_map(clean_dataset, MapName.WORLD, cross_check_fraction=1.0)
        assert report.cross_check_failures >= 1
        assert not report.ok

    def test_unpaired_yaml_detected(self, clean_dataset):
        ref = next(iter(clean_dataset.iter_refs(MapName.WORLD, "svg")))
        ref.path.unlink()
        report = validate_map(clean_dataset, MapName.WORLD, cross_check_fraction=0.0)
        assert report.unpaired_yaml == 1
        assert not report.ok

    def test_unprocessed_svg_counted_not_fatal(self, clean_dataset, simulator):
        # Add one fresh SVG that was never processed.
        when = REFERENCE_DATE + timedelta(minutes=-35)
        from repro.layout.renderer import MapRenderer

        svg = MapRenderer().render(simulator.snapshot(MapName.WORLD, when))
        clean_dataset.write(MapName.WORLD, when, "svg", svg)
        report = validate_map(clean_dataset, MapName.WORLD, cross_check_fraction=0.0)
        assert report.unprocessed_svg == 1
        assert report.ok  # expected condition, not a validation failure


class TestCli:
    def test_cli_validate_ok(self, clean_dataset, capsys):
        code = main(["validate", str(clean_dataset.root)])
        assert code == 0
        assert "ok" in capsys.readouterr().out

    def test_cli_validate_problems(self, clean_dataset, capsys):
        ref = next(iter(clean_dataset.iter_refs(MapName.WORLD, "yaml")))
        ref.path.write_text("routers: [unclosed", encoding="utf-8")
        code = main(["validate", str(clean_dataset.root)])
        assert code == 1
        assert "PROBLEMS" in capsys.readouterr().out

    def test_cli_validate_empty(self, tmp_path, capsys):
        code = main(["validate", str(tmp_path)])
        assert code == 1
