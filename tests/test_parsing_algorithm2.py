"""Unit tests for Algorithm 2 (geometric object attribution).

These build extraction results by hand so each geometric rule can be
exercised in isolation: nearest-router selection, nearest-label selection,
the distance threshold, and single-use label consumption (the defence
against duplicate labels on parallel links).
"""

import pytest

from repro.errors import MissingLabelError, MissingRouterError, SelfLinkError
from repro.geometry import Point, Rect
from repro.parsing.algorithm1 import ExtractedLabel, ExtractedLink, ExtractionResult
from repro.parsing.algorithm2 import attribute_objects
from repro.svgdoc.elements import ArrowElement, ObjectElement


def _arrow(base_left: Point, tip: Point) -> ArrowElement:
    """Minimal 3-point arrow whose basis midpoint is computable."""
    base_right = Point(base_left.x, base_left.y + 10)
    return ArrowElement(points=(base_left, tip, base_right))


def _horizontal_link(x_left: float, x_right: float, y: float = 0.0) -> ExtractedLink:
    """A link whose bases sit at (x_left, y+5) and (x_right, y+5)."""
    return ExtractedLink(
        arrows=[
            _arrow(Point(x_left, y), Point((x_left + x_right) / 2 - 2, y + 5)),
            _arrow(Point(x_right, y), Point((x_left + x_right) / 2 + 2, y + 5)),
        ],
        loads=[42.0, 9.0],
    )


def _router(name: str, x: float, y: float = -8.0) -> ObjectElement:
    """A 40x26 box; y chosen so the link line at y+5 crosses it."""
    return ObjectElement(name=name, box=Rect(x, y, 40, 26))


def _label(text: str, center: Point) -> ExtractedLabel:
    return ExtractedLabel(box=Rect(center.x - 6, center.y - 4, 12, 8), text=text)


def _simple_world() -> ExtractionResult:
    """One link from router a (left) to router b (right), labels on bases."""
    return ExtractionResult(
        routers=[_router("left-router", 40), _router("right-router", 220)],
        links=[_horizontal_link(90, 210)],
        labels=[_label("#1", Point(90, 5)), _label("#2", Point(210, 5))],
    )


class TestHappyPath:
    def test_ends_connected_to_nearest_routers(self):
        links = attribute_objects(_simple_world())
        assert links[0].a.router.name == "left-router"
        assert links[0].b.router.name == "right-router"

    def test_labels_attributed_per_end(self):
        links = attribute_objects(_simple_world())
        assert links[0].a.label.text == "#1"
        assert links[0].b.label.text == "#2"

    def test_loads_follow_arrow_order(self):
        links = attribute_objects(_simple_world())
        assert links[0].a.load == 42.0
        assert links[0].b.load == 9.0


class TestRouterAttribution:
    def test_no_router_on_line(self):
        world = _simple_world()
        world.routers = []
        with pytest.raises(MissingRouterError):
            attribute_objects(world)

    def test_dropped_objects_reproduce_paper_failure(self):
        # "Some SVG files are lacking elements, such as OVH routers,
        # resulting in a failure to find intersections for a given link."
        world = _simple_world()
        world.routers = [_router("left-router", 40)]
        with pytest.raises(SelfLinkError):
            # Both ends now resolve to the only router on the line.
            attribute_objects(world)

    def test_intermediate_router_not_stolen(self):
        # A third box sits on the line, but each end still connects to
        # its *nearest* intersecting router.
        world = _simple_world()
        world.routers.append(_router("middle-router", 130))
        links = attribute_objects(world)
        assert links[0].a.router.name == "left-router"
        assert links[0].b.router.name == "right-router"

    def test_off_line_router_ignored(self):
        world = _simple_world()
        world.routers.append(_router("way-up", 90, y=-500))
        links = attribute_objects(world)
        assert links[0].a.router.name == "left-router"


class TestLabelAttribution:
    def test_missing_label_raises(self):
        world = _simple_world()
        world.labels = [world.labels[0]]
        with pytest.raises(MissingLabelError):
            attribute_objects(world)

    def test_distance_threshold_enforced(self):
        world = _simple_world()
        # Both labels exist but one is 300 px along the line.
        world.labels[1] = _label("#2", Point(510, 5))
        with pytest.raises(MissingLabelError) as info:
            attribute_objects(world, label_distance_threshold=40)
        assert info.value.distance is not None
        assert info.value.distance > 40

    def test_threshold_configurable(self):
        world = _simple_world()
        world.labels[1] = _label("#2", Point(245, 5))
        attribute_objects(world, label_distance_threshold=50)
        with pytest.raises(MissingLabelError):
            attribute_objects(world, label_distance_threshold=10)

    def test_off_line_label_ignored(self):
        world = _simple_world()
        world.labels.append(_label("#9", Point(90, 300)))
        links = attribute_objects(world)
        assert links[0].a.label.text == "#1"


class TestLabelConsumption:
    """The paper's rule: "labels get assigned to a link only once"."""

    def test_duplicate_labels_on_parallel_links(self):
        # Two parallel links, all four labels read "#1" (VODAFONE case).
        routers = [
            ObjectElement(name="left-router", box=Rect(40, -10, 40, 60)),
            ObjectElement(name="right-router", box=Rect(220, -10, 40, 60)),
        ]
        links = [_horizontal_link(90, 210, y=0), _horizontal_link(90, 210, y=20)]
        labels = [
            _label("#1", Point(90, 5)),
            _label("#1", Point(210, 5)),
            _label("#1", Point(90, 25)),
            _label("#1", Point(210, 25)),
        ]
        world = ExtractionResult(routers=routers, links=links, labels=labels)
        attributed = attribute_objects(world)
        assert len(attributed) == 2
        used = [link.a.label for link in attributed] + [
            link.b.label for link in attributed
        ]
        # All four label *instances* used exactly once.
        assert len({id(label) for label in used}) == 4

    def test_consumed_label_not_reused(self):
        # Second link's nearest label was already taken by the first; with
        # no other label in range the second link must fail, not share.
        routers = [
            ObjectElement(name="left-router", box=Rect(40, -10, 40, 60)),
            ObjectElement(name="right-router", box=Rect(220, -10, 40, 60)),
        ]
        links = [_horizontal_link(90, 210, y=0), _horizontal_link(90, 210, y=1)]
        labels = [
            _label("#1", Point(90, 5)),
            _label("#1", Point(210, 5)),
        ]
        world = ExtractionResult(routers=routers, links=links, labels=labels)
        with pytest.raises(MissingLabelError):
            attribute_objects(world)


class TestSelfLink:
    def test_self_link_detected(self):
        world = _simple_world()
        # One wide box swallows both ends.
        world.routers = [ObjectElement(name="wide", box=Rect(0, -10, 400, 40))]
        with pytest.raises(SelfLinkError):
            attribute_objects(world)
