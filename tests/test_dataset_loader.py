"""Unit tests for loading stored datasets back as snapshot streams."""

from datetime import datetime, timedelta, timezone

import pytest

from repro.constants import MapName
from repro.dataset.loader import iter_snapshots, latest_snapshot, load_all
from repro.dataset.store import DatasetStore
from repro.errors import SchemaError
from repro.topology.model import Link, LinkEnd, MapSnapshot, Node
from repro.yamlio.serialize import snapshot_to_yaml

T0 = datetime(2022, 3, 1, tzinfo=timezone.utc)


def _snapshot(when: datetime, load: float = 10) -> MapSnapshot:
    snapshot = MapSnapshot(map_name=MapName.EUROPE, timestamp=when)
    snapshot.add_node(Node.from_name("r1"))
    snapshot.add_node(Node.from_name("r2"))
    snapshot.add_link(Link(LinkEnd("r1", "#1", load), LinkEnd("r2", "#1", load)))
    return snapshot


@pytest.fixture()
def store(tmp_path) -> DatasetStore:
    store = DatasetStore(tmp_path)
    for index in range(5):
        when = T0 + timedelta(minutes=5 * index)
        store.write(
            MapName.EUROPE, when, "yaml", snapshot_to_yaml(_snapshot(when, load=index))
        )
    return store


class TestIteration:
    def test_all_in_order(self, store):
        snapshots = load_all(store, MapName.EUROPE)
        assert len(snapshots) == 5
        times = [s.timestamp for s in snapshots]
        assert times == sorted(times)

    def test_window_filtering(self, store):
        snapshots = load_all(
            store,
            MapName.EUROPE,
            start=T0 + timedelta(minutes=5),
            end=T0 + timedelta(minutes=15),
        )
        assert len(snapshots) == 2

    def test_empty_map(self, store):
        assert load_all(store, MapName.WORLD) == []

    def test_filename_timestamp_authoritative(self, store, tmp_path):
        # Write a document whose embedded timestamp lies.
        lying = _snapshot(T0)
        text = snapshot_to_yaml(lying).replace(
            T0.isoformat(), (T0 - timedelta(days=9)).isoformat()
        )
        when = T0 + timedelta(hours=1)
        store.write(MapName.EUROPE, when, "yaml", text)
        latest = latest_snapshot(store, MapName.EUROPE)
        assert latest.timestamp == when


class TestErrorHandling:
    def test_corrupt_file_propagates_by_default(self, store):
        when = T0 + timedelta(hours=2)
        store.write(MapName.EUROPE, when, "yaml", "routers: [unclosed")
        with pytest.raises(SchemaError):
            load_all(store, MapName.EUROPE)

    def test_corrupt_file_skipped_with_handler(self, store):
        when = T0 + timedelta(hours=2)
        store.write(MapName.EUROPE, when, "yaml", "routers: [unclosed")
        errors = []
        snapshots = list(
            iter_snapshots(
                store,
                MapName.EUROPE,
                on_error=lambda ref, exc: errors.append(ref.timestamp),
            )
        )
        assert len(snapshots) == 5
        assert errors == [when]


class TestLatest:
    def test_latest(self, store):
        latest = latest_snapshot(store, MapName.EUROPE)
        assert latest is not None
        assert latest.links[0].a.load == 4  # written last

    def test_latest_empty(self, store):
        assert latest_snapshot(store, MapName.WORLD) is None

    def test_latest_walks_past_trailing_corruption(self, store):
        # A campaign dying mid-write leaves the newest file truncated; the
        # loader must fall back to the newest snapshot that still parses.
        store.write(MapName.EUROPE, T0 + timedelta(hours=2), "yaml", "routers: [unclosed")
        store.write(MapName.EUROPE, T0 + timedelta(hours=3), "yaml", "")
        latest = latest_snapshot(store, MapName.EUROPE)
        assert latest is not None
        assert latest.timestamp == T0 + timedelta(minutes=20)
        assert latest.links[0].a.load == 4

    def test_latest_all_corrupt_is_none(self, store, tmp_path):
        other = DatasetStore(tmp_path / "all-corrupt")
        other.write(MapName.EUROPE, T0, "yaml", "routers: [unclosed")
        assert latest_snapshot(other, MapName.EUROPE) is None


class TestIndexFastPath:
    def test_index_and_yaml_paths_agree(self, store):
        from repro.dataset.index import build_index, fresh_index

        via_yaml = load_all(store, MapName.EUROPE, use_index=False)
        build_index(store, MapName.EUROPE)
        assert fresh_index(store, MapName.EUROPE) is not None
        assert load_all(store, MapName.EUROPE) == via_yaml
        assert list(iter_snapshots(store, MapName.EUROPE)) == via_yaml

    def test_stale_index_ignored(self, store):
        from repro.dataset.index import build_index

        build_index(store, MapName.EUROPE)
        when = T0 + timedelta(hours=1)
        store.write(MapName.EUROPE, when, "yaml", snapshot_to_yaml(_snapshot(when, load=9)))
        assert len(load_all(store, MapName.EUROPE)) == 6


class TestParallelLoad:
    def test_matches_serial(self, store):
        serial = load_all(store, MapName.EUROPE)
        parallel = load_all(store, MapName.EUROPE, workers=2)
        assert parallel == serial

    def test_window_filtering(self, store):
        parallel = load_all(
            store,
            MapName.EUROPE,
            start=T0 + timedelta(minutes=5),
            end=T0 + timedelta(minutes=15),
            workers=2,
        )
        assert parallel == load_all(
            store,
            MapName.EUROPE,
            start=T0 + timedelta(minutes=5),
            end=T0 + timedelta(minutes=15),
        )
        assert len(parallel) == 2

    def test_empty_map(self, store):
        assert load_all(store, MapName.WORLD, workers=2) == []

    def test_corrupt_file_propagates_by_default(self, store):
        when = T0 + timedelta(hours=2)
        store.write(MapName.EUROPE, when, "yaml", "routers: [unclosed")
        with pytest.raises(SchemaError):
            load_all(store, MapName.EUROPE, workers=2)

    def test_corrupt_file_skipped_with_handler(self, store):
        when = T0 + timedelta(hours=2)
        store.write(MapName.EUROPE, when, "yaml", "routers: [unclosed")
        errors = []
        snapshots = load_all(
            store,
            MapName.EUROPE,
            workers=2,
            on_error=lambda ref, exc: errors.append(ref.timestamp),
        )
        assert len(snapshots) == 5
        assert errors == [when]


class TestPoolCollapse:
    """The loader skips the process pool wherever it cannot win.

    This is what keeps ``speedup_load`` honest in the benchmark: a
    "parallel" load that would collapse to serial work is never measured
    as if a pool had run.
    """

    @staticmethod
    def _forbid_pool(monkeypatch):
        from repro.dataset import loader as loader_module

        def forbidden(*args, **kwargs):
            raise AssertionError("no process pool may be spawned here")

        monkeypatch.setattr(loader_module, "ProcessPoolExecutor", forbidden)

    def test_fresh_index_never_spawns_a_pool(self, store, monkeypatch):
        from repro.dataset.index import build_index

        build_index(store, MapName.EUROPE)
        self._forbid_pool(monkeypatch)
        assert len(load_all(store, MapName.EUROPE, workers=8)) == 5

    def test_collapsed_request_never_spawns_a_pool(self, store, monkeypatch):
        from repro.dataset import loader as loader_module

        serial = load_all(store, MapName.EUROPE, use_index=False)
        monkeypatch.setattr(
            loader_module, "resolve_workers", lambda workers, default=1: 1
        )
        self._forbid_pool(monkeypatch)
        assert (
            load_all(store, MapName.EUROPE, workers=8, use_index=False) == serial
        )

    def test_single_core_host_collapses_any_request(self, monkeypatch):
        import repro.dataset.workers as workers_module

        monkeypatch.setattr(workers_module.os, "cpu_count", lambda: 1)
        from repro.dataset.workers import resolve_workers

        assert resolve_workers(8) == 1
        assert resolve_workers("auto") == 1
        assert resolve_workers(0) == 1
