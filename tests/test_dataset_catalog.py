"""Unit tests for the dataset catalog (Figures 2 and 3 primitives)."""

from datetime import datetime, timedelta, timezone

from repro.constants import MapName, SNAPSHOT_INTERVAL
from repro.dataset.catalog import DatasetCatalog
from repro.dataset.store import DatasetStore

T0 = datetime(2022, 1, 1, tzinfo=timezone.utc)


def _store_with(tmp_path, stamps) -> DatasetStore:
    store = DatasetStore(tmp_path)
    for stamp in stamps:
        store.write(MapName.EUROPE, stamp, "svg", "<svg/>")
    return store


class TestDistances:
    def test_regular_cadence(self, tmp_path):
        stamps = [T0 + SNAPSHOT_INTERVAL * i for i in range(10)]
        catalog = DatasetCatalog(_store_with(tmp_path, stamps))
        distances = catalog.distances(MapName.EUROPE)
        assert len(distances) == 9
        assert all(d == 300 for d in distances)

    def test_gap_visible(self, tmp_path):
        stamps = [T0, T0 + SNAPSHOT_INTERVAL, T0 + timedelta(minutes=30)]
        catalog = DatasetCatalog(_store_with(tmp_path, stamps))
        assert sorted(catalog.distances(MapName.EUROPE)) == [300, 1500]

    def test_empty_map(self, tmp_path):
        catalog = DatasetCatalog(_store_with(tmp_path, []))
        assert catalog.distances(MapName.WORLD).size == 0
        assert catalog.snapshot_count(MapName.WORLD) == 0

    def test_distance_cdf(self, tmp_path):
        stamps = [T0, T0 + SNAPSHOT_INTERVAL, T0 + timedelta(minutes=30)]
        catalog = DatasetCatalog(_store_with(tmp_path, stamps))
        xs, fractions = catalog.distance_cdf(MapName.EUROPE)
        assert list(xs) == [300, 1500]
        assert list(fractions) == [0.5, 1.0]

    def test_fraction_at_resolution(self, tmp_path):
        stamps = [T0, T0 + SNAPSHOT_INTERVAL, T0 + timedelta(minutes=30)]
        catalog = DatasetCatalog(_store_with(tmp_path, stamps))
        assert catalog.fraction_at_resolution(MapName.EUROPE) == 0.5


class TestTimeFrames:
    def test_single_frame(self, tmp_path):
        stamps = [T0 + SNAPSHOT_INTERVAL * i for i in range(5)]
        catalog = DatasetCatalog(_store_with(tmp_path, stamps))
        frames = catalog.time_frames(MapName.EUROPE)
        assert len(frames) == 1
        assert frames[0].snapshot_count == 5
        assert frames[0].duration == SNAPSHOT_INTERVAL * 4

    def test_split_on_large_gap(self, tmp_path):
        stamps = [T0, T0 + SNAPSHOT_INTERVAL] + [
            T0 + timedelta(days=30) + SNAPSHOT_INTERVAL * i for i in range(3)
        ]
        catalog = DatasetCatalog(_store_with(tmp_path, stamps))
        frames = catalog.time_frames(MapName.EUROPE, max_gap=timedelta(hours=1))
        assert len(frames) == 2
        assert frames[0].snapshot_count == 2
        assert frames[1].snapshot_count == 3

    def test_small_gap_not_split(self, tmp_path):
        stamps = [T0, T0 + timedelta(minutes=30)]
        catalog = DatasetCatalog(_store_with(tmp_path, stamps))
        frames = catalog.time_frames(MapName.EUROPE, max_gap=timedelta(hours=1))
        assert len(frames) == 1

    def test_empty(self, tmp_path):
        catalog = DatasetCatalog(_store_with(tmp_path, []))
        assert catalog.time_frames(MapName.EUROPE) == []

    def test_caching(self, tmp_path):
        stamps = [T0]
        store = _store_with(tmp_path, stamps)
        catalog = DatasetCatalog(store)
        assert catalog.snapshot_count(MapName.EUROPE) == 1
        # Adding a file after the first query is invisible (cached index).
        store.write(MapName.EUROPE, T0 + SNAPSHOT_INTERVAL, "svg", "<svg/>")
        assert catalog.snapshot_count(MapName.EUROPE) == 1
