"""Cross-module property-based tests (hypothesis).

These target the invariants the reproduction's correctness rests on:
YAML round-trips, ECMP conservation, label-relaxation spacing, and the
lifetime algebra behind the evolution counters.
"""

from datetime import datetime, timedelta, timezone

from hypothesis import given, settings, strategies as st

from repro.analysis.stats import cdf, fraction_at_most
from repro.constants import MapName
from repro.layout.arrows import relax_positions
from repro.simulation.ecmp import spread_demand, zero_sum_jitter
from repro.simulation.evolution import Lifetime
from repro.topology.model import Link, LinkEnd, MapSnapshot, Node
from repro.yamlio.deserialize import snapshot_from_yaml
from repro.yamlio.serialize import snapshot_to_yaml

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

node_names = st.from_regex(r"[a-z]{3}-r[0-9]{1,2}", fullmatch=True)
peering_names = st.from_regex(r"[A-Z]{3,8}", fullmatch=True)
labels = st.from_regex(r"#[0-9]{1,2}", fullmatch=True)
loads = st.integers(min_value=0, max_value=100).map(float)


@st.composite
def snapshots(draw):
    """A structurally valid random snapshot."""
    routers = draw(st.lists(node_names, min_size=2, max_size=6, unique=True))
    peerings = draw(st.lists(peering_names, min_size=0, max_size=3, unique=True))
    snapshot = MapSnapshot(
        map_name=draw(st.sampled_from(list(MapName))),
        timestamp=datetime(2022, 1, 1, tzinfo=timezone.utc)
        + timedelta(minutes=5 * draw(st.integers(0, 10000))),
    )
    for name in routers + peerings:
        snapshot.add_node(Node.from_name(name))
    link_count = draw(st.integers(0, 8))
    all_names = routers + peerings
    for _ in range(link_count):
        a = draw(st.sampled_from(routers))
        b = draw(st.sampled_from(all_names))
        if a == b:
            continue
        snapshot.add_link(
            Link(
                a=LinkEnd(a, draw(labels), draw(loads)),
                b=LinkEnd(b, draw(labels), draw(loads)),
            )
        )
    return snapshot


# ---------------------------------------------------------------------------
# YAML round trip
# ---------------------------------------------------------------------------


@given(snapshots())
@settings(max_examples=60, deadline=None)
def test_yaml_round_trip_preserves_everything(snapshot):
    restored = snapshot_from_yaml(snapshot_to_yaml(snapshot))
    assert restored.map_name == snapshot.map_name
    assert restored.timestamp == snapshot.timestamp
    assert set(restored.nodes) == set(snapshot.nodes)
    original = sorted(
        tuple(sorted([(l.a.node, l.a.label, l.a.load), (l.b.node, l.b.label, l.b.load)]))
        for l in snapshot.links
    )
    recovered = sorted(
        tuple(sorted([(l.a.node, l.a.label, l.a.load), (l.b.node, l.b.label, l.b.load)]))
        for l in restored.links
    )
    assert original == recovered


# ---------------------------------------------------------------------------
# ECMP
# ---------------------------------------------------------------------------


@given(
    st.integers(min_value=1, max_value=16),
    st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
    st.integers(),
)
def test_jitter_always_zero_sum(count, sigma, salt):
    offsets = zero_sum_jitter(count, sigma, "prop", salt)
    assert abs(sum(offsets)) < 1e-6


@given(
    st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    st.lists(st.booleans(), min_size=1, max_size=12),
    st.integers(),
)
def test_spread_demand_bounds_and_activity(demand, active, salt):
    result = spread_demand(demand, active, 1.0, None, "prop", salt)
    assert len(result) == len(active)
    for flag, load in zip(active, result):
        assert 0.0 <= load <= 100.0
        if not flag:
            assert load == 0.0


# ---------------------------------------------------------------------------
# Relaxation
# ---------------------------------------------------------------------------


@given(
    st.lists(st.floats(min_value=0, max_value=999, allow_nan=False), min_size=1, max_size=24),
    st.floats(min_value=100, max_value=2000, allow_nan=False),
)
def test_relax_positions_properties(ideal, total):
    gap = 10.0
    relaxed = relax_positions(list(ideal), total, gap=gap)
    assert len(relaxed) == len(ideal)
    effective_gap = min(gap, total / len(ideal))
    ordered = sorted(relaxed)
    for a, b in zip(ordered, ordered[1:]):
        assert b - a >= effective_gap - 1e-6
    # Rank order of the inputs is preserved.
    input_order = sorted(range(len(ideal)), key=lambda i: ideal[i])
    output_order = sorted(range(len(relaxed)), key=lambda i: relaxed[i])
    assert input_order == output_order


# ---------------------------------------------------------------------------
# Lifetimes
# ---------------------------------------------------------------------------

instants = st.integers(min_value=0, max_value=1000).map(
    lambda d: datetime(2020, 7, 1, tzinfo=timezone.utc) + timedelta(days=d)
)


@st.composite
def lifetimes(draw):
    birth = draw(instants)
    death = draw(st.one_of(st.none(), instants.filter(lambda t: t > birth)))
    outage_start = draw(instants)
    outage_length = draw(st.integers(min_value=1, max_value=20))
    outages = ()
    if draw(st.booleans()):
        outages = ((outage_start, outage_start + timedelta(days=outage_length)),)
    if death is None:
        return Lifetime(birth=birth, outages=outages)
    return Lifetime(birth=birth, death=death, outages=outages)


@given(lifetimes(), instants)
@settings(max_examples=200)
def test_intervals_agree_with_alive_at(lifetime, when):
    in_intervals = any(start <= when < end for start, end in lifetime.intervals())
    assert in_intervals == lifetime.alive_at(when)


@given(lifetimes(), lifetimes(), instants)
@settings(max_examples=200)
def test_intersection_agrees_with_conjunction(a, b, when):
    in_intersection = any(
        start <= when < end for start, end in a.intersect(b)
    )
    assert in_intersection == (a.alive_at(when) and b.alive_at(when))


# ---------------------------------------------------------------------------
# Stats
# ---------------------------------------------------------------------------


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=1))
def test_cdf_is_monotone_distribution(values):
    xs, fractions = cdf(values)
    assert fractions[-1] == 1.0
    assert all(b >= a for a, b in zip(fractions, fractions[1:]))
    assert all(b >= a for a, b in zip(xs, xs[1:]))


@given(
    st.lists(st.floats(min_value=0, max_value=100, allow_nan=False), min_size=1),
    st.floats(min_value=-10, max_value=110, allow_nan=False),
)
def test_fraction_at_most_matches_count(values, threshold):
    expected = sum(1 for v in values if v <= threshold) / len(values)
    assert fraction_at_most(values, threshold) == expected
