"""Tests for the change-narrative generator."""

from datetime import datetime, timedelta, timezone

import pytest

from repro.analysis.narrative import build_changelog
from repro.constants import MapName
from repro.peeringdb.feed import SyntheticPeeringDB
from repro.statusfeed.feed import SyntheticStatusFeed
from repro.topology.model import Link, LinkEnd, MapSnapshot, Node

T0 = datetime(2022, 1, 1, tzinfo=timezone.utc)


def _snapshot(when, nodes, links):
    snapshot = MapSnapshot(map_name=MapName.EUROPE, timestamp=when)
    for name in nodes:
        snapshot.add_node(Node.from_name(name))
    for a, b, label in links:
        snapshot.add_link(Link(LinkEnd(a, label, 10), LinkEnd(b, label, 10)))
    return snapshot


class TestSyntheticNarratives:
    def test_requires_two_snapshots(self):
        with pytest.raises(ValueError):
            build_changelog([_snapshot(T0, ["fra-r1", "lon-r1"], [])])

    def test_no_changes(self):
        a = _snapshot(T0, ["fra-r1", "lon-r1"], [("fra-r1", "lon-r1", "#1")])
        b = _snapshot(
            T0 + timedelta(days=1), ["fra-r1", "lon-r1"], [("fra-r1", "lon-r1", "#1")]
        )
        changelog = build_changelog([a, b])
        assert "no changes" in changelog.render()

    def test_router_addition_narrated(self):
        a = _snapshot(T0, ["fra-r1", "lon-r1"], [("fra-r1", "lon-r1", "#1")])
        b = _snapshot(
            T0 + timedelta(days=1),
            ["fra-r1", "lon-r1", "fra-r2"],
            [("fra-r1", "lon-r1", "#1"), ("fra-r1", "fra-r2", "#1")],
        )
        text = build_changelog([a, b]).render()
        assert "1 routers added" in text
        assert "fra-r2" in text
        assert "+1 internal" in text

    def test_new_peering_narrated(self):
        a = _snapshot(T0, ["fra-r1", "lon-r1"], [("fra-r1", "lon-r1", "#1")])
        b = _snapshot(
            T0 + timedelta(days=1),
            ["fra-r1", "lon-r1", "NEWIX"],
            [("fra-r1", "lon-r1", "#1"), ("fra-r1", "NEWIX", "#1")],
        )
        text = build_changelog([a, b]).render()
        assert "NEWIX" in text
        assert "+1 external" in text


class TestSimulatedNarrative:
    @pytest.fixture(scope="class")
    def window(self, simulator):
        scenario = simulator.upgrade
        start = scenario.added_at - timedelta(days=10)
        end = scenario.activated_at + timedelta(days=12)
        step = (end - start) / 30
        return [
            simulator.snapshot(MapName.EUROPE, start + step * i) for i in range(31)
        ]

    def test_upgrade_narrated_with_peeringdb(self, simulator, window):
        changelog = build_changelog(
            window, peeringdb=SyntheticPeeringDB(simulator)
        )
        text = changelog.render()
        assert "capacity upgrade towards AMS-IX" in text
        assert "400 → 500 Gbps" in text
        assert "100 Gbps per link" in text

    def test_status_context_included(self, simulator, window):
        changelog = build_changelog(
            window, status_feed=SyntheticStatusFeed(simulator)
        )
        assert "status page reports" in changelog.render()

    def test_cli_changelog(self, capsys):
        from repro.cli.main import main

        code = main(
            [
                "changelog",
                "--map",
                "europe",
                "--start",
                "2022-03-01",
                "--end",
                "2022-04-01",
                "--samples",
                "20",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Europe map" in out
        assert "AMS-IX" in out
