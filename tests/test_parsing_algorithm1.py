"""Unit tests for Algorithm 1 (sequential tag-stream extraction)."""

import pytest

from repro.errors import IncompleteLinkError, LoadRangeError, MalformedSvgError
from repro.geometry import Point, Rect
from repro.parsing.algorithm1 import extract_objects
from repro.svgdoc.reader import read_svg_tags
from repro.svgdoc.writer import WeathermapSvgWriter


def _writer() -> WeathermapSvgWriter:
    return WeathermapSvgWriter(width=400, height=300)


def _triangle(offset: float) -> list[Point]:
    return [Point(offset, 0), Point(offset + 10, 5), Point(offset, 10)]


def _document_with_link(load_a: float = 42, load_b: float = 9) -> str:
    writer = _writer()
    writer.add_object("fra-r1", Rect(10, 10, 60, 20), is_peering=False)
    writer.add_object("ARELION", Rect(200, 10, 60, 20), is_peering=True)
    writer.add_link(
        arrows=[(_triangle(80), "#fff"), (_triangle(140), "#000")],
        loads=[(load_a, Point(100, 50)), (load_b, Point(120, 50))],
    )
    writer.add_link_label("#1", Rect(75, 5, 12, 8))
    writer.add_link_label("#1", Rect(150, 5, 12, 8))
    return writer.to_svg()


class TestExtraction:
    def test_routers_and_peerings_extracted(self):
        result = extract_objects(read_svg_tags(_document_with_link()))
        names = {obj.name for obj in result.routers}
        assert names == {"fra-r1", "ARELION"}

    def test_link_pairing(self):
        result = extract_objects(read_svg_tags(_document_with_link()))
        assert len(result.links) == 1
        link = result.links[0]
        assert link.is_complete
        assert link.loads == [42.0, 9.0]

    def test_labels_extracted_in_order(self):
        result = extract_objects(read_svg_tags(_document_with_link()))
        assert [label.text for label in result.labels] == ["#1", "#1"]

    def test_bases_are_arrow_base_midpoints(self):
        result = extract_objects(read_svg_tags(_document_with_link()))
        base_first, base_second = result.links[0].bases
        assert base_first == Point(80, 5)
        assert base_second == Point(140, 5)

    def test_decorations_ignored(self):
        writer = _writer()
        writer.add_background()
        writer.add_legend([("#fff", "0-1%")])
        result = extract_objects(read_svg_tags(writer.to_svg()))
        assert not result.routers and not result.links and not result.labels


class TestStreamErrors:
    def test_load_out_of_range(self):
        # Bypass the writer's own checks with raw SVG.
        svg = (
            '<svg xmlns="http://www.w3.org/2000/svg" width="10" height="10">'
            '<polygon points="0,0 5,5 0,10"/><polygon points="20,0 25,5 20,10"/>'
            '<text class="labellink" x="1" y="1">142%</text>'
            "</svg>"
        )
        with pytest.raises(LoadRangeError):
            extract_objects(read_svg_tags(svg))

    def test_negative_load_rejected(self):
        svg = (
            '<svg xmlns="http://www.w3.org/2000/svg" width="10" height="10">'
            '<polygon points="0,0 5,5 0,10"/><polygon points="20,0 25,5 20,10"/>'
            '<text class="labellink" x="1" y="1">-3%</text>'
            "</svg>"
        )
        with pytest.raises(LoadRangeError):
            extract_objects(read_svg_tags(svg))

    def test_third_arrow_before_loads(self):
        svg = (
            '<svg xmlns="http://www.w3.org/2000/svg" width="10" height="10">'
            '<polygon points="0,0 5,5 0,10"/><polygon points="20,0 25,5 20,10"/>'
            '<polygon points="40,0 45,5 40,10"/>'
            "</svg>"
        )
        with pytest.raises(IncompleteLinkError):
            extract_objects(read_svg_tags(svg))

    def test_load_without_arrows(self):
        svg = (
            '<svg xmlns="http://www.w3.org/2000/svg" width="10" height="10">'
            '<text class="labellink" x="1" y="1">10%</text>'
            "</svg>"
        )
        with pytest.raises(IncompleteLinkError):
            extract_objects(read_svg_tags(svg))

    def test_document_ending_mid_link(self):
        svg = (
            '<svg xmlns="http://www.w3.org/2000/svg" width="10" height="10">'
            '<polygon points="0,0 5,5 0,10"/>'
            "</svg>"
        )
        with pytest.raises(IncompleteLinkError):
            extract_objects(read_svg_tags(svg))

    def test_label_text_without_box(self):
        svg = (
            '<svg xmlns="http://www.w3.org/2000/svg" width="10" height="10">'
            '<text class="node">#1</text>'
            "</svg>"
        )
        with pytest.raises(MalformedSvgError):
            extract_objects(read_svg_tags(svg))

    def test_two_label_boxes_in_a_row(self):
        svg = (
            '<svg xmlns="http://www.w3.org/2000/svg" width="10" height="10">'
            '<rect class="node" x="0" y="0" width="5" height="5"/>'
            '<rect class="node" x="9" y="0" width="5" height="5"/>'
            "</svg>"
        )
        with pytest.raises(MalformedSvgError):
            extract_objects(read_svg_tags(svg))

    def test_unclosed_label_at_end(self):
        svg = (
            '<svg xmlns="http://www.w3.org/2000/svg" width="10" height="10">'
            '<rect class="node" x="0" y="0" width="5" height="5"/>'
            "</svg>"
        )
        with pytest.raises(MalformedSvgError):
            extract_objects(read_svg_tags(svg))

    def test_malformed_attribute_value(self):
        svg = (
            '<svg xmlns="http://www.w3.org/2000/svg" width="10" height="10">'
            '<rect class="node" x="12..34" y="0" width="5" height="5"/>'
            '<text class="node">#1</text>'
            "</svg>"
        )
        with pytest.raises(MalformedSvgError):
            extract_objects(read_svg_tags(svg))


class TestMultipleLinks:
    def test_consecutive_links(self):
        writer = _writer()
        for offset in (0, 60, 120):
            writer.add_link(
                arrows=[(_triangle(offset), "#fff"), (_triangle(offset + 30), "#000")],
                loads=[(10, Point(offset, 50)), (20, Point(offset + 5, 50))],
            )
        result = extract_objects(read_svg_tags(writer.to_svg()))
        assert len(result.links) == 3
        assert all(link.is_complete for link in result.links)

    def test_interleaved_labels_between_links(self):
        writer = _writer()
        writer.add_link(
            arrows=[(_triangle(0), "#fff"), (_triangle(30), "#000")],
            loads=[(10, Point(0, 50)), (20, Point(5, 50))],
        )
        writer.add_link_label("#1", Rect(0, 60, 10, 8))
        writer.add_link(
            arrows=[(_triangle(60), "#fff"), (_triangle(90), "#000")],
            loads=[(30, Point(60, 50)), (40, Point(65, 50))],
        )
        result = extract_objects(read_svg_tags(writer.to_svg()))
        assert len(result.links) == 2
        assert len(result.labels) == 1
