"""Tests for the project-native static-analysis subsystem (repro.devtools).

Each REP rule is exercised on minimal positive/negative fixtures laid
out as a throwaway ``src/repro`` tree, the suppression machinery is
driven through its used and unused paths, the JSON reporter's schema is
pinned, the ``repro-weather check`` exit-code contract (0 clean /
1 findings / 2 internal error) is covered end to end, and — the check
that keeps all the others honest — the real repository must come back
clean.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli.main import main
from repro.devtools import (
    CheckConfig,
    CheckResult,
    default_config,
    render_human,
    render_json,
    run_checks,
)
from repro.devtools.engine import UNPARSEABLE_RULE, UNUSED_SUPPRESSION_RULE

REPO_ROOT = Path(__file__).resolve().parents[1]


def make_tree(tmp_path: Path, files: dict[str, str]) -> Path:
    """Lay ``files`` (paths relative to src/repro) out as a package tree."""
    root = tmp_path / "proj"
    package = root / "src" / "repro"
    package.mkdir(parents=True)
    (package / "__init__.py").write_text("", encoding="utf-8")
    for relpath, text in files.items():
        target = package / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        if target.name != "__init__.py" or not target.exists():
            target.write_text(text, encoding="utf-8")
        init = target.parent / "__init__.py"
        if not init.exists():
            init.write_text("", encoding="utf-8")
    return root


def check_tree(
    root: Path,
    *,
    observability_doc: Path | None = None,
    api_init: Path | None = None,
    api_snapshot: Path | None = None,
    update_api_snapshot: bool = False,
) -> CheckResult:
    config = CheckConfig(
        root=root,
        src_roots=(root / "src" / "repro",),
        observability_doc=observability_doc,
        api_init=api_init,
        api_snapshot=api_snapshot,
        update_api_snapshot=update_api_snapshot,
    )
    return run_checks(config)


def rules_found(result: CheckResult) -> list[str]:
    return [finding.rule for finding in result.findings]


class TestRep001ParseOptions:
    def test_deprecated_kwarg_on_entry_point_flagged(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "caller.py": (
                    "def go(data):\n"
                    "    return parse_svg(data, fast_path=True)\n"
                )
            },
        )
        result = check_tree(root)
        assert rules_found(result) == ["REP001"]
        assert "fast_path" in result.findings[0].message

    def test_options_object_and_boundary_are_clean(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "caller.py": (
                    "def go(data, opts):\n"
                    "    resolve_parse_options(fast_path=True)\n"
                    "    ParseOptions(fast_path=False)\n"
                    "    return parse_svg(data, options=opts)\n"
                )
            },
        )
        assert check_tree(root).ok


class TestRep002TelemetryNames:
    def test_bad_convention_and_missing_suffix_flagged(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "metrics.py": (
                    "def setup(registry):\n"
                    "    registry.counter('parse_count')\n"
                    "    registry.counter('repro_files')\n"
                    "    registry.span('repro_parse_seconds')\n"
                )
            },
        )
        result = check_tree(root)
        # 'parse_count' breaks the convention AND the suffix: two findings.
        assert rules_found(result).count("REP002") == 4

    def test_good_names_clean_and_telemetry_package_exempt(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "metrics.py": (
                    "def setup(registry):\n"
                    "    registry.counter('repro_files_total')\n"
                    "    registry.histogram('repro_parse_seconds')\n"
                    "    registry.span('repro_parse')\n"
                ),
                # The registry machinery builds names dynamically and is
                # exempt by module prefix.
                "telemetry/inner.py": (
                    "def setup(registry):\n"
                    "    registry.counter('whatever')\n"
                ),
            },
        )
        assert check_tree(root).ok

    def test_undocumented_instrument_flagged_against_catalogue(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "metrics.py": (
                    "def setup(registry):\n"
                    "    registry.counter('repro_documented_total')\n"
                    "    registry.counter('repro_mystery_total')\n"
                )
            },
        )
        doc = root / "docs" / "observability.md"
        doc.parent.mkdir()
        doc.write_text("| `repro_documented_total` | files |\n", encoding="utf-8")
        result = check_tree(root, observability_doc=doc)
        assert rules_found(result) == ["REP002"]
        assert "repro_mystery_total" in result.findings[0].message

    def test_missing_catalogue_skips_doc_half(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "metrics.py": (
                    "def setup(registry):\n"
                    "    registry.counter('repro_mystery_total')\n"
                )
            },
        )
        absent = root / "docs" / "observability.md"
        assert check_tree(root, observability_doc=absent).ok


class TestRep003Determinism:
    def test_wall_clock_and_global_rng_flagged_in_pure_module(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "parsing/clock.py": (
                    "import random\n"
                    "import time\n"
                    "def stamp():\n"
                    "    return time.time(), random.random()\n"
                )
            },
        )
        assert rules_found(check_tree(root)) == ["REP003", "REP003"]

    def test_banned_from_import_flagged(self, tmp_path):
        root = make_tree(
            tmp_path,
            {"geometry/clock.py": "from time import time\n"},
        )
        assert rules_found(check_tree(root)) == ["REP003"]

    def test_seeded_rng_and_monotonic_timer_allowed(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "parsing/pure.py": (
                    "import random\n"
                    "import time\n"
                    "def derive(seed):\n"
                    "    rng = random.Random(seed)\n"
                    "    return rng, time.perf_counter()\n"
                )
            },
        )
        assert check_tree(root).ok

    def test_impure_module_may_read_clock(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "cli/clock.py": (
                    "import time\n"
                    "def stamp():\n"
                    "    return time.time()\n"
                )
            },
        )
        assert check_tree(root).ok


class TestRep004PicklableSubmit:
    def test_lambda_and_local_callable_flagged(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "engine.py": (
                    "def run(pool, items):\n"
                    "    def local(item):\n"
                    "        return item\n"
                    "    pool.submit(lambda: 1)\n"
                    "    pool.submit(local, items[0])\n"
                )
            },
        )
        result = check_tree(root)
        assert rules_found(result) == ["REP004", "REP004"]
        assert "lambda" in result.findings[0].message
        assert "local" in result.findings[1].message

    def test_module_level_worker_and_partial_allowed(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "engine.py": (
                    "from functools import partial\n"
                    "import workers\n"
                    "def job(item):\n"
                    "    return item\n"
                    "def run(pool, items):\n"
                    "    pool.submit(job, items[0])\n"
                    "    pool.submit(partial(job, items[0]))\n"
                    "    pool.submit(workers.process, items[0])\n"
                )
            },
        )
        assert check_tree(root).ok


class TestRep005TypedRaises:
    def test_untyped_raise_flagged(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "bad.py": (
                    "def go(x):\n"
                    "    if not x:\n"
                    "        raise ValueError('empty')\n"
                )
            },
        )
        result = check_tree(root)
        assert rules_found(result) == ["REP005"]
        assert "ValueError" in result.findings[0].message

    def test_typed_raise_and_reraise_forms_allowed(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "good.py": (
                    "from repro.errors import ParseError\n"
                    "class _Sentinel(Exception):\n"
                    "    pass\n"
                    "def go(x):\n"
                    "    try:\n"
                    "        if not x:\n"
                    "            raise ParseError('empty')\n"
                    "        raise _Sentinel('jump')\n"
                    "    except _Sentinel as exc:\n"
                    "        raise\n"
                )
            },
        )
        assert check_tree(root).ok

    def test_getattr_protocol_attributeerror_allowed(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "lazy.py": (
                    "def __getattr__(name):\n"
                    "    raise AttributeError(name)\n"
                    "def elsewhere(name):\n"
                    "    raise AttributeError(name)\n"
                )
            },
        )
        # Only the raise outside __getattr__ is a finding.
        result = check_tree(root)
        assert rules_found(result) == ["REP005"]
        assert result.findings[0].line == 4

    def test_bare_and_blind_excepts_flagged(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "handlers.py": (
                    "def a(fn):\n"
                    "    try:\n"
                    "        fn()\n"
                    "    except:\n"
                    "        pass\n"
                    "def b(fn):\n"
                    "    try:\n"
                    "        fn()\n"
                    "    except Exception:\n"
                    "        pass\n"
                )
            },
        )
        assert rules_found(check_tree(root)) == ["REP005", "REP005"]

    def test_binding_or_reraising_handler_allowed(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "handlers.py": (
                    "from repro.errors import ReproError\n"
                    "def a(fn, log):\n"
                    "    try:\n"
                    "        fn()\n"
                    "    except Exception as exc:\n"
                    "        log(exc)\n"
                    "def b(fn):\n"
                    "    try:\n"
                    "        fn()\n"
                    "    except Exception:\n"
                    "        raise ReproError('wrapped')\n"
                )
            },
        )
        assert check_tree(root).ok


class TestRep006ApiSurface:
    INIT = (
        "_EXPORTS = {\n"
        "    'alpha': 'repro.a',\n"
        "    'beta': 'repro.b',\n"
        "}\n"
        "__all__ = sorted([*_EXPORTS, '__version__'])\n"
    )

    def test_missing_snapshot_flagged_then_update_writes_it(self, tmp_path):
        root = make_tree(tmp_path, {"__init__.py": self.INIT})
        init = root / "src" / "repro" / "__init__.py"
        init.write_text(self.INIT, encoding="utf-8")
        snapshot = root / "api_surface.json"

        result = check_tree(root, api_init=init, api_snapshot=snapshot)
        assert rules_found(result) == ["REP006"]

        check_tree(
            root, api_init=init, api_snapshot=snapshot, update_api_snapshot=True
        )
        recorded = json.loads(snapshot.read_text(encoding="utf-8"))
        assert recorded == {
            "version": 1,
            "names": ["__version__", "alpha", "beta"],
        }
        assert check_tree(root, api_init=init, api_snapshot=snapshot).ok

    def test_drift_reports_added_and_removed_names(self, tmp_path):
        root = make_tree(tmp_path, {"__init__.py": self.INIT})
        init = root / "src" / "repro" / "__init__.py"
        init.write_text(self.INIT, encoding="utf-8")
        snapshot = root / "api_surface.json"
        snapshot.write_text(
            json.dumps(
                {"version": 1, "names": ["__version__", "alpha", "gone"]}
            ),
            encoding="utf-8",
        )
        result = check_tree(root, api_init=init, api_snapshot=snapshot)
        assert rules_found(result) == ["REP006"]
        message = result.findings[0].message
        assert "added: beta" in message
        assert "removed: gone" in message

    def test_unreadable_snapshot_flagged(self, tmp_path):
        root = make_tree(tmp_path, {"__init__.py": self.INIT})
        init = root / "src" / "repro" / "__init__.py"
        init.write_text(self.INIT, encoding="utf-8")
        snapshot = root / "api_surface.json"
        snapshot.write_text("{not json", encoding="utf-8")
        result = check_tree(root, api_init=init, api_snapshot=snapshot)
        assert rules_found(result) == ["REP006"]
        assert "unreadable" in result.findings[0].message


class TestRep007MutableDefaults:
    def test_literal_and_factory_defaults_flagged(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "defaults.py": (
                    "def f(items=[]):\n"
                    "    return items\n"
                    "def g(*, table=dict()):\n"
                    "    return table\n"
                    "h = lambda acc={1}: acc\n"
                )
            },
        )
        assert rules_found(check_tree(root)) == ["REP007"] * 3

    def test_none_default_clean(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "defaults.py": (
                    "def f(items=None, scale=1.0, name='x'):\n"
                    "    return items or []\n"
                )
            },
        )
        assert check_tree(root).ok


class TestRep008ServingIsolation:
    def test_parsing_import_inside_server_flagged(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "server/handlers.py": (
                    "import repro.parsing\n"
                    "from repro.yamlio import snapshot_from_yaml\n"
                    "from repro.dataset.loader import load_all\n"
                )
            },
        )
        assert rules_found(check_tree(root)) == ["REP008"] * 3

    def test_snapshot_import_and_call_flagged(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "server/views.py": (
                    "from repro.topology.model import MapSnapshot\n"
                    "def build():\n"
                    "    return MapSnapshot(map_name=None, timestamp=None,\n"
                    "                       nodes=(), links=())\n"
                )
            },
        )
        assert rules_found(check_tree(root)) == ["REP008"] * 2

    def test_same_imports_outside_server_clean(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "analysis/loads.py": (
                    "import repro.parsing\n"
                    "from repro.topology.model import MapSnapshot\n"
                    "def build():\n"
                    "    return MapSnapshot\n"
                )
            },
        )
        assert check_tree(root).ok

    def test_index_imports_inside_server_clean(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "server/app.py": (
                    "from repro.dataset.handles import resolve_read_handle\n"
                    "from repro.dataset.query import ScanPredicate\n"
                )
            },
        )
        assert check_tree(root).ok

    def test_write_path_imports_inside_server_flagged(self, tmp_path):
        # Since the live feed, the write path is fenced off too: the
        # watcher observes checkpoints, it must never produce them.
        root = make_tree(
            tmp_path,
            {
                "server/feed.py": (
                    "from repro.dataset.engine import process_map_parallel\n"
                    "from repro.dataset.processor import process_map\n"
                    "import repro.dataset.ingest\n"
                )
            },
        )
        assert rules_found(check_tree(root)) == ["REP008"] * 3

    def test_write_path_imports_outside_server_clean(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "cli/main.py": (
                    "from repro.dataset.engine import process_map_parallel\n"
                    "import repro.dataset.ingest\n"
                )
            },
        )
        assert check_tree(root).ok


class TestSuppressions:
    def test_noqa_drops_the_finding(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "sup.py": (
                    "def f(items=[]):  # repro: noqa[REP007]\n"
                    "    return items\n"
                )
            },
        )
        result = check_tree(root)
        assert result.ok
        assert result.suppressions_used == 1

    def test_unused_suppression_reported_as_rep000(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "sup.py": (
                    "def f(items=None):  # repro: noqa[REP007]\n"
                    "    return items\n"
                )
            },
        )
        result = check_tree(root)
        assert rules_found(result) == [UNUSED_SUPPRESSION_RULE]
        assert "unused suppression" in result.findings[0].message

    def test_comma_separated_ids_suppress_independently(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "sup.py": (
                    "def f(items=[]):  # repro: noqa[REP005, REP007]\n"
                    "    return items\n"
                )
            },
        )
        # REP007 is used, REP005 is not: exactly one REP000 finding.
        result = check_tree(root)
        assert rules_found(result) == [UNUSED_SUPPRESSION_RULE]
        assert result.suppressions_used == 1

    def test_docstring_noqa_example_is_inert(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "sup.py": (
                    '"""Example: write ``# repro: noqa[REP007]`` inline."""\n'
                    "def f(items=None):\n"
                    "    return items\n"
                )
            },
        )
        assert check_tree(root).ok


class TestEngineAndReporters:
    def test_syntax_error_becomes_rep999_finding(self, tmp_path):
        root = make_tree(tmp_path, {"broken.py": "def f(:\n"})
        result = check_tree(root)
        assert rules_found(result) == [UNPARSEABLE_RULE]

    def test_findings_sorted_by_location(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "b.py": "def f(items=[]):\n    return items\n",
                "a.py": (
                    "def g(table={}):\n"
                    "    return table\n"
                    "def h(acc=[]):\n"
                    "    return acc\n"
                ),
            },
        )
        result = check_tree(root)
        locations = [(f.path, f.line) for f in result.findings]
        assert locations == sorted(locations)

    def test_json_reporter_schema(self, tmp_path):
        root = make_tree(
            tmp_path,
            {"bad.py": "def f(items=[]):\n    return items\n"},
        )
        payload = json.loads(render_json(check_tree(root)))
        assert payload["version"] == 2
        assert payload["ok"] is False
        assert payload["files_checked"] == 2  # __init__.py + bad.py
        assert payload["counts"] == {"REP007": 1}
        # Schema v2 carries the rule catalogue: id → one-line summary.
        assert payload["rules"]["REP007"]
        assert set(payload["counts"]) <= set(payload["rules"])
        for rule_id in ("REP000", "REP009", "REP010", "REP011", "REP012"):
            assert rule_id in payload["rules"]
        assert payload["suppressions_used"] == 0
        (finding,) = payload["findings"]
        assert finding["rule"] == "REP007"
        assert finding["path"] == "src/repro/bad.py"
        assert finding["line"] == 1
        assert finding["severity"] == "error"
        assert "mutable default" in finding["message"]

    def test_human_reporter_clean_and_dirty(self, tmp_path):
        clean = make_tree(tmp_path / "clean", {"ok.py": "x = 1\n"})
        assert render_human(check_tree(clean)).endswith("files checked")
        dirty = make_tree(
            tmp_path / "dirty",
            {"bad.py": "def f(items=[]):\n    return items\n"},
        )
        report = render_human(check_tree(dirty))
        assert "src/repro/bad.py:1:" in report
        assert "(REP007:1)" in report


class TestCliCheck:
    def test_exit_0_on_real_repository(self, capsys):
        assert main(["check", "--root", str(REPO_ROOT)]) == 0
        out = capsys.readouterr().out
        assert "clean:" in out

    def test_exit_1_on_seeded_violation(self, tmp_path, capsys):
        root = make_tree(
            tmp_path,
            {"bad.py": "def f(items=[]):\n    return items\n"},
        )
        # Satisfy REP006 so the only finding is the seeded one.
        main(["check", "--root", str(root), "--update-api-snapshot"])
        capsys.readouterr()
        assert main(["check", "--root", str(root)]) == 1
        out = capsys.readouterr().out
        assert "REP007" in out

    def test_exit_2_on_unusable_root(self, tmp_path, capsys):
        empty = tmp_path / "not-a-repo"
        empty.mkdir()
        assert main(["check", "--root", str(empty)]) == 2

    def test_json_format_end_to_end(self, tmp_path, capsys):
        root = make_tree(tmp_path, {"ok.py": "x = 1\n"})
        main(["check", "--root", str(root), "--update-api-snapshot"])
        capsys.readouterr()
        assert main(["check", "--root", str(root), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True and payload["version"] == 2


class TestDefaultConfig:
    def test_default_config_points_at_committed_artifacts(self):
        config = default_config(root=REPO_ROOT)
        assert config.src_roots == (REPO_ROOT / "src" / "repro",)
        assert config.observability_doc == REPO_ROOT / "docs" / "observability.md"
        assert config.api_snapshot == REPO_ROOT / "api_surface.json"
        assert config.api_snapshot.is_file()

    def test_repository_checks_clean(self):
        result = run_checks(default_config(root=REPO_ROOT))
        assert result.findings == []
        assert result.files_checked > 100
