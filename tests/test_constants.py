"""Consistency checks on the paper constants themselves.

These guard against transcription typos: the paper's tables have internal
arithmetic (totals, per-map sums) that the constants must satisfy.
"""

from datetime import timedelta

from repro.constants import (
    COLLECTION_FIX_DATE,
    COLLECTION_START,
    LOAD_MAX,
    LOAD_MIN,
    MapName,
    REFERENCE_DATE,
    SNAPSHOT_INTERVAL,
    TABLE1_PAPER,
    TABLE1_PAPER_TOTAL,
    TABLE2_PAPER,
    TABLE2_PAPER_TOTAL,
)


class TestTable1Arithmetic:
    def test_all_maps_present(self):
        assert set(TABLE1_PAPER) == set(MapName)

    def test_router_total_below_sum(self):
        # 212 per-map appearances, 181 distinct: 31 shared.
        per_map_sum = sum(row[0] for row in TABLE1_PAPER.values())
        assert per_map_sum == 212
        assert TABLE1_PAPER_TOTAL[0] == 181
        assert per_map_sum - TABLE1_PAPER_TOTAL[0] == 31

    def test_internal_total_below_sum(self):
        per_map_sum = sum(row[1] for row in TABLE1_PAPER.values())
        assert per_map_sum == 1323
        assert TABLE1_PAPER_TOTAL[1] == 1186
        assert per_map_sum - TABLE1_PAPER_TOTAL[1] == 137

    def test_external_total_is_plain_sum(self):
        assert sum(row[2] for row in TABLE1_PAPER.values()) == TABLE1_PAPER_TOTAL[2]

    def test_world_has_no_peerings(self):
        assert TABLE1_PAPER[MapName.WORLD][2] == 0


class TestTable2Arithmetic:
    def test_file_totals(self):
        assert sum(row[0] for row in TABLE2_PAPER.values()) == TABLE2_PAPER_TOTAL[0]
        assert sum(row[2] for row in TABLE2_PAPER.values()) == TABLE2_PAPER_TOTAL[2]

    def test_size_totals(self):
        # The paper prints per-map sizes rounded to 2 decimals; their sum
        # lands within one rounding step of the printed total (227.92 vs
        # 227.93 GiB for the SVGs).
        assert abs(
            sum(row[1] for row in TABLE2_PAPER.values()) - TABLE2_PAPER_TOTAL[1]
        ) <= 0.02
        assert abs(
            sum(row[3] for row in TABLE2_PAPER.values()) - TABLE2_PAPER_TOTAL[3]
        ) <= 0.02

    def test_under_a_hundred_unprocessed_per_map(self):
        # "leaving less than a hundred files per map unprocessed"
        for svgs, _, yamls, _ in TABLE2_PAPER.values():
            assert 0 <= svgs - yamls < 100

    def test_compression_factor_about_eight(self):
        assert 7.5 < TABLE2_PAPER_TOTAL[1] / TABLE2_PAPER_TOTAL[3] < 8.5


class TestTimeline:
    def test_campaign_spans_two_years(self):
        span = REFERENCE_DATE - COLLECTION_START
        assert timedelta(days=700) < span < timedelta(days=830)

    def test_fix_inside_campaign(self):
        assert COLLECTION_START < COLLECTION_FIX_DATE < REFERENCE_DATE

    def test_cadence_is_five_minutes(self):
        assert SNAPSHOT_INTERVAL == timedelta(minutes=5)

    def test_load_bounds(self):
        assert (LOAD_MIN, LOAD_MAX) == (0, 100)
