"""Unit tests for ECMP load spreading."""

import pytest

from repro.simulation.ecmp import persistent_skew, spread_demand, zero_sum_jitter


class TestZeroSumJitter:
    def test_sums_to_zero(self):
        offsets = zero_sum_jitter(8, 0.5, "ns", 1)
        assert sum(offsets) == pytest.approx(0.0, abs=1e-9)

    def test_empty(self):
        assert zero_sum_jitter(0, 0.5, "ns") == []

    def test_deterministic(self):
        assert zero_sum_jitter(4, 0.5, "a", 1) == zero_sum_jitter(4, 0.5, "a", 1)

    def test_namespace_changes_values(self):
        assert zero_sum_jitter(4, 0.5, "a") != zero_sum_jitter(4, 0.5, "b")

    def test_magnitude_scales_with_sigma(self):
        small = max(abs(x) for x in zero_sum_jitter(100, 0.1, "m"))
        large = max(abs(x) for x in zero_sum_jitter(100, 5.0, "m"))
        assert large > small


class TestPersistentSkew:
    def test_zero_mean(self):
        offsets = persistent_skew(6, 8.0, "g", 0)
        assert sum(offsets) == pytest.approx(0.0, abs=1e-9)

    def test_bounded(self):
        offsets = persistent_skew(6, 8.0, "g", 0)
        # Centred uniform(-8, 8): after centring still within 16.
        assert all(abs(x) <= 16 for x in offsets)

    def test_stable_across_calls(self):
        assert persistent_skew(6, 8.0, "g", 1) == persistent_skew(6, 8.0, "g", 1)


class TestSpreadDemand:
    def test_inactive_links_zero(self):
        loads = spread_demand(40.0, [True, False, True], 0.5, None, "t", 1)
        assert loads[1] == 0.0
        assert loads[0] > 0 and loads[2] > 0

    def test_all_inactive(self):
        assert spread_demand(40.0, [False, False], 0.5, None, "t") == [0.0, 0.0]

    def test_loads_near_demand(self):
        loads = spread_demand(40.0, [True] * 8, 0.5, None, "t", 2)
        active = [l for l in loads if l > 0]
        for load in active:
            assert abs(load - 40.0) < 5

    def test_clamped_to_valid_range(self):
        high = spread_demand(99.5, [True] * 4, 3.0, None, "t", 3)
        low = spread_demand(0.2, [True] * 4, 3.0, None, "t", 4)
        assert all(0 <= l <= 100 for l in high + low)

    def test_skew_applied(self):
        skew = [10.0, -10.0]
        loads = spread_demand(40.0, [True, True], 0.0, skew, "t", 5)
        assert loads[0] - loads[1] == pytest.approx(20.0, abs=1.0)

    def test_imbalance_scales_with_jitter(self):
        def imbalance(sigma):
            loads = spread_demand(40.0, [True] * 8, sigma, None, "t", sigma)
            return max(loads) - min(loads)

        assert imbalance(0.1) < imbalance(5.0)
