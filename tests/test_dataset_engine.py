"""Tests for the parallel + incremental bulk-processing engine.

The contract under test: the engine must reproduce the serial
``process_map`` run *exactly* (byte-identical YAML, identical
``ProcessingStats`` including failure causes), while its manifest makes
warm re-runs skip unchanged files and invalidate cleanly on overwrite,
parser-version bumps, and edited SVGs.
"""

from __future__ import annotations

import json
import os
from datetime import datetime, timedelta, timezone

import pytest

from repro.constants import MapName
from repro.dataset import engine as engine_module
from repro.dataset.engine import Manifest, process_map_parallel
from repro.dataset.processor import process_map, process_svg_bytes
from repro.dataset.store import DatasetStore
from repro.layout.renderer import MapRenderer

T0 = datetime(2022, 9, 12, tzinfo=timezone.utc)
MAP = MapName.ASIA_PACIFIC

#: Timestamps of the injected-corrupt SVGs (one malformed document, one
#: that is not XML at all) — both must be counted, never fatal.
CORRUPT_AT = (T0 + timedelta(minutes=10), T0 + timedelta(minutes=20))


@pytest.fixture(scope="module")
def reference_svg(simulator) -> str:
    """One rendered Asia-Pacific document reused at every timestamp."""
    return MapRenderer().render(simulator.snapshot(MAP, T0))


def build_corpus(root, reference_svg: str, files: int = 6) -> DatasetStore:
    """A small SVG corpus with two unprocessable files injected."""
    store = DatasetStore(root)
    for index in range(files):
        when = T0 + timedelta(minutes=5 * index)
        if when in CORRUPT_AT:
            data = "<svg broken" if when == CORRUPT_AT[0] else "not an svg at all"
        else:
            data = reference_svg
        store.write(MAP, when, "svg", data)
    return store


def yaml_tree(store: DatasetStore) -> dict[str, bytes]:
    return {ref.path.name: ref.path.read_bytes() for ref in store.iter_refs(MAP, "yaml")}


def assert_stats_equal(a, b) -> None:
    assert a.map_name == b.map_name
    assert a.processed == b.processed
    assert a.unprocessed == b.unprocessed
    assert a.yaml_bytes == b.yaml_bytes
    assert a.failure_causes == b.failure_causes


class TestSerialParallelEquivalence:
    def test_identical_yaml_and_stats(self, tmp_path, reference_svg):
        serial_store = build_corpus(tmp_path / "serial", reference_svg)
        parallel_store = build_corpus(tmp_path / "parallel", reference_svg)
        serial = process_map(serial_store, MAP)
        parallel = process_map_parallel(parallel_store, MAP, workers=2, chunk_size=2)
        assert serial.unprocessed == len(CORRUPT_AT)
        assert_stats_equal(serial, parallel)
        assert yaml_tree(serial_store) == yaml_tree(parallel_store)

    def test_process_map_workers_delegates_to_engine(self, tmp_path, reference_svg):
        store = build_corpus(tmp_path, reference_svg)
        stats = process_map(store, MAP, workers=2)
        assert stats.processed == stats.total - len(CORRUPT_AT)
        # The delegation went through the engine: the manifest exists.
        assert store.manifest_path(MAP).exists()


class TestWorkersOne:
    def test_degenerates_to_serial_no_pool(self, tmp_path, reference_svg, monkeypatch):
        def forbidden(*args, **kwargs):
            raise AssertionError("workers=1 must not spawn a process pool")

        monkeypatch.setattr(engine_module, "ProcessPoolExecutor", forbidden)
        store = build_corpus(tmp_path / "engine", reference_svg)
        baseline_store = build_corpus(tmp_path / "baseline", reference_svg)
        stats = process_map_parallel(store, MAP, workers=1)
        baseline = process_map(baseline_store, MAP)
        assert_stats_equal(stats, baseline)
        assert yaml_tree(store) == yaml_tree(baseline_store)

    def test_invalid_workers_rejected(self, tmp_path, reference_svg):
        from repro.errors import DatasetError

        store = build_corpus(tmp_path, reference_svg)
        with pytest.raises(DatasetError):
            process_map_parallel(store, MAP, workers=-1)
        with pytest.raises(DatasetError):
            process_map_parallel(store, MAP, chunk_size=0)


class TestManifest:
    @pytest.fixture()
    def processed_store(self, tmp_path, reference_svg) -> DatasetStore:
        store = build_corpus(tmp_path, reference_svg)
        process_map_parallel(store, MAP, workers=1)
        return store

    def count_extractions(self, monkeypatch) -> list:
        calls = []

        def counting(data, map_name, timestamp, strict=False, **kwargs):
            calls.append(timestamp)
            return process_svg_bytes(data, map_name, timestamp, strict=strict, **kwargs)

        monkeypatch.setattr(engine_module, "process_svg_bytes", counting)
        return calls

    def test_warm_rerun_skips_everything(self, processed_store, monkeypatch):
        calls = self.count_extractions(monkeypatch)
        first = process_map_parallel(processed_store, MAP, workers=1)
        assert calls == []
        assert first.unprocessed == len(CORRUPT_AT)  # failures still counted
        assert first.processed + first.unprocessed == 6
        assert first.yaml_bytes > 0

    def test_overwrite_invalidates(self, processed_store, monkeypatch):
        calls = self.count_extractions(monkeypatch)
        stats = process_map_parallel(processed_store, MAP, workers=1, overwrite=True)
        assert len(calls) == 6
        assert stats.total == 6

    def test_parser_version_bump_invalidates(self, processed_store, monkeypatch):
        path = processed_store.manifest_path(MAP)
        document = json.loads(path.read_text(encoding="utf-8"))
        document["parser_version"] = document["parser_version"] + 1
        path.write_text(json.dumps(document), encoding="utf-8")
        calls = self.count_extractions(monkeypatch)
        process_map_parallel(processed_store, MAP, workers=1)
        assert len(calls) == 6
        # The fresh run stamps the current version back.
        saved = json.loads(path.read_text(encoding="utf-8"))
        assert saved["parser_version"] == engine_module.PARSER_VERSION

    def test_edited_svg_reprocessed_alone(self, processed_store, monkeypatch, reference_svg):
        edited_at = T0  # a healthy file
        ref = next(iter(processed_store.iter_refs(MAP, "svg")))
        assert ref.timestamp == edited_at
        ref.path.write_text(reference_svg + "<!-- edited -->", encoding="utf-8")
        os.utime(ref.path, ns=(1, 1))  # force a new (size, mtime) fast key
        calls = self.count_extractions(monkeypatch)
        process_map_parallel(processed_store, MAP, workers=1)
        assert calls == [edited_at]

    def test_corrupt_manifest_file_tolerated(self, processed_store, monkeypatch):
        processed_store.manifest_path(MAP).write_text("{not json", encoding="utf-8")
        calls = self.count_extractions(monkeypatch)
        stats = process_map_parallel(processed_store, MAP, workers=1)
        assert len(calls) == 6
        assert stats.total == 6

    def test_manifest_disabled(self, tmp_path, reference_svg):
        store = build_corpus(tmp_path, reference_svg)
        process_map_parallel(store, MAP, workers=1, use_manifest=False)
        assert not store.manifest_path(MAP).exists()


class TestIndexMaintenance:
    """Processing leaves the columnar snapshot index fresh behind it."""

    def test_processing_builds_a_fresh_index(self, tmp_path, reference_svg):
        from repro.dataset.index import fresh_index

        store = build_corpus(tmp_path, reference_svg)
        stats = process_map_parallel(store, MAP, workers=1)
        assert store.index_path(MAP).exists()
        index = fresh_index(store, MAP)
        assert index is not None
        assert len(index) == stats.processed

    def test_index_serves_the_processed_series(self, tmp_path, reference_svg):
        from repro.dataset.loader import load_all

        store = build_corpus(tmp_path, reference_svg)
        process_map_parallel(store, MAP, workers=1)
        via_yaml = load_all(store, MAP, use_index=False)
        assert load_all(store, MAP) == via_yaml

    def test_update_index_disabled(self, tmp_path, reference_svg):
        store = build_corpus(tmp_path, reference_svg)
        process_map_parallel(store, MAP, workers=1, update_index=False)
        assert not store.index_path(MAP).exists()

    def test_warm_rerun_keeps_index_fresh(self, tmp_path, reference_svg):
        from repro.dataset.index import fresh_index

        store = build_corpus(tmp_path, reference_svg)
        process_map_parallel(store, MAP, workers=1)
        process_map_parallel(store, MAP, workers=1)
        assert fresh_index(store, MAP) is not None


class TestManifestRoundTrip:
    def test_save_load(self, tmp_path):
        manifest = Manifest()
        manifest.entries["x"] = engine_module.ManifestEntry(
            sha256="ab", size=3, mtime_ns=7, yaml_bytes=11
        )
        manifest.entries["y"] = engine_module.ManifestEntry(
            sha256="cd", size=4, mtime_ns=9, failure="MalformedSvgError"
        )
        path = tmp_path / "manifest.json"
        manifest.save(path)
        loaded = Manifest.load(path)
        assert loaded.entries == manifest.entries
        assert loaded.parser_version == manifest.parser_version

    def test_missing_file_is_empty(self, tmp_path):
        assert Manifest.load(tmp_path / "absent.json").entries == {}
