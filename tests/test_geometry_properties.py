"""Property-based tests on the geometry primitives (hypothesis).

Algorithm 2's correctness rests on these invariants holding for *every*
input the renderer can produce, so they are exercised generatively.
"""

from hypothesis import given, strategies as st

from repro.geometry import Point, Rect, Segment

finite = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
positive = st.floats(min_value=0.01, max_value=1e4, allow_nan=False)

points = st.builds(Point, finite, finite)
rects = st.builds(Rect, finite, finite, positive, positive)


def distinct_segments():
    return st.tuples(points, points).filter(
        lambda pair: pair[0].distance_to(pair[1]) > 1e-3
    ).map(lambda pair: Segment(pair[0], pair[1]))


@given(points, points)
def test_distance_symmetry(a, b):
    assert a.distance_to(b) == b.distance_to(a)


@given(points, points, points)
def test_triangle_inequality(a, b, c):
    assert a.distance_to(c) <= a.distance_to(b) + b.distance_to(c) + 1e-6


@given(points, points)
def test_midpoint_equidistant(a, b):
    mid = a.midpoint(b)
    assert abs(mid.distance_to(a) - mid.distance_to(b)) <= 1e-6 * (
        1 + a.distance_to(b)
    )


@given(points)
def test_perpendicular_orthogonal(p):
    assert p.dot(p.perpendicular()) == 0


@given(rects, points)
def test_distance_zero_iff_contains(rect, point):
    inside = rect.contains(point, tolerance=0.0)
    distance = rect.distance_to_point(point)
    if inside:
        assert distance == 0
    else:
        assert distance > 0


@given(rects)
def test_center_is_inside(rect):
    assert rect.contains(rect.center)


@given(rects)
def test_line_through_center_always_intersects(rect):
    # Any line through the centre must intersect the box.
    line = Segment(rect.center, rect.center + Point(1.0, 0.7))
    assert rect.intersects_line(line)


@given(rects, distinct_segments())
def test_segment_hit_implies_line_hit(rect, segment):
    # The finite segment is a subset of its supporting line.
    if rect.intersects_segment(segment):
        assert rect.intersects_line(segment)


@given(distinct_segments(), points)
def test_line_distance_below_segment_distance(segment, point):
    assert (
        segment.line_distance_to_point(point)
        <= segment.distance_to_point(point) + 1e-6
    )


@given(distinct_segments())
def test_point_at_midpoint_matches(segment):
    assert segment.point_at(0.5).is_close(segment.midpoint, tolerance=1e-6)


@given(distinct_segments(), st.floats(min_value=-3, max_value=3))
def test_projection_roundtrip(segment, t):
    # Projecting a point generated on the line recovers the parameter.
    point = segment.point_at(t)
    assert abs(segment.project(point) - t) <= 1e-4 * (1 + abs(t))
