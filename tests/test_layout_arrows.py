"""Unit tests for link geometry: perimeter walking, relaxation, arrows."""

import pytest

from repro.errors import SimulationError
from repro.geometry import Point, Rect, Segment
from repro.layout.arrows import (
    build_link_geometry,
    label_box_for,
    perimeter_length,
    perimeter_point,
    perimeter_position_towards,
    relax_positions,
)

BOX = Rect(100, 100, 80, 26)


class TestPerimeterWalk:
    def test_length(self):
        assert perimeter_length(BOX) == 2 * (80 + 26)

    def test_position_zero_is_right_middle(self):
        assert perimeter_point(BOX, 0) == Point(BOX.right, BOX.center.y)

    def test_wraps_around(self):
        total = perimeter_length(BOX)
        assert perimeter_point(BOX, total).is_close(perimeter_point(BOX, 0))

    def test_every_position_on_boundary(self):
        total = perimeter_length(BOX)
        for i in range(50):
            point = perimeter_point(BOX, total * i / 50)
            assert BOX.distance_to_point(point) == pytest.approx(0, abs=1e-9)

    def test_quarter_positions(self):
        # half_h -> bottom-right corner.
        p = perimeter_point(BOX, 13)
        assert p == Point(BOX.right, BOX.bottom)


class TestPerimeterTowards:
    @pytest.mark.parametrize(
        "target",
        [
            Point(500, 113),   # due right
            Point(-500, 113),  # due left
            Point(140, 500),   # below
            Point(140, -500),  # above
            Point(400, 400),   # diagonal
            Point(-100, -50),  # other diagonal
        ],
    )
    def test_exit_point_matches_ray(self, target):
        position = perimeter_position_towards(BOX, target)
        exit_point = perimeter_point(BOX, position)
        # The exit point must lie on the centre→target ray.
        direction = (target - BOX.center).normalized()
        radial = exit_point - BOX.center
        cross = abs(direction.cross(radial))
        assert cross < 1e-6 * max(1.0, radial.norm())
        assert direction.dot(radial) > 0

    def test_degenerate_target_is_zero(self):
        assert perimeter_position_towards(BOX, BOX.center) == 0.0


class TestRelaxation:
    def test_empty(self):
        assert relax_positions([], 100) == []

    def test_single_unchanged(self):
        assert relax_positions([42.0], 1000) == [42.0]

    def test_min_gap_enforced(self):
        positions = relax_positions([50.0, 50.0, 50.0], 1000, gap=20)
        ordered = sorted(positions)
        assert all(b - a >= 20 - 1e-6 for a, b in zip(ordered, ordered[1:]))

    def test_order_preserved(self):
        positions = relax_positions([10.0, 300.0, 10.0], 1000, gap=15)
        # Input order is preserved in the output list.
        assert positions[1] == 300.0

    def test_overfull_degrades_gap(self):
        positions = relax_positions([0.0] * 30, 100, gap=20)
        assert len(positions) == 30
        ordered = sorted(positions)
        gaps = [b - a for a, b in zip(ordered, ordered[1:])]
        assert min(gaps) > 0

    def test_spread_positions_untouched(self):
        ideal = [0.0, 100.0, 200.0, 300.0]
        assert relax_positions(list(ideal), 1000, gap=10) == ideal


class TestLinkGeometry:
    def test_too_close_rejected(self):
        with pytest.raises(SimulationError):
            build_link_geometry(Point(0, 0), Point(10, 0), "#1", "#1")

    def test_bases_between_attachments(self):
        geometry = build_link_geometry(Point(0, 0), Point(300, 0), "#1", "#2")
        assert 0 < geometry.base_a.x < geometry.base_b.x < 300

    def test_line_through_bases_hits_labels(self):
        geometry = build_link_geometry(Point(0, 0), Point(300, 120), "#1", "#2")
        line = Segment(geometry.base_a, geometry.base_b)
        assert geometry.label_box_a.intersects_line(line)
        assert geometry.label_box_b.intersects_line(line)

    def test_own_label_essentially_on_base(self):
        geometry = build_link_geometry(Point(0, 0), Point(300, 0), "#1", "#2")
        assert geometry.label_box_a.distance_to_point(geometry.base_a) < 2.0
        assert geometry.label_box_b.distance_to_point(geometry.base_b) < 2.0

    def test_arrow_bases_first_and_last(self):
        geometry = build_link_geometry(Point(0, 0), Point(300, 0), "#1", "#2")
        polygon = geometry.arrow_ab
        base_mid = polygon[0].midpoint(polygon[-1])
        assert base_mid.is_close(geometry.base_a, tolerance=1e-6)

    def test_arrows_meet_in_middle(self):
        geometry = build_link_geometry(Point(0, 0), Point(300, 0), "#1", "#2")
        tip_ab = max(geometry.arrow_ab, key=lambda p: p.x)
        tip_ba = min(geometry.arrow_ba, key=lambda p: p.x)
        assert abs(tip_ab.x - 150) < 3
        assert abs(tip_ba.x - 150) < 3

    def test_arrow_polygon_has_seven_points(self):
        geometry = build_link_geometry(Point(0, 0), Point(300, 0), "#1", "#2")
        assert len(geometry.arrow_ab) == 7
        assert len(geometry.arrow_ba) == 7

    def test_load_anchors_on_opposite_sides(self):
        geometry = build_link_geometry(Point(0, 0), Point(300, 0), "#1", "#2")
        assert geometry.load_anchor_ab.x < 150 < geometry.load_anchor_ba.x


class TestLabelBox:
    def test_sized_to_text(self):
        short = label_box_for("#1", Point(0, 0))
        long = label_box_for("#12", Point(0, 0))
        assert long.width > short.width

    def test_centered(self):
        box = label_box_for("#1", Point(10, 20))
        assert box.center.is_close(Point(10, 20))
