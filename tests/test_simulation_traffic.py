"""Unit tests for the diurnal traffic model."""

from datetime import datetime, timedelta, timezone

import pytest

from repro.constants import MapName
from repro.simulation.config import default_config
from repro.simulation.traffic import (
    DILUTION_RECOVERY,
    TrafficModel,
    diurnal_factor,
    quantize,
    weekly_factor,
)


def _utc(*args) -> datetime:
    return datetime(*args, tzinfo=timezone.utc)


class TestQuantize:
    def test_rounds(self):
        assert quantize(41.5) == 42
        assert quantize(41.4) == 41

    def test_clamps(self):
        assert quantize(150.0) == 100
        assert quantize(-5.0) == 0


class TestDiurnalFactor:
    def test_trough_at_3am(self):
        # "reaching its lowest point between 2 and 4 a.m."
        values = {h: diurnal_factor(_utc(2022, 3, 9, h), 0.38) for h in range(24)}
        assert min(values, key=values.get) == 3

    def test_peak_at_8pm(self):
        # "its highest point between 7 and 9 p.m."
        values = {h: diurnal_factor(_utc(2022, 3, 9, h), 0.38) for h in range(24)}
        assert max(values, key=values.get) == 20

    def test_amplitude_bounds(self):
        for h in range(24):
            factor = diurnal_factor(_utc(2022, 3, 9, h), 0.38)
            assert 1 - 0.38 <= factor <= 1 + 0.38

    def test_extremes_hit_amplitude(self):
        assert diurnal_factor(_utc(2022, 3, 9, 3), 0.38) == pytest.approx(0.62)
        assert diurnal_factor(_utc(2022, 3, 9, 20), 0.38) == pytest.approx(1.38)

    def test_continuous_at_midnight(self):
        before = diurnal_factor(_utc(2022, 3, 9, 23, 59), 0.38)
        after = diurnal_factor(_utc(2022, 3, 10, 0, 1), 0.38)
        assert abs(before - after) < 0.02

    def test_zero_amplitude_is_flat(self):
        for h in (0, 6, 12, 18):
            assert diurnal_factor(_utc(2022, 3, 9, h), 0.0) == 1.0


class TestWeeklyFactor:
    def test_weekend_quieter(self):
        saturday = _utc(2022, 3, 12)
        tuesday = _utc(2022, 3, 8)
        assert weekly_factor(saturday, 0.06) < weekly_factor(tuesday, 0.06)


class TestTrafficModel:
    @pytest.fixture()
    def europe(self, simulator):
        return simulator.evolution(MapName.EUROPE), simulator.traffic(MapName.EUROPE)

    def test_deterministic(self, simulator):
        when = _utc(2022, 2, 2, 10, 5)
        evolution = simulator.evolution(MapName.EUROPE)
        group = evolution.groups[5]
        alive = [l for l in group.links if l.lifetime.alive_at(when)]
        model_a = TrafficModel(simulator.config, "europe")
        model_b = TrafficModel(simulator.config, "europe")
        assert model_a.group_loads(group, alive, when) == model_b.group_loads(
            group, alive, when
        )

    def test_loads_integers_in_range(self, europe):
        evolution, traffic = europe
        when = _utc(2022, 2, 2, 10, 5)
        for group in evolution.groups[:30]:
            alive = [l for l in group.links if l.lifetime.alive_at(when)]
            for load_ab, load_ba in traffic.group_loads(group, alive, when).values():
                assert isinstance(load_ab, int) and isinstance(load_ba, int)
                assert 0 <= load_ab <= 100 and 0 <= load_ba <= 100

    def test_inactive_links_zero(self, simulator):
        scenario = simulator.upgrade
        when = scenario.added_at + timedelta(days=2)
        loads = simulator.upgrade_loads(when)
        inactive = [v for v in loads.values() if v == (0, 0)]
        assert len(inactive) == 1

    def test_dilution_after_growth(self, simulator):
        scenario = simulator.upgrade
        traffic = simulator.traffic(MapName.EUROPE)
        group = simulator.upgrade_group()
        state = traffic._group_state(group)
        just_after = traffic._dilution(state.size_events, scenario.activated_at + timedelta(hours=1))
        assert just_after == pytest.approx(
            scenario.links_before / scenario.links_after, abs=0.01
        )
        recovered = traffic._dilution(
            state.size_events, scenario.activated_at + DILUTION_RECOVERY + timedelta(days=1)
        )
        assert recovered == 1.0

    def test_no_dilution_before_any_change(self, simulator):
        traffic = simulator.traffic(MapName.EUROPE)
        group = simulator.upgrade_group()
        state = traffic._group_state(group)
        early = traffic._dilution(state.size_events, _utc(2021, 1, 1))
        assert early == 1.0

    def test_upgrade_group_never_idle_or_skewed(self, simulator):
        traffic = simulator.traffic(MapName.EUROPE)
        state = traffic._group_state(simulator.upgrade_group())
        assert not state.idle
        assert not state.skewed
        assert not any(state.disabled)

    def test_some_groups_idle(self, simulator):
        traffic = simulator.traffic(MapName.EUROPE)
        evolution = simulator.evolution(MapName.EUROPE)
        idle = sum(
            traffic._group_state(group).idle for group in evolution.groups
        )
        assert idle > 0

    def test_base_loads_bounded(self, simulator):
        config = default_config()
        traffic = TrafficModel(config, "europe")
        evolution = simulator.evolution(MapName.EUROPE)
        for group in evolution.groups[:50]:
            state = traffic._group_state(group)
            for base in state.base_loads:
                assert 1.5 <= base <= 88.0
