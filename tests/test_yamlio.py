"""Unit tests for YAML serialisation of snapshots."""

from datetime import datetime, timezone

import pytest

from repro.constants import MapName
from repro.errors import SchemaError
from repro.topology.model import Link, LinkEnd, MapSnapshot, Node
from repro.yamlio.deserialize import read_snapshot, snapshot_from_yaml
from repro.yamlio.serialize import snapshot_to_yaml, write_snapshot

NOW = datetime(2022, 9, 12, 10, 5, tzinfo=timezone.utc)


def _snapshot() -> MapSnapshot:
    snapshot = MapSnapshot(map_name=MapName.EUROPE, timestamp=NOW)
    for name in ("fra-r1", "par-r2", "AMS-IX"):
        snapshot.add_node(Node.from_name(name))
    snapshot.add_link(Link(LinkEnd("fra-r1", "#1", 42), LinkEnd("par-r2", "#1", 9)))
    snapshot.add_link(Link(LinkEnd("par-r2", "#1", 30), LinkEnd("AMS-IX", "#1", 5)))
    return snapshot


class TestRoundTrip:
    def test_counts_preserved(self):
        restored = snapshot_from_yaml(snapshot_to_yaml(_snapshot()))
        assert restored.summary_counts() == _snapshot().summary_counts()

    def test_loads_preserved(self):
        restored = snapshot_from_yaml(snapshot_to_yaml(_snapshot()))
        assert restored.links[0].a.load == 42

    def test_labels_preserved(self):
        restored = snapshot_from_yaml(snapshot_to_yaml(_snapshot()))
        assert restored.links[0].a.label == "#1"

    def test_timestamp_preserved(self):
        restored = snapshot_from_yaml(snapshot_to_yaml(_snapshot()))
        assert restored.timestamp == NOW

    def test_map_name_preserved(self):
        restored = snapshot_from_yaml(snapshot_to_yaml(_snapshot()))
        assert restored.map_name is MapName.EUROPE

    def test_node_kinds_preserved(self):
        restored = snapshot_from_yaml(snapshot_to_yaml(_snapshot()))
        assert restored.nodes["AMS-IX"].is_peering
        assert restored.nodes["fra-r1"].is_router

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "snap.yaml"
        size = write_snapshot(_snapshot(), path)
        assert size == path.stat().st_size
        assert read_snapshot(path).summary_counts() == (2, 1, 1)


class TestSchemaValidation:
    def test_invalid_yaml(self):
        with pytest.raises(SchemaError):
            snapshot_from_yaml("links: [unclosed")

    def test_non_mapping_root(self):
        with pytest.raises(SchemaError):
            snapshot_from_yaml("- a\n- b\n")

    def test_missing_map(self):
        with pytest.raises(SchemaError):
            snapshot_from_yaml("timestamp: '2022-01-01T00:00:00+00:00'\nrouters: []\npeerings: []\nlinks: []\n")

    def test_unknown_map(self):
        text = snapshot_to_yaml(_snapshot()).replace("europe", "mars")
        with pytest.raises(SchemaError):
            snapshot_from_yaml(text)

    def test_bad_timestamp(self):
        text = snapshot_to_yaml(_snapshot()).replace(NOW.isoformat(), "yesterday-ish")
        with pytest.raises(SchemaError):
            snapshot_from_yaml(text)

    def test_link_missing_end(self):
        text = (
            "map: europe\ntimestamp: '2022-01-01T00:00:00+00:00'\n"
            "routers: [r1, r2]\npeerings: []\n"
            "links:\n- a: {node: r1, label: '#1', load: 5}\n"
        )
        with pytest.raises(SchemaError):
            snapshot_from_yaml(text)

    def test_link_load_out_of_range_propagates(self):
        from repro.errors import LoadRangeError

        text = (
            "map: europe\ntimestamp: '2022-01-01T00:00:00+00:00'\n"
            "routers: [r1, r2]\npeerings: []\n"
            "links:\n"
            "- a: {node: r1, label: '#1', load: 500}\n"
            "  b: {node: r2, label: '#1', load: 5}\n"
        )
        with pytest.raises(LoadRangeError):
            snapshot_from_yaml(text)

    def test_boolean_load_rejected(self):
        text = (
            "map: europe\ntimestamp: '2022-01-01T00:00:00+00:00'\n"
            "routers: [r1, r2]\npeerings: []\n"
            "links:\n"
            "- a: {node: r1, label: '#1', load: true}\n"
            "  b: {node: r2, label: '#1', load: 5}\n"
        )
        with pytest.raises(SchemaError):
            snapshot_from_yaml(text)

    def test_non_string_router_name(self):
        text = (
            "map: europe\ntimestamp: '2022-01-01T00:00:00+00:00'\n"
            "routers: [42]\npeerings: []\nlinks: []\n"
        )
        with pytest.raises(SchemaError):
            snapshot_from_yaml(text)


class TestLibyamlEquivalence:
    """The accelerated (libyaml) code paths must be drop-in equivalent.

    When PyYAML was built without its C extension the aliases already
    point at the pure-Python classes and these assertions are trivially
    true — the contract is that callers can never tell which one ran.
    """

    def test_dump_byte_identical_to_pure_python(self, monkeypatch):
        import yaml

        from repro.yamlio import serialize

        accelerated = snapshot_to_yaml(_snapshot())
        monkeypatch.setattr(serialize, "_DUMPER", yaml.SafeDumper)
        assert snapshot_to_yaml(_snapshot()) == accelerated

    def test_load_matches_pure_python(self, monkeypatch):
        import yaml

        from repro.yamlio import deserialize

        text = snapshot_to_yaml(_snapshot())
        accelerated = snapshot_from_yaml(text)
        monkeypatch.setattr(deserialize, "_LOADER", yaml.SafeLoader)
        assert snapshot_from_yaml(text) == accelerated

    def test_parse_errors_identical(self, monkeypatch):
        import yaml

        from repro.yamlio import deserialize

        with pytest.raises(SchemaError):
            snapshot_from_yaml("links: [unclosed")
        monkeypatch.setattr(deserialize, "_LOADER", yaml.SafeLoader)
        with pytest.raises(SchemaError):
            snapshot_from_yaml("links: [unclosed")


class TestCompactness:
    def test_yaml_much_smaller_than_svg(self, apac_reference, apac_svg):
        # Table 2: the processed YAMLs are roughly 8x smaller than SVGs.
        yaml_text = snapshot_to_yaml(apac_reference)
        assert len(yaml_text) * 3 < len(apac_svg)

    def test_full_snapshot_round_trip(self, apac_reference):
        restored = snapshot_from_yaml(snapshot_to_yaml(apac_reference))
        assert restored.summary_counts() == apac_reference.summary_counts()
        assert len(restored.links) == len(apac_reference.links)
