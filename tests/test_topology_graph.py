"""Unit tests for graph views (degrees, parallel groups, networkx)."""

from datetime import datetime, timezone

import networkx

from repro.constants import MapName
from repro.topology.graph import (
    directed_parallel_groups,
    isolated_routers,
    mean_parallel_link_count,
    node_degrees,
    parallel_groups,
    to_networkx,
)
from repro.topology.model import Link, LinkEnd, MapSnapshot, Node

NOW = datetime(2022, 9, 12, tzinfo=timezone.utc)


def _build_snapshot() -> MapSnapshot:
    snapshot = MapSnapshot(map_name=MapName.EUROPE, timestamp=NOW)
    for name in ("r1", "r2", "r3", "PEER"):
        snapshot.add_node(Node.from_name(name))
    # Two parallel links r1-r2, one r2-r3, one external r1-PEER.
    snapshot.add_link(Link(LinkEnd("r1", "#1", 10), LinkEnd("r2", "#1", 11)))
    snapshot.add_link(Link(LinkEnd("r1", "#2", 12), LinkEnd("r2", "#2", 13)))
    snapshot.add_link(Link(LinkEnd("r2", "#1", 20), LinkEnd("r3", "#1", 21)))
    snapshot.add_link(Link(LinkEnd("r1", "#1", 30), LinkEnd("PEER", "#1", 31)))
    return snapshot


class TestNetworkx:
    def test_multigraph_parallel_edges(self):
        graph = to_networkx(_build_snapshot())
        assert isinstance(graph, networkx.MultiGraph)
        assert graph.number_of_edges("r1", "r2") == 2

    def test_node_attributes(self):
        graph = to_networkx(_build_snapshot())
        assert graph.nodes["PEER"]["kind"] == "peering"
        assert graph.nodes["r1"]["kind"] == "router"

    def test_edge_attributes(self):
        graph = to_networkx(_build_snapshot())
        edge = list(graph.get_edge_data("r1", "PEER").values())[0]
        assert edge["external"] is True
        assert edge["load_ab"] == 30


class TestDegrees:
    def test_degrees_count_parallel(self):
        degrees = node_degrees(_build_snapshot())
        assert degrees["r1"] == 3  # 2 parallel + 1 external
        assert degrees["r2"] == 3
        assert degrees["r3"] == 1

    def test_routers_only_excludes_peering(self):
        degrees = node_degrees(_build_snapshot(), routers_only=True)
        assert "PEER" not in degrees

    def test_include_peerings(self):
        degrees = node_degrees(_build_snapshot(), routers_only=False)
        assert degrees["PEER"] == 1


class TestParallelGroups:
    def test_group_count(self):
        groups = parallel_groups(_build_snapshot())
        assert len(groups) == 3

    def test_group_sizes(self):
        groups = parallel_groups(_build_snapshot())
        assert len(groups[("r1", "r2")]) == 2

    def test_directed_groups_double_undirected(self):
        directed = directed_parallel_groups(_build_snapshot())
        assert len(directed) == 6

    def test_directed_group_loads_by_source(self):
        directed = directed_parallel_groups(_build_snapshot())
        group = next(
            g for g in directed if g.source == "r1" and g.target == "r2"
        )
        assert group.loads == (10, 12)
        reverse = next(
            g for g in directed if g.source == "r2" and g.target == "r1"
        )
        assert reverse.loads == (11, 13)

    def test_external_flag_propagates(self):
        directed = directed_parallel_groups(_build_snapshot())
        external = [g for g in directed if g.external]
        assert len(external) == 2

    def test_mean_parallel_count(self):
        assert mean_parallel_link_count(_build_snapshot()) == 4 / 3


class TestIsolation:
    def test_no_isolated_in_connected_snapshot(self):
        assert isolated_routers(_build_snapshot()) == []

    def test_isolated_router_detected(self):
        snapshot = _build_snapshot()
        snapshot.add_node(Node.from_name("lonely"))
        assert isolated_routers(snapshot) == ["lonely"]
