"""Tests for the REP009–REP012 concurrency rule pack.

Each rule gets minimal positive/negative fixtures laid out as a
throwaway ``src/repro`` tree (the same harness as the core lint tests):
guarded-by discipline with its constructor and locked-by-caller escape
hatches, the REP000 staleness ratchet on guarded-by annotations, the
async-blocking fence around ``repro.server.asgi``, a genuine two-function
lock-order cycle, and queue discipline in the daemon modules.
"""

from __future__ import annotations

from pathlib import Path

from repro.devtools import CheckConfig, CheckResult, run_checks
from repro.devtools.engine import UNUSED_SUPPRESSION_RULE


def make_tree(tmp_path: Path, files: dict[str, str]) -> Path:
    """Lay ``files`` (paths relative to src/repro) out as a package tree."""
    root = tmp_path / "proj"
    package = root / "src" / "repro"
    package.mkdir(parents=True)
    (package / "__init__.py").write_text("", encoding="utf-8")
    for relpath, text in files.items():
        target = package / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(text, encoding="utf-8")
        init = target.parent / "__init__.py"
        if not init.exists():
            init.write_text("", encoding="utf-8")
    return root


def check_tree(root: Path) -> CheckResult:
    return run_checks(
        CheckConfig(root=root, src_roots=(root / "src" / "repro",))
    )


def rules_found(result: CheckResult) -> list[str]:
    return [finding.rule for finding in result.findings]


GUARDED_STATE = (
    "import threading\n"
    "class Box:\n"
    "    def __init__(self):\n"
    "        self._lock = threading.Lock()\n"
    "        self._items = {}  # repro: guarded-by[_lock]\n"
)


class TestRep009GuardedBy:
    def test_unguarded_read_and_write_flagged(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "server/state.py": GUARDED_STATE
                + (
                    "    def get(self, key):\n"
                    "        return self._items.get(key)\n"
                    "    def clear(self):\n"
                    "        self._items = {}\n"
                )
            },
        )
        result = check_tree(root)
        assert rules_found(result) == ["REP009", "REP009"]
        assert "read outside" in result.findings[0].message
        assert "mutated outside" in result.findings[1].message

    def test_locked_access_and_constructor_are_clean(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "server/state.py": GUARDED_STATE
                + (
                    "    def get(self, key):\n"
                    "        with self._lock:\n"
                    "            return self._items.get(key)\n"
                    "    def put(self, key, value):\n"
                    "        with self._lock:\n"
                    "            self._items[key] = value\n"
                )
            },
        )
        assert check_tree(root).ok

    def test_locked_by_caller_helper_is_clean(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "server/state.py": GUARDED_STATE
                + (
                    "    def sweep(self):\n"
                    "        with self._lock:\n"
                    "            self._drop('a')\n"
                    "    def _drop(self, key):"
                    "  # repro: locked-by-caller[_lock]\n"
                    "        self._items.pop(key, None)\n"
                )
            },
        )
        assert check_tree(root).ok

    def test_wrong_lock_is_still_a_finding(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "server/state.py": GUARDED_STATE
                + (
                    "    def get(self, key):\n"
                    "        with self._other_lock:\n"
                    "            return self._items.get(key)\n"
                )
            },
        )
        assert rules_found(check_tree(root)) == ["REP009"]

    def test_outside_threaded_scope_not_policed(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "analysis/state.py": GUARDED_STATE
                + (
                    "    def get(self, key):\n"
                    "        return self._items.get(key)\n"
                )
            },
        )
        assert check_tree(root).ok


class TestRep000GuardedByStaleness:
    def test_unused_declaration_reported(self, tmp_path):
        root = make_tree(tmp_path, {"server/state.py": GUARDED_STATE})
        result = check_tree(root)
        assert rules_found(result) == [UNUSED_SUPPRESSION_RULE]
        assert "unused guarded-by[_lock]" in result.findings[0].message

    def test_dangling_directive_reported(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "server/state.py": (
                    "def helper():  # repro: guarded-by[_lock]\n"
                    "    return 1\n"
                )
            },
        )
        result = check_tree(root)
        assert rules_found(result) == [UNUSED_SUPPRESSION_RULE]
        assert "dangling guarded-by" in result.findings[0].message


class TestRep010AsyncBlocking:
    def test_blocking_calls_in_async_def_flagged(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "server/asgi.py": (
                    "import time\n"
                    "async def handler(path, lock):\n"
                    "    time.sleep(0.1)\n"
                    "    open('x')\n"
                    "    lock.acquire()\n"
                    "    return path.read_text()\n"
                )
            },
        )
        result = check_tree(root)
        assert rules_found(result) == ["REP010"] * 4
        assert "asyncio.to_thread" in result.findings[0].message

    def test_queue_ops_without_timeout_flagged(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "server/asgi.py": (
                    "async def stream(event_queue):\n"
                    "    event_queue.get()\n"
                    "    event_queue.get(timeout=1.0)\n"
                )
            },
        )
        result = check_tree(root)
        assert rules_found(result) == ["REP010"]
        assert "without a timeout" in result.findings[0].message

    def test_to_thread_and_sync_defs_are_clean(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "server/asgi.py": (
                    "import asyncio\n"
                    "import time\n"
                    "async def handler(state):\n"
                    "    await asyncio.to_thread(state.start)\n"
                    "def warmup():\n"
                    "    time.sleep(0.1)\n"
                )
            },
        )
        assert check_tree(root).ok

    def test_other_server_modules_not_policed(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "server/feedish.py": (
                    "import time\n"
                    "async def tick():\n"
                    "    time.sleep(0.1)\n"
                )
            },
        )
        assert check_tree(root).ok


LOCK_PAIR = (
    "import threading\n"
    "a_lock = threading.Lock()\n"
    "b_lock = threading.Lock()\n"
)


class TestRep011LockOrder:
    def test_opposite_nesting_orders_are_a_cycle(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "analysis/locks.py": LOCK_PAIR
                + (
                    "def one():\n"
                    "    with a_lock:\n"
                    "        with b_lock:\n"
                    "            pass\n"
                    "def two():\n"
                    "    with b_lock:\n"
                    "        with a_lock:\n"
                    "            pass\n"
                )
            },
        )
        result = check_tree(root)
        assert rules_found(result) == ["REP011"]
        assert "lock-order cycle" in result.findings[0].message

    def test_consistent_nesting_is_clean(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "analysis/locks.py": LOCK_PAIR
                + (
                    "def one():\n"
                    "    with a_lock:\n"
                    "        with b_lock:\n"
                    "            pass\n"
                    "def two():\n"
                    "    with a_lock, b_lock:\n"
                    "        pass\n"
                )
            },
        )
        assert check_tree(root).ok

    def test_cross_module_cycle_found(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "analysis/one.py": LOCK_PAIR
                + (
                    "def go():\n"
                    "    with a_lock:\n"
                    "        with b_lock:\n"
                    "            pass\n"
                ),
                "analysis/two.py": (
                    "from repro.analysis.one import a_lock, b_lock\n"
                    "def go():\n"
                    "    with b_lock:\n"
                    "        with a_lock:\n"
                    "            pass\n"
                ),
            },
        )
        # Lexical node naming is per-module, so the cross-module order is
        # only a cycle when the names collapse to the same nodes — here
        # they do not; the single-module probe above is the binding one.
        # What this asserts: alien modules never crash the graph pass.
        assert isinstance(check_tree(root).ok, bool)

    def test_self_locks_in_distinct_classes_never_alias(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "analysis/classes.py": (
                    "class A:\n"
                    "    def go(self, other):\n"
                    "        with self._lock:\n"
                    "            with other.b_lock:\n"
                    "                pass\n"
                    "class B:\n"
                    "    def go(self, other):\n"
                    "        with other.b_lock:\n"
                    "            with self._lock:\n"
                    "                pass\n"
                )
            },
        )
        # A._lock → other.b_lock and other.b_lock → B._lock share no
        # reversed pair: no cycle, no finding.
        assert check_tree(root).ok


class TestRep012QueueDiscipline:
    def test_unbounded_queue_and_simplequeue_flagged(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "dataset/ingest.py": (
                    "import queue\n"
                    "work = queue.Queue()\n"
                    "fast = queue.SimpleQueue()\n"
                )
            },
        )
        result = check_tree(root)
        assert rules_found(result) == ["REP012", "REP012"]
        assert "unbounded Queue" in result.findings[0].message
        assert "SimpleQueue" in result.findings[1].message

    def test_nonpositive_bound_flagged(self, tmp_path):
        root = make_tree(
            tmp_path,
            {"dataset/ingest.py": "import queue\nwork = queue.Queue(0)\n"},
        )
        result = check_tree(root)
        assert rules_found(result) == ["REP012"]
        assert "must be positive" in result.findings[0].message

    def test_put_without_timeout_flagged(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "server/feed.py": (
                    "import queue\n"
                    "work = queue.Queue(8)\n"
                    "def feed(items):\n"
                    "    for item in items:\n"
                    "        work.put(item)\n"
                )
            },
        )
        result = check_tree(root)
        assert rules_found(result) == ["REP012"]
        assert "without timeout=" in result.findings[0].message

    def test_timeout_put_nowait_and_bounded_deque_clean(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "server/feed.py": (
                    "import queue\n"
                    "from collections import deque\n"
                    "work = queue.Queue(8)\n"
                    "ring = deque(maxlen=256)\n"
                    "def feed(items):\n"
                    "    for item in items:\n"
                    "        work.put(item, timeout=0.1)\n"
                    "    work.put_nowait(None)\n"
                )
            },
        )
        assert check_tree(root).ok

    def test_unbounded_deque_flagged(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "server/feed.py": (
                    "from collections import deque\n"
                    "ring = deque()\n"
                )
            },
        )
        result = check_tree(root)
        assert rules_found(result) == ["REP012"]
        assert "unbounded deque" in result.findings[0].message

    def test_annotated_queue_parameter_polices_puts(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "dataset/ingest.py": (
                    "import queue\n"
                    "def pump(work: 'queue.Queue[int]', items):\n"
                    "    for item in items:\n"
                    "        work.put(item)\n"
                )
            },
        )
        assert rules_found(check_tree(root)) == ["REP012"]

    def test_outside_threaded_scope_not_policed(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "analysis/batch.py": (
                    "import queue\n"
                    "work = queue.Queue()\n"
                    "def feed(item):\n"
                    "    work.put(item)\n"
                )
            },
        )
        assert check_tree(root).ok


class TestNoqaInteraction:
    def test_noqa_suppresses_concurrency_findings(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "dataset/ingest.py": (
                    "import queue\n"
                    "work = queue.Queue()  # repro: noqa[REP012]\n"
                )
            },
        )
        result = check_tree(root)
        assert result.ok
        assert result.suppressions_used == 1
