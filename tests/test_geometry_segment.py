"""Unit tests for repro.geometry.segment."""

import pytest

from repro.errors import GeometryError
from repro.geometry import Point, Segment


class TestConstruction:
    def test_degenerate_segment_rejected(self):
        with pytest.raises(GeometryError):
            Segment(Point(1, 1), Point(1, 1))

    def test_length(self):
        assert Segment(Point(0, 0), Point(3, 4)).length == 5

    def test_midpoint(self):
        assert Segment(Point(0, 0), Point(4, 0)).midpoint == Point(2, 0)

    def test_direction_is_unit(self):
        assert Segment(Point(0, 0), Point(10, 0)).direction == Point(1, 0)


class TestParametrisation:
    def test_point_at_zero_is_start(self):
        s = Segment(Point(1, 2), Point(5, 6))
        assert s.point_at(0) == s.start

    def test_point_at_one_is_end(self):
        s = Segment(Point(1, 2), Point(5, 6))
        assert s.point_at(1) == s.end

    def test_point_at_extrapolates(self):
        s = Segment(Point(0, 0), Point(2, 0))
        assert s.point_at(2) == Point(4, 0)

    def test_project_midpoint(self):
        s = Segment(Point(0, 0), Point(4, 0))
        assert s.project(Point(2, 7)) == pytest.approx(0.5)

    def test_project_before_start_negative(self):
        s = Segment(Point(0, 0), Point(4, 0))
        assert s.project(Point(-2, 0)) < 0


class TestDistances:
    def test_distance_to_point_on_segment(self):
        s = Segment(Point(0, 0), Point(10, 0))
        assert s.distance_to_point(Point(5, 3)) == 3

    def test_distance_clamps_to_endpoint(self):
        s = Segment(Point(0, 0), Point(10, 0))
        assert s.distance_to_point(Point(13, 4)) == 5

    def test_line_distance_ignores_extent(self):
        s = Segment(Point(0, 0), Point(10, 0))
        # Beyond the segment end, but on the supporting line's level.
        assert s.line_distance_to_point(Point(100, 4)) == pytest.approx(4)


class TestIntersections:
    def test_line_intersection_crossing(self):
        a = Segment(Point(0, 0), Point(10, 10))
        b = Segment(Point(0, 10), Point(10, 0))
        assert a.line_intersection(b).is_close(Point(5, 5))

    def test_line_intersection_parallel_none(self):
        a = Segment(Point(0, 0), Point(10, 0))
        b = Segment(Point(0, 1), Point(10, 1))
        assert a.line_intersection(b) is None

    def test_line_intersection_beyond_segments(self):
        # Supporting lines cross outside the finite segments.
        a = Segment(Point(0, 0), Point(1, 1))
        b = Segment(Point(10, 0), Point(9, 1))
        point = a.line_intersection(b)
        assert point is not None
        assert point.is_close(Point(5, 5))

    def test_segments_intersect(self):
        a = Segment(Point(0, 0), Point(10, 10))
        b = Segment(Point(0, 10), Point(10, 0))
        assert a.intersects_segment(b)

    def test_segments_disjoint(self):
        a = Segment(Point(0, 0), Point(1, 1))
        b = Segment(Point(5, 5), Point(6, 5))
        assert not a.intersects_segment(b)

    def test_segments_touching_endpoint(self):
        a = Segment(Point(0, 0), Point(5, 0))
        b = Segment(Point(5, 0), Point(5, 5))
        assert a.intersects_segment(b)

    def test_collinear_overlapping(self):
        a = Segment(Point(0, 0), Point(10, 0))
        b = Segment(Point(5, 0), Point(15, 0))
        assert a.intersects_segment(b)

    def test_collinear_disjoint(self):
        a = Segment(Point(0, 0), Point(1, 0))
        b = Segment(Point(5, 0), Point(7, 0))
        assert not a.intersects_segment(b)


class TestTransforms:
    def test_extended_lengths(self):
        s = Segment(Point(0, 0), Point(10, 0)).extended(before=2, after=3)
        assert s.start == Point(-2, 0)
        assert s.end == Point(13, 0)

    def test_reversed(self):
        s = Segment(Point(1, 2), Point(3, 4)).reversed()
        assert s.start == Point(3, 4)
        assert s.end == Point(1, 2)
