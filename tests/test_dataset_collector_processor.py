"""Integration tests: simulated collection and bulk SVG→YAML processing.

Runs a short real campaign over the smallest map, then processes it —
the scaled-down version of the paper's Table 2 workflow.
"""

from datetime import datetime, timedelta, timezone

import pytest

from repro.constants import MapName
from repro.dataset.catalog import DatasetCatalog
from repro.dataset.collector import SimulatedCollector
from repro.dataset.corruption import CorruptionInjector
from repro.dataset.gaps import AvailabilityModel
from repro.dataset.processor import process_map
from repro.dataset.store import DatasetStore
from repro.dataset.summary import build_table2, format_table2
from repro.yamlio.deserialize import snapshot_from_yaml

START = datetime(2022, 9, 11, 23, 0, tzinfo=timezone.utc)
END = START + timedelta(minutes=40)  # 8 ticks


@pytest.fixture(scope="module")
def collected(tmp_path_factory, simulator):
    """A small collected-and-processed APAC dataset."""
    root = tmp_path_factory.mktemp("dataset")
    store = DatasetStore(root)
    collector = SimulatedCollector(
        simulator,
        store,
        availability=AvailabilityModel(seed=simulator.config.seed),
        corruption=CorruptionInjector(seed=simulator.config.seed, rate=0.0),
    )
    stats = collector.collect(START, END, maps=[MapName.ASIA_PACIFIC])
    processing = process_map(store, MapName.ASIA_PACIFIC)
    return store, stats, processing


class TestCollection:
    def test_files_written(self, collected):
        _, stats, _ = collected
        assert stats.files_written[MapName.ASIA_PACIFIC] >= 7

    def test_bytes_accounted(self, collected):
        store, stats, _ = collected
        count, size = store.file_stats(MapName.ASIA_PACIFIC, "svg")
        assert count == stats.files_written[MapName.ASIA_PACIFIC]
        assert size == stats.bytes_written[MapName.ASIA_PACIFIC]

    def test_loads_change_between_ticks(self, collected):
        store, _, _ = collected
        refs = list(store.iter_refs(MapName.ASIA_PACIFIC, "svg"))
        first = refs[0].path.read_text(encoding="utf-8")
        last = refs[-1].path.read_text(encoding="utf-8")
        assert first != last

    def test_layout_stable_between_ticks(self, collected):
        store, _, _ = collected
        refs = list(store.iter_refs(MapName.ASIA_PACIFIC, "svg"))
        first = refs[0].path.read_text(encoding="utf-8")
        last = refs[-1].path.read_text(encoding="utf-8")
        # Object boxes (node positions) identical across snapshots.
        import re

        def boxes(svg):
            return re.findall(r'<g class="object[^>]*><rect [^/]*/>', svg)

        assert boxes(first) == boxes(last)


class TestProcessing:
    def test_all_processed(self, collected):
        _, stats, processing = collected
        assert processing.processed == stats.files_written[MapName.ASIA_PACIFIC]
        assert processing.unprocessed == 0

    def test_yaml_readable_and_correct(self, collected, simulator):
        store, _, _ = collected
        refs = list(store.iter_refs(MapName.ASIA_PACIFIC, "yaml"))
        assert refs
        snapshot = snapshot_from_yaml(refs[0].path.read_text(encoding="utf-8"))
        expected = simulator.snapshot(MapName.ASIA_PACIFIC, refs[0].timestamp)
        assert snapshot.summary_counts() == expected.summary_counts()

    def test_reprocess_skips_existing(self, collected):
        store, _, _ = collected
        again = process_map(store, MapName.ASIA_PACIFIC)
        assert again.processed > 0
        assert again.unprocessed == 0

    def test_corrupted_files_counted_not_fatal(self, tmp_path, simulator):
        store = DatasetStore(tmp_path)
        collector = SimulatedCollector(
            simulator,
            store,
            availability=AvailabilityModel(seed=simulator.config.seed),
            corruption=CorruptionInjector(seed=simulator.config.seed, rate=1.0),
        )
        collector.collect(START, START + timedelta(minutes=15), maps=[MapName.WORLD])
        stats = process_map(store, MapName.WORLD)
        assert stats.unprocessed == stats.total > 0
        assert sum(stats.failure_causes.values()) == stats.unprocessed


class TestTable2:
    def test_rows_and_totals(self, collected):
        store, _, _ = collected
        rows = build_table2(store)
        assert rows[-1].map_name is None
        by_map = {row.map_name: row for row in rows[:-1]}
        apac = by_map[MapName.ASIA_PACIFIC]
        assert apac.svg_files == apac.yaml_files
        assert apac.unprocessed == 0
        # YAMLs are several times smaller than SVGs (paper: ~8x).
        assert apac.compression_factor > 3

    def test_formatting(self, collected):
        store, _, _ = collected
        text = format_table2(build_table2(store))
        assert "Asia Pacific" in text
        assert "Total" in text


class TestCatalogOnCollected:
    def test_time_frames(self, collected):
        store, _, _ = collected
        catalog = DatasetCatalog(store)
        frames = catalog.time_frames(MapName.ASIA_PACIFIC)
        assert len(frames) >= 1
        assert frames[0].snapshot_count == catalog.snapshot_count(MapName.ASIA_PACIFIC)


class TestLogging:
    def test_processor_logs_summary(self, tmp_path, simulator, caplog):
        import logging

        store = DatasetStore(tmp_path)
        collector = SimulatedCollector(
            simulator,
            store,
            corruption=CorruptionInjector(seed=simulator.config.seed, rate=0.0),
        )
        collector.collect(START, START + timedelta(minutes=10), maps=[MapName.WORLD])
        with caplog.at_level(logging.INFO, logger="repro.dataset.processor"):
            process_map(store, MapName.WORLD)
        assert any("processed world" in record.message for record in caplog.records)

    def test_processor_warns_on_unprocessable(self, tmp_path, simulator, caplog):
        import logging

        store = DatasetStore(tmp_path)
        store.write(MapName.WORLD, START, "svg", "<svg broken")
        with caplog.at_level(logging.WARNING, logger="repro.dataset.processor"):
            stats = process_map(store, MapName.WORLD)
        assert stats.unprocessed == 1
        assert any("unprocessable" in record.message for record in caplog.records)
