"""Unit tests for the SVG writer and the tag-stream reader."""

import pytest

from repro.errors import MalformedSvgError, SvgError
from repro.geometry import Point, Rect
from repro.svgdoc.reader import read_svg_tags
from repro.svgdoc.writer import WeathermapSvgWriter


def _writer() -> WeathermapSvgWriter:
    return WeathermapSvgWriter(width=800, height=600, title="test map")


def _triangle(offset: float = 0.0) -> list[Point]:
    return [Point(offset, 0), Point(offset + 10, 5), Point(offset, 10)]


class TestWriterStructure:
    def test_empty_document_is_valid_svg(self):
        stream = read_svg_tags(_writer().to_svg())
        assert stream.width == 800
        assert stream.height == 600

    def test_invalid_canvas_rejected(self):
        with pytest.raises(SvgError):
            WeathermapSvgWriter(width=0, height=100)

    def test_object_round_trips(self):
        writer = _writer()
        writer.add_object("fra-fr5", Rect(10, 10, 80, 26), is_peering=False)
        tags = read_svg_tags(writer.to_svg()).tags
        object_tags = [t for t in tags if t.svg_class.startswith("object")]
        assert len(object_tags) == 1
        assert object_tags[0].children[1].text == "fra-fr5"

    def test_peering_name_upper_cased(self):
        writer = _writer()
        writer.add_object("arelion", Rect(0, 0, 50, 20), is_peering=True)
        tags = read_svg_tags(writer.to_svg()).tags
        object_tag = next(t for t in tags if t.svg_class.startswith("object"))
        assert object_tag.children[1].text == "ARELION"

    def test_router_name_lower_cased(self):
        writer = _writer()
        writer.add_object("FRA-FR5", Rect(0, 0, 50, 20), is_peering=False)
        tags = read_svg_tags(writer.to_svg()).tags
        object_tag = next(t for t in tags if t.svg_class.startswith("object"))
        assert object_tag.children[1].text == "fra-fr5"


class TestWriterLinkStateMachine:
    def test_complete_link(self):
        writer = _writer()
        writer.add_link(
            arrows=[(_triangle(), "#fff"), (_triangle(50), "#000")],
            loads=[(42, Point(30, 30)), (9, Point(40, 40))],
        )
        svg = writer.to_svg()
        assert svg.count("<polygon") == 2
        assert svg.count('class="labellink"') == 2
        assert "42%" in svg and "9%" in svg

    def test_third_arrow_rejected(self):
        writer = _writer()
        writer.add_arrow(_triangle(), "#fff")
        writer.add_arrow(_triangle(30), "#fff")
        with pytest.raises(SvgError):
            writer.add_arrow(_triangle(60), "#fff")

    def test_load_before_arrow_rejected(self):
        with pytest.raises(SvgError):
            _writer().add_load_text(42, Point(0, 0))

    def test_incomplete_link_blocks_serialisation(self):
        writer = _writer()
        writer.add_arrow(_triangle(), "#fff")
        with pytest.raises(SvgError):
            writer.to_svg()

    def test_arrow_needs_three_points(self):
        with pytest.raises(SvgError):
            _writer().add_arrow([Point(0, 0), Point(1, 1)], "#fff")

    def test_fractional_load_formatting(self):
        writer = _writer()
        writer.add_link(
            arrows=[(_triangle(), "#fff"), (_triangle(50), "#000")],
            loads=[(3.5, Point(0, 0)), (4, Point(1, 1))],
        )
        svg = writer.to_svg()
        assert "3.5%" in svg
        assert "4%" in svg


class TestWriterLabels:
    def test_label_pair_order(self):
        writer = _writer()
        writer.add_link_label("#1", Rect(5, 5, 12, 8))
        tags = read_svg_tags(writer.to_svg()).tags
        node_tags = [t for t in tags if t.svg_class == "node"]
        assert [t.tag for t in node_tags] == ["rect", "text"]
        assert node_tags[1].text == "#1"

    def test_label_text_escaped(self):
        writer = _writer()
        writer.add_link_label("<&>", Rect(5, 5, 12, 8))
        stream = read_svg_tags(writer.to_svg())
        node_text = [t for t in stream.tags if t.svg_class == "node" and t.tag == "text"]
        assert node_text[0].text == "<&>"


class TestReader:
    def test_malformed_xml_raises(self):
        with pytest.raises(MalformedSvgError):
            read_svg_tags("<svg><unclosed></svg")

    def test_non_svg_root_raises(self):
        with pytest.raises(MalformedSvgError):
            read_svg_tags("<html></html>")

    def test_bytes_input(self):
        stream = read_svg_tags(_writer().to_svg().encode("utf-8"))
        assert stream.width == 800

    def test_namespace_stripped(self):
        svg = '<svg xmlns="http://www.w3.org/2000/svg" width="10" height="10"><rect/></svg>'
        tags = read_svg_tags(svg).tags
        assert tags[0].tag == "rect"

    def test_dimension_with_units(self):
        svg = '<svg xmlns="http://www.w3.org/2000/svg" width="10px" height="20px"></svg>'
        stream = read_svg_tags(svg)
        assert (stream.width, stream.height) == (10, 20)

    def test_tag_order_preserved(self):
        writer = _writer()
        writer.add_object("a-router", Rect(0, 0, 50, 20), is_peering=False)
        writer.add_link(
            arrows=[(_triangle(), "#fff"), (_triangle(50), "#000")],
            loads=[(1, Point(0, 0)), (2, Point(1, 1))],
        )
        tags = [t.tag for t in read_svg_tags(writer.to_svg()).tags]
        # Object group before polygons before labellink texts.
        assert tags.index("g") < tags.index("polygon")
