"""Tests for the zero-copy mmap query engine.

The contracts under test: both column backends (numpy and the
pure-stdlib memoryview casts) expose identical data and produce
identical scan selections; every predicate-pushdown scan returns
exactly what a brute-force walk over the reconstructed snapshots
returns; and the mapping's lifecycle is safe — an open engine keeps
serving its generation across an atomic index rebuild, detects the
supersession as :class:`StaleIndexError`, and degrades to buffered
I/O when asked to skip ``mmap``.
"""

from __future__ import annotations

import sys
from datetime import datetime, timedelta, timezone

import pytest

from repro.constants import MapName
from repro.dataset.index import SnapshotIndex, build_index, parse_index_layout
from repro.dataset.loader import load_all
from repro.dataset.query import (
    BACKENDS,
    MappedIndex,
    ScanPredicate,
    open_query,
    resolve_backend,
)
from repro.dataset.store import DatasetStore
from repro.errors import (
    DatasetError,
    QueryError,
    SnapshotIndexError,
    StaleIndexError,
)
from repro.telemetry import MetricsRegistry, use_registry
from repro.topology.model import Link, LinkEnd, MapSnapshot, Node
from repro.yamlio.serialize import snapshot_to_yaml

T0 = datetime(2022, 3, 6, 22, 0, tzinfo=timezone.utc)
MAP = MapName.EUROPE
FILES = 6

REAL_BACKENDS = tuple(b for b in BACKENDS if b != "auto")


def _snapshot(when: datetime, step: int) -> MapSnapshot:
    """A churning topology with load spread across the [0, 100] range."""
    snapshot = MapSnapshot(map_name=MAP, timestamp=when)
    snapshot.add_node(Node.from_name("fra-r1"))
    snapshot.add_node(Node.from_name("par-r2"))
    snapshot.add_node(Node.from_name("AMS-IX"))
    snapshot.add_link(
        Link(
            LinkEnd("fra-r1", "#1", float(10 * step)),
            LinkEnd("par-r2", "#1", float(step)),
        )
    )
    snapshot.add_link(
        Link(LinkEnd("par-r2", "#2", 30.0), LinkEnd("AMS-IX", "#1", 2.0))
    )
    if step < 3:
        snapshot.add_node(Node.from_name("waw-r3"))
        snapshot.add_link(
            Link(LinkEnd("waw-r3", "#1", 5.0), LinkEnd("fra-r1", "#2", 6.0))
        )
    return snapshot


def _object_links(snapshots):
    """Brute-force oracle: every link occurrence, fully resolved."""
    rows = []
    for snapshot in snapshots:
        for link in snapshot.links:
            rows.append(
                (
                    snapshot.timestamp,
                    link.a.node,
                    link.a.label,
                    link.a.load,
                    link.b.node,
                    link.b.label,
                    link.b.load,
                )
            )
    return rows


def _matches(
    links,
    start=None,
    end=None,
    node=None,
    link=None,
    min_load=None,
    max_load=None,
):
    """The predicate semantics, restated independently over the oracle."""
    out = []
    for row in links:
        when, node_a, _, load_a, node_b, _, load_b = row
        if start is not None and when < start:
            continue
        if end is not None and when >= end:
            continue
        if node is not None and node not in (node_a, node_b):
            continue
        if link is not None and {node_a, node_b} != set(link):
            continue
        peak = max(load_a, load_b)
        if min_load is not None and peak < min_load:
            continue
        if max_load is not None and peak > max_load:
            continue
        out.append(row)
    return out


def _records(result):
    return [
        (r.timestamp, r.node_a, r.label_a, r.load_a, r.node_b, r.label_b, r.load_b)
        for r in result.records()
    ]


@pytest.fixture()
def store(tmp_path) -> DatasetStore:
    store = DatasetStore(tmp_path)
    for step in range(FILES):
        when = T0 + timedelta(hours=step)
        store.write(MAP, when, "yaml", snapshot_to_yaml(_snapshot(when, step)))
    build_index(store, MAP)
    return store


@pytest.fixture()
def snapshots(store):
    return load_all(store, MAP, use_index=False)


@pytest.fixture(params=REAL_BACKENDS)
def engine(request, store):
    engine = MappedIndex.open(store.index_path(MAP), backend=request.param)
    yield engine
    engine.close()


class TestResolveBackend:
    def test_auto_prefers_numpy_when_importable(self):
        assert resolve_backend("auto") == "numpy"

    def test_memoryview_is_always_honoured(self):
        assert resolve_backend("memoryview") == "memoryview"

    def test_unknown_backend_rejected(self):
        with pytest.raises(QueryError):
            resolve_backend("pandas")

    def test_numpy_request_without_numpy_errors(self, monkeypatch):
        monkeypatch.setitem(sys.modules, "numpy", None)  # import -> ImportError
        with pytest.raises(QueryError):
            resolve_backend("numpy")

    def test_auto_without_numpy_downgrades(self, monkeypatch):
        monkeypatch.setitem(sys.modules, "numpy", None)
        assert resolve_backend("auto") == "memoryview"


class TestScanPredicateValidation:
    def test_inverted_window_rejected(self):
        with pytest.raises(QueryError):
            ScanPredicate(start=T0, end=T0 - timedelta(hours=1))

    def test_empty_node_rejected(self):
        with pytest.raises(QueryError):
            ScanPredicate(node="")

    def test_malformed_link_rejected(self):
        with pytest.raises(QueryError):
            ScanPredicate(link=("fra-r1", ""))
        with pytest.raises(QueryError):
            ScanPredicate(link=("fra-r1",))

    def test_load_bounds_must_be_percentages(self):
        with pytest.raises(QueryError):
            ScanPredicate(min_load=-0.1)
        with pytest.raises(QueryError):
            ScanPredicate(max_load=100.5)

    def test_inverted_load_bounds_rejected(self):
        with pytest.raises(QueryError):
            ScanPredicate(min_load=60.0, max_load=40.0)

    def test_query_error_is_a_dataset_value_error(self):
        with pytest.raises(DatasetError):
            ScanPredicate(node="")
        with pytest.raises(ValueError):
            ScanPredicate(node="")

    def test_filters_links_property(self):
        assert not ScanPredicate(start=T0).filters_links
        assert ScanPredicate(node="fra-r1").filters_links
        assert ScanPredicate(min_load=10.0).filters_links


class TestBackendsAgree:
    """The numpy views and the memoryview casts are the same data."""

    def test_columns_identical_to_loaded_index(self, store):
        reference = SnapshotIndex.load(store.index_path(MAP))
        for backend in REAL_BACKENDS:
            with MappedIndex.open(store.index_path(MAP), backend=backend) as engine:
                assert engine.names == reference.names
                assert engine.labels == reference.labels
                assert engine.map_name is MAP
                for attribute in (
                    "timestamps",
                    "link_counts",
                    "router_counts",
                    "link_a_nodes",
                    "link_b_nodes",
                    "link_a_loads",
                    "link_b_loads",
                ):
                    assert list(getattr(engine, attribute)) == list(
                        getattr(reference, attribute)
                    ), f"{backend}:{attribute}"

    def test_scans_select_the_same_elements(self, store):
        predicates = [
            ScanPredicate(),
            ScanPredicate(node="fra-r1"),
            ScanPredicate(link=("fra-r1", "par-r2")),
            ScanPredicate(min_load=10.0),
            ScanPredicate(start=T0 + timedelta(hours=1), max_load=30.0),
        ]
        engines = [
            MappedIndex.open(store.index_path(MAP), backend=backend)
            for backend in REAL_BACKENDS
        ]
        try:
            for predicate in predicates:
                selections = [
                    list(engine.scan(predicate).selected) for engine in engines
                ]
                assert all(s == selections[0] for s in selections), predicate
        finally:
            for engine in engines:
                engine.close()


class TestPredicatePushdown:
    """Every scan returns exactly what the object path returns."""

    def test_full_scan_matches_everything(self, engine, snapshots):
        result = engine.scan()
        oracle = _object_links(snapshots)
        assert len(result) == len(oracle)
        assert result.snapshot_count == FILES
        assert _records(result) == oracle

    def test_time_window_is_half_open(self, engine, snapshots):
        start = T0 + timedelta(hours=1)
        end = T0 + timedelta(hours=4)
        result = engine.scan(ScanPredicate(start=start, end=end))
        oracle = _matches(_object_links(snapshots), start=start, end=end)
        assert _records(result) == oracle
        assert result.snapshot_count == 3

    def test_node_filter(self, engine, snapshots):
        result = engine.scan(ScanPredicate(node="fra-r1"))
        oracle = _matches(_object_links(snapshots), node="fra-r1")
        assert _records(result) == oracle
        assert len(oracle) > 0

    def test_link_filter_is_orientation_blind(self, engine, snapshots):
        forward = engine.scan(ScanPredicate(link=("fra-r1", "par-r2")))
        backward = engine.scan(ScanPredicate(link=("par-r2", "fra-r1")))
        oracle = _matches(_object_links(snapshots), link=("fra-r1", "par-r2"))
        assert _records(forward) == oracle
        assert _records(backward) == oracle
        assert len(oracle) == FILES

    def test_load_thresholds_apply_to_the_busier_direction(
        self, engine, snapshots
    ):
        oracle_links = _object_links(snapshots)
        for min_load, max_load in [(10.0, None), (None, 29.0), (5.0, 30.0)]:
            result = engine.scan(
                ScanPredicate(min_load=min_load, max_load=max_load)
            )
            oracle = _matches(
                oracle_links, min_load=min_load, max_load=max_load
            )
            assert _records(result) == oracle

    def test_combined_filters(self, engine, snapshots):
        start = T0 + timedelta(hours=1)
        result = engine.scan(
            ScanPredicate(start=start, node="par-r2", min_load=25.0)
        )
        oracle = _matches(
            _object_links(snapshots), start=start, node="par-r2", min_load=25.0
        )
        assert _records(result) == oracle

    def test_unknown_names_match_nothing(self, engine):
        assert len(engine.scan(ScanPredicate(node="never-seen"))) == 0
        assert len(engine.scan(ScanPredicate(link=("fra-r1", "nope")))) == 0

    def test_directed_loads_match_object_order(self, engine, snapshots):
        expected = []
        for snapshot in snapshots:
            for link in snapshot.links:
                expected.extend([link.a.load, link.b.load])
        assert [float(v) for v in engine.scan().directed_loads()] == expected

    def test_batches_concatenate_to_the_full_result(self, engine):
        result = engine.scan(ScanPredicate(node="fra-r1"))
        one_piece = list(result.batches(size=10_000))
        many = list(result.batches(size=2))
        assert sum(len(batch) for batch in many) == len(result)
        flat = [v for batch in many for v in batch.a_loads]
        assert [float(v) for v in flat] == [
            float(v) for batch in one_piece for v in batch.a_loads
        ]

    def test_batch_size_must_be_positive(self, engine):
        with pytest.raises(QueryError):
            list(engine.scan().batches(size=0))

    def test_row_of_maps_elements_back_to_snapshots(self, engine, snapshots):
        result = engine.scan()
        oracle = _object_links(snapshots)
        times = [s.timestamp for s in snapshots]
        for element in list(result.selected)[:: max(1, len(oracle) // 7)]:
            row = result.row_of(int(element))
            assert times[row] == oracle[element][0]

    def test_empty_window_scans_cleanly(self, engine):
        result = engine.scan(
            ScanPredicate(start=T0 - timedelta(days=2), end=T0 - timedelta(days=1))
        )
        assert len(result) == 0
        assert result.snapshot_count == 0
        assert list(result.batches()) == []


class TestLifecycle:
    def test_open_engine_survives_incremental_rebuild(self, store):
        engine = MappedIndex.open(store.index_path(MAP))
        assert len(engine) == FILES
        when = T0 + timedelta(hours=FILES)
        store.write(MAP, when, "yaml", snapshot_to_yaml(_snapshot(when, FILES)))
        build_index(store, MAP)  # atomic replace under the open mapping
        # The old generation still serves, in full.
        assert len(engine) == FILES
        assert len(engine.scan()) > 0
        with pytest.raises(StaleIndexError):
            engine.check_generation()
        engine.close()
        # Reopening serves the new generation.
        with MappedIndex.open(store.index_path(MAP)) as fresh:
            assert len(fresh) == FILES + 1
            fresh.check_generation()

    def test_vanished_file_is_stale(self, store):
        with MappedIndex.open(store.index_path(MAP)) as engine:
            store.index_path(MAP).unlink()
            with pytest.raises(StaleIndexError):
                engine.check_generation()

    def test_stale_is_a_snapshot_index_error(self):
        assert issubclass(StaleIndexError, SnapshotIndexError)

    def test_buffer_opened_engine_has_no_generation(self, store):
        buffer = store.index_path(MAP).read_bytes()
        layout = parse_index_layout(buffer, source="memory")
        engine = MappedIndex(buffer, layout)
        assert len(engine.scan()) > 0
        with pytest.raises(QueryError):
            engine.check_generation()

    def test_no_mmap_fallback_is_equivalent(self, store):
        mapped = MappedIndex.open(store.index_path(MAP))
        buffered = MappedIndex.open(store.index_path(MAP), use_mmap=False)
        try:
            assert mapped.mapped is True
            assert buffered.mapped is False
            assert list(mapped.scan().selected) == list(buffered.scan().selected)
            assert _records(mapped.scan()) == _records(buffered.scan())
        finally:
            mapped.close()
            buffered.close()

    def test_missing_mmap_module_falls_back(self, store, monkeypatch):
        from repro.dataset import query as query_module

        monkeypatch.setattr(query_module, "_mmap", None)
        with MappedIndex.open(store.index_path(MAP)) as engine:
            assert engine.mapped is False
            assert len(engine) == FILES

    def test_closed_engine_refuses_scans(self, store):
        engine = MappedIndex.open(store.index_path(MAP))
        engine.close()
        assert engine.closed
        with pytest.raises(QueryError):
            engine.scan()
        with pytest.raises(QueryError):
            len(engine)
        engine.close()  # idempotent

    def test_context_manager_closes(self, store):
        with MappedIndex.open(store.index_path(MAP)) as engine:
            assert not engine.closed
        assert engine.closed

    def test_foreign_endian_index_rejected(self, store, monkeypatch):
        from repro.dataset import query as query_module

        other = "big" if sys.byteorder == "little" else "little"
        monkeypatch.setattr(query_module, "sys_byteorder", lambda: other)
        with pytest.raises(SnapshotIndexError, match="endian"):
            MappedIndex.open(store.index_path(MAP))

    def test_verify_accepts_an_intact_file(self, store):
        with MappedIndex.open(store.index_path(MAP), verify=True) as engine:
            assert len(engine) == FILES

    def test_verify_catches_payload_corruption(self, store):
        path = store.index_path(MAP)
        raw = bytearray(path.read_bytes())
        raw[-33] ^= 0xFF  # last payload byte, before the trailing digest
        path.write_bytes(bytes(raw))
        with pytest.raises(SnapshotIndexError, match="checksum"):
            MappedIndex.open(path, verify=True)

    def test_missing_file_is_a_snapshot_index_error(self, tmp_path):
        with pytest.raises(SnapshotIndexError):
            MappedIndex.open(tmp_path / "absent.bin")


class TestOpenQuery:
    def test_fresh_index_is_served(self, store):
        engine = open_query(store, MAP)
        assert engine is not None
        assert engine.map_name is MAP
        assert len(engine.scan()) > 0
        engine.close()

    def test_missing_index_returns_none(self, tmp_path):
        assert open_query(DatasetStore(tmp_path), MAP) is None

    def test_stale_index_returns_none(self, store):
        when = T0 + timedelta(hours=FILES)
        store.write(MAP, when, "yaml", snapshot_to_yaml(_snapshot(when, FILES)))
        assert open_query(store, MAP) is None

    def test_require_fresh_false_skips_the_walk(self, store):
        when = T0 + timedelta(hours=FILES)
        store.write(MAP, when, "yaml", snapshot_to_yaml(_snapshot(when, FILES)))
        engine = open_query(store, MAP, require_fresh=False)
        assert engine is not None
        assert len(engine) == FILES
        engine.close()

    def test_wrong_map_returns_none(self, store):
        assert open_query(store, MapName.WORLD) is None


class TestTelemetry:
    def test_scan_counters_and_span(self, store, snapshots):
        registry = MetricsRegistry()
        with use_registry(registry):
            engine = open_query(store, MAP)
            result = engine.scan(ScanPredicate(node="fra-r1"))
            engine.close()
        labels = {"map": MAP.value, "backend": engine.backend}
        assert registry.get("repro_query_opens_total").value(
            map=MAP.value, source="mmap", backend=engine.backend
        ) == 1
        assert registry.get("repro_query_scans_total").value(**labels) == 1
        assert (
            registry.get("repro_query_rows_scanned_total").value(map=MAP.value)
            == FILES
        )
        assert registry.get("repro_query_links_matched_total").value(
            map=MAP.value
        ) == len(result)
        assert registry.get("repro_query_scan_seconds").count(**labels) == 1

    def test_open_query_hits_the_index_cache_counter(self, store):
        registry = MetricsRegistry()
        with use_registry(registry):
            open_query(store, MAP).close()
            open_query(DatasetStore(store.root), MapName.WORLD)
        cache = registry.get("repro_index_cache_total")
        assert cache.value(map=MAP.value, outcome="hit") == 1
        assert cache.value(map=MapName.WORLD.value, outcome="miss") == 1
