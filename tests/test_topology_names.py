"""Unit tests for OVH-style name generation."""

from repro.constants import MapName
from repro.topology.names import SITE_CODES, NameGenerator, PEERING_NAMES


class TestRouterNames:
    def test_router_name_is_lower_case(self):
        name = NameGenerator(MapName.EUROPE).router_name()
        assert name == name.lower()

    def test_router_name_site_prefix(self):
        generator = NameGenerator(MapName.EUROPE)
        name = generator.router_name(site="fra")
        assert name.startswith("fra-")

    def test_random_site_from_map_pool(self):
        generator = NameGenerator(MapName.ASIA_PACIFIC)
        for _ in range(20):
            site = generator.site_of(generator.router_name())
            assert site in SITE_CODES[MapName.ASIA_PACIFIC]

    def test_names_unique(self):
        generator = NameGenerator(MapName.EUROPE)
        names = {generator.router_name() for _ in range(500)}
        assert len(names) == 500

    def test_deterministic_given_seed(self):
        first = [NameGenerator(MapName.EUROPE, seed=7).router_name() for _ in range(5)]
        second = [NameGenerator(MapName.EUROPE, seed=7).router_name() for _ in range(5)]
        assert first == second

    def test_different_seeds_differ(self):
        a = NameGenerator(MapName.EUROPE, seed=1).router_name()
        b = NameGenerator(MapName.EUROPE, seed=2).router_name()
        assert a != b


class TestPeeringNames:
    def test_peering_name_is_upper_case(self):
        name = NameGenerator(MapName.EUROPE).peering_name()
        assert name == name.upper()

    def test_pool_exhaustion_falls_back_to_as_numbers(self):
        generator = NameGenerator(MapName.EUROPE)
        names = [generator.peering_name() for _ in range(len(PEERING_NAMES) + 10)]
        assert len(set(names)) == len(names)
        assert any(name.startswith("AS") for name in names[-10:])

    def test_reserve_prevents_reissue(self):
        generator = NameGenerator(MapName.EUROPE)
        generator.reserve("AMS-IX")
        names = [generator.peering_name() for _ in range(len(PEERING_NAMES) + 5)]
        assert "AMS-IX" not in names

    def test_reserve_twice_rejected(self):
        import pytest

        generator = NameGenerator(MapName.EUROPE)
        generator.reserve("AMS-IX")
        with pytest.raises(ValueError):
            generator.reserve("AMS-IX")


class TestSiteExtraction:
    def test_site_of(self):
        generator = NameGenerator(MapName.EUROPE)
        assert generator.site_of("fra-fr5-pb6-nc5") == "fra"
