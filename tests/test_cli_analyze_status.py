"""Tests for the analyze and status CLI subcommands."""

import pytest

from repro.cli.main import main


class TestAnalyze:
    @pytest.fixture(scope="class")
    def dataset_dir(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("analyze-dataset")
        assert (
            main(
                [
                    "generate",
                    str(root),
                    "--start",
                    "2022-09-11T23:30:00",
                    "--end",
                    "2022-09-12T00:00:00",
                    "--map",
                    "world",
                ]
            )
            == 0
        )
        assert main(["process", str(root)]) == 0
        return root

    def test_analyze_output(self, dataset_dir, capsys):
        code = main(["analyze", str(dataset_dir), "--map", "world"])
        out = capsys.readouterr().out
        assert code == 0
        assert "snapshots" in out
        assert "router degrees" in out
        assert "link loads" in out

    def test_analyze_empty_dataset(self, dataset_dir, capsys):
        code = main(["analyze", str(dataset_dir), "--map", "europe"])
        assert code == 1
        assert "no processed snapshots" in capsys.readouterr().err

    def test_analyze_missing_directory(self, tmp_path, capsys):
        code = main(["analyze", str(tmp_path / "nowhere"), "--map", "world"])
        assert code == 1


class TestStatus:
    def test_status_correlates_everything(self, capsys):
        code = main(["status", "--map", "europe"])
        out = capsys.readouterr().out
        assert code == 0
        assert "structural changes" in out
        assert "100% explained" in out
        assert "UNEXPLAINED" not in out

    def test_status_small_map(self, capsys):
        code = main(["status", "--map", "asia-pacific"])
        assert code == 0
        assert "Asia Pacific" in capsys.readouterr().out
