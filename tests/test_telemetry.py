"""Tests for the repro.telemetry subsystem.

The contracts under test: instruments are thread-safe under concurrent
hammering, registry snapshots round-trip through merge (so parallel runs
total exactly what serial runs do), exports render valid Prometheus text
exposition, and the NullRegistry records nothing while keeping every
call site valid.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.errors import TelemetryError
from repro.telemetry import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    NullRegistry,
    get_registry,
    load_metrics_file,
    read_snapshot_file,
    set_registry,
    snapshot_to_json,
    snapshot_to_prometheus,
    use_registry,
    write_metrics_file,
)


class TestCounter:
    def test_inc_and_value(self):
        counter = MetricsRegistry().counter("c_total")
        counter.inc(2, map="europe")
        counter.inc(3, map="europe")
        counter.inc(1, map="world")
        assert counter.value(map="europe") == 5
        assert counter.value(map="world") == 1
        assert counter.total() == 6

    def test_untouched_series_reads_zero(self):
        counter = MetricsRegistry().counter("c_total")
        assert counter.value(map="nowhere") == 0

    def test_inc_zero_materialises_the_series(self):
        counter = MetricsRegistry().counter("c_total")
        counter.inc(0, outcome="miss")
        assert ((("outcome", "miss"),), 0.0) in counter.series().items()

    def test_negative_inc_rejected(self):
        counter = MetricsRegistry().counter("c_total")
        with pytest.raises(TelemetryError):
            counter.inc(-1)

    def test_label_order_is_irrelevant(self):
        counter = MetricsRegistry().counter("c_total")
        counter.inc(1, a="x", b="y")
        counter.inc(1, b="y", a="x")
        assert counter.value(b="y", a="x") == 2


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(5)
        gauge.inc(2)
        gauge.dec(3)
        assert gauge.value() == 4


class TestHistogram:
    def test_bucket_placement_le_semantics(self):
        histogram = MetricsRegistry().histogram("h", buckets=(1.0, 2.0))
        histogram.observe(0.5)
        histogram.observe(1.0)  # le="1" bucket includes the bound itself
        histogram.observe(1.5)
        histogram.observe(99.0)  # +Inf overflow
        series = histogram.series()[()]
        assert series.counts == [2, 1, 1]
        assert series.sum == pytest.approx(102.0)

    def test_count_and_total(self):
        histogram = MetricsRegistry().histogram("h")
        for value in (0.001, 0.2, 3.0):
            histogram.observe(value, stage="read")
        assert histogram.count(stage="read") == 3
        assert histogram.total_seconds(stage="read") == pytest.approx(3.201)

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(TelemetryError):
            MetricsRegistry().histogram("h", buckets=(2.0, 1.0))


class TestSpan:
    def test_span_observes_elapsed_into_seconds_histogram(self):
        registry = MetricsRegistry()
        with registry.span("work", map="europe") as span:
            pass
        assert span.elapsed >= 0
        histogram = registry.get("work_seconds")
        assert histogram.count(map="europe") == 1

    def test_span_observes_even_when_the_block_raises(self):
        registry = MetricsRegistry()
        with pytest.raises(RuntimeError):
            with registry.span("work"):
                raise RuntimeError("boom")
        assert registry.get("work_seconds").count() == 1


class TestRegistry:
    def test_get_or_create_returns_the_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("c_total") is registry.counter("c_total")

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("name")
        with pytest.raises(TelemetryError):
            registry.gauge("name")

    def test_histogram_bucket_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.histogram("h", buckets=(1.0, 2.0))
        with pytest.raises(TelemetryError):
            registry.histogram("h", buckets=(1.0, 3.0))

    def test_invalid_metric_name_rejected(self):
        with pytest.raises(TelemetryError):
            MetricsRegistry().counter("bad name!")

    def test_reset_drops_everything(self):
        registry = MetricsRegistry()
        registry.counter("c_total").inc()
        registry.reset()
        assert registry.instruments() == []

    def test_concurrent_hammering_loses_no_update(self):
        """The ISSUE's concurrency contract: N threads, zero lost counts."""
        registry = MetricsRegistry()
        threads_n, per_thread = 8, 2000
        barrier = threading.Barrier(threads_n)

        def hammer(worker: int) -> None:
            barrier.wait()
            # get-or-create races on purpose: every thread asks by name.
            counter = registry.counter("hammer_total")
            histogram = registry.histogram("hammer_seconds")
            for i in range(per_thread):
                counter.inc(1, worker=worker % 2)
                histogram.observe(0.001 * (i % 7))

        threads = [
            threading.Thread(target=hammer, args=(n,)) for n in range(threads_n)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert registry.get("hammer_total").total() == threads_n * per_thread
        assert registry.get("hammer_seconds").count() == threads_n * per_thread

    def test_reads_locked_during_concurrent_writes(self):
        """Regression (concurrency pass): value()/get() read under the
        same locks the writers take, so a reader racing a writer never
        sees torn state or a half-registered instrument."""
        registry = MetricsRegistry()
        counter = registry.counter("race_total")
        stop = threading.Event()

        def write() -> None:
            while not stop.is_set():
                counter.inc(1)

        worker = threading.Thread(target=write)
        worker.start()
        try:
            last = 0
            for _ in range(2000):
                assert registry.get("race_total") is counter
                value = counter.value()
                assert value >= last  # monotone: no torn/backwards reads
                last = value
        finally:
            stop.set()
            worker.join()


class TestSnapshotAndMerge:
    def build(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.counter("files_total", "files").inc(3, map="europe")
        registry.counter("files_total").inc(1, map="world")
        registry.gauge("depth").set(7)
        histogram = registry.histogram("stage_seconds", buckets=(0.1, 1.0))
        histogram.observe(0.05, stage="read")
        histogram.observe(0.5, stage="read")
        return registry

    def test_snapshot_is_json_safe(self):
        snapshot = self.build().snapshot()
        assert json.loads(json.dumps(snapshot)) == snapshot
        assert snapshot["version"] == MetricsRegistry.SNAPSHOT_VERSION

    def test_merge_from_snapshot_reproduces_the_source(self):
        source = self.build()
        target = MetricsRegistry()
        target.merge(source.snapshot())
        assert target.snapshot() == source.snapshot()

    def test_merge_adds_counters_and_histograms(self):
        target = self.build()
        target.merge(self.build().snapshot())
        assert target.get("files_total").value(map="europe") == 6
        assert target.get("stage_seconds").count(stage="read") == 4

    def test_merge_gauge_last_write_wins(self):
        target = self.build()
        other = MetricsRegistry()
        other.gauge("depth").set(11)
        target.merge(other)
        assert target.get("depth").value() == 11

    def test_parallel_totals_equal_sum_of_worker_snapshots(self):
        """The engine's fan-in contract, in miniature: the parent registry
        after merging every worker snapshot totals exactly the per-worker
        sums."""
        snapshots = []
        for worker in range(4):
            local = MetricsRegistry()
            local.counter("files_total").inc(worker + 1, map="europe")
            local.histogram("stage_seconds").observe(0.01 * (worker + 1))
            snapshots.append(local.snapshot())
        parent = MetricsRegistry()
        for snapshot in snapshots:
            parent.merge(snapshot)
        assert parent.get("files_total").value(map="europe") == 1 + 2 + 3 + 4
        assert parent.get("stage_seconds").count() == 4
        assert parent.get("stage_seconds").total_seconds() == pytest.approx(0.1)

    def test_merge_version_mismatch_rejected(self):
        with pytest.raises(TelemetryError):
            MetricsRegistry().merge({"version": 999, "metrics": []})

    def test_merge_histogram_slot_mismatch_rejected(self):
        snapshot = {
            "version": 1,
            "metrics": [
                {
                    "name": "h",
                    "kind": "histogram",
                    "help": "",
                    "buckets": [1.0, 2.0],
                    "series": [[[], {"counts": [1, 2], "sum": 0.5}]],
                }
            ],
        }
        with pytest.raises(TelemetryError):
            MetricsRegistry().merge(snapshot)


class TestPrometheusExposition:
    def test_renders_help_type_and_series(self):
        registry = MetricsRegistry()
        registry.counter("files_total", "Files by outcome").inc(
            3, map="europe", outcome="processed"
        )
        text = snapshot_to_prometheus(registry.snapshot())
        assert "# HELP files_total Files by outcome\n" in text
        assert "# TYPE files_total counter\n" in text
        assert 'files_total{map="europe",outcome="processed"} 3\n' in text

    def test_histogram_buckets_are_cumulative_with_inf(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("stage_seconds", "t", buckets=(0.1, 1.0))
        histogram.observe(0.05)
        histogram.observe(0.5)
        histogram.observe(5.0)
        text = snapshot_to_prometheus(registry.snapshot())
        assert 'stage_seconds_bucket{le="0.1"} 1\n' in text
        assert 'stage_seconds_bucket{le="1"} 2\n' in text
        assert 'stage_seconds_bucket{le="+Inf"} 3\n' in text
        assert "stage_seconds_count 3\n" in text
        assert "stage_seconds_sum 5.55" in text

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c_total").inc(1, path='a"b\\c\nd')
        text = snapshot_to_prometheus(registry.snapshot())
        assert 'c_total{path="a\\"b\\\\c\\nd"} 1\n' in text

    def test_every_line_is_wellformed(self):
        """No blank metric lines, every sample line is NAME{...} VALUE."""
        registry = MetricsRegistry()
        registry.counter("a_total", "with ümlaut help").inc(2, k="v")
        registry.gauge("b", "").set(1.5)
        registry.histogram("c_seconds").observe(0.2, stage="x")
        for line in snapshot_to_prometheus(registry.snapshot()).splitlines():
            assert line
            if line.startswith("#"):
                assert line.startswith(("# HELP ", "# TYPE "))
            else:
                name, _, value = line.rpartition(" ")
                assert name
                float(value)  # every sample value parses as a number


class TestFileRoundTrip:
    def test_write_read_load(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("files_total").inc(5, map="europe")
        path = tmp_path / "metrics.json"
        write_metrics_file(path, registry)
        snapshot = read_snapshot_file(path)
        assert snapshot == registry.snapshot()
        loaded = load_metrics_file(path)
        assert loaded.get("files_total").value(map="europe") == 5

    def test_json_export_parses_back(self):
        registry = MetricsRegistry()
        registry.counter("c_total").inc(1)
        assert json.loads(snapshot_to_json(registry.snapshot()))["version"] == 1

    def test_corrupt_file_raises_telemetry_error(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("not json", encoding="utf-8")
        with pytest.raises(TelemetryError):
            read_snapshot_file(path)

    def test_missing_file_raises_telemetry_error(self, tmp_path):
        with pytest.raises(TelemetryError):
            read_snapshot_file(tmp_path / "absent.json")


class TestActiveRegistry:
    def test_use_registry_swaps_and_restores(self):
        before = get_registry()
        private = MetricsRegistry()
        with use_registry(private) as active:
            assert active is private
            assert get_registry() is private
        assert get_registry() is before

    def test_set_registry_returns_previous(self):
        before = get_registry()
        private = MetricsRegistry()
        assert set_registry(private) is before
        assert set_registry(before) is private

    def test_set_registry_rejects_non_registry(self):
        with pytest.raises(TelemetryError):
            set_registry(object())


class TestNullRegistry:
    def test_records_nothing_but_accepts_everything(self):
        registry = NullRegistry()
        registry.counter("c_total").inc(5, map="europe")
        registry.gauge("g").set(3)
        registry.histogram("h").observe(1.0)
        with registry.span("work") as span:
            pass
        assert span.elapsed == 0.0
        assert registry.counter("c_total").value(map="europe") == 0
        assert registry.histogram("h").count() == 0

    def test_snapshot_series_stay_empty(self):
        registry = NullRegistry()
        registry.counter("c_total").inc(5)
        for entry in registry.snapshot()["metrics"]:
            assert entry["series"] == []

    def test_default_buckets_are_strictly_increasing(self):
        assert list(DEFAULT_BUCKETS) == sorted(set(DEFAULT_BUCKETS))
