"""Tests for the vectorised index-backed analysis accessors.

Each accessor's ground truth is the object path run over the same data:
``load_samples`` must match ``collect_load_samples(load_all(...))``
element for element, and the lifetime/matrix accessors must agree with a
brute-force walk over the reconstructed snapshots.
"""

from __future__ import annotations

import math
from datetime import datetime, timedelta, timezone

import pytest

from repro.analysis.columnar import (
    directed_load_columns,
    link_lifetimes,
    load_matrix,
    load_samples,
    node_lifetimes,
)
from repro.analysis.loads import collect_load_samples
from repro.constants import MapName
from repro.dataset.index import SnapshotIndex, build_index
from repro.dataset.loader import load_all
from repro.dataset.store import DatasetStore
from repro.topology.model import Link, LinkEnd, MapSnapshot, Node, NodeKind
from repro.yamlio.serialize import snapshot_to_yaml

T0 = datetime(2022, 3, 6, 22, 0, tzinfo=timezone.utc)  # Sunday, crosses midnight
MAP = MapName.EUROPE
HOURS = 6


def _snapshot(when: datetime, step: int) -> MapSnapshot:
    """A small topology that churns: r3 and its link exist only early on."""
    snapshot = MapSnapshot(map_name=MAP, timestamp=when)
    snapshot.add_node(Node.from_name("fra-r1"))
    snapshot.add_node(Node.from_name("par-r2"))
    snapshot.add_node(Node.from_name("AMS-IX"))
    snapshot.add_link(
        Link(LinkEnd("fra-r1", "#1", float(10 + step)), LinkEnd("par-r2", "#1", float(step)))
    )
    snapshot.add_link(
        Link(LinkEnd("par-r2", "#2", 30.0), LinkEnd("AMS-IX", "#1", 2.0))
    )
    if step < 3:
        snapshot.add_node(Node.from_name("waw-r3"))
        snapshot.add_link(
            Link(LinkEnd("waw-r3", "#1", 5.0), LinkEnd("fra-r1", "#2", 6.0))
        )
    return snapshot


@pytest.fixture(scope="module")
def store(tmp_path_factory) -> DatasetStore:
    store = DatasetStore(tmp_path_factory.mktemp("columnar"))
    for step in range(HOURS):
        when = T0 + timedelta(hours=step)
        store.write(MAP, when, "yaml", snapshot_to_yaml(_snapshot(when, step)))
    return store


@pytest.fixture(scope="module")
def index(store) -> SnapshotIndex:
    built, _ = build_index(store, MAP)
    return built


@pytest.fixture(scope="module")
def snapshots(store):
    return load_all(store, MAP, use_index=False)


class TestLoadSamples:
    def test_identical_to_object_path(self, index, snapshots):
        expected = collect_load_samples(snapshots)
        got = load_samples(index)
        assert got.internal == expected.internal
        assert got.external == expected.external
        assert got.hours == expected.hours
        assert got.weekdays == expected.weekdays
        assert got.all_loads == expected.all_loads

    def test_windowed(self, index, snapshots):
        start = T0 + timedelta(hours=1)
        end = T0 + timedelta(hours=4)
        expected = collect_load_samples(
            s for s in snapshots if start <= s.timestamp < end
        )
        got = load_samples(index, start=start, end=end)
        assert got.all_loads == expected.all_loads
        assert got.internal == expected.internal
        assert got.external == expected.external

    def test_directed_columns_shape(self, index, snapshots):
        columns = directed_load_columns(index)
        total_links = sum(len(s.links) for s in snapshots)
        assert len(columns) == 2 * total_links
        # Hour/weekday derive from the snapshot timestamp (UTC).
        assert columns.hours[0] == 22
        assert columns.weekdays[0] == 6  # T0 is a Sunday
        # The series crosses midnight into Monday.
        assert 0 in columns.weekdays


class TestNodeLifetimes:
    def test_matches_brute_force(self, index, snapshots):
        lifetimes = node_lifetimes(index)
        names = {name for s in snapshots for name in s.nodes}
        assert set(lifetimes) == names
        for name in names:
            seen = [s.timestamp for s in snapshots if name in s.nodes]
            lifetime = lifetimes[name]
            assert lifetime.first_seen == min(seen)
            assert lifetime.last_seen == max(seen)
            assert lifetime.snapshots == len(seen)

    def test_kinds(self, index):
        lifetimes = node_lifetimes(index)
        assert lifetimes["fra-r1"].kind is NodeKind.ROUTER
        assert lifetimes["AMS-IX"].kind is NodeKind.PEERING

    def test_churned_node_bounded(self, index):
        lifetime = node_lifetimes(index)["waw-r3"]
        assert lifetime.first_seen == T0
        assert lifetime.last_seen == T0 + timedelta(hours=2)
        assert lifetime.snapshots == 3


class TestLinkLifetimes:
    def test_presence_accounts_for_every_link(self, index, snapshots):
        lifetimes = link_lifetimes(index)
        total_links = sum(len(s.links) for s in snapshots)
        assert sum(l.snapshots for l in lifetimes.values()) == total_links

    def test_direction_insensitive_key(self, index, snapshots):
        lifetimes = link_lifetimes(index)
        for s in snapshots:
            for link in s.links:
                forward = (link.a.node, link.a.label, link.b.node, link.b.label)
                backward = (link.b.node, link.b.label, link.a.node, link.a.label)
                assert (forward in lifetimes) != (backward in lifetimes) or (
                    forward == backward
                )

    def test_churned_link_bounded(self, index):
        lifetimes = link_lifetimes(index)
        key = next(k for k in lifetimes if "waw-r3" in (k[0], k[2]))
        assert lifetimes[key].snapshots == 3
        assert lifetimes[key].last_seen == T0 + timedelta(hours=2)


class TestLoadMatrix:
    def test_values_match_snapshots(self, index, snapshots):
        matrix = load_matrix(index)
        assert matrix.forward.shape == (len(snapshots), len(matrix.keys))
        assert matrix.times() == [s.timestamp for s in snapshots]
        for row, snapshot in enumerate(snapshots):
            for link in snapshot.links:
                forward = (link.a.node, link.a.label, link.b.node, link.b.label)
                if forward in matrix.keys:
                    expected_fwd, expected_rev = link.a.load, link.b.load
                    key = forward
                else:
                    key = (link.b.node, link.b.label, link.a.node, link.a.label)
                    expected_fwd, expected_rev = link.b.load, link.a.load
                fwd, rev = matrix.series(key)
                assert fwd[row] == expected_fwd
                assert rev[row] == expected_rev

    def test_absent_links_are_nan(self, index, snapshots):
        matrix = load_matrix(index)
        key = next(k for k in matrix.keys if "waw-r3" in (k[0], k[2]))
        fwd, _ = matrix.series(key)
        assert not math.isnan(fwd[0])
        assert math.isnan(fwd[len(snapshots) - 1])

    def test_windowed_matrix(self, index, snapshots):
        start = T0 + timedelta(hours=3)
        matrix = load_matrix(index, start=start)
        survivors = [s for s in snapshots if s.timestamp >= start]
        assert matrix.forward.shape[0] == len(survivors)
        # The churned link never appears in this window at all.
        assert all("waw-r3" not in (k[0], k[2]) for k in matrix.keys)


class TestEmptyIndex:
    def test_all_accessors_tolerate_empty(self):
        index = SnapshotIndex(MAP)
        assert load_samples(index).all_loads == []
        assert node_lifetimes(index) == {}
        assert link_lifetimes(index) == {}
        matrix = load_matrix(index)
        assert matrix.forward.shape == (0, 0)
