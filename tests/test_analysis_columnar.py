"""Tests for the vectorised index-backed analysis accessors.

Each accessor's ground truth is the object path run over the same data:
``load_samples`` must match ``collect_load_samples(load_all(...))``
element for element, and the lifetime/matrix accessors must agree with a
brute-force walk over the reconstructed snapshots.
"""

from __future__ import annotations

import math
from datetime import datetime, timedelta, timezone

import pytest

from repro.analysis.columnar import (
    count_series,
    directed_load_columns,
    imbalance_samples,
    link_lifetimes,
    link_load_series,
    load_matrix,
    load_samples,
    node_lifetimes,
)
from repro.analysis.imbalance import collect_imbalances
from repro.analysis.infrastructure import evolution_from_snapshots
from repro.analysis.loads import collect_load_samples
from repro.constants import MapName
from repro.dataset.index import SnapshotIndex, build_index
from repro.dataset.loader import load_all
from repro.dataset.query import MappedIndex
from repro.dataset.store import DatasetStore
from repro.errors import AnalysisError
from repro.topology.model import Link, LinkEnd, MapSnapshot, Node, NodeKind
from repro.yamlio.serialize import snapshot_to_yaml

T0 = datetime(2022, 3, 6, 22, 0, tzinfo=timezone.utc)  # Sunday, crosses midnight
MAP = MapName.EUROPE
HOURS = 6


def _snapshot(when: datetime, step: int) -> MapSnapshot:
    """A small topology that churns: r3 and its link exist only early on."""
    snapshot = MapSnapshot(map_name=MAP, timestamp=when)
    snapshot.add_node(Node.from_name("fra-r1"))
    snapshot.add_node(Node.from_name("par-r2"))
    snapshot.add_node(Node.from_name("AMS-IX"))
    snapshot.add_link(
        Link(LinkEnd("fra-r1", "#1", float(10 + step)), LinkEnd("par-r2", "#1", float(step)))
    )
    # A second fra-r1<->par-r2 link makes the pair an ECMP parallel
    # group, so the imbalance analyses have internal samples.
    snapshot.add_link(
        Link(LinkEnd("fra-r1", "#3", float(20 + step)), LinkEnd("par-r2", "#3", 8.0))
    )
    snapshot.add_link(
        Link(LinkEnd("par-r2", "#2", 30.0), LinkEnd("AMS-IX", "#1", 2.0))
    )
    # ... and a second par-r2<->AMS-IX link provides an external group.
    snapshot.add_link(
        Link(LinkEnd("par-r2", "#4", 25.0), LinkEnd("AMS-IX", "#2", 3.0))
    )
    if step < 3:
        snapshot.add_node(Node.from_name("waw-r3"))
        snapshot.add_link(
            Link(LinkEnd("waw-r3", "#1", 5.0), LinkEnd("fra-r1", "#2", 6.0))
        )
    return snapshot


@pytest.fixture(scope="module")
def store(tmp_path_factory) -> DatasetStore:
    store = DatasetStore(tmp_path_factory.mktemp("columnar"))
    for step in range(HOURS):
        when = T0 + timedelta(hours=step)
        store.write(MAP, when, "yaml", snapshot_to_yaml(_snapshot(when, step)))
    return store


@pytest.fixture(scope="module")
def built(store) -> SnapshotIndex:
    built, _ = build_index(store, MAP)
    return built


@pytest.fixture(scope="module", params=["heap", "numpy", "memoryview"])
def index(request, store, built):
    """Every ColumnSource: the in-heap index and both mapped backends.

    Each accessor test therefore runs three times — proving the
    vectorised analyses are source-agnostic, exactly as the
    ``ColumnSource`` union promises.
    """
    if request.param == "heap":
        yield built
        return
    engine = MappedIndex.open(store.index_path(MAP), backend=request.param)
    yield engine
    engine.close()


@pytest.fixture(scope="module")
def snapshots(store):
    return load_all(store, MAP, use_index=False)


class TestLoadSamples:
    def test_identical_to_object_path(self, index, snapshots):
        expected = collect_load_samples(snapshots)
        got = load_samples(index)
        assert got.internal == expected.internal
        assert got.external == expected.external
        assert got.hours == expected.hours
        assert got.weekdays == expected.weekdays
        assert got.all_loads == expected.all_loads

    def test_windowed(self, index, snapshots):
        start = T0 + timedelta(hours=1)
        end = T0 + timedelta(hours=4)
        expected = collect_load_samples(
            s for s in snapshots if start <= s.timestamp < end
        )
        got = load_samples(index, start=start, end=end)
        assert got.all_loads == expected.all_loads
        assert got.internal == expected.internal
        assert got.external == expected.external

    def test_directed_columns_shape(self, index, snapshots):
        columns = directed_load_columns(index)
        total_links = sum(len(s.links) for s in snapshots)
        assert len(columns) == 2 * total_links
        # Hour/weekday derive from the snapshot timestamp (UTC).
        assert columns.hours[0] == 22
        assert columns.weekdays[0] == 6  # T0 is a Sunday
        # The series crosses midnight into Monday.
        assert 0 in columns.weekdays


class TestNodeLifetimes:
    def test_matches_brute_force(self, index, snapshots):
        lifetimes = node_lifetimes(index)
        names = {name for s in snapshots for name in s.nodes}
        assert set(lifetimes) == names
        for name in names:
            seen = [s.timestamp for s in snapshots if name in s.nodes]
            lifetime = lifetimes[name]
            assert lifetime.first_seen == min(seen)
            assert lifetime.last_seen == max(seen)
            assert lifetime.snapshots == len(seen)

    def test_kinds(self, index):
        lifetimes = node_lifetimes(index)
        assert lifetimes["fra-r1"].kind is NodeKind.ROUTER
        assert lifetimes["AMS-IX"].kind is NodeKind.PEERING

    def test_churned_node_bounded(self, index):
        lifetime = node_lifetimes(index)["waw-r3"]
        assert lifetime.first_seen == T0
        assert lifetime.last_seen == T0 + timedelta(hours=2)
        assert lifetime.snapshots == 3


class TestLinkLifetimes:
    def test_presence_accounts_for_every_link(self, index, snapshots):
        lifetimes = link_lifetimes(index)
        total_links = sum(len(s.links) for s in snapshots)
        assert sum(l.snapshots for l in lifetimes.values()) == total_links

    def test_direction_insensitive_key(self, index, snapshots):
        lifetimes = link_lifetimes(index)
        for s in snapshots:
            for link in s.links:
                forward = (link.a.node, link.a.label, link.b.node, link.b.label)
                backward = (link.b.node, link.b.label, link.a.node, link.a.label)
                assert (forward in lifetimes) != (backward in lifetimes) or (
                    forward == backward
                )

    def test_churned_link_bounded(self, index):
        lifetimes = link_lifetimes(index)
        key = next(k for k in lifetimes if "waw-r3" in (k[0], k[2]))
        assert lifetimes[key].snapshots == 3
        assert lifetimes[key].last_seen == T0 + timedelta(hours=2)


class TestLoadMatrix:
    def test_values_match_snapshots(self, index, snapshots):
        matrix = load_matrix(index)
        assert matrix.forward.shape == (len(snapshots), len(matrix.keys))
        assert matrix.times() == [s.timestamp for s in snapshots]
        for row, snapshot in enumerate(snapshots):
            for link in snapshot.links:
                forward = (link.a.node, link.a.label, link.b.node, link.b.label)
                if forward in matrix.keys:
                    expected_fwd, expected_rev = link.a.load, link.b.load
                    key = forward
                else:
                    key = (link.b.node, link.b.label, link.a.node, link.a.label)
                    expected_fwd, expected_rev = link.b.load, link.a.load
                fwd, rev = matrix.series(key)
                assert fwd[row] == expected_fwd
                assert rev[row] == expected_rev

    def test_absent_links_are_nan(self, index, snapshots):
        matrix = load_matrix(index)
        key = next(k for k in matrix.keys if "waw-r3" in (k[0], k[2]))
        fwd, _ = matrix.series(key)
        assert not math.isnan(fwd[0])
        assert math.isnan(fwd[len(snapshots) - 1])

    def test_windowed_matrix(self, index, snapshots):
        start = T0 + timedelta(hours=3)
        matrix = load_matrix(index, start=start)
        survivors = [s for s in snapshots if s.timestamp >= start]
        assert matrix.forward.shape[0] == len(survivors)
        # The churned link never appears in this window at all.
        assert all("waw-r3" not in (k[0], k[2]) for k in matrix.keys)


class TestImbalanceSamples:
    def test_identical_to_object_path(self, index, snapshots):
        expected = collect_imbalances(snapshots)
        got = imbalance_samples(index)
        assert got.internal == expected.internal
        assert got.external == expected.external
        assert len(got.all_values) > 0

    def test_windowed(self, index, snapshots):
        start = T0 + timedelta(hours=1)
        end = T0 + timedelta(hours=4)
        expected = collect_imbalances(
            s for s in snapshots if start <= s.timestamp < end
        )
        got = imbalance_samples(index, start=start, end=end)
        assert got.internal == expected.internal
        assert got.external == expected.external

    def test_minimum_load_threshold_matches(self, index, snapshots):
        for threshold in (0.0, 5.0, 50.0):
            expected = collect_imbalances(snapshots, minimum_load=threshold)
            got = imbalance_samples(index, minimum_load=threshold)
            assert got.internal == expected.internal
            assert got.external == expected.external


class TestCountSeries:
    def test_identical_to_object_path(self, index, snapshots):
        expected = evolution_from_snapshots(snapshots)
        got = count_series(index)
        assert got.map_name is expected.map_name
        for attribute in ("routers", "internal_links", "external_links"):
            assert getattr(got, attribute).times == getattr(expected, attribute).times
            assert (
                getattr(got, attribute).values == getattr(expected, attribute).values
            )

    def test_windowed(self, index, snapshots):
        start = T0 + timedelta(hours=2)
        expected = evolution_from_snapshots(
            s for s in snapshots if s.timestamp >= start
        )
        got = count_series(index, start=start)
        assert got.routers.values == expected.routers.values
        assert got.routers.times == expected.routers.times

    def test_empty_window_raises_like_the_object_path(self, index):
        with pytest.raises(AnalysisError):
            count_series(index, end=T0 - timedelta(days=1))


class TestLinkLoadSeries:
    def test_matches_object_path_both_orientations(self, index, snapshots):
        key = ("fra-r1", "#1", "par-r2", "#1")
        forward, reverse = link_load_series(index, key)

        def is_key(link):
            return (link.a.node, link.a.label, link.b.node, link.b.label) == key

        expected_times = tuple(
            s.timestamp for s in snapshots for link in s.links if is_key(link)
        )
        expected_forward = tuple(
            link.load_from("fra-r1")
            for s in snapshots
            for link in s.links
            if is_key(link)
        )
        assert forward.times == expected_times
        assert forward.values == expected_forward
        # The flipped key swaps which direction is "forward".
        flipped_forward, flipped_reverse = link_load_series(
            index, ("par-r2", "#1", "fra-r1", "#1")
        )
        assert flipped_forward.values == reverse.values
        assert flipped_reverse.values == forward.values

    def test_churned_link_contributes_only_where_present(self, index):
        forward, _ = link_load_series(index, ("waw-r3", "#1", "fra-r1", "#2"))
        assert len(forward.times) == 3
        assert forward.values == (5.0, 5.0, 5.0)

    def test_windowed(self, index):
        start = T0 + timedelta(hours=2)
        forward, _ = link_load_series(
            index, ("waw-r3", "#1", "fra-r1", "#2"), start=start
        )
        assert len(forward.times) == 1

    def test_unknown_key_yields_empty_series(self, index):
        forward, reverse = link_load_series(index, ("nope", "#1", "fra-r1", "#1"))
        assert forward.times == ()
        assert reverse.times == ()


class TestEmptyIndex:
    def test_all_accessors_tolerate_empty(self):
        index = SnapshotIndex(MAP)
        assert load_samples(index).all_loads == []
        assert node_lifetimes(index) == {}
        assert link_lifetimes(index) == {}
        matrix = load_matrix(index)
        assert matrix.forward.shape == (0, 0)
        assert imbalance_samples(index).all_values == []
