"""Unit tests for repro.geometry.rect — especially the line-intersection
test Algorithm 2 depends on."""

import pytest

from repro.errors import GeometryError
from repro.geometry import Point, Rect, Segment


class TestConstruction:
    def test_empty_rect_rejected(self):
        with pytest.raises(GeometryError):
            Rect(0, 0, 0, 5)

    def test_negative_extent_rejected(self):
        with pytest.raises(GeometryError):
            Rect(0, 0, 5, -1)

    def test_from_center(self):
        r = Rect.from_center(Point(5, 5), 4, 2)
        assert r.as_tuple() == (3, 4, 4, 2)

    def test_bounding(self):
        r = Rect.bounding([Point(1, 2), Point(5, 0), Point(3, 7)])
        assert (r.left, r.top, r.right, r.bottom) == (1, 0, 5, 7)

    def test_bounding_empty_raises(self):
        with pytest.raises(GeometryError):
            Rect.bounding([])


class TestAccessors:
    def test_center(self):
        assert Rect(0, 0, 10, 20).center == Point(5, 10)

    def test_edges_count(self):
        assert len(list(Rect(0, 0, 1, 1).edges())) == 4

    def test_corners_order(self):
        corners = Rect(0, 0, 2, 3).corners()
        assert corners[0] == Point(0, 0)
        assert corners[2] == Point(2, 3)


class TestContainment:
    def test_contains_interior(self):
        assert Rect(0, 0, 10, 10).contains(Point(5, 5))

    def test_contains_boundary(self):
        assert Rect(0, 0, 10, 10).contains(Point(0, 5))

    def test_excludes_outside(self):
        assert not Rect(0, 0, 10, 10).contains(Point(11, 5))


class TestLineIntersection:
    """The core Algorithm 2 primitive: infinite line vs box."""

    def test_horizontal_line_through_box(self):
        box = Rect(10, 10, 20, 10)
        line = Segment(Point(0, 15), Point(1, 15))
        assert box.intersects_line(line)

    def test_line_above_box_misses(self):
        box = Rect(10, 10, 20, 10)
        line = Segment(Point(0, 5), Point(1, 5))
        assert not box.intersects_line(line)

    def test_line_hits_box_far_beyond_segment(self):
        # The *infinite* line matters; the finite segment is far away.
        box = Rect(1000, -5, 10, 10)
        line = Segment(Point(0, 0), Point(1, 0))
        assert box.intersects_line(line)

    def test_diagonal_line_through_corner_region(self):
        box = Rect(0, 0, 10, 10)
        line = Segment(Point(-5, -5), Point(1, 1))
        assert box.intersects_line(line)

    def test_diagonal_line_missing_box(self):
        box = Rect(0, 0, 10, 10)
        line = Segment(Point(20, 0), Point(21, 1))
        assert not box.intersects_line(line)

    def test_vertical_line(self):
        box = Rect(0, 0, 10, 10)
        assert box.intersects_line(Segment(Point(5, -100), Point(5, -99)))
        assert not box.intersects_line(Segment(Point(15, -100), Point(15, -99)))


class TestSegmentIntersection:
    def test_segment_inside(self):
        assert Rect(0, 0, 10, 10).intersects_segment(
            Segment(Point(1, 1), Point(2, 2))
        )

    def test_segment_crossing(self):
        assert Rect(0, 0, 10, 10).intersects_segment(
            Segment(Point(-5, 5), Point(15, 5))
        )

    def test_segment_outside(self):
        assert not Rect(0, 0, 10, 10).intersects_segment(
            Segment(Point(20, 20), Point(30, 30))
        )


class TestRectIntersection:
    def test_overlapping(self):
        assert Rect(0, 0, 10, 10).intersects_rect(Rect(5, 5, 10, 10))

    def test_touching_counts(self):
        assert Rect(0, 0, 10, 10).intersects_rect(Rect(10, 0, 5, 5))

    def test_disjoint(self):
        assert not Rect(0, 0, 10, 10).intersects_rect(Rect(20, 20, 5, 5))


class TestDistance:
    def test_distance_inside_is_zero(self):
        assert Rect(0, 0, 10, 10).distance_to_point(Point(5, 5)) == 0

    def test_distance_lateral(self):
        assert Rect(0, 0, 10, 10).distance_to_point(Point(15, 5)) == 5

    def test_distance_diagonal(self):
        assert Rect(0, 0, 10, 10).distance_to_point(Point(13, 14)) == 5

    def test_expanded(self):
        r = Rect(10, 10, 10, 10).expanded(2)
        assert r.as_tuple() == (8, 8, 14, 14)
