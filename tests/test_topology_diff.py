"""Unit tests for snapshot diffing."""

from datetime import datetime, timezone

from repro.constants import MapName
from repro.topology.diff import diff_snapshots
from repro.topology.model import Link, LinkEnd, MapSnapshot, Node

T0 = datetime(2022, 1, 1, tzinfo=timezone.utc)
T1 = datetime(2022, 1, 2, tzinfo=timezone.utc)


def _snapshot(when, nodes, links):
    snapshot = MapSnapshot(map_name=MapName.EUROPE, timestamp=when)
    for name in nodes:
        snapshot.add_node(Node.from_name(name))
    for a, b, label in links:
        snapshot.add_link(
            Link(LinkEnd(a, label, 10), LinkEnd(b, label, 10))
        )
    return snapshot


class TestRouterDiff:
    def test_no_change(self):
        old = _snapshot(T0, ["r1", "r2"], [("r1", "r2", "#1")])
        new = _snapshot(T1, ["r1", "r2"], [("r1", "r2", "#1")])
        assert diff_snapshots(old, new).is_empty

    def test_added_router(self):
        old = _snapshot(T0, ["r1", "r2"], [("r1", "r2", "#1")])
        new = _snapshot(T1, ["r1", "r2", "r3"], [("r1", "r2", "#1")])
        diff = diff_snapshots(old, new)
        assert diff.added_routers == ["r3"]
        assert diff.router_delta == 1

    def test_removed_router(self):
        old = _snapshot(T0, ["r1", "r2", "r3"], [("r1", "r2", "#1")])
        new = _snapshot(T1, ["r1", "r2"], [("r1", "r2", "#1")])
        diff = diff_snapshots(old, new)
        assert diff.removed_routers == ["r3"]
        assert diff.router_delta == -1

    def test_peering_changes_separate(self):
        old = _snapshot(T0, ["r1", "r2"], [("r1", "r2", "#1")])
        new = _snapshot(T1, ["r1", "r2", "NEWPEER"], [("r1", "r2", "#1")])
        diff = diff_snapshots(old, new)
        assert diff.added_peerings == ["NEWPEER"]
        assert diff.added_routers == []


class TestLinkDiff:
    def test_added_internal_link(self):
        old = _snapshot(T0, ["r1", "r2"], [("r1", "r2", "#1")])
        new = _snapshot(T1, ["r1", "r2"], [("r1", "r2", "#1"), ("r1", "r2", "#2")])
        diff = diff_snapshots(old, new)
        assert diff.added_internal_links == 1
        assert diff.link_delta == 1

    def test_added_external_link(self):
        old = _snapshot(T0, ["r1", "PEER"], [])
        new = _snapshot(T1, ["r1", "PEER"], [("r1", "PEER", "#1")])
        diff = diff_snapshots(old, new)
        assert diff.added_external_links == 1
        assert diff.added_internal_links == 0

    def test_load_change_is_not_structural(self):
        old = _snapshot(T0, ["r1", "r2"], [("r1", "r2", "#1")])
        new = MapSnapshot(map_name=MapName.EUROPE, timestamp=T1)
        new.add_node(Node.from_name("r1"))
        new.add_node(Node.from_name("r2"))
        new.add_link(Link(LinkEnd("r1", "#1", 99), LinkEnd("r2", "#1", 1)))
        assert diff_snapshots(old, new).is_empty

    def test_duplicate_label_multiset_counting(self):
        # Two parallel links sharing the label "#1" (the VODAFONE case):
        # adding a third still counts as exactly one added link.
        old = _snapshot(T0, ["r1", "r2"], [("r1", "r2", "#1")] * 2)
        new = _snapshot(T1, ["r1", "r2"], [("r1", "r2", "#1")] * 3)
        diff = diff_snapshots(old, new)
        assert diff.added_internal_links == 1
        assert diff.removed_internal_links == 0

    def test_endpoint_order_irrelevant(self):
        old = _snapshot(T0, ["r1", "r2"], [("r1", "r2", "#1")])
        new = _snapshot(T1, ["r1", "r2"], [("r2", "r1", "#1")])
        assert diff_snapshots(old, new).is_empty


class TestMixedDiff:
    def test_make_before_break_signature(self):
        # New router + links added while the old router persists, then gone.
        old = _snapshot(
            T0, ["r1", "old-r"], [("r1", "old-r", "#1")]
        )
        new = _snapshot(
            T1, ["r1", "new-r"], [("r1", "new-r", "#1")]
        )
        diff = diff_snapshots(old, new)
        assert diff.added_routers == ["new-r"]
        assert diff.removed_routers == ["old-r"]
        assert diff.added_internal_links == 1
        assert diff.removed_internal_links == 1
