"""Backend-conformance suite for the :class:`StorageBackend` protocol.

Every backend — flat local-dir, sharded, in-memory — must satisfy the
same contract: writes round-trip, ``iter_refs`` is time-ordered, missing
reads raise the typed error, stat keys change on overwrite.  The tests
are parametrized so a future backend joins the matrix by adding one
fixture branch.
"""

from __future__ import annotations

import json
from datetime import datetime, timedelta, timezone

import pytest

from repro.constants import MapName
from repro.dataset.store import (
    DatasetStore,
    InMemoryStore,
    LAYOUT_FILE_NAME,
    ShardedDatasetStore,
    SnapshotRef,
    StorageBackend,
    dataset_layout,
    open_store,
    parse_shard_key,
    shard_key,
)
from repro.errors import DatasetError, SnapshotNotFoundError

T0 = datetime(2022, 9, 12, tzinfo=timezone.utc)
MAP = MapName.ASIA_PACIFIC

BACKENDS = ("flat", "sharded", "memory")


@pytest.fixture(params=BACKENDS)
def backend(request, tmp_path):
    """One store per protocol implementation, rooted in a fresh dir."""
    if request.param == "flat":
        return DatasetStore(tmp_path / "flat")
    if request.param == "sharded":
        store = ShardedDatasetStore(tmp_path / "sharded")
        store.mark()
        return store
    return InMemoryStore()


class TestProtocolConformance:
    def test_satisfies_protocol(self, backend):
        assert isinstance(backend, StorageBackend)

    def test_write_read_round_trip(self, backend):
        ref = backend.write(MAP, T0, "svg", "<svg>one</svg>")
        assert ref.map_name is MAP
        assert ref.kind == "svg"
        assert ref.size_bytes == len(b"<svg>one</svg>")
        assert backend.read_bytes(MAP, T0, "svg") == b"<svg>one</svg>"
        assert backend.read_ref(ref) == b"<svg>one</svg>"

    def test_bytes_written_verbatim(self, backend):
        payload = b"\x00\xffraw"
        backend.write(MAP, T0, "yaml", payload)
        assert backend.read_bytes(MAP, T0, "yaml") == payload

    def test_missing_read_raises_typed(self, backend):
        with pytest.raises(SnapshotNotFoundError):
            backend.read_bytes(MAP, T0, "svg")
        # A ref whose underlying snapshot was never written must raise too.
        never = T0 + timedelta(hours=1)
        ghost = SnapshotRef(
            map_name=MAP,
            timestamp=never,
            kind="svg",
            path=backend.path_for(MAP, never, "svg"),
        )
        with pytest.raises(SnapshotNotFoundError):
            backend.read_ref(ghost)

    def test_unknown_kind_rejected(self, backend):
        with pytest.raises(DatasetError):
            backend.path_for(MAP, T0, "png")
        with pytest.raises(DatasetError):
            backend.write(MAP, T0, "png", "data")

    def test_iter_refs_time_ordered_and_filtered(self, backend):
        for minutes in (10, 0, 5):
            backend.write(MAP, T0 + timedelta(minutes=minutes), "svg", f"<{minutes}>")
        backend.write(MAP, T0, "yaml", "other kind")
        backend.write(MapName.EUROPE, T0, "svg", "other map")
        refs = list(backend.iter_refs(MAP, "svg"))
        assert [ref.timestamp for ref in refs] == [
            T0,
            T0 + timedelta(minutes=5),
            T0 + timedelta(minutes=10),
        ]
        assert all(ref.kind == "svg" and ref.map_name is MAP for ref in refs)

    def test_timestamps_and_file_stats(self, backend):
        backend.write(MAP, T0, "svg", "abc")
        backend.write(MAP, T0 + timedelta(minutes=5), "svg", "defgh")
        assert backend.timestamps(MAP, "svg") == [T0, T0 + timedelta(minutes=5)]
        count, total = backend.file_stats(MAP, "svg")
        assert (count, total) == (2, 8)

    def test_stat_key_changes_on_overwrite(self, backend):
        first = backend.write(MAP, T0, "svg", "short")
        first_key = first.stat_key()
        second = backend.write(MAP, T0, "svg", "rather longer payload")
        assert second.stat_key() != first_key

    def test_ref_stat_hints_match_contents(self, backend):
        backend.write(MAP, T0, "svg", "payload")
        (ref,) = backend.iter_refs(MAP, "svg")
        size, _ = ref.stat_key()
        assert size == len(b"payload")
        assert ref.size_bytes == len(b"payload")

    def test_manifest_and_index_paths_are_per_map(self, backend):
        assert backend.manifest_path(MAP) != backend.manifest_path(MapName.EUROPE)
        assert backend.index_path(MAP) != backend.index_path(MapName.EUROPE)


class TestShardSurface:
    def test_shard_key_round_trip(self):
        assert shard_key(T0) == "2022-09-12"
        assert parse_shard_key("2022-09-12") == datetime(
            2022, 9, 12, tzinfo=timezone.utc
        )

    @pytest.mark.parametrize("bad", ["2022/09/12", "20220912", "2022-9-12", "x"])
    def test_bad_shard_key_rejected(self, bad):
        with pytest.raises(DatasetError):
            parse_shard_key(bad)

    def test_shard_keys_and_members(self, tmp_path):
        store = ShardedDatasetStore(tmp_path)
        days = (T0, T0 + timedelta(days=1), T0 + timedelta(days=3))
        for day in days:
            for minutes in (5, 0):
                store.write(MAP, day + timedelta(minutes=minutes), "yaml", "y")
        assert store.shard_keys(MAP, "yaml") == [
            "2022-09-12",
            "2022-09-13",
            "2022-09-15",
        ]
        refs = list(store.iter_shard_refs(MAP, "yaml", "2022-09-13"))
        assert [ref.timestamp for ref in refs] == [
            days[1],
            days[1] + timedelta(minutes=5),
        ]
        assert list(store.iter_shard_refs(MAP, "yaml", "2021-01-01")) == []

    def test_shard_index_path_validates_key(self, tmp_path):
        store = ShardedDatasetStore(tmp_path)
        assert store.shard_index_path(MAP, "2022-09-12").name == "index.bin"
        with pytest.raises(DatasetError):
            store.shard_index_path(MAP, "../escape")


class TestOpenStore:
    def test_default_is_flat(self, tmp_path):
        store = open_store(tmp_path)
        assert type(store) is DatasetStore

    def test_marked_dataset_reopens_sharded(self, tmp_path):
        ShardedDatasetStore(tmp_path).mark()
        assert dataset_layout(tmp_path) == "sharded"
        assert isinstance(open_store(tmp_path), ShardedDatasetStore)

    def test_corrupt_marker_falls_back_to_flat(self, tmp_path):
        (tmp_path / LAYOUT_FILE_NAME).write_text("{not json", encoding="utf-8")
        assert dataset_layout(tmp_path) is None
        assert type(open_store(tmp_path)) is DatasetStore

    def test_unknown_layout_falls_back_to_flat(self, tmp_path):
        (tmp_path / LAYOUT_FILE_NAME).write_text(
            json.dumps({"layout": "columnar-v9"}), encoding="utf-8"
        )
        assert type(open_store(tmp_path)) is DatasetStore
