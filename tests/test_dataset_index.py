"""Tests for the columnar snapshot index.

The contract under test: an index-served load is *indistinguishable* from
the YAML path (equal snapshots, same errors in the same order), freshness
tracks the live YAML tree exactly, a damaged index file degrades to the
YAML fallback instead of failing, and incremental builds reuse unchanged
rows the way the engine's manifest reuses unchanged SVGs.
"""

from __future__ import annotations

import os
import tempfile
from datetime import datetime, timedelta, timezone

import pytest
from hypothesis import given, settings, strategies as st

from repro.constants import MapName
from repro.dataset.index import (
    INDEX_MAGIC,
    SnapshotIndex,
    build_index,
    fresh_index,
    index_status,
    load_index,
)
from repro.dataset.loader import latest_snapshot, load_all
from repro.dataset.store import DatasetStore
from repro.dataset.workers import default_workers, resolve_workers
from repro.errors import DatasetError, SchemaError, SnapshotIndexError
from repro.parsing.pipeline import PARSER_VERSION
from repro.topology.model import Link, LinkEnd, MapSnapshot, Node
from repro.yamlio.serialize import snapshot_to_yaml

T0 = datetime(2022, 3, 1, tzinfo=timezone.utc)
MAP = MapName.EUROPE
FILES = 6


def _snapshot(when: datetime, load: float = 10.0) -> MapSnapshot:
    snapshot = MapSnapshot(map_name=MAP, timestamp=when)
    for name in ("fra-r1", "par-r2", "AMS-IX"):
        snapshot.add_node(Node.from_name(name))
    snapshot.add_link(
        Link(LinkEnd("fra-r1", "#1", load), LinkEnd("par-r2", "#1", load / 2))
    )
    snapshot.add_link(Link(LinkEnd("par-r2", "#2", 5.0), LinkEnd("AMS-IX", "#1", 1.0)))
    return snapshot


@pytest.fixture()
def store(tmp_path) -> DatasetStore:
    store = DatasetStore(tmp_path)
    for i in range(FILES):
        when = T0 + timedelta(minutes=5 * i)
        store.write(MAP, when, "yaml", snapshot_to_yaml(_snapshot(when, load=float(i))))
    return store


class TestRoundTrip:
    def test_load_all_served_by_index_is_identical(self, store):
        via_yaml = load_all(store, MAP, use_index=False)
        build_index(store, MAP)
        assert fresh_index(store, MAP) is not None
        assert load_all(store, MAP) == via_yaml

    def test_index_path_reads_no_yaml(self, store, monkeypatch):
        build_index(store, MAP)
        from repro.dataset import loader as loader_module

        def forbidden(text):
            raise AssertionError("a fresh index must not parse YAML")

        monkeypatch.setattr(loader_module, "snapshot_from_yaml", forbidden)
        assert len(load_all(store, MAP)) == FILES

    def test_window_matches_yaml_path(self, store):
        build_index(store, MAP)
        start = T0 + timedelta(minutes=5)
        end = T0 + timedelta(minutes=20)
        assert load_all(store, MAP, start=start, end=end) == load_all(
            store, MAP, start=start, end=end, use_index=False
        )

    def test_latest_served_by_index(self, store):
        build_index(store, MAP)
        latest = latest_snapshot(store, MAP)
        assert latest == latest_snapshot(store, MAP, use_index=False)
        assert latest.links[0].a.load == FILES - 1

    def test_file_round_trip_preserves_tables(self, store):
        index, _ = build_index(store, MAP)
        reloaded = SnapshotIndex.load(store.index_path(MAP))
        assert reloaded.names == index.names
        assert reloaded.labels == index.labels
        assert reloaded.parser_version == index.parser_version
        assert list(reloaded.timestamps) == list(index.timestamps)
        assert [reloaded.snapshot(r) for r in range(len(reloaded))] == [
            index.snapshot(r) for r in range(len(index))
        ]


# ---------------------------------------------------------------------------
# Property tests: reconstruction is exact for arbitrary valid series
# ---------------------------------------------------------------------------

node_names = st.from_regex(r"[a-z]{3}-r[0-9]{1,2}", fullmatch=True)
peering_names = st.from_regex(r"[A-Z]{3,8}", fullmatch=True)
labels = st.from_regex(r"#[0-9]{1,2}", fullmatch=True)
loads = st.integers(min_value=0, max_value=100).map(float)


@st.composite
def snapshot_series(draw):
    """A short series of structurally valid snapshots of one map."""
    map_name = draw(st.sampled_from(list(MapName)))
    slots = draw(st.lists(st.integers(0, 10000), min_size=1, max_size=4, unique=True))
    series = []
    for slot in sorted(slots):
        routers = draw(st.lists(node_names, min_size=2, max_size=5, unique=True))
        peerings = draw(st.lists(peering_names, min_size=0, max_size=3, unique=True))
        snapshot = MapSnapshot(
            map_name=map_name,
            timestamp=datetime(2022, 1, 1, tzinfo=timezone.utc)
            + timedelta(minutes=5 * slot),
        )
        for name in routers + peerings:
            snapshot.add_node(Node.from_name(name))
        for _ in range(draw(st.integers(0, 6))):
            a = draw(st.sampled_from(routers))
            b = draw(st.sampled_from(routers + peerings))
            if a == b:
                continue
            snapshot.add_link(
                Link(
                    a=LinkEnd(a, draw(labels), draw(loads)),
                    b=LinkEnd(b, draw(labels), draw(loads)),
                )
            )
        series.append(snapshot)
    return series


@given(snapshot_series())
@settings(max_examples=50, deadline=None)
def test_reconstruction_is_exact(series):
    index = SnapshotIndex(series[0].map_name)
    for snapshot in series:
        index.append_snapshot(snapshot, size=1, mtime_ns=1)
    assert [index.snapshot(row) for row in range(len(index))] == series


@given(snapshot_series())
@settings(max_examples=25, deadline=None)
def test_save_load_survives_arbitrary_series(series):
    index = SnapshotIndex(series[0].map_name)
    for number, snapshot in enumerate(series):
        index.append_snapshot(snapshot, size=number, mtime_ns=number)
    with tempfile.TemporaryDirectory() as scratch:
        path = DatasetStore(scratch).index_path(series[0].map_name)
        index.save(path)
        reloaded = SnapshotIndex.load(path)
    assert [reloaded.snapshot(row) for row in range(len(reloaded))] == series
    assert reloaded.source_fingerprint() == index.source_fingerprint()


# ---------------------------------------------------------------------------
# Freshness
# ---------------------------------------------------------------------------


class TestFreshness:
    def test_fresh_after_build(self, store):
        build_index(store, MAP)
        assert fresh_index(store, MAP) is not None

    def test_absent_index_is_not_fresh(self, store):
        assert fresh_index(store, MAP) is None

    def test_new_file_staled(self, store):
        build_index(store, MAP)
        when = T0 + timedelta(hours=1)
        store.write(MAP, when, "yaml", snapshot_to_yaml(_snapshot(when)))
        assert fresh_index(store, MAP) is None

    def test_modified_file_staled(self, store):
        build_index(store, MAP)
        ref = next(iter(store.iter_refs(MAP, "yaml")))
        ref.path.write_text(
            snapshot_to_yaml(_snapshot(ref.timestamp, load=99.0)), encoding="utf-8"
        )
        os.utime(ref.path, ns=(1, 1))
        assert fresh_index(store, MAP) is None

    def test_removed_file_staled(self, store):
        build_index(store, MAP)
        next(iter(store.iter_refs(MAP, "yaml"))).path.unlink()
        assert fresh_index(store, MAP) is None

    def test_stale_load_falls_back_to_yaml(self, store):
        build_index(store, MAP)
        when = T0 + timedelta(hours=1)
        store.write(MAP, when, "yaml", snapshot_to_yaml(_snapshot(when, load=50.0)))
        snapshots = load_all(store, MAP)
        assert len(snapshots) == FILES + 1
        assert snapshots[-1].links[0].a.load == 50.0

    def test_parser_version_skew_not_fresh(self, store):
        build_index(store, MAP, parser_version=PARSER_VERSION + 1)
        assert load_index(store, MAP) is not None
        assert fresh_index(store, MAP) is None


# ---------------------------------------------------------------------------
# Damaged index files: always fall back, never fail
# ---------------------------------------------------------------------------


class TestDamagedIndex:
    def damage(self, store, mutate):
        build_index(store, MAP)
        path = store.index_path(MAP)
        path.write_bytes(mutate(path.read_bytes()))
        return path

    def test_truncated(self, store):
        self.damage(store, lambda data: data[: len(data) // 2])
        assert load_index(store, MAP) is None

    def test_flipped_byte_fails_checksum(self, store):
        middle = None

        def flip(data):
            at = len(data) // 2
            return data[:at] + bytes([data[at] ^ 0xFF]) + data[at + 1 :]

        self.damage(store, flip)
        assert load_index(store, MAP) is None

    def test_bad_magic(self, store):
        self.damage(store, lambda data: b"XXXX" + data[len(INDEX_MAGIC) :])
        assert load_index(store, MAP) is None

    def test_load_raises_typed_error(self, store):
        path = self.damage(store, lambda data: data[:10])
        with pytest.raises(SnapshotIndexError):
            SnapshotIndex.load(path)

    def test_corrupt_index_load_all_falls_back(self, store):
        via_yaml = load_all(store, MAP, use_index=False)
        self.damage(store, lambda data: data[: len(data) // 3])
        assert load_all(store, MAP) == via_yaml

    def test_rebuild_after_corruption(self, store):
        self.damage(store, lambda data: data[:20])
        index, stats = build_index(store, MAP)
        assert stats.parsed == FILES
        assert fresh_index(store, MAP) is not None


# ---------------------------------------------------------------------------
# Incremental builds
# ---------------------------------------------------------------------------


class TestIncremental:
    def test_warm_rebuild_reuses_everything(self, store):
        build_index(store, MAP)
        _, stats = build_index(store, MAP)
        assert stats.parsed == 0
        assert stats.reused == FILES

    def test_new_file_parsed_alone(self, store):
        build_index(store, MAP)
        when = T0 + timedelta(hours=1)
        store.write(MAP, when, "yaml", snapshot_to_yaml(_snapshot(when)))
        index, stats = build_index(store, MAP)
        assert (stats.parsed, stats.reused) == (1, FILES)
        assert len(index) == FILES + 1
        assert fresh_index(store, MAP) is not None

    def test_modified_file_reparsed_alone(self, store):
        build_index(store, MAP)
        ref = next(iter(store.iter_refs(MAP, "yaml")))
        ref.path.write_text(
            snapshot_to_yaml(_snapshot(ref.timestamp, load=77.0)), encoding="utf-8"
        )
        os.utime(ref.path, ns=(1, 1))
        index, stats = build_index(store, MAP)
        assert (stats.parsed, stats.reused) == (1, FILES - 1)
        assert index.snapshot(0).links[0].a.load == 77.0

    def test_removed_file_dropped(self, store):
        build_index(store, MAP)
        next(iter(store.iter_refs(MAP, "yaml"))).path.unlink()
        index, stats = build_index(store, MAP)
        assert stats.removed == 1
        assert len(index) == FILES - 1
        assert fresh_index(store, MAP) is not None

    def test_rebuild_flag_parses_everything(self, store):
        build_index(store, MAP)
        _, stats = build_index(store, MAP, rebuild=True)
        assert stats.parsed == FILES
        assert stats.reused == 0

    def test_parser_version_bump_discards_previous(self, store):
        build_index(store, MAP, parser_version=PARSER_VERSION + 1)
        _, stats = build_index(store, MAP)
        assert stats.parsed == FILES
        assert stats.reused == 0


# ---------------------------------------------------------------------------
# Corrupt YAML sources: skipped, remembered, replayed
# ---------------------------------------------------------------------------


class TestSkippedSources:
    CORRUPT_AT = T0 + timedelta(minutes=5 * 2)

    @pytest.fixture()
    def store_with_corrupt(self, store) -> DatasetStore:
        path = store.path_for(MAP, self.CORRUPT_AT, "yaml")
        path.write_text("routers: [unclosed", encoding="utf-8")
        os.utime(path, ns=(1, 1))
        return store

    def test_build_raises_without_handler(self, store_with_corrupt):
        with pytest.raises(SchemaError):
            build_index(store_with_corrupt, MAP)

    def test_build_records_skip_and_stays_fresh(self, store_with_corrupt):
        errors = []
        index, stats = build_index(
            store_with_corrupt, MAP, on_error=lambda ref, exc: errors.append(ref.timestamp)
        )
        assert errors == [self.CORRUPT_AT]
        assert stats.unreadable == 1
        assert len(index) == FILES - 1
        assert fresh_index(store_with_corrupt, MAP) is not None

    def test_indexed_load_replays_the_error(self, store_with_corrupt):
        build_index(store_with_corrupt, MAP, on_error=lambda ref, exc: None)
        with pytest.raises(SchemaError):
            load_all(store_with_corrupt, MAP)

    def test_indexed_load_reports_skip_in_time_order(self, store_with_corrupt):
        build_index(store_with_corrupt, MAP, on_error=lambda ref, exc: None)
        events = []
        snapshots = load_all(
            store_with_corrupt,
            MAP,
            on_error=lambda ref, exc: events.append(("error", ref.timestamp)),
        )
        assert len(snapshots) == FILES - 1
        assert events == [("error", self.CORRUPT_AT)]
        # Same outcome as the YAML walk, element for element.
        assert snapshots == load_all(
            store_with_corrupt, MAP, on_error=lambda ref, exc: None, use_index=False
        )

    def test_incremental_rerun_reuses_the_skip(self, store_with_corrupt):
        build_index(store_with_corrupt, MAP, on_error=lambda ref, exc: None)
        _, stats = build_index(store_with_corrupt, MAP)  # no handler needed now
        assert stats.parsed == 0
        assert stats.unreadable == 1
        assert stats.reused == FILES - 1

    def test_latest_walks_past_trailing_corruption(self, store):
        when = T0 + timedelta(hours=2)
        store.write(MAP, when, "yaml", "routers: [unclosed")
        build_index(store, MAP, on_error=lambda ref, exc: None)
        latest = latest_snapshot(store, MAP)
        assert latest is not None
        assert latest.timestamp == T0 + timedelta(minutes=5 * (FILES - 1))
        assert latest == latest_snapshot(store, MAP, use_index=False)


# ---------------------------------------------------------------------------
# Status reporting
# ---------------------------------------------------------------------------


class TestStatus:
    def test_missing(self, store):
        status = index_status(store, MAP)
        assert (status.exists, status.fresh) == (False, False)
        assert status.reason == "no index file"

    def test_fresh(self, store):
        build_index(store, MAP)
        status = index_status(store, MAP)
        assert status.fresh
        assert status.rows == FILES
        assert status.parser_version == PARSER_VERSION
        assert status.reason is None
        assert status.size_bytes == store.index_path(MAP).stat().st_size

    def test_stale_reports_reason(self, store):
        build_index(store, MAP)
        when = T0 + timedelta(hours=1)
        store.write(MAP, when, "yaml", snapshot_to_yaml(_snapshot(when)))
        status = index_status(store, MAP)
        assert not status.fresh
        assert "changed" in status.reason

    def test_corrupt_reports_reason(self, store):
        build_index(store, MAP)
        path = store.index_path(MAP)
        path.write_bytes(path.read_bytes()[:10])
        status = index_status(store, MAP)
        assert status.exists and not status.fresh
        assert status.reason


# ---------------------------------------------------------------------------
# Worker resolution
# ---------------------------------------------------------------------------


class TestResolveWorkers:
    def test_default_is_serial(self):
        assert resolve_workers(None) == 1

    def test_auto_means_one_per_core(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 8)
        assert resolve_workers("auto") == 8
        assert resolve_workers(0) == 8
        assert resolve_workers(None, default="auto") == 8
        assert default_workers() == 8

    def test_explicit_count_kept_on_multicore(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 8)
        assert resolve_workers(4) == 4

    def test_single_core_collapses_to_serial(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        assert resolve_workers(4) == 1
        assert resolve_workers("auto") == 1

    def test_invalid_requests_rejected(self):
        with pytest.raises(DatasetError):
            resolve_workers(-1)
        with pytest.raises(DatasetError):
            resolve_workers("many")

    def test_build_index_rejects_bad_workers(self, store):
        with pytest.raises(DatasetError):
            build_index(store, MAP, workers=-2)
