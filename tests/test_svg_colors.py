"""Unit tests for the weathermap load-to-colour scale."""

import pytest

from repro.errors import SvgError
from repro.svgdoc.colors import WEATHERMAP_SCALE, LoadColorScale, ScaleBand


class TestDefaultScale:
    def test_zero_load_renders_unused_grey(self):
        # "A disabled link is represented with a load level of 0 %."
        assert WEATHERMAP_SCALE.color_for(0) == "#c0c0c0"

    def test_low_load_white(self):
        assert WEATHERMAP_SCALE.color_for(0.5) == "#ffffff"

    def test_band_boundaries_inclusive_above(self):
        # Bands are (low, high]: exactly 10 is still the 1-10 band.
        assert WEATHERMAP_SCALE.color_for(10) == "#8c00ff"
        assert WEATHERMAP_SCALE.color_for(10.01) == "#2020ff"

    def test_full_load_red(self):
        assert WEATHERMAP_SCALE.color_for(100) == "#ff0000"

    def test_out_of_range_raises(self):
        with pytest.raises(SvgError):
            WEATHERMAP_SCALE.color_for(101)
        with pytest.raises(SvgError):
            WEATHERMAP_SCALE.color_for(-1)

    def test_every_percent_has_a_color(self):
        for load in range(0, 101):
            assert WEATHERMAP_SCALE.color_for(load).startswith("#")


class TestInverseLookup:
    def test_band_for_color(self):
        band = WEATHERMAP_SCALE.band_for_color("#FF0000")
        assert band is not None
        assert band.low == 85

    def test_band_for_unknown_color(self):
        assert WEATHERMAP_SCALE.band_for_color("#123456") is None

    def test_consistency_check(self):
        color = WEATHERMAP_SCALE.color_for(42)
        assert WEATHERMAP_SCALE.is_consistent(42, color)
        assert not WEATHERMAP_SCALE.is_consistent(42, "#ff0000")


class TestValidation:
    def test_empty_scale_rejected(self):
        with pytest.raises(SvgError):
            LoadColorScale([])

    def test_gap_rejected(self):
        with pytest.raises(SvgError):
            LoadColorScale(
                [ScaleBand(0, 10, "#fff"), ScaleBand(20, 30, "#000")]
            )

    def test_empty_band_rejected(self):
        with pytest.raises(SvgError):
            LoadColorScale([ScaleBand(10, 10, "#fff")])

    def test_bands_sorted_on_access(self):
        scale = LoadColorScale(
            [ScaleBand(50, 100, "#222"), ScaleBand(0, 50, "#111")]
        )
        assert [band.low for band in scale.bands] == [0, 50]
