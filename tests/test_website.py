"""Tests for the simulated weathermap website and the polling crawler."""

from datetime import datetime, timedelta, timezone

import pytest

from repro.constants import MapName
from repro.dataset.corruption import CorruptionInjector
from repro.dataset.gaps import AvailabilityModel, CollectionSegment
from repro.dataset.store import DatasetStore
from repro.errors import DatasetError
from repro.website.site import WeathermapWebsite, snapshot_tick
from repro.website.webcollector import PollingCollector, PollingStats

NOON = datetime(2022, 9, 11, 12, 0, tzinfo=timezone.utc)


@pytest.fixture(scope="module")
def site(simulator):
    return WeathermapWebsite(
        simulator, corruption=CorruptionInjector(seed=simulator.config.seed, rate=0.0)
    )


class TestTickGrid:
    def test_floors_to_five_minutes(self):
        assert snapshot_tick(NOON + timedelta(minutes=7, seconds=31)) == NOON + timedelta(minutes=5)

    def test_exact_tick_unchanged(self):
        assert snapshot_tick(NOON) == NOON

    def test_timezone_normalised(self):
        paris = timezone(timedelta(hours=2))
        local = datetime(2022, 9, 11, 14, 3, tzinfo=paris)
        assert snapshot_tick(local) == NOON


class TestCurrent:
    def test_same_slot_same_document(self, site):
        tick_a, svg_a = site.current(MapName.ASIA_PACIFIC, NOON + timedelta(minutes=1))
        tick_b, svg_b = site.current(MapName.ASIA_PACIFIC, NOON + timedelta(minutes=4))
        assert tick_a == tick_b == NOON
        assert svg_a == svg_b

    def test_next_slot_replaces_document(self, site):
        _, svg_a = site.current(MapName.ASIA_PACIFIC, NOON)
        _, svg_b = site.current(MapName.ASIA_PACIFIC, NOON + timedelta(minutes=5))
        assert svg_a != svg_b

    def test_outside_window_rejected(self, site):
        with pytest.raises(DatasetError):
            site.current(MapName.EUROPE, datetime(2019, 1, 1, tzinfo=timezone.utc))

    def test_served_document_parses(self, site):
        from repro.parsing.pipeline import parse_svg

        tick, svg = site.current(MapName.ASIA_PACIFIC, NOON)
        parsed = parse_svg(svg, MapName.ASIA_PACIFIC, tick)
        expected = site.simulator.snapshot(MapName.ASIA_PACIFIC, tick)
        assert parsed.snapshot.summary_counts() == expected.summary_counts()


class TestHourlyArchive:
    def test_contains_past_hours_only(self, site):
        archive = site.hourly_archive(MapName.ASIA_PACIFIC, NOON + timedelta(minutes=30))
        hours = [stamp for stamp, _ in archive]
        assert hours[0].hour == 0
        assert hours[-1].hour == 11  # 12:00 not yet archived at 12:30
        assert len(hours) == 12

    def test_resets_at_midnight(self, site):
        archive = site.hourly_archive(
            MapName.ASIA_PACIFIC, NOON.replace(hour=0, minute=40)
        )
        assert archive == []

    def test_archive_matches_current_render(self, site):
        ten = NOON.replace(hour=10)
        archive = dict(site.hourly_archive(MapName.ASIA_PACIFIC, NOON))
        _, live = site.current(MapName.ASIA_PACIFIC, ten)
        assert archive[ten] == live


class TestPollingCollector:
    def _collector(self, site, tmp_path, miss_rate: float, backfill: bool = True):
        availability = AvailabilityModel(
            seed=99,
            segments={
                map_name: (
                    CollectionSegment(
                        site.simulator.config.window_start,
                        site.simulator.config.window_end,
                    ),
                )
                for map_name in MapName
            },
            europe_miss_rate=miss_rate,
            other_miss_rate_before_fix=miss_rate,
            other_miss_rate_after_fix=miss_rate,
            outage_day_rate=0.0,
        )
        return PollingCollector(
            site, DatasetStore(tmp_path), availability=availability, backfill=backfill
        )

    def test_reliable_polling_stores_every_tick(self, site, tmp_path):
        collector = self._collector(site, tmp_path, miss_rate=0.0, backfill=False)
        stats = collector.run(
            NOON, NOON + timedelta(minutes=30), maps=[MapName.ASIA_PACIFIC]
        )
        assert stats.fetched == 6
        assert stats.failed_polls == 0
        assert collector.store.timestamps(MapName.ASIA_PACIFIC) == [
            NOON + timedelta(minutes=5 * i) for i in range(6)
        ]

    def test_failed_polls_leave_gaps(self, site, tmp_path):
        collector = self._collector(
            site, tmp_path, miss_rate=0.5, backfill=False
        )
        stats = collector.run(
            NOON, NOON + timedelta(hours=2), maps=[MapName.ASIA_PACIFIC]
        )
        assert stats.failed_polls > 0
        assert stats.fetched + stats.failed_polls == stats.polls

    def test_backfill_recovers_hourly_snapshots(self, site, tmp_path):
        collector = self._collector(site, tmp_path, miss_rate=0.45, backfill=True)
        stats = collector.run(
            NOON, NOON + timedelta(hours=3), maps=[MapName.ASIA_PACIFIC]
        )
        stamps = collector.store.timestamps(MapName.ASIA_PACIFIC)
        # Every on-the-hour snapshot the archive could have served is
        # present — fetched live or recovered.  (Hour 14 only enters the
        # archive at 15:00, when polling has already stopped.)
        for hour in (12, 13):
            assert NOON.replace(hour=hour) in stamps
        assert stats.backfilled > 0

    def test_no_duplicate_writes(self, site, tmp_path):
        collector = self._collector(site, tmp_path, miss_rate=0.0)
        collector.run(NOON, NOON + timedelta(minutes=15), maps=[MapName.ASIA_PACIFIC])
        stats = PollingStats()
        collector.poll_once(MapName.ASIA_PACIFIC, NOON + timedelta(minutes=5), stats)
        assert stats.duplicates_skipped == 1
        assert stats.fetched == 0

    def test_polling_agrees_with_direct_collector(self, site, tmp_path, simulator):
        """The web path and the fast path store identical documents."""
        from repro.dataset.collector import SimulatedCollector

        web_store = DatasetStore(tmp_path / "web")
        direct_store = DatasetStore(tmp_path / "direct")
        collector = PollingCollector(
            site,
            web_store,
            availability=self._collector(site, tmp_path / "x", 0.0).availability,
            backfill=False,
        )
        collector.run(NOON, NOON + timedelta(minutes=10), maps=[MapName.ASIA_PACIFIC])

        direct = SimulatedCollector(
            simulator,
            direct_store,
            availability=collector.availability,
            corruption=CorruptionInjector(seed=simulator.config.seed, rate=0.0),
        )
        direct.collect(NOON, NOON + timedelta(minutes=10), maps=[MapName.ASIA_PACIFIC])

        for tick in web_store.timestamps(MapName.ASIA_PACIFIC):
            web_svg = web_store.read_bytes(MapName.ASIA_PACIFIC, tick, "svg")
            direct_svg = direct_store.read_bytes(MapName.ASIA_PACIFIC, tick, "svg")
            assert web_svg == direct_svg
