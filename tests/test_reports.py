"""Tests for report-bundle generation."""

from datetime import timedelta

import pytest

from repro.charts.svgchart import ChartRenderer, Series
from repro.constants import MapName, REFERENCE_DATE
from repro.dataset.collector import SimulatedCollector
from repro.dataset.corruption import CorruptionInjector
from repro.dataset.processor import process_map
from repro.dataset.store import DatasetStore
from repro.reports.builder import ReportBuilder, build_report


@pytest.fixture(scope="module")
def processed_dataset(tmp_path_factory, simulator):
    root = tmp_path_factory.mktemp("report-dataset")
    store = DatasetStore(root)
    collector = SimulatedCollector(
        simulator,
        store,
        corruption=CorruptionInjector(seed=simulator.config.seed, rate=0.0),
    )
    start = REFERENCE_DATE - timedelta(minutes=30)
    collector.collect(start, REFERENCE_DATE, maps=[MapName.ASIA_PACIFIC])
    process_map(store, MapName.ASIA_PACIFIC)
    return root


class TestBuilder:
    def test_sections_ordered(self, tmp_path):
        builder = ReportBuilder(tmp_path)
        builder.add_section("First", "alpha")
        builder.add_section("Second", "beta")
        target = builder.write(title="T")
        text = target.read_text(encoding="utf-8")
        assert text.index("## First") < text.index("## Second")
        assert text.startswith("# T")

    def test_chart_written_and_referenced(self, tmp_path):
        builder = ReportBuilder(tmp_path)
        chart = ChartRenderer(title="c")
        chart.add_series(Series(name="s", xs=(0, 1), ys=(0, 1)))
        relative = builder.add_chart("demo", chart)
        target = builder.write()
        assert (tmp_path / relative).exists()
        assert relative in target.read_text(encoding="utf-8")


class TestBuildReport:
    def test_full_report(self, processed_dataset, tmp_path):
        target = build_report(processed_dataset, tmp_path / "out")
        text = target.read_text(encoding="utf-8")
        assert "Collection quality" in text
        assert "Asia Pacific" in text
        assert "Router degrees" in text
        assert "Link loads and ECMP" in text
        charts = list((tmp_path / "out" / "charts").glob("*.svg"))
        assert len(charts) >= 2

    def test_detail_map_fallback(self, processed_dataset, tmp_path):
        # Europe requested but absent: falls back to the present map.
        target = build_report(
            processed_dataset, tmp_path / "out2", detail_map=MapName.EUROPE
        )
        text = target.read_text(encoding="utf-8")
        assert "Asia Pacific" in text

    def test_empty_dataset(self, tmp_path):
        target = build_report(tmp_path / "nothing", tmp_path / "out3")
        assert "Empty dataset" in target.read_text(encoding="utf-8")

    def test_short_window_skips_hourly_bands(self, processed_dataset, tmp_path):
        # 30 minutes of data → no hour-of-day chart.
        build_report(processed_dataset, tmp_path / "out4")
        charts = {p.name for p in (tmp_path / "out4" / "charts").glob("*.svg")}
        assert not any(name.startswith("load_hours") for name in charts)


class TestReportCli:
    def test_cli_report(self, processed_dataset, tmp_path, capsys):
        from repro.cli.main import main

        code = main(
            [
                "report",
                str(processed_dataset),
                "--output",
                str(tmp_path / "cli-out"),
                "--map",
                "asia-pacific",
            ]
        )
        assert code == 0
        assert (tmp_path / "cli-out" / "report.md").exists()
