"""Tests for the crawl and export CLI subcommands."""

import pytest

from repro.cli.main import main


@pytest.fixture(scope="module")
def crawled(tmp_path_factory):
    root = tmp_path_factory.mktemp("crawl")
    code = main(
        [
            "crawl",
            str(root),
            "--start",
            "2022-09-11T23:40:00",
            "--end",
            "2022-09-12T00:00:00",
            "--map",
            "world",
            "--no-backfill",
        ]
    )
    assert code == 0
    assert main(["process", str(root)]) == 0
    return root


class TestCrawl:
    def test_documents_stored(self, crawled):
        assert list(crawled.rglob("*.svg"))

    def test_backfill_pulls_archive(self, tmp_path, capsys):
        code = main(
            [
                "crawl",
                str(tmp_path),
                "--start",
                "2022-09-11T02:00:00",
                "--end",
                "2022-09-11T02:10:00",
                "--map",
                "world",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "backfilled" in out
        # Two hours of same-day archive (00:00, 01:00) recovered.
        svgs = sorted(p.name for p in tmp_path.rglob("*.svg"))
        assert any("T000000Z" in name for name in svgs)
        assert any("T010000Z" in name for name in svgs)


class TestExport:
    def test_graphml_stdout(self, crawled, capsys):
        code = main(["export", str(crawled), "--map", "world"])
        assert code == 0
        assert "graphml" in capsys.readouterr().out

    def test_csv_file(self, crawled, tmp_path, capsys):
        target = tmp_path / "links.csv"
        code = main(
            [
                "export",
                str(crawled),
                "--map",
                "world",
                "--format",
                "csv",
                "--output",
                str(target),
            ]
        )
        assert code == 0
        assert target.read_text(encoding="utf-8").startswith("node_a,")

    def test_empty_map_errors(self, crawled, capsys):
        code = main(["export", str(crawled), "--map", "europe"])
        assert code == 1

    def test_graphml_round_trips(self, crawled):
        from repro.topology.export import from_graphml
        from repro.dataset.loader import latest_snapshot
        from repro.dataset.store import DatasetStore
        from repro.constants import MapName
        from repro.topology.export import to_graphml

        snapshot = latest_snapshot(DatasetStore(crawled), MapName.WORLD)
        restored = from_graphml(to_graphml(snapshot))
        assert restored.summary_counts() == snapshot.summary_counts()


class TestArchiveCli:
    def test_pack_and_unpack(self, crawled, tmp_path, capsys):
        code = main(
            ["archive", str(crawled), "--output", str(tmp_path / "bundles")]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "world-svg" in out and "world-yaml" in out

        bundle = next((tmp_path / "bundles").glob("world-yaml-*.tar.gz"))
        code = main(
            ["archive", str(tmp_path / "restored"), "--unpack", str(bundle)]
        )
        assert code == 0
        assert list((tmp_path / "restored").rglob("*.yaml"))

    def test_pack_empty_dataset_errors(self, tmp_path, capsys):
        code = main(
            ["archive", str(tmp_path / "void"), "--output", str(tmp_path / "b")]
        )
        assert code == 1
