"""Tests for the benchmark regression guard script."""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

_SCRIPT = Path(__file__).resolve().parents[1] / "scripts" / "check_bench_regression.py"
_SPEC = importlib.util.spec_from_file_location("check_bench_regression", _SCRIPT)
guard = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(guard)

BASELINE = {
    "process_serial_fps": 50.0,
    "process_parallel_fps": 60.0,
    "load_index_fps": 1000.0,
    "speedup_parallel": 1.2,  # not *_fps: never compared
    "outputs_identical": True,
}


def write(tmp_path: Path, name: str, document: dict) -> Path:
    path = tmp_path / name
    path.write_text(json.dumps(document), encoding="utf-8")
    return path


def run(
    tmp_path,
    fresh: dict,
    tolerance: float = 0.20,
    max_overhead: float | None = None,
) -> int:
    baseline = write(tmp_path, "baseline.json", BASELINE)
    report = write(tmp_path, "fresh.json", fresh)
    argv = [str(report), "--baseline", str(baseline), "--tolerance", str(tolerance)]
    if max_overhead is not None:
        argv += ["--max-telemetry-overhead", str(max_overhead)]
    return guard.main(argv)


class TestCompare:
    def test_identical_reports_pass(self, tmp_path):
        assert run(tmp_path, dict(BASELINE)) == 0

    def test_improvement_passes(self, tmp_path):
        fresh = dict(BASELINE, process_serial_fps=120.0)
        assert run(tmp_path, fresh) == 0

    def test_drop_within_tolerance_passes(self, tmp_path):
        fresh = dict(BASELINE, process_serial_fps=41.0)  # -18%
        assert run(tmp_path, fresh) == 0

    def test_drop_beyond_tolerance_fails(self, tmp_path):
        fresh = dict(BASELINE, process_serial_fps=39.0)  # -22%
        assert run(tmp_path, fresh) == 1

    def test_tolerance_is_configurable(self, tmp_path):
        fresh = dict(BASELINE, process_serial_fps=39.0)  # -22%
        assert run(tmp_path, fresh, tolerance=0.30) == 0
        assert run(tmp_path, fresh, tolerance=0.10) == 1

    def test_any_fps_key_can_fail_the_run(self, tmp_path):
        fresh = dict(BASELINE, load_index_fps=100.0)
        assert run(tmp_path, fresh) == 1

    def test_rps_keys_guarded_like_fps(self, tmp_path):
        baseline = dict(BASELINE, serving_cached_rps=2000.0)
        drop = dict(baseline, serving_cached_rps=1000.0)  # -50%
        baseline_path = write(tmp_path, "rps-baseline.json", baseline)
        report = write(tmp_path, "rps-fresh.json", drop)
        assert guard.main([str(report), "--baseline", str(baseline_path)]) == 1
        gain = dict(baseline, serving_cached_rps=4000.0)
        report = write(tmp_path, "rps-gain.json", gain)
        assert guard.main([str(report), "--baseline", str(baseline_path)]) == 0

    def test_non_fps_keys_ignored(self, tmp_path):
        fresh = dict(BASELINE, speedup_parallel=0.1, outputs_identical=False)
        assert run(tmp_path, fresh) == 0

    def test_new_and_missing_keys_tolerated(self, tmp_path):
        fresh = dict(BASELINE, brand_new_fps=1.0)
        del fresh["load_index_fps"]
        assert run(tmp_path, fresh) == 0


class TestTelemetryOverhead:
    def test_overhead_below_ceiling_passes(self, tmp_path):
        fresh = dict(BASELINE, telemetry_overhead_pct=1.3)
        assert run(tmp_path, fresh) == 0

    def test_overhead_at_ceiling_passes(self, tmp_path):
        fresh = dict(BASELINE, telemetry_overhead_pct=5.0)
        assert run(tmp_path, fresh) == 0

    def test_overhead_above_ceiling_fails(self, tmp_path):
        fresh = dict(BASELINE, telemetry_overhead_pct=5.1)
        assert run(tmp_path, fresh) == 1

    def test_negative_overhead_is_noise_not_failure(self, tmp_path):
        fresh = dict(BASELINE, telemetry_overhead_pct=-2.0)
        assert run(tmp_path, fresh) == 0

    def test_ceiling_is_configurable(self, tmp_path):
        fresh = dict(BASELINE, telemetry_overhead_pct=3.0)
        assert run(tmp_path, fresh, max_overhead=2.0) == 1
        assert run(tmp_path, fresh, max_overhead=4.0) == 0

    def test_missing_key_skips_the_check(self, tmp_path):
        assert run(tmp_path, dict(BASELINE)) == 0

    def test_overhead_failure_independent_of_fps(self, tmp_path):
        fresh = dict(
            BASELINE, process_serial_fps=120.0, telemetry_overhead_pct=9.0
        )
        assert run(tmp_path, fresh) == 1


class TestSingleCoreHost:
    """A fresh report flagged ``single_core_host`` marks its parallel and
    telemetry-overhead numbers as noise; the guard must not fail on them."""

    def test_parallel_fps_drop_is_skipped(self, tmp_path, capsys):
        fresh = dict(
            BASELINE, process_parallel_fps=10.0, single_core_host=True
        )
        assert run(tmp_path, fresh) == 0
        assert "process_parallel_fps skipped" in capsys.readouterr().out

    def test_serial_keys_still_guarded(self, tmp_path):
        fresh = dict(
            BASELINE, process_serial_fps=10.0, single_core_host=True
        )
        assert run(tmp_path, fresh) == 1

    def test_telemetry_ceiling_is_skipped(self, tmp_path, capsys):
        fresh = dict(
            BASELINE, telemetry_overhead_pct=40.0, single_core_host=True
        )
        assert run(tmp_path, fresh) == 0
        assert "telemetry overhead ceiling skipped" in capsys.readouterr().out

    def test_flag_false_changes_nothing(self, tmp_path):
        fresh = dict(
            BASELINE, process_parallel_fps=10.0, single_core_host=False
        )
        assert run(tmp_path, fresh) == 1

    def test_scan_series_fps_is_guarded_when_in_baseline(self, tmp_path):
        baseline = dict(BASELINE, scan_series_fps=40000.0)
        fresh = dict(baseline, scan_series_fps=10000.0, single_core_host=True)
        baseline_path = write(tmp_path, "scan-baseline.json", baseline)
        report = write(tmp_path, "scan-fresh.json", fresh)
        assert guard.main([str(report), "--baseline", str(baseline_path)]) == 1


class TestBadInput:
    def test_unreadable_report_exits_nonzero(self, tmp_path):
        with pytest.raises(SystemExit):
            guard.main([str(tmp_path / "absent.json")])

    def test_non_object_report_exits_nonzero(self, tmp_path):
        path = write(tmp_path, "fresh.json", {})
        path.write_text("[1, 2]", encoding="utf-8")
        baseline = write(tmp_path, "baseline.json", BASELINE)
        with pytest.raises(SystemExit):
            guard.main([str(path), "--baseline", str(baseline)])
