"""Tests for the live generation feed (repro.server.feed).

The feed contracts pinned here:

* one shared watcher tick stats each map once and broadcasts to every
  subscriber — baseline event on start, monotonic ids per checkpoint,
  nothing emitted while the generation is unchanged;
* SSE over the real threaded server: a subscriber sees every one of 10
  live ``compact_map_shards`` checkpoints as consecutive event ids with
  zero 5xx, and the snapshot fetched right after each event is already
  the new generation (feed and read path never disagree);
* ``Last-Event-ID`` reconnects replay exactly the missed ring events;
* a subscriber that stops draining its bounded queue is evicted rather
  than buffered without bound;
* the long-poll twin answers immediately without ``wait``, reports
  ``timed_out`` honestly, and is woken by a checkpoint mid-wait;
* the feed endpoints exist only under ``/v1`` (born versioned).
"""

from __future__ import annotations

import http.client
import json
import threading
from contextlib import contextmanager
from datetime import datetime, timedelta, timezone

import pytest

from repro.constants import MapName
from repro.dataset.processor import process_svg_bytes
from repro.dataset.shards import compact_map_shards
from repro.dataset.store import ShardedDatasetStore
from repro.server import ServeOptions, create_server
from repro.server.engines import EngineCache
from repro.server.feed import (
    FeedEvent,
    GenerationWatcher,
    Subscription,
    render_sse,
)

T0 = datetime(2022, 9, 12, tzinfo=timezone.utc)
MAP = MapName.ASIA_PACIFIC
#: A fast tick so feed tests finish quickly; still one stat per tick.
TICK = 0.05


@pytest.fixture(scope="module")
def reference_yaml(apac_svg) -> str:
    outcome = process_svg_bytes(apac_svg.encode("utf-8"), MAP, T0)
    assert outcome.yaml_text is not None
    return outcome.yaml_text


def build_corpus(root, yaml_text: str) -> ShardedDatasetStore:
    store = ShardedDatasetStore(root)
    store.mark()
    store.write(MAP, T0, "yaml", yaml_text)
    compact_map_shards(store, MAP)
    return store


def checkpoint(store, yaml_text: str, when: datetime) -> None:
    """One ingest checkpoint: append a snapshot, recompact its day-shard."""
    store.write(MAP, when, "yaml", yaml_text)
    compact_map_shards(store, MAP, only=[when.strftime("%Y-%m-%d")])


@contextmanager
def running_server(store, **option_kwargs):
    option_kwargs.setdefault("watch_interval", TICK)
    server = create_server(store, ServeOptions(port=0, **option_kwargs))
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


def get_json(port: int, path: str, expect: int = 200) -> dict:
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        body = response.read()
        assert response.status == expect, body.decode("utf-8", "replace")
        return json.loads(body)
    finally:
        conn.close()


class SseClient:
    """A raw streaming SSE reader over one HTTP/1.1 connection."""

    def __init__(self, port: int, path: str, headers=None) -> None:
        self.conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
        self.conn.request("GET", path, headers=headers or {})
        self.response = self.conn.getresponse()

    def next_frame(self) -> dict | None:
        """The next SSE frame as a field dict; ``None`` at end of stream.

        Comment-only frames come back as ``{"comment": ...}`` so tests
        can assert heartbeats explicitly.
        """
        lines: list[bytes] = []
        while True:
            line = self.response.readline()
            if line == b"":
                return None
            if line == b"\n":
                if lines:
                    break
                continue
            lines.append(line.rstrip(b"\n"))
        if lines[0].startswith(b":"):
            return {"comment": lines[0][1:].strip().decode("utf-8")}
        frame: dict = {}
        for raw in lines:
            name, _, value = raw.partition(b": ")
            frame[name.decode("utf-8")] = value.decode("utf-8")
        return frame

    def next_event(self) -> dict:
        """The next generation event (heartbeats skipped), parsed."""
        while True:
            frame = self.next_frame()
            assert frame is not None, "stream ended unexpectedly"
            if "comment" in frame:
                continue
            assert frame["event"] == "generation"
            payload = json.loads(frame["data"])
            assert int(frame["id"]) == payload["id"]
            return payload

    def close(self) -> None:
        self.conn.close()


class TestWatcherUnits:
    """The watcher alone — no HTTP, ticks driven by ``poll_now``."""

    @pytest.fixture()
    def watcher(self, tmp_path, reference_yaml):
        store = build_corpus(tmp_path, reference_yaml)
        engines = EngineCache(store)
        watcher = GenerationWatcher(engines, interval=TICK, ring_size=4)
        yield store, watcher
        watcher.stop()
        engines.close()

    def test_first_poll_emits_a_baseline_event(self, watcher):
        store, watcher = watcher
        watcher.poll_now()
        latest = watcher.current(MAP)
        assert latest is not None and latest.id == 1
        assert latest.map == MAP.value
        # an unbuilt map has nothing to announce
        assert watcher.current(MapName.EUROPE) is None

    def test_unchanged_generation_emits_nothing(self, watcher):
        store, watcher = watcher
        watcher.poll_now()
        watcher.poll_now()
        watcher.poll_now()
        assert watcher.current(MAP).id == 1

    def test_checkpoints_bump_monotonic_ids(self, watcher, reference_yaml):
        store, watcher = watcher
        watcher.poll_now()
        subscription, replay = watcher.subscribe(MAP)
        assert [event.id for event in replay] == [1]
        for round_no in range(3):
            checkpoint(store, reference_yaml, T0 + timedelta(minutes=round_no + 1))
            watcher.poll_now()
        delivered = [subscription.next_event(1.0) for _ in range(3)]
        assert [event.id for event in delivered] == [2, 3, 4]
        generations = {event.generation for event in delivered}
        assert len(generations) == 3  # every checkpoint is a new generation
        watcher.unsubscribe(subscription)
        assert watcher.subscriber_count(MAP) == 0

    def test_resume_replays_only_missed_events(self, watcher, reference_yaml):
        store, watcher = watcher
        watcher.poll_now()
        for round_no in range(3):
            checkpoint(store, reference_yaml, T0 + timedelta(minutes=round_no + 1))
            watcher.poll_now()
        subscription, replay = watcher.subscribe(MAP, last_event_id=2)
        assert [event.id for event in replay] == [3, 4]
        watcher.unsubscribe(subscription)

    def test_slow_subscriber_is_evicted_not_buffered(
        self, tmp_path, reference_yaml
    ):
        store = build_corpus(tmp_path, reference_yaml)
        engines = EngineCache(store)
        watcher = GenerationWatcher(engines, interval=TICK, ring_size=1)
        try:
            watcher.poll_now()
            subscription, _ = watcher.subscribe(MAP)
            # The stalled reader never drains: the first event fills the
            # one-slot queue, the second finds it full -> eviction.
            checkpoint(store, reference_yaml, T0 + timedelta(minutes=1))
            watcher.poll_now()
            assert not subscription.closed
            checkpoint(store, reference_yaml, T0 + timedelta(minutes=2))
            watcher.poll_now()
            assert subscription.closed
            assert watcher.subscriber_count(MAP) == 0
        finally:
            watcher.stop()
            engines.close()

    def test_stop_closes_every_subscription(self, watcher):
        store, watcher = watcher
        watcher.start()
        subscription, _ = watcher.subscribe(MAP)
        watcher.stop()
        assert subscription.closed
        assert watcher.subscriber_count() == 0

    def test_wait_for_event_times_out(self, watcher):
        store, watcher = watcher
        watcher.poll_now()
        current = watcher.current(MAP)
        assert watcher.wait_for_event(MAP, current.id, timeout=0.05) is None

    def test_wait_for_event_woken_by_a_checkpoint(self, watcher, reference_yaml):
        store, watcher = watcher
        watcher.poll_now()
        before = watcher.current(MAP)
        results: list[FeedEvent | None] = []
        waiter = threading.Thread(
            target=lambda: results.append(
                watcher.wait_for_event(MAP, before.id, timeout=10.0)
            )
        )
        waiter.start()
        checkpoint(store, reference_yaml, T0 + timedelta(minutes=1))
        watcher.poll_now()
        waiter.join(timeout=10)
        assert results and results[0] is not None
        assert results[0].id == before.id + 1

    def test_subscription_queue_is_bounded(self):
        subscription = Subscription(MAP, "sse", capacity=2)
        event = FeedEvent(
            map=MAP.value, id=1, generation="g", changed_at="t", checkpoint_ts=0.0
        )
        assert subscription.deliver(event)
        assert subscription.deliver(event)
        assert not subscription.deliver(event)  # full -> caller evicts
        subscription.close()
        assert not subscription.deliver(event)

    def test_render_sse_wire_format(self):
        event = FeedEvent(
            map="europe",
            id=7,
            generation="sharded-1-2-3",
            changed_at="2022-09-12T00:00:00+00:00",
            checkpoint_ts=0.0,
        )
        assert render_sse(event) == (
            b"id: 7\nevent: generation\ndata: "
            b'{"changed_at":"2022-09-12T00:00:00+00:00",'
            b'"generation":"sharded-1-2-3","id":7,"map":"europe"}\n\n'
        )


class TestSseEndToEnd:
    def test_ten_checkpoints_zero_missed_zero_5xx(
        self, tmp_path, reference_yaml
    ):
        """The acceptance scenario: 10 live compactions, every generation
        seen in order, and the snapshot right after each event is fresh."""
        store = build_corpus(tmp_path, reference_yaml)
        with running_server(store) as server:
            port = server.server_address[1]
            client = SseClient(port, f"/v1/maps/{MAP.value}/events")
            assert client.response.status == 200
            content_type = client.response.getheader("Content-Type")
            assert content_type == "text/event-stream"
            baseline = client.next_event()
            assert baseline["map"] == MAP.value
            last_id = baseline["id"]
            seen_generations = {baseline["generation"]}
            for round_no in range(10):
                when = T0 + timedelta(minutes=round_no + 1)
                checkpoint(store, reference_yaml, when)
                event = client.next_event()
                assert event["id"] == last_id + 1, "missed a generation"
                last_id = event["id"]
                assert event["generation"] not in seen_generations
                seen_generations.add(event["generation"])
                # The read path already serves the new generation: the
                # watcher hot-swapped before (or the engine re-pins on
                # demand) — never a 5xx, never stale.
                payload = get_json(port, f"/v1/maps/{MAP.value}/snapshot")
                assert payload["timestamp"] == when.isoformat()
            client.close()

    def test_last_event_id_resumes_from_the_ring(self, tmp_path, reference_yaml):
        store = build_corpus(tmp_path, reference_yaml)
        with running_server(store) as server:
            port = server.server_address[1]
            first = SseClient(port, f"/v1/maps/{MAP.value}/events")
            baseline = first.next_event()
            for round_no in range(4):
                checkpoint(
                    store, reference_yaml, T0 + timedelta(minutes=round_no + 1)
                )
                first.next_event()
            first.close()
            # Reconnect as EventSource would: the missed tail replays.
            resumed = SseClient(
                port,
                f"/v1/maps/{MAP.value}/events",
                headers={"Last-Event-ID": str(baseline["id"] + 1)},
            )
            replayed = [resumed.next_event()["id"] for _ in range(3)]
            assert replayed == [
                baseline["id"] + 2, baseline["id"] + 3, baseline["id"] + 4,
            ]
            resumed.close()
            # Clients that cannot set headers use the query parameter.
            resumed = SseClient(
                port,
                f"/v1/maps/{MAP.value}/events"
                f"?last_event_id={baseline['id'] + 3}",
            )
            assert resumed.next_event()["id"] == baseline["id"] + 4
            resumed.close()

    def test_idle_stream_heartbeats(self, tmp_path, reference_yaml):
        store = build_corpus(tmp_path, reference_yaml)
        with running_server(store) as server:
            port = server.server_address[1]
            client = SseClient(port, f"/v1/maps/{MAP.value}/events")
            first = client.next_frame()
            assert "data" in first  # the baseline event
            idle = client.next_frame()  # nothing changes -> keep-alive
            assert idle == {"comment": "keep-alive"}
            client.close()

    def test_events_path_is_versioned_only(self, tmp_path, reference_yaml):
        store = build_corpus(tmp_path, reference_yaml)
        with running_server(store) as server:
            port = server.server_address[1]
            payload = get_json(port, f"/maps/{MAP.value}/events", expect=404)
            assert payload["error"]["code"] == "unknown_endpoint"

    def test_feed_metrics_are_exposed(self, tmp_path, reference_yaml):
        store = build_corpus(tmp_path, reference_yaml)
        with running_server(store) as server:
            port = server.server_address[1]
            client = SseClient(port, f"/v1/maps/{MAP.value}/events")
            client.next_event()
            conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
            conn.request("GET", "/v1/metrics")
            text = conn.getresponse().read().decode("utf-8")
            conn.close()
            client.close()
            assert "repro_feed_subscribers" in text
            assert 'repro_feed_events_total{transport="sse"}' in text
            assert "repro_feed_notify_seconds" in text


class TestLongPoll:
    def test_immediate_generation_report(self, tmp_path, reference_yaml):
        store = build_corpus(tmp_path, reference_yaml)
        with running_server(store) as server:
            port = server.server_address[1]
            payload = get_json(port, f"/v1/maps/{MAP.value}/generation")
            assert payload["map"] == MAP.value
            assert payload["id"] >= 1
            assert payload["timed_out"] is False
            assert payload["generation"] and payload["changed_at"]

    def test_wait_times_out_without_a_checkpoint(self, tmp_path, reference_yaml):
        store = build_corpus(tmp_path, reference_yaml)
        with running_server(store) as server:
            port = server.server_address[1]
            current = get_json(port, f"/v1/maps/{MAP.value}/generation")
            payload = get_json(
                port,
                f"/v1/maps/{MAP.value}/generation"
                f"?wait=0.2&after={current['id']}",
            )
            assert payload["timed_out"] is True
            assert payload["id"] == current["id"]

    def test_wait_races_a_checkpoint_and_wins(self, tmp_path, reference_yaml):
        store = build_corpus(tmp_path, reference_yaml)
        with running_server(store) as server:
            port = server.server_address[1]
            current = get_json(port, f"/v1/maps/{MAP.value}/generation")
            writer = threading.Timer(
                0.1,
                checkpoint,
                args=(store, reference_yaml, T0 + timedelta(minutes=1)),
            )
            writer.start()
            try:
                payload = get_json(
                    port, f"/v1/maps/{MAP.value}/generation?wait=10"
                )
            finally:
                writer.join()
            assert payload["timed_out"] is False
            assert payload["id"] == current["id"] + 1

    def test_bad_wait_values_are_400(self, tmp_path, reference_yaml):
        store = build_corpus(tmp_path, reference_yaml)
        with running_server(store) as server:
            port = server.server_address[1]
            for query in ("wait=forever", "wait=-1", "wait=301", "after=x"):
                payload = get_json(
                    port, f"/v1/maps/{MAP.value}/generation?{query}", expect=400
                )
                assert payload["error"]["code"] == "bad_query"

    def test_unbuilt_map_is_404(self, tmp_path, reference_yaml):
        store = build_corpus(tmp_path, reference_yaml)
        with running_server(store) as server:
            port = server.server_address[1]
            payload = get_json(port, "/v1/maps/europe/generation", expect=404)
            assert payload["error"]["code"] == "snapshot_not_found"
            assert payload["error"]["map"] == "europe"
