"""End-to-end tests for the repro-weather CLI."""

import pytest

from repro.cli.main import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_map_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["render", "--map", "mars"])

    def test_generate_args(self):
        args = build_parser().parse_args(
            ["generate", "/tmp/x", "--start", "2022-01-01", "--end", "2022-01-02"]
        )
        assert args.output == "/tmp/x"
        assert args.interval == 5


class TestRender:
    def test_render_to_file(self, tmp_path, capsys):
        target = tmp_path / "map.svg"
        code = main(["render", "--map", "world", "--output", str(target)])
        assert code == 0
        assert target.read_text(encoding="utf-8").startswith("<?xml")

    def test_render_to_stdout(self, capsys):
        code = main(["render", "--map", "world"])
        assert code == 0
        assert "<svg" in capsys.readouterr().out


class TestPipelineCommands:
    @pytest.fixture(scope="class")
    def dataset_dir(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("cli-dataset")
        code = main(
            [
                "generate",
                str(root),
                "--start",
                "2022-09-11T23:40:00",
                "--end",
                "2022-09-12T00:00:00",
                "--map",
                "asia-pacific",
            ]
        )
        assert code == 0
        return root

    def test_generate_wrote_files(self, dataset_dir):
        assert list(dataset_dir.rglob("*.svg"))

    def test_process(self, dataset_dir, capsys):
        code = main(["process", str(dataset_dir)])
        assert code == 0
        out = capsys.readouterr().out
        assert "asia-pacific" in out
        assert list(dataset_dir.rglob("*.yaml"))

    def test_catalog(self, dataset_dir, capsys):
        code = main(["catalog", str(dataset_dir)])
        assert code == 0
        out = capsys.readouterr().out
        assert "asia-pacific" in out
        assert "5-minute resolution" in out

    def test_tables(self, dataset_dir, capsys):
        main(["process", str(dataset_dir)])
        capsys.readouterr()
        code = main(["tables", str(dataset_dir)])
        assert code == 0
        out = capsys.readouterr().out
        assert "Asia Pacific" in out
        assert "# SVGs" in out


class TestUpgradeCommand:
    def test_upgrade_case_study(self, capsys):
        code = main(["upgrade", "--step-hours", "12"])
        assert code == 0
        out = capsys.readouterr().out
        assert "AMS-IX" in out
        assert "400 -> 500 Gbps" in out
        assert "per-link capacity 100 Gbps" in out
