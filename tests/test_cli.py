"""End-to-end tests for the repro-weather CLI."""

import pytest

from repro.cli.main import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_map_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["render", "--map", "mars"])

    def test_generate_args(self):
        args = build_parser().parse_args(
            ["generate", "/tmp/x", "--start", "2022-01-01", "--end", "2022-01-02"]
        )
        assert args.output == "/tmp/x"
        assert args.interval == 5

    def test_process_workers_args(self):
        args = build_parser().parse_args(["process", "/tmp/x"])
        assert args.workers is None
        assert args.overwrite is False
        args = build_parser().parse_args(
            ["process", "/tmp/x", "--workers", "4", "--overwrite"]
        )
        assert args.workers == 4
        assert args.overwrite is True

    def test_export_workers_args(self):
        args = build_parser().parse_args(["export", "/tmp/x"])
        assert args.workers is None
        assert args.output_dir is None
        args = build_parser().parse_args(
            ["export", "/tmp/x", "--workers", "2", "--output-dir", "/tmp/out"]
        )
        assert args.workers == 2
        assert args.output_dir == "/tmp/out"

    def test_workers_must_be_int(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["process", "/tmp/x", "--workers", "many"])

    def test_negative_workers_rejected(self):
        for command in (["process", "/tmp/x"], ["export", "/tmp/x"]):
            with pytest.raises(SystemExit):
                build_parser().parse_args([*command, "--workers", "-1"])

    def test_metrics_out_flags(self):
        args = build_parser().parse_args(
            ["process", "/tmp/x", "--metrics-out", "/tmp/m.json"]
        )
        assert args.metrics_out == "/tmp/m.json"
        args = build_parser().parse_args(["index", "build", "/tmp/x"])
        assert args.metrics_out is None

    def test_metrics_command_args(self):
        args = build_parser().parse_args(["metrics", "m.json"])
        assert args.format == "prom"
        args = build_parser().parse_args(["metrics", "m.json", "--format", "json"])
        assert args.format == "json"

    def test_workers_accepts_auto(self):
        args = build_parser().parse_args(["process", "/tmp/x", "--workers", "auto"])
        assert args.workers == "auto"

    def test_index_build_args(self):
        args = build_parser().parse_args(["index", "build", "/tmp/x"])
        assert args.index_command == "build"
        assert args.rebuild is False
        assert args.workers is None
        args = build_parser().parse_args(
            ["index", "build", "/tmp/x", "--rebuild", "--map", "europe", "--workers", "auto"]
        )
        assert args.rebuild is True
        assert args.workers == "auto"

    def test_index_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["index", "/tmp/x"])


class TestRender:
    def test_render_to_file(self, tmp_path, capsys):
        target = tmp_path / "map.svg"
        code = main(["render", "--map", "world", "--output", str(target)])
        assert code == 0
        assert target.read_text(encoding="utf-8").startswith("<?xml")

    def test_render_to_stdout(self, capsys):
        code = main(["render", "--map", "world"])
        assert code == 0
        assert "<svg" in capsys.readouterr().out


class TestPipelineCommands:
    @pytest.fixture(scope="class")
    def dataset_dir(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("cli-dataset")
        code = main(
            [
                "generate",
                str(root),
                "--start",
                "2022-09-11T23:40:00",
                "--end",
                "2022-09-12T00:00:00",
                "--map",
                "asia-pacific",
            ]
        )
        assert code == 0
        return root

    def test_generate_wrote_files(self, dataset_dir):
        assert list(dataset_dir.rglob("*.svg"))

    def test_process(self, dataset_dir, capsys):
        code = main(["process", str(dataset_dir)])
        assert code == 0
        out = capsys.readouterr().out
        assert "asia-pacific" in out
        assert list(dataset_dir.rglob("*.yaml"))

    def test_catalog(self, dataset_dir, capsys):
        code = main(["catalog", str(dataset_dir)])
        assert code == 0
        out = capsys.readouterr().out
        assert "asia-pacific" in out
        assert "5-minute resolution" in out

    def test_tables(self, dataset_dir, capsys):
        main(["process", str(dataset_dir)])
        capsys.readouterr()
        code = main(["tables", str(dataset_dir)])
        assert code == 0
        out = capsys.readouterr().out
        assert "Asia Pacific" in out
        assert "# SVGs" in out

    def test_process_with_workers(self, dataset_dir, capsys):
        code = main(["process", str(dataset_dir), "--workers", "2", "--overwrite"])
        assert code == 0
        assert "asia-pacific" in capsys.readouterr().out
        # The engine path leaves its incremental manifest behind.
        assert (dataset_dir / "asia-pacific" / "manifest.json").exists()

    def test_index_build_and_status(self, dataset_dir, capsys):
        main(["process", str(dataset_dir)])
        capsys.readouterr()
        code = main(["index", "build", str(dataset_dir)])
        assert code == 0
        out = capsys.readouterr().out
        assert "asia-pacific" in out
        assert "rows" in out
        assert (dataset_dir / "asia-pacific" / "index.bin").exists()
        code = main(["index", "status", str(dataset_dir)])
        assert code == 0
        assert "fresh" in capsys.readouterr().out

    def test_index_status_stale_exits_nonzero(self, dataset_dir, capsys):
        main(["process", str(dataset_dir)])
        main(["index", "build", str(dataset_dir)])
        capsys.readouterr()
        (dataset_dir / "asia-pacific" / "index.bin").write_bytes(b"garbage")
        code = main(["index", "status", str(dataset_dir)])
        assert code == 1
        assert "STALE" in capsys.readouterr().out

    def test_index_build_empty_dataset(self, tmp_path, capsys):
        code = main(["index", "build", str(tmp_path / "empty")])
        assert code == 1

    def test_export_series(self, dataset_dir, tmp_path, capsys):
        main(["process", str(dataset_dir)])
        capsys.readouterr()
        target = tmp_path / "series"
        code = main(
            [
                "export",
                str(dataset_dir),
                "--map",
                "asia-pacific",
                "--format",
                "csv",
                "--output-dir",
                str(target),
                "--workers",
                "1",
            ]
        )
        assert code == 0
        written = sorted(target.glob("asia-pacific-*.csv"))
        assert len(written) == len(list(dataset_dir.rglob("*.yaml")))
        assert "wrote" in capsys.readouterr().out


class TestMetricsCommand:
    def test_process_metrics_out_then_render(self, tmp_path, capsys):
        """The acceptance path: --metrics-out, then ``metrics --format prom``."""
        root = tmp_path / "ds"
        assert main(
            [
                "generate", str(root),
                "--start", "2022-09-11T23:50:00",
                "--end", "2022-09-12T00:00:00",
                "--map", "asia-pacific",
            ]
        ) == 0
        metrics_path = tmp_path / "m.json"
        assert main(
            ["process", str(root), "--metrics-out", str(metrics_path)]
        ) == 0
        assert metrics_path.exists()
        capsys.readouterr()
        assert main(["metrics", str(metrics_path)]) == 0
        prom = capsys.readouterr().out
        assert "# TYPE repro_files_total counter" in prom
        assert 'repro_files_total{map="asia-pacific",outcome="processed"}' in prom
        assert "# TYPE repro_parse_stage_seconds histogram" in prom
        assert 'le="+Inf"' in prom
        assert "repro_parse_fast_path_total" in prom
        assert main(["metrics", str(metrics_path), "--format", "json"]) == 0
        import json as json_module

        document = json_module.loads(capsys.readouterr().out)
        assert document["version"] == 1

    def test_metrics_unreadable_snapshot_fails(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("nonsense", encoding="utf-8")
        assert main(["metrics", str(bad)]) == 1
        assert capsys.readouterr().err

    def test_metrics_output_file(self, tmp_path, capsys):
        from repro.telemetry import MetricsRegistry, write_metrics_file

        registry = MetricsRegistry()
        registry.counter("c_total").inc(2)
        source = tmp_path / "m.json"
        write_metrics_file(source, registry)
        target = tmp_path / "m.prom"
        assert main(["metrics", str(source), "--output", str(target)]) == 0
        assert "c_total 2" in target.read_text(encoding="utf-8")


class TestUpgradeCommand:
    def test_upgrade_case_study(self, capsys):
        code = main(["upgrade", "--step-hours", "12"])
        assert code == 0
        out = capsys.readouterr().out
        assert "AMS-IX" in out
        assert "400 -> 500 Gbps" in out
        assert "per-link capacity 100 Gbps" in out


class TestQueryCommand:
    @pytest.fixture()
    def indexed_dataset(self, tmp_path):
        from datetime import datetime, timedelta, timezone

        from repro.constants import MapName
        from repro.dataset.index import build_index
        from repro.dataset.store import DatasetStore
        from repro.topology.model import Link, LinkEnd, MapSnapshot, Node
        from repro.yamlio.serialize import snapshot_to_yaml

        store = DatasetStore(tmp_path)
        t0 = datetime(2022, 3, 1, tzinfo=timezone.utc)
        for step in range(4):
            when = t0 + timedelta(minutes=5 * step)
            snapshot = MapSnapshot(map_name=MapName.EUROPE, timestamp=when)
            snapshot.add_node(Node.from_name("fra-r1"))
            snapshot.add_node(Node.from_name("par-r2"))
            snapshot.add_link(
                Link(
                    LinkEnd("fra-r1", "#1", float(20 * step)),
                    LinkEnd("par-r2", "#1", 3.0),
                )
            )
            store.write(MapName.EUROPE, when, "yaml", snapshot_to_yaml(snapshot))
        build_index(store, MapName.EUROPE)
        return tmp_path

    def test_query_args(self):
        args = build_parser().parse_args(
            ["query", "/tmp/x", "--node", "fra-r1", "--min-load", "25",
             "--link", "a", "b", "--backend", "memoryview", "--no-mmap"]
        )
        assert args.node == "fra-r1"
        assert args.min_load == 25.0
        assert args.link == ["a", "b"]
        assert args.backend == "memoryview"
        assert args.no_mmap is True
        assert args.limit == 20
        assert args.format == "table"

    def test_table_output(self, indexed_dataset, capsys):
        assert main(["query", str(indexed_dataset)]) == 0
        out = capsys.readouterr().out
        assert "4 matching links over 4 snapshots" in out
        assert "mmap source" in out
        assert "fra-r1[#1]" in out

    def test_filters_and_csv(self, indexed_dataset, capsys):
        assert main(
            ["query", str(indexed_dataset), "--min-load", "30", "--format", "csv"]
        ) == 0
        out = capsys.readouterr().out
        lines = out.strip().splitlines()
        assert lines[0].startswith("timestamp,node_a")
        assert len(lines) == 1 + 2  # loads 40 and 60 pass the threshold
        assert all("fra-r1" in line for line in lines[1:])

    def test_no_mmap_runs_buffered(self, indexed_dataset, capsys):
        assert main(["query", str(indexed_dataset), "--no-mmap"]) == 0
        assert "buffered source" in capsys.readouterr().out

    def test_missing_index_fails_with_hint(self, tmp_path, capsys):
        assert main(["query", str(tmp_path)]) == 1
        assert "index build" in capsys.readouterr().err

    def test_invalid_predicate_fails(self, indexed_dataset, capsys):
        assert main(
            ["query", str(indexed_dataset), "--min-load", "80", "--max-load", "20"]
        ) == 1
        assert "min_load" in capsys.readouterr().err

    def test_metrics_out(self, indexed_dataset, tmp_path, capsys):
        import json as json_module

        metrics_path = tmp_path / "query-metrics.json"
        assert main(
            ["query", str(indexed_dataset), "--metrics-out", str(metrics_path)]
        ) == 0
        document = json_module.loads(metrics_path.read_text(encoding="utf-8"))
        names = {metric["name"] for metric in document["metrics"]}
        assert "repro_query_scans_total" in names
        assert "repro_query_scan_seconds" in names
