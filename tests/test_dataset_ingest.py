"""Tests for the crash-safe ingestion daemon and its write-ahead journal.

The contracts under test, in escalating order of paranoia:

* the journal round-trips records, drops torn tails silently, and
  refuses mid-file corruption loudly;
* a daemon run produces byte-for-byte the YAML tree the one-shot serial
  processor produces, over any backend;
* a daemon SIGKILL'd mid-run and then resumed converges to a YAML tree
  byte-identical to an uninterrupted run, re-parsing nothing it
  journaled.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from datetime import datetime, timedelta, timezone
from pathlib import Path

import pytest

from repro.constants import MapName
from repro.dataset.ingest import (
    IngestConfig,
    IngestDaemon,
    IngestJournal,
    JournalRecord,
    read_ingest_status,
    resume_ingest,
    status_path,
)
from repro.dataset.processor import process_map
from repro.dataset.shards import verify_shards
from repro.dataset.store import DatasetStore, InMemoryStore, ShardedDatasetStore
from repro.errors import IngestError, JournalError

T0 = datetime(2022, 9, 12, tzinfo=timezone.utc)
MAP = MapName.ASIA_PACIFIC
SRC = Path(__file__).resolve().parents[1] / "src"


def build_corpus(store, svg_text: str, files: int = 6, corrupt_at: int | None = None):
    """SVGs spanning two day-shards; optionally one unparseable file."""
    for index in range(files):
        when = T0 + timedelta(hours=14 * index)  # crosses a UTC midnight
        data = "<svg broken" if index == corrupt_at else svg_text
        store.write(MAP, when, "svg", data)
    return store


def yaml_tree(store) -> dict[str, bytes]:
    return {
        ref.path.name: store.read_ref(ref) for ref in store.iter_refs(MAP, "yaml")
    }


RECORD = JournalRecord(
    map_value="asia-pacific",
    stamp="20220912T000000Z",
    sha256="ab" * 32,
    size=123,
    mtime_ns=456,
    yaml_bytes=789,
)


class TestJournal:
    def test_append_replay_round_trip(self, tmp_path):
        journal = IngestJournal(tmp_path / "j.wal")
        failed = JournalRecord(
            map_value="asia-pacific",
            stamp="20220912T000500Z",
            sha256="cd" * 32,
            size=5,
            mtime_ns=6,
            failure="MalformedSvgError",
        )
        journal.append(RECORD)
        journal.append(failed)
        journal.sync()
        journal.close()
        records, dropped = IngestJournal(tmp_path / "j.wal").replay()
        assert records == [RECORD, failed]
        assert dropped == 0

    def test_missing_journal_replays_empty(self, tmp_path):
        assert IngestJournal(tmp_path / "none.wal").replay() == ([], 0)

    def test_torn_tail_dropped_silently(self, tmp_path):
        journal = IngestJournal(tmp_path / "j.wal")
        journal.append(RECORD)
        journal.append(RECORD)
        journal.close()
        raw = (tmp_path / "j.wal").read_bytes()
        (tmp_path / "j.wal").write_bytes(raw[: len(raw) - 7])  # shear the tail
        records, dropped = IngestJournal(tmp_path / "j.wal").replay()
        assert records == [RECORD]
        assert dropped == 1

    def test_mid_file_corruption_raises(self, tmp_path):
        journal = IngestJournal(tmp_path / "j.wal")
        journal.append(RECORD)
        journal.append(RECORD)
        journal.close()
        raw = bytearray((tmp_path / "j.wal").read_bytes())
        raw[12] ^= 0xFF  # damage the FIRST record; the second stays sound
        (tmp_path / "j.wal").write_bytes(bytes(raw))
        with pytest.raises(JournalError):
            IngestJournal(tmp_path / "j.wal").replay()

    def test_clear_removes_file(self, tmp_path):
        journal = IngestJournal(tmp_path / "j.wal")
        journal.append(RECORD)
        journal.clear()
        assert not (tmp_path / "j.wal").exists()
        journal.clear()  # idempotent on a missing file

    def test_entry_conversion(self):
        entry = RECORD.to_entry()
        assert (entry.sha256, entry.size, entry.mtime_ns) == (
            RECORD.sha256,
            RECORD.size,
            RECORD.mtime_ns,
        )

    def test_payload_shape_errors_are_typed(self):
        with pytest.raises(JournalError):
            JournalRecord.from_payload(["not", "a", "dict"])
        with pytest.raises(JournalError):
            JournalRecord.from_payload({"map": "x"})


class TestConfig:
    @pytest.mark.parametrize(
        "field", ["queue_size", "workers", "checkpoint_every", "fsync_every"]
    )
    def test_positive_ints_enforced(self, field):
        with pytest.raises(IngestError):
            IngestConfig(**{field: 0})

    def test_max_files_validated(self):
        with pytest.raises(IngestError):
            IngestConfig(max_files=0)
        assert IngestConfig(max_files=5).max_files == 5


class TestDaemonRuns:
    def test_matches_serial_processor_byte_for_byte(self, tmp_path, apac_svg):
        serial = build_corpus(DatasetStore(tmp_path / "serial"), apac_svg)
        daemon_store = build_corpus(DatasetStore(tmp_path / "daemon"), apac_svg)
        process_map(serial, MAP)
        stats = IngestDaemon(daemon_store, IngestConfig(workers=2)).run([MAP])
        assert stats.processed == 6 and stats.failed == 0
        assert yaml_tree(daemon_store) == yaml_tree(serial)
        assert daemon_store.index_path(MAP).exists()

    def test_second_run_skips_everything(self, tmp_path, apac_svg):
        store = build_corpus(DatasetStore(tmp_path), apac_svg)
        IngestDaemon(store).run([MAP])
        again = IngestDaemon(store).run([MAP])
        assert again.processed == 0
        assert again.skipped == 6

    def test_sharded_store_leaves_fresh_shards(self, tmp_path, apac_svg):
        store = ShardedDatasetStore(tmp_path)
        store.mark()
        build_corpus(store, apac_svg)
        IngestDaemon(store, IngestConfig(checkpoint_every=2)).run([MAP])
        entries = verify_shards(store, MAP)
        assert entries is not None
        assert sum(entry.rows for _, entry in entries) == 6
        assert not store.index_path(MAP).exists()  # no monolithic index

    def test_failures_recorded_not_retried(self, tmp_path, apac_svg):
        store = build_corpus(DatasetStore(tmp_path), apac_svg, corrupt_at=2)
        first = IngestDaemon(store).run([MAP])
        assert first.processed == 5 and first.failed == 1
        again = IngestDaemon(store).run([MAP])
        assert again.ingested == 0 and again.skipped == 6

    def test_max_files_paces_the_run(self, tmp_path, apac_svg):
        store = build_corpus(DatasetStore(tmp_path), apac_svg)
        first = IngestDaemon(store, IngestConfig(max_files=2)).run([MAP])
        assert first.ingested == 2
        rest = IngestDaemon(store).run([MAP])
        assert rest.processed == 4 and rest.skipped == 2

    def test_in_memory_backend_ingests_statelessly(self, apac_svg):
        store = build_corpus(InMemoryStore(), apac_svg, files=3)
        stats = IngestDaemon(store, IngestConfig(workers=2)).run([MAP])
        assert stats.processed == 3
        assert len(yaml_tree(store)) == 3
        # Nothing persistent: re-running re-ingests (no manifest survives).
        assert IngestDaemon(store).run([MAP]).processed == 3

    def test_dead_workers_surface_as_error_not_a_hang(self, tmp_path, apac_svg):
        # Regression: with every worker dead, the producer used to park
        # forever on the full bounded work queue and the executor join
        # wedged the daemon.  The abort protocol must instead raise the
        # typed pipeline error promptly and unwind every thread.
        store = build_corpus(DatasetStore(tmp_path), apac_svg, files=12)

        def broken_read(ref):
            raise OSError("simulated dead disk")

        store.read_ref = broken_read
        daemon = IngestDaemon(store, IngestConfig(workers=2, queue_size=2))
        started = time.monotonic()
        with pytest.raises(IngestError, match="pipeline thread died"):
            daemon.run([MAP])
        assert time.monotonic() - started < 30

    def test_status_file_published(self, tmp_path, apac_svg):
        store = build_corpus(DatasetStore(tmp_path), apac_svg, files=2)
        IngestDaemon(store).run([MAP])
        status = read_ingest_status(tmp_path)
        assert status is not None
        assert status["state"] == "done"
        assert status["processed"] == 2
        assert status["pid"] == os.getpid()
        assert status_path(store).exists()


class TestResume:
    def test_resume_requires_prior_state(self, tmp_path):
        with pytest.raises(IngestError):
            resume_ingest(DatasetStore(tmp_path))

    def test_resume_rejects_memory_store(self):
        with pytest.raises(IngestError):
            resume_ingest(InMemoryStore())

    def test_resume_continues_after_clean_stop(self, tmp_path, apac_svg):
        store = build_corpus(DatasetStore(tmp_path), apac_svg)
        IngestDaemon(store, IngestConfig(max_files=2)).run([MAP])
        stats = resume_ingest(store)
        assert stats.processed == 4 and stats.skipped == 2


KILL_SCRIPT = """
import sys
from repro.constants import MapName
from repro.dataset.ingest import IngestConfig, IngestDaemon
from repro.dataset.store import open_store

store = open_store(sys.argv[1])
config = IngestConfig(workers=1, fsync_every=1, checkpoint_every=3)
IngestDaemon(store, config).run([MapName.ASIA_PACIFIC])
"""


class TestKillAndResume:
    @pytest.mark.parametrize("layout", ["flat", "sharded"])
    def test_sigkill_mid_run_resumes_byte_identical(
        self, tmp_path, apac_svg, layout
    ):
        files = 10
        reference = build_corpus(
            DatasetStore(tmp_path / "reference"), apac_svg, files=files
        )
        IngestDaemon(reference).run([MAP])

        victim_root = tmp_path / "victim"
        if layout == "sharded":
            victim = ShardedDatasetStore(victim_root)
            victim.mark()
        else:
            victim = DatasetStore(victim_root)
        build_corpus(victim, apac_svg, files=files)

        env = dict(os.environ, PYTHONPATH=str(SRC))
        process = subprocess.Popen(
            [sys.executable, "-c", KILL_SCRIPT, str(victim_root)],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                done = sum(1 for _ in victim.iter_refs(MAP, "yaml"))
                if done >= 3:
                    break
                if process.poll() is not None:
                    pytest.fail("daemon finished before it could be killed")
                time.sleep(0.05)
            else:
                pytest.fail("daemon made no progress before the deadline")
            process.send_signal(signal.SIGKILL)
            assert process.wait(timeout=30) == -signal.SIGKILL
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=30)

        partial = len(yaml_tree(victim))
        assert 0 < partial < files  # genuinely mid-run

        stats = resume_ingest(victim)
        # Resume never re-reads what the journal/manifest already proved.
        assert stats.ingested + stats.skipped + stats.replayed >= files
        assert stats.ingested < files
        assert yaml_tree(victim) == yaml_tree(reference)
        if layout == "sharded":
            entries = verify_shards(victim, MAP)
            assert entries is not None
            assert sum(entry.rows for _, entry in entries) == files
        else:
            assert victim.index_path(MAP).exists()
        assert not victim.journal_path(MAP).exists()

    def test_journal_replay_promotes_to_manifest(self, tmp_path, apac_svg):
        """A journal left behind by a crash is folded in before any work."""
        store = build_corpus(DatasetStore(tmp_path), apac_svg, files=2)
        IngestDaemon(store).run([MAP])
        # Fabricate a crash remnant: move one manifest entry back into a
        # journal, as if the checkpoint never happened.
        manifest_path = store.manifest_path(MAP)
        document = json.loads(manifest_path.read_text(encoding="utf-8"))
        stamp, raw = sorted(document["entries"].items())[0]
        del document["entries"][stamp]
        manifest_path.write_text(json.dumps(document), encoding="utf-8")
        journal = IngestJournal(store.journal_path(MAP))
        journal.append(
            JournalRecord(
                map_value=MAP.value,
                stamp=stamp,
                sha256=raw["sha256"],
                size=raw["size"],
                mtime_ns=raw["mtime_ns"],
                yaml_bytes=raw.get("yaml_bytes"),
                failure=raw.get("failure"),
            )
        )
        journal.close()
        stats = resume_ingest(store)
        assert stats.replayed == 1
        assert stats.ingested == 0  # replay made re-parsing unnecessary
        assert stats.skipped == 2
        assert not store.journal_path(MAP).exists()
