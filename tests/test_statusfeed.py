"""Unit tests for the synthetic status feed and its correlation analysis."""

from datetime import datetime, timedelta, timezone

import pytest

from repro.analysis.infrastructure import StructuralEvent, infrastructure_evolution, structural_events
from repro.constants import MapName
from repro.errors import SchemaError
from repro.statusfeed.correlate import correlate_events
from repro.statusfeed.feed import SyntheticStatusFeed
from repro.statusfeed.model import EventKind, StatusEvent


def _utc(*args) -> datetime:
    return datetime(*args, tzinfo=timezone.utc)


@pytest.fixture(scope="module")
def feed(simulator):
    return SyntheticStatusFeed(simulator)


class TestStatusEvent:
    def test_bad_window_rejected(self):
        with pytest.raises(SchemaError):
            StatusEvent(
                kind=EventKind.INCIDENT,
                title="x",
                start=_utc(2022, 1, 2),
                end=_utc(2022, 1, 1),
            )

    def test_title_required(self):
        with pytest.raises(SchemaError):
            StatusEvent(
                kind=EventKind.INCIDENT,
                title="",
                start=_utc(2022, 1, 1),
                end=_utc(2022, 1, 2),
            )

    def test_overlap(self):
        event = StatusEvent(
            kind=EventKind.INCIDENT,
            title="x",
            start=_utc(2022, 1, 10),
            end=_utc(2022, 1, 12),
        )
        assert event.overlaps(_utc(2022, 1, 11), _utc(2022, 1, 20))
        assert not event.overlaps(_utc(2022, 1, 12), _utc(2022, 1, 20))

    def test_near(self):
        event = StatusEvent(
            kind=EventKind.INCIDENT,
            title="x",
            start=_utc(2022, 1, 10),
            end=_utc(2022, 1, 11),
        )
        assert event.near(_utc(2022, 1, 12), timedelta(days=2))
        assert not event.near(_utc(2022, 1, 20), timedelta(days=2))


class TestFeedContents:
    def test_sorted(self, feed):
        events = feed.events()
        assert events == sorted(events, key=lambda e: e.start)

    def test_contains_entry_for_august_outage(self, feed):
        # Outages report as planned maintenance or as incidents
        # ("failures forcing OVH to temporarily remove routers").
        matches = feed.events_near(_utc(2021, 8, 10), timedelta(days=1))
        assert any(
            event.kind in (EventKind.PLANNED_MAINTENANCE, EventKind.INCIDENT)
            for event in matches
        )

    def test_contains_capacity_work_for_november_step(self, feed):
        matches = feed.events_near(_utc(2021, 11, 9), timedelta(days=1))
        assert any(event.kind is EventKind.CAPACITY_WORK for event in matches)

    def test_contains_upgrade_entry(self, feed, simulator):
        scenario = simulator.upgrade
        matches = feed.events_between(scenario.added_at, scenario.activated_at)
        assert any(scenario.peering in event.title for event in matches)

    def test_has_noise(self, feed):
        routine = [
            event for event in feed.events() if event.kind is EventKind.ROUTINE_NOTICE
        ]
        assert len(routine) > 50  # roughly weekly over two years

    def test_structural_filter(self, feed):
        assert all(
            event.kind is not EventKind.ROUTINE_NOTICE
            for event in feed.structural_events()
        )

    def test_deterministic(self, simulator):
        a = SyntheticStatusFeed(simulator).events()
        b = SyntheticStatusFeed(simulator).events()
        assert a == b


class TestCorrelation:
    def test_real_changes_explained(self, simulator, feed):
        evolution = infrastructure_evolution(
            simulator, MapName.EUROPE, interval=timedelta(hours=12)
        )
        changes = structural_events(
            evolution.routers, min_delta=2.0, pairing_window=timedelta(days=45)
        )
        report = correlate_events(changes, feed)
        assert report.total > 0
        # Every scripted change has a matching status entry.
        assert report.explained_fraction == 1.0

    def test_phantom_change_unexplained(self, feed):
        phantom = StructuralEvent(
            kind="shrink",
            start=_utc(2021, 2, 2),
            end=_utc(2021, 2, 2),
            delta=-3,
        )
        report = correlate_events([phantom], feed, window=timedelta(hours=12))
        assert report.explained_fraction == 0.0
        assert len(report.unexplained) == 1

    def test_routine_noise_never_explains(self, feed):
        # Pick a routine notice and place a phantom change on it.
        routine = next(
            event for event in feed.events() if event.kind is EventKind.ROUTINE_NOTICE
        )
        phantom = StructuralEvent(
            kind="growth", start=routine.start, end=routine.end, delta=2
        )
        report = correlate_events([phantom], feed, window=timedelta(hours=1))
        explained_kinds = {
            match.kind for item in report.explained for match in item.matches
        }
        assert EventKind.ROUTINE_NOTICE not in explained_kinds

    def test_empty_changes(self, feed):
        report = correlate_events([], feed)
        assert report.total == 0
        assert report.explained_fraction == 0.0
