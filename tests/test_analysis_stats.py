"""Unit tests for distribution helpers."""

import numpy
import pytest

from repro.analysis.stats import (
    ccdf,
    cdf,
    fraction_at_most,
    interpolate_cdf_at,
    percentile_bands,
)


class TestCdf:
    def test_simple(self):
        xs, fractions = cdf([3, 1, 2])
        assert list(xs) == [1, 2, 3]
        assert list(fractions) == pytest.approx([1 / 3, 2 / 3, 1.0])

    def test_empty(self):
        xs, fractions = cdf([])
        assert xs.size == 0 and fractions.size == 0

    def test_last_fraction_is_one(self):
        _, fractions = cdf(numpy.random.default_rng(0).normal(size=100))
        assert fractions[-1] == 1.0

    def test_monotone(self):
        xs, fractions = cdf([5, 1, 1, 9, 3])
        assert all(numpy.diff(xs) >= 0)
        assert all(numpy.diff(fractions) > 0)


class TestCcdf:
    def test_complement(self):
        xs, cc = ccdf([1, 2, 3, 4])
        _, fractions = cdf([1, 2, 3, 4])
        assert list(cc) == pytest.approx(list(1 - fractions))

    def test_last_is_zero(self):
        _, cc = ccdf([1, 2, 3])
        assert cc[-1] == 0.0


class TestFractionAtMost:
    def test_basic(self):
        assert fraction_at_most([1, 2, 3, 4], 2) == 0.5

    def test_inclusive(self):
        assert fraction_at_most([1, 1, 1], 1) == 1.0

    def test_empty(self):
        assert fraction_at_most([], 5) == 0.0


class TestPercentiles:
    def test_figure5a_set(self):
        values = list(range(101))
        bands = percentile_bands(values)
        assert bands[50.0] == 50
        assert bands[1.0] == pytest.approx(1.0)
        assert bands[99.0] == pytest.approx(99.0)

    def test_empty_gives_nan(self):
        bands = percentile_bands([])
        assert all(numpy.isnan(v) for v in bands.values())

    def test_custom_percentiles(self):
        bands = percentile_bands([1, 2, 3], percentiles=(0.0, 100.0))
        assert bands[0.0] == 1 and bands[100.0] == 3


class TestInterpolation:
    def test_step_lookup(self):
        xs, fractions = cdf([10, 20, 30])
        assert interpolate_cdf_at(xs, fractions, 15) == pytest.approx(1 / 3)
        assert interpolate_cdf_at(xs, fractions, 30) == 1.0

    def test_below_support_zero(self):
        xs, fractions = cdf([10, 20])
        assert interpolate_cdf_at(xs, fractions, 5) == 0.0

    def test_empty(self):
        assert interpolate_cdf_at(numpy.empty(0), numpy.empty(0), 5) == 0.0
