"""Unit tests for corruption injection."""

from datetime import datetime, timedelta, timezone

import pytest

from repro.constants import MapName
from repro.dataset.corruption import CorruptionInjector
from repro.errors import ParseError, SvgError
from repro.parsing.pipeline import parse_svg

WHEN = datetime(2022, 3, 5, 10, 0, tzinfo=timezone.utc)


class TestSelection:
    def test_deterministic(self):
        a = CorruptionInjector(seed=1, rate=0.5)
        b = CorruptionInjector(seed=1, rate=0.5)
        for minutes in range(0, 100, 5):
            when = WHEN + timedelta(minutes=minutes)
            assert a.is_corrupted(MapName.EUROPE, when) == b.is_corrupted(
                MapName.EUROPE, when
            )

    def test_rate_respected(self):
        injector = CorruptionInjector(seed=7, rate=0.1)
        hits = sum(
            injector.is_corrupted(MapName.EUROPE, WHEN + timedelta(minutes=5 * i))
            for i in range(2000)
        )
        assert 100 < hits < 320

    def test_zero_rate_never_corrupts(self):
        injector = CorruptionInjector(seed=7, rate=0.0)
        svg, corrupted = injector.maybe_corrupt("<svg/>", MapName.EUROPE, WHEN)
        assert not corrupted
        assert svg == "<svg/>"


class TestCorruptionModes:
    @pytest.fixture(scope="class")
    def injector(self):
        return CorruptionInjector(seed=2022, rate=1.0)

    def test_every_mode_breaks_parsing(self, injector, apac_svg):
        # Whatever mode is chosen, the file must become unprocessable —
        # that is what Table 2's unprocessed column counts.
        failures = 0
        for minutes in range(0, 120, 5):
            when = WHEN + timedelta(minutes=minutes)
            corrupted = injector.corrupt(apac_svg, MapName.ASIA_PACIFIC, when)
            assert corrupted != apac_svg
            try:
                parse_svg(corrupted, MapName.ASIA_PACIFIC, when)
            except (SvgError, ParseError):
                failures += 1
        assert failures == 24

    def test_modes_vary(self, injector, apac_svg):
        outputs = {
            injector.corrupt(apac_svg, MapName.ASIA_PACIFIC, WHEN + timedelta(minutes=5 * i))
            for i in range(12)
        }
        assert len(outputs) > 1
