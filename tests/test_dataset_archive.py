"""Tests for dataset archive packing/unpacking."""

import tarfile
from datetime import datetime, timedelta, timezone

import pytest

from repro.constants import MapName
from repro.dataset.archive import pack_dataset, unpack_archive
from repro.dataset.store import DatasetStore
from repro.errors import DatasetError

T0 = datetime(2022, 3, 28, tzinfo=timezone.utc)  # spans a month boundary


@pytest.fixture()
def store(tmp_path) -> DatasetStore:
    store = DatasetStore(tmp_path / "dataset")
    for day in range(6):  # Mar 28 .. Apr 2
        when = T0 + timedelta(days=day)
        store.write(MapName.WORLD, when, "svg", f"<svg day='{day}'/>")
        store.write(MapName.WORLD, when, "yaml", f"map: world # {day}")
    return store


class TestPack:
    def test_per_month_bundles(self, store, tmp_path):
        archives = pack_dataset(store, tmp_path / "bundles", maps=[MapName.WORLD])
        names = sorted(a.path.name for a in archives)
        assert names == [
            "world-svg-2022-03.tar.gz",
            "world-svg-2022-04.tar.gz",
            "world-yaml-2022-03.tar.gz",
            "world-yaml-2022-04.tar.gz",
        ]
        by_name = {a.path.name: a for a in archives}
        assert by_name["world-svg-2022-03.tar.gz"].members == 4
        assert by_name["world-svg-2022-04.tar.gz"].members == 2

    def test_member_paths_store_relative(self, store, tmp_path):
        archives = pack_dataset(store, tmp_path / "bundles", maps=[MapName.WORLD])
        with tarfile.open(archives[0].path) as archive:
            names = archive.getnames()
        assert all(name.startswith("world/") for name in names)

    def test_empty_map_skipped(self, store, tmp_path):
        archives = pack_dataset(store, tmp_path / "bundles", maps=[MapName.EUROPE])
        assert archives == []


class TestUnpack:
    def test_round_trip(self, store, tmp_path):
        archives = pack_dataset(store, tmp_path / "bundles", maps=[MapName.WORLD])
        restored = DatasetStore(tmp_path / "restored")
        total = sum(unpack_archive(a.path, restored) for a in archives)
        assert total == 12
        assert restored.timestamps(MapName.WORLD, "svg") == store.timestamps(
            MapName.WORLD, "svg"
        )
        first = store.timestamps(MapName.WORLD, "svg")[0]
        assert restored.read_bytes(
            MapName.WORLD, first, "svg"
        ) == store.read_bytes(MapName.WORLD, first, "svg")

    def test_missing_archive(self, tmp_path):
        with pytest.raises(DatasetError):
            unpack_archive(tmp_path / "nope.tar.gz", DatasetStore(tmp_path / "s"))

    def test_path_traversal_rejected(self, tmp_path):
        evil = tmp_path / "evil.tar.gz"
        payload = tmp_path / "payload.svg"
        payload.write_text("<svg/>")
        with tarfile.open(evil, "w:gz") as archive:
            archive.add(payload, arcname="../../outside.svg")
        with pytest.raises(DatasetError):
            unpack_archive(evil, DatasetStore(tmp_path / "victim"))

    def test_foreign_file_rejected(self, tmp_path):
        bundle = tmp_path / "odd.tar.gz"
        payload = tmp_path / "script.sh"
        payload.write_text("#!/bin/sh")
        with tarfile.open(bundle, "w:gz") as archive:
            archive.add(payload, arcname="world/svg/script.sh")
        with pytest.raises(DatasetError):
            unpack_archive(bundle, DatasetStore(tmp_path / "victim"))
