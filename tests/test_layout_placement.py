"""Unit tests for node placement."""

import pytest

from repro.errors import SimulationError
from repro.layout.placement import BOX_HEIGHT, NodePlacer


def _plan(routers, peerings=()):
    placer = NodePlacer("test-map")
    placer.plan(list(routers), list(peerings))
    return placer


class TestPlanning:
    def test_requires_routers(self):
        with pytest.raises(SimulationError):
            _plan([])

    def test_places_every_node(self):
        placer = _plan(
            [("r1", "fra", 4), ("r2", "fra", 4), ("r3", "lon", 2)],
            [("PEER", "fra", 3)],
        )
        assert len(placer.placements()) == 4
        assert "PEER" in placer
        assert "missing" not in placer

    def test_unplaced_lookup_raises(self):
        placer = _plan([("r1", "fra", 1), ("r2", "lon", 1)])
        with pytest.raises(SimulationError):
            placer.placement("ghost")

    def test_boxes_do_not_overlap(self):
        routers = [(f"r{i}", f"site{i % 4}", 6) for i in range(40)]
        placer = _plan(routers)
        boxes = [p.box for p in placer.placements()]
        for i, a in enumerate(boxes):
            for b in boxes[i + 1:]:
                assert not a.expanded(1.0).intersects_rect(b)

    def test_boxes_inside_canvas(self):
        routers = [(f"r{i}", "s", 4) for i in range(30)]
        placer = _plan(routers)
        for placement in placer.placements():
            box = placement.box
            assert box.left >= 0 and box.top >= 0
            assert box.right <= placer.width and box.bottom <= placer.height

    def test_connected_boxes_have_link_clearance(self):
        # Minimum gap between any two boxes must fit two arrows + labels.
        routers = [(f"r{i}", "s0", 8) for i in range(12)]
        placer = _plan(routers)
        boxes = [p.box for p in placer.placements()]
        for i, a in enumerate(boxes):
            for b in boxes[i + 1:]:
                gap_x = max(b.left - a.right, a.left - b.right, 0)
                gap_y = max(b.top - a.bottom, a.top - b.bottom, 0)
                assert max(gap_x, gap_y) > 60


class TestBoxSizing:
    def test_high_degree_gets_wide_box(self):
        placer = _plan([("core", "s", 60), ("stub", "s", 1)])
        core = placer.placement("core").box
        stub = placer.placement("stub").box
        assert core.width > stub.width
        # Perimeter must fit 60 endpoints at the configured spacing.
        from repro.layout.placement import ENDPOINT_SPACING

        assert 2 * (core.width + core.height) >= 60 * ENDPOINT_SPACING

    def test_long_name_gets_room(self):
        placer = _plan([("a-very-long-router-name-indeed", "s", 1), ("b", "s", 1)])
        box = placer.placement("a-very-long-router-name-indeed").box
        assert box.width > 150

    def test_box_height_fixed(self):
        placer = _plan([("r1", "s", 5), ("r2", "s", 50)])
        for placement in placer.placements():
            assert placement.box.height == BOX_HEIGHT


class TestDeterminism:
    def test_same_seed_same_layout(self):
        routers = [(f"r{i}", "s", 4) for i in range(10)]
        a = NodePlacer("m", seed=1)
        a.plan(list(routers), [])
        b = NodePlacer("m", seed=1)
        b.plan(list(routers), [])
        assert [p.box for p in a.placements()] == [p.box for p in b.placements()]

    def test_different_seed_different_layout(self):
        routers = [(f"r{i}", "s", 4) for i in range(10)]
        a = NodePlacer("m", seed=1)
        a.plan(list(routers), [])
        b = NodePlacer("m", seed=2)
        b.plan(list(routers), [])
        assert [p.box for p in a.placements()] != [p.box for p in b.placements()]
