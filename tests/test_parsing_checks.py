"""Tests for the whole-map sanity checks, including colour consistency."""

import pytest

from repro.constants import MapName
from repro.parsing.algorithm1 import extract_objects
from repro.parsing.checks import check_load_colors, run_sanity_checks
from repro.parsing.pipeline import parse_svg
from repro.svgdoc.reader import read_svg_tags


class TestColorConsistency:
    def test_rendered_map_consistent(self, apac_svg):
        extraction = extract_objects(read_svg_tags(apac_svg))
        assert check_load_colors(extraction) == 0

    def test_report_clean_on_valid_map(self, apac_parsed):
        assert apac_parsed.report.color_mismatches == 0

    def test_tampered_color_flagged(self, apac_svg, apac_reference):
        from repro.svgdoc.colors import WEATHERMAP_SCALE

        # Recolour one 40-55% arrow with the 85-100% red.  Arrows carry
        # the stroke attribute; legend swatches don't.
        green = WEATHERMAP_SCALE.color_for(45)
        red = WEATHERMAP_SCALE.color_for(95)
        needle = f'fill="{green}" stroke="#404040"'
        assert needle in apac_svg
        tampered = apac_svg.replace(
            needle, f'fill="{red}" stroke="#404040"', 1
        )
        parsed = parse_svg(tampered, MapName.ASIA_PACIFIC, apac_reference.timestamp)
        assert parsed.report.color_mismatches == 1
        assert not parsed.report.ok
        assert any("colour" in warning for warning in parsed.report.warnings)

    def test_color_check_optional(self, apac_svg):
        extraction = extract_objects(read_svg_tags(apac_svg))
        from repro.parsing.algorithm2 import attribute_objects

        links = attribute_objects(extraction)
        report = run_sanity_checks(extraction, links, check_colors=False)
        assert report.color_mismatches == 0

    def test_colorless_arrows_skipped(self):
        """Arrows without a fill attribute are not mismatches."""
        svg = (
            '<svg xmlns="http://www.w3.org/2000/svg" width="400" height="100">'
            '<g class="object"><rect x="0" y="20" width="40" height="26" '
            'fill="#fff"/><text>left-r</text></g>'
            '<g class="object"><rect x="300" y="20" width="40" height="26" '
            'fill="#fff"/><text>right-r</text></g>'
            '<polygon points="50,28 140,33 50,38"/>'
            '<polygon points="290,28 200,33 290,38"/>'
            '<text class="labellink" x="100" y="20">42%</text>'
            '<text class="labellink" x="240" y="20">9%</text>'
            '<rect class="node" x="47" y="29" width="8" height="8"/>'
            '<text class="node">#1</text>'
            '<rect class="node" x="285" y="29" width="8" height="8"/>'
            '<text class="node">#1</text>'
            "</svg>"
        )
        parsed = parse_svg(svg, MapName.EUROPE)
        assert parsed.report.color_mismatches == 0
        assert parsed.report.link_count == 1
