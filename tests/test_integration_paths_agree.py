"""End-to-end integration: the two data paths agree.

A downstream researcher reads YAML files; our benches read the simulator
directly.  Collect a short window through the full website → crawl →
process pipeline and assert that every analysis produces identical
results from the stored YAMLs and from simulator-direct snapshots.
"""

from datetime import datetime, timedelta, timezone

import pytest

from repro.analysis.imbalance import collect_imbalances
from repro.analysis.infrastructure import evolution_from_snapshots
from repro.analysis.loads import collect_load_samples
from repro.constants import MapName
from repro.dataset.corruption import CorruptionInjector
from repro.dataset.gaps import AvailabilityModel, CollectionSegment
from repro.dataset.loader import load_all
from repro.dataset.processor import process_map
from repro.dataset.store import DatasetStore
from repro.website.site import WeathermapWebsite
from repro.website.webcollector import PollingCollector

START = datetime(2022, 9, 10, 8, 0, tzinfo=timezone.utc)
END = START + timedelta(minutes=45)
MAP = MapName.ASIA_PACIFIC


@pytest.fixture(scope="module")
def pipeline_outputs(tmp_path_factory, simulator):
    """(YAML-loaded snapshots, simulator-direct snapshots)."""
    root = tmp_path_factory.mktemp("agree")
    store = DatasetStore(root)
    site = WeathermapWebsite(
        simulator, corruption=CorruptionInjector(seed=1, rate=0.0)
    )
    window = CollectionSegment(
        simulator.config.window_start, simulator.config.window_end
    )
    availability = AvailabilityModel(
        seed=1,
        segments={map_name: (window,) for map_name in MapName},
        europe_miss_rate=0.0,
        other_miss_rate_before_fix=0.0,
        other_miss_rate_after_fix=0.0,
        outage_day_rate=0.0,
    )
    collector = PollingCollector(site, store, availability=availability, backfill=False)
    collector.run(START, END, maps=[MAP])
    stats = process_map(store, MAP)
    assert stats.unprocessed == 0

    loaded = load_all(store, MAP)
    direct = [
        simulator.snapshot(MAP, START + timedelta(minutes=5 * i))
        for i in range(9)
    ]
    return loaded, direct


class TestPathsAgree:
    def test_snapshot_counts(self, pipeline_outputs):
        loaded, direct = pipeline_outputs
        assert len(loaded) == len(direct) == 9
        for a, b in zip(loaded, direct):
            assert a.timestamp == b.timestamp
            assert a.summary_counts() == b.summary_counts()

    def test_load_samples_identical(self, pipeline_outputs):
        loaded, direct = pipeline_outputs
        from_yaml = collect_load_samples(loaded)
        from_simulator = collect_load_samples(direct)
        assert sorted(from_yaml.all_loads) == sorted(from_simulator.all_loads)
        assert sorted(from_yaml.internal) == sorted(from_simulator.internal)
        assert sorted(from_yaml.external) == sorted(from_simulator.external)

    def test_imbalances_identical(self, pipeline_outputs):
        loaded, direct = pipeline_outputs
        from_yaml = collect_imbalances(loaded)
        from_simulator = collect_imbalances(direct)
        assert sorted(from_yaml.internal) == sorted(from_simulator.internal)
        assert sorted(from_yaml.external) == sorted(from_simulator.external)

    def test_evolution_identical(self, pipeline_outputs):
        loaded, direct = pipeline_outputs
        from_yaml = evolution_from_snapshots(loaded)
        from_simulator = evolution_from_snapshots(direct)
        assert from_yaml.routers.values == from_simulator.routers.values
        assert from_yaml.internal_links.values == from_simulator.internal_links.values
        assert from_yaml.external_links.values == from_simulator.external_links.values

    def test_node_sets_identical(self, pipeline_outputs):
        loaded, direct = pipeline_outputs
        for a, b in zip(loaded, direct):
            assert set(a.nodes) == set(b.nodes)
