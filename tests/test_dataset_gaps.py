"""Unit tests for the availability model (Figures 2 and 3 behaviours)."""

from datetime import datetime, timedelta, timezone

import pytest

from repro.constants import COLLECTION_FIX_DATE, MapName, SNAPSHOT_INTERVAL
from repro.dataset.gaps import AvailabilityModel, CollectionSegment
from repro.errors import DatasetError


def _utc(*args) -> datetime:
    return datetime(*args, tzinfo=timezone.utc)


MODEL = AvailabilityModel(seed=2022)


class TestSegments:
    def test_empty_segment_rejected(self):
        with pytest.raises(DatasetError):
            CollectionSegment(_utc(2021, 1, 1), _utc(2021, 1, 1))

    def test_europe_continuous(self):
        segments = MODEL.segments_for(MapName.EUROPE)
        assert len(segments) == 1

    def test_other_maps_split(self):
        # "collected between July and September 2020 and after October 2021"
        for map_name in (MapName.WORLD, MapName.NORTH_AMERICA, MapName.ASIA_PACIFIC):
            segments = MODEL.segments_for(map_name)
            assert len(segments) == 2
            assert segments[0].end < _utc(2020, 10, 1)
            assert segments[1].start > _utc(2021, 9, 30)

    def test_outside_segment_never_collected(self):
        # The 2021 hole in the World map's collection.
        assert not MODEL.is_collected(MapName.WORLD, _utc(2021, 3, 15, 12, 0))


class TestMissRates:
    def _collected_fraction(self, map_name, start, days=3) -> float:
        ticks = MODEL.ticks(map_name, start, start + timedelta(days=days))
        expected = days * 24 * 12
        return len(ticks) / expected

    def test_europe_high_availability(self):
        # ">99.8 % of the snapshots are available at the highest resolution"
        fraction = self._collected_fraction(MapName.EUROPE, _utc(2021, 2, 1), days=5)
        assert fraction > 0.99

    def test_other_maps_lossier_before_fix(self):
        fraction = self._collected_fraction(
            MapName.NORTH_AMERICA, _utc(2022, 2, 1), days=3
        )
        assert 0.85 < fraction < 0.99

    def test_fix_improves_collection(self):
        # "As less short gaps appear ... past this point, the fix improved
        # our data collection."
        before = self._collected_fraction(
            MapName.NORTH_AMERICA, COLLECTION_FIX_DATE - timedelta(days=10), days=5
        )
        after = self._collected_fraction(
            MapName.NORTH_AMERICA, COLLECTION_FIX_DATE + timedelta(days=10), days=5
        )
        assert after > before

    def test_deterministic(self):
        other = AvailabilityModel(seed=2022)
        when = _utc(2022, 3, 5, 10, 35)
        for map_name in MapName:
            assert other.is_collected(map_name, when) == MODEL.is_collected(
                map_name, when
            )

    def test_seed_changes_pattern(self):
        other = AvailabilityModel(seed=1)
        start = _utc(2022, 2, 1)
        mine = MODEL.ticks(MapName.NORTH_AMERICA, start, start + timedelta(days=2))
        theirs = other.ticks(MapName.NORTH_AMERICA, start, start + timedelta(days=2))
        assert mine != theirs


class TestTicks:
    def test_tick_cadence(self):
        start = _utc(2021, 6, 1)
        ticks = MODEL.ticks(MapName.EUROPE, start, start + timedelta(hours=2))
        assert len(ticks) >= 22  # 24 nominal, tiny loss allowed
        for a, b in zip(ticks, ticks[1:]):
            assert (b - a) >= SNAPSHOT_INTERVAL

    def test_custom_interval(self):
        start = _utc(2021, 6, 1)
        ticks = MODEL.ticks(
            MapName.EUROPE, start, start + timedelta(hours=2), interval=timedelta(hours=1)
        )
        assert len(ticks) == 2

    def test_unknown_map_raises(self):
        model = AvailabilityModel(segments={})
        with pytest.raises(DatasetError):
            model.is_collected(MapName.EUROPE, _utc(2021, 1, 1))
