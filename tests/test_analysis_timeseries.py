"""Unit tests for time series and step detection."""

from datetime import datetime, timedelta, timezone

import pytest

from repro.analysis.timeseries import TimeSeries, detect_steps
from repro.errors import ReproError

T0 = datetime(2022, 1, 1, tzinfo=timezone.utc)


def _series(values, step_hours=1) -> TimeSeries:
    times = tuple(T0 + timedelta(hours=step_hours * i) for i in range(len(values)))
    return TimeSeries(times=times, values=tuple(float(v) for v in values))


class TestTimeSeries:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ReproError):
            TimeSeries(times=(T0,), values=(1.0, 2.0))

    def test_non_increasing_rejected(self):
        with pytest.raises(ReproError):
            TimeSeries(times=(T0, T0), values=(1.0, 2.0))

    def test_from_pairs_sorts(self):
        series = TimeSeries.from_pairs(
            [(T0 + timedelta(hours=1), 2), (T0, 1)]
        )
        assert series.values == (1.0, 2.0)

    def test_value_at_step_interpolation(self):
        series = _series([10, 20, 30])
        assert series.value_at(T0 + timedelta(minutes=90)) == 20

    def test_value_before_start_raises(self):
        with pytest.raises(ReproError):
            _series([1, 2]).value_at(T0 - timedelta(hours=1))

    def test_window(self):
        series = _series([1, 2, 3, 4])
        sub = series.window(T0 + timedelta(hours=1), T0 + timedelta(hours=3))
        assert sub.values == (2.0, 3.0)

    def test_deltas(self):
        series = _series([1, 4, 2])
        assert [d for _, d in series.deltas()] == [3.0, -2.0]

    def test_as_arrays(self):
        times, values = _series([1, 2]).as_arrays()
        assert list(values) == [1.0, 2.0]
        assert times[1] - times[0] == 3600


class TestStepDetection:
    def test_clean_step_detected(self):
        series = _series([10] * 20 + [20] * 20)
        steps = detect_steps(series, min_delta=5)
        assert len(steps) == 1
        assert steps[0].delta == 10
        assert steps[0].ratio == 2.0

    def test_downward_step(self):
        series = _series([50] * 20 + [40] * 20)
        steps = detect_steps(series, min_delta=5)
        assert len(steps) == 1
        assert steps[0].delta == -10

    def test_flat_series_no_steps(self):
        assert detect_steps(_series([7] * 50), min_delta=1) == []

    def test_small_change_below_threshold(self):
        series = _series([10] * 20 + [10.5] * 20)
        assert detect_steps(series, min_delta=1) == []

    def test_short_series_no_steps(self):
        assert detect_steps(_series([1, 100]), min_delta=1) == []

    def test_nearby_detections_merged(self):
        # A ramp produces several candidate indices; min_gap merges them.
        series = _series([10] * 20 + [15] * 2 + [20] * 20)
        steps = detect_steps(series, min_delta=4, min_gap=timedelta(hours=12))
        assert len(steps) == 1

    def test_two_separated_steps(self):
        # min_gap must exceed the detection window span (5 samples x 6 h)
        # so the cluster of candidates around each step merges into one.
        series = _series([10] * 30 + [20] * 30 + [5] * 30, step_hours=6)
        steps = detect_steps(series, min_delta=4, min_gap=timedelta(days=2))
        assert len(steps) == 2
        assert steps[0].delta > 0 > steps[1].delta

    def test_noise_tolerance_via_median(self):
        import random

        rng = random.Random(5)
        values = [10 + rng.uniform(-1, 1) for _ in range(30)]
        values += [25 + rng.uniform(-1, 1) for _ in range(30)]
        steps = detect_steps(_series(values), min_delta=8)
        assert len(steps) == 1
