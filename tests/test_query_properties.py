"""Property tests: predicate pushdown is exactly the object path.

For arbitrary valid snapshot series, every scan the planner can run —
any combination of time window, node filter, link filter, and load
bounds — must return precisely the link occurrences a brute-force walk
over the original snapshots returns, in the same order, on **both**
column backends.  The scan plan (bisected row window + pushed-down
filters) is an optimisation, never a semantics change.
"""

from __future__ import annotations

import tempfile
from datetime import datetime, timedelta, timezone
from pathlib import Path

from hypothesis import given, settings, strategies as st

from repro.constants import MapName
from repro.dataset.index import SnapshotIndex
from repro.dataset.query import MappedIndex, ScanPredicate
from repro.dataset.store import DatasetStore
from repro.topology.model import Link, LinkEnd, MapSnapshot, Node

node_names = st.from_regex(r"[a-z]{3}-r[0-9]", fullmatch=True)
peering_names = st.from_regex(r"[A-Z]{3,6}", fullmatch=True)
labels = st.from_regex(r"#[0-9]", fullmatch=True)
loads = st.integers(min_value=0, max_value=100).map(float)

T0 = datetime(2022, 1, 1, tzinfo=timezone.utc)


@st.composite
def corpus(draw):
    """A short series of valid snapshots plus the names they may use."""
    map_name = draw(st.sampled_from(list(MapName)))
    slots = draw(st.lists(st.integers(0, 500), min_size=1, max_size=5, unique=True))
    routers = draw(st.lists(node_names, min_size=2, max_size=4, unique=True))
    peerings = draw(st.lists(peering_names, min_size=0, max_size=2, unique=True))
    pool = routers + peerings
    series = []
    for slot in sorted(slots):
        snapshot = MapSnapshot(
            map_name=map_name, timestamp=T0 + timedelta(minutes=5 * slot)
        )
        for name in pool:
            snapshot.add_node(Node.from_name(name))
        for _ in range(draw(st.integers(0, 5))):
            a = draw(st.sampled_from(routers))
            b = draw(st.sampled_from(pool))
            if a == b:
                continue
            snapshot.add_link(
                Link(
                    a=LinkEnd(a, draw(labels), draw(loads)),
                    b=LinkEnd(b, draw(labels), draw(loads)),
                )
            )
        series.append(snapshot)
    return series, pool


@st.composite
def predicate_for(draw, series, pool):
    """An arbitrary valid predicate over (roughly) the corpus's domain."""
    start = end = None
    if draw(st.booleans()):
        first, last = series[0].timestamp, series[-1].timestamp
        span = max(1, int((last - first).total_seconds() // 60))
        start = first + timedelta(minutes=draw(st.integers(-10, span)))
    if draw(st.booleans()):
        base = start if start is not None else series[0].timestamp
        end = base + timedelta(minutes=draw(st.integers(0, 500)))
    node = draw(st.none() | st.sampled_from(pool) | node_names)
    link = None
    if draw(st.booleans()):
        first_end = draw(st.sampled_from(pool))
        second_end = draw(st.sampled_from(pool) | node_names)
        if first_end != second_end:
            link = (first_end, second_end)
    min_load = draw(st.none() | st.integers(0, 100).map(float))
    max_load = None
    if draw(st.booleans()):
        floor = int(min_load) if min_load is not None else 0
        max_load = float(draw(st.integers(floor, 100)))
    return ScanPredicate(
        start=start, end=end, node=node, link=link,
        min_load=min_load, max_load=max_load,
    )


def oracle_matches(series, predicate: ScanPredicate):
    """The predicate's meaning, restated over the snapshot objects."""
    out = []
    for snapshot in series:
        if predicate.start is not None and snapshot.timestamp < predicate.start:
            continue
        if predicate.end is not None and snapshot.timestamp >= predicate.end:
            continue
        for link in snapshot.links:
            endpoints = (link.a.node, link.b.node)
            if predicate.node is not None and predicate.node not in endpoints:
                continue
            if predicate.link is not None and set(endpoints) != set(predicate.link):
                continue
            peak = max(link.a.load, link.b.load)
            if predicate.min_load is not None and peak < predicate.min_load:
                continue
            if predicate.max_load is not None and peak > predicate.max_load:
                continue
            out.append(
                (
                    snapshot.timestamp,
                    link.a.node, link.a.label, link.a.load,
                    link.b.node, link.b.label, link.b.load,
                )
            )
    return out


def scan_records(engine: MappedIndex, predicate: ScanPredicate):
    return [
        (r.timestamp, r.node_a, r.label_a, r.load_a, r.node_b, r.label_b, r.load_b)
        for r in engine.scan(predicate).records()
    ]


@st.composite
def corpus_and_predicate(draw):
    series, pool = draw(corpus())
    return series, draw(predicate_for(series, pool))


@given(corpus_and_predicate())
@settings(max_examples=60, deadline=None)
def test_scan_equals_object_path_on_both_backends(case):
    series, predicate = case
    index = SnapshotIndex(series[0].map_name)
    for snapshot in series:
        index.append_snapshot(snapshot, size=1, mtime_ns=1)
    expected = oracle_matches(series, predicate)
    with tempfile.TemporaryDirectory() as scratch:
        path = DatasetStore(scratch).index_path(series[0].map_name)
        index.save(path)
        with MappedIndex.open(path, backend="numpy") as vectorised:
            got_numpy = scan_records(vectorised, predicate)
        with MappedIndex.open(path, backend="memoryview") as stdlib:
            got_stdlib = scan_records(stdlib, predicate)
    assert got_numpy == expected
    assert got_stdlib == expected


@given(corpus())
@settings(max_examples=30, deadline=None)
def test_full_scan_is_every_link_occurrence(case):
    series, _ = case
    index = SnapshotIndex(series[0].map_name)
    for snapshot in series:
        index.append_snapshot(snapshot, size=1, mtime_ns=1)
    expected = oracle_matches(series, ScanPredicate())
    with tempfile.TemporaryDirectory() as scratch:
        path = DatasetStore(scratch).index_path(series[0].map_name)
        index.save(path)
        with MappedIndex.open(path) as engine:
            result = engine.scan()
            assert len(result) == sum(len(s.links) for s in series)
            assert scan_records(engine, ScanPredicate()) == expected
            assert [float(v) for v in result.directed_loads()] == [
                load
                for row in expected
                for load in (row[3], row[6])
            ]
