"""Unit tests for SVG tag classification (the Algorithm 1 dispatch)."""

import pytest

from repro.errors import MalformedSvgError
from repro.geometry import Point
from repro.svgdoc.elements import (
    ArrowElement,
    LabelBoxElement,
    LabelTextElement,
    LoadTextElement,
    ObjectElement,
    RawTag,
    classify_tag,
)


def _object_group(name: str) -> RawTag:
    return RawTag(
        tag="g",
        attributes={"class": "object object-router"},
        children=(
            RawTag(
                tag="rect",
                attributes={"x": "10", "y": "20", "width": "80", "height": "26"},
            ),
            RawTag(tag="text", attributes={}, text=name),
        ),
    )


class TestObjectClassification:
    def test_router_group(self):
        element = classify_tag(_object_group("fra-fr5-pb6-nc5"))
        assert isinstance(element, ObjectElement)
        assert element.name == "fra-fr5-pb6-nc5"
        assert element.is_router
        assert not element.is_peering

    def test_peering_group_uppercase(self):
        element = classify_tag(_object_group("ARELION"))
        assert element.is_peering

    def test_hyphenated_peering(self):
        element = classify_tag(_object_group("AMS-IX"))
        assert element.is_peering

    def test_box_coordinates_extracted(self):
        element = classify_tag(_object_group("x"))
        assert element.box.as_tuple() == (10, 20, 80, 26)

    def test_group_without_rect_rejected(self):
        tag = RawTag(
            tag="g",
            attributes={"class": "object"},
            children=(RawTag(tag="text", attributes={}, text="name"),),
        )
        with pytest.raises(MalformedSvgError):
            classify_tag(tag)

    def test_group_without_name_rejected(self):
        tag = RawTag(
            tag="g",
            attributes={"class": "object"},
            children=(
                RawTag(
                    tag="rect",
                    attributes={"x": "0", "y": "0", "width": "1", "height": "1"},
                ),
            ),
        )
        with pytest.raises(MalformedSvgError):
            classify_tag(tag)


class TestArrowClassification:
    def test_polygon_is_arrow(self):
        tag = RawTag(
            tag="polygon",
            attributes={"points": "0,0 10,0 5,8", "fill": "#ff0000"},
        )
        element = classify_tag(tag)
        assert isinstance(element, ArrowElement)
        assert element.fill == "#ff0000"
        assert len(element.points) == 3

    def test_base_midpoint_first_last(self):
        tag = RawTag(tag="polygon", attributes={"points": "0,0 5,5 10,0"})
        element = classify_tag(tag)
        assert element.base_midpoint == Point(5, 0)

    def test_tip_farthest_from_base(self):
        tag = RawTag(tag="polygon", attributes={"points": "0,0 5,50 10,0"})
        assert classify_tag(tag).tip == Point(5, 50)

    def test_malformed_points_rejected(self):
        tag = RawTag(tag="polygon", attributes={"points": "0,0 banana 10,0"})
        with pytest.raises(MalformedSvgError):
            classify_tag(tag)

    def test_odd_coordinate_count_rejected(self):
        tag = RawTag(tag="polygon", attributes={"points": "0 0 10 0 5"})
        with pytest.raises(MalformedSvgError):
            classify_tag(tag)

    def test_too_few_points_rejected(self):
        tag = RawTag(tag="polygon", attributes={"points": "0,0 1,1"})
        with pytest.raises(MalformedSvgError):
            classify_tag(tag)


class TestLoadClassification:
    def test_labellink_text(self):
        tag = RawTag(
            tag="text",
            attributes={"class": "labellink", "x": "5", "y": "6"},
            text="42%",
        )
        element = classify_tag(tag)
        assert isinstance(element, LoadTextElement)
        assert element.load == 42.0
        assert element.anchor == Point(5, 6)

    def test_fractional_load(self):
        tag = RawTag(
            tag="text",
            attributes={"class": "labellink", "x": "0", "y": "0"},
            text="3.5%",
        )
        assert classify_tag(tag).load == 3.5

    def test_load_without_percent_rejected(self):
        tag = RawTag(
            tag="text",
            attributes={"class": "labellink", "x": "0", "y": "0"},
            text="42",
        )
        with pytest.raises(MalformedSvgError):
            classify_tag(tag).load

    def test_labellink_on_rect_rejected(self):
        tag = RawTag(
            tag="rect",
            attributes={"class": "labellink", "x": "0", "y": "0"},
        )
        with pytest.raises(MalformedSvgError):
            classify_tag(tag)


class TestLabelClassification:
    def test_node_rect_is_label_box(self):
        tag = RawTag(
            tag="rect",
            attributes={
                "class": "node", "x": "1", "y": "2", "width": "10", "height": "8",
            },
        )
        assert isinstance(classify_tag(tag), LabelBoxElement)

    def test_node_text_is_label_text(self):
        tag = RawTag(tag="text", attributes={"class": "node"}, text="#1")
        element = classify_tag(tag)
        assert isinstance(element, LabelTextElement)
        assert element.text == "#1"

    def test_node_on_other_tag_rejected(self):
        tag = RawTag(tag="circle", attributes={"class": "node"})
        with pytest.raises(MalformedSvgError):
            classify_tag(tag)


class TestIgnoredTags:
    def test_background_ignored(self):
        tag = RawTag(tag="rect", attributes={"class": "background"})
        assert classify_tag(tag) is None

    def test_legend_ignored(self):
        tag = RawTag(tag="text", attributes={"class": "legend"}, text="0-1%")
        assert classify_tag(tag) is None

    def test_classless_text_ignored(self):
        assert classify_tag(RawTag(tag="text", attributes={}, text="x")) is None


class TestMalformedAttributes:
    def test_float_attribute_malformed_value(self):
        tag = RawTag(tag="rect", attributes={"x": "12..34"})
        with pytest.raises(MalformedSvgError):
            tag.float_attribute("x")

    def test_float_attribute_missing(self):
        tag = RawTag(tag="rect", attributes={})
        with pytest.raises(MalformedSvgError):
            tag.float_attribute("x")
