"""Tests for per-site growth attribution and core path diversity."""

from datetime import datetime, timedelta, timezone

import pytest

from repro.analysis.diversity import core_path_diversity, edge_disjoint_paths
from repro.analysis.sites import (
    fastest_growing_sites,
    site_census,
    site_growth,
    site_of,
)
from repro.constants import MapName, REFERENCE_DATE
from repro.topology.model import Link, LinkEnd, MapSnapshot, Node

T0 = datetime(2022, 1, 1, tzinfo=timezone.utc)


def _snapshot(when, nodes, links):
    snapshot = MapSnapshot(map_name=MapName.EUROPE, timestamp=when)
    for name in nodes:
        snapshot.add_node(Node.from_name(name))
    for a, b, label in links:
        snapshot.add_link(Link(LinkEnd(a, label, 10), LinkEnd(b, label, 10)))
    return snapshot


class TestSiteExtraction:
    def test_site_of(self):
        assert site_of("fra-fr5-pb6-nc5") == "fra"
        assert site_of("rbx-rb4-sdtor7-nc5") == "rbx"

    def test_census(self):
        snapshot = _snapshot(
            T0, ["fra-r1", "fra-r2", "lon-r1", "PEER"], []
        )
        assert site_census(snapshot) == {"fra": 2, "lon": 1}


class TestSiteGrowth:
    def test_growth_attributed(self):
        before = _snapshot(T0, ["fra-r1", "lon-r1"], [("fra-r1", "lon-r1", "#1")])
        after = _snapshot(
            T0 + timedelta(days=30),
            ["fra-r1", "fra-r2", "lon-r1"],
            [
                ("fra-r1", "lon-r1", "#1"),
                ("fra-r1", "fra-r2", "#1"),
                ("fra-r1", "fra-r2", "#2"),
            ],
        )
        growth = {item.site: item for item in site_growth(before, after)}
        assert growth["fra"].routers_added == 1
        assert growth["fra"].links_added == 4  # two links x two fra ends
        assert growth["lon"].routers_added == 0
        assert growth["lon"].link_delta == 0

    def test_removal_attributed(self):
        before = _snapshot(
            T0, ["fra-r1", "lon-r1", "lon-r2"],
            [("fra-r1", "lon-r1", "#1"), ("lon-r1", "lon-r2", "#1")],
        )
        after = _snapshot(
            T0 + timedelta(days=1), ["fra-r1", "lon-r1"], [("fra-r1", "lon-r1", "#1")]
        )
        growth = {item.site: item for item in site_growth(before, after)}
        assert growth["lon"].routers_removed == 1
        assert growth["lon"].link_delta == -2

    def test_fastest_growing_on_simulator(self, simulator):
        first = simulator.snapshot(MapName.EUROPE, simulator.config.window_start)
        last = simulator.snapshot(MapName.EUROPE, REFERENCE_DATE)
        top = fastest_growing_sites([first, last], top=3)
        assert len(top) == 3
        assert top[0].link_delta >= top[1].link_delta >= top[2].link_delta
        assert top[0].link_delta > 0

    def test_too_few_snapshots(self):
        assert fastest_growing_sites([_snapshot(T0, ["fra-r1", "lon-r1"], [])]) == []


class TestPathDiversity:
    def test_parallel_links_counted(self):
        snapshot = _snapshot(
            T0,
            ["a-r1", "b-r1"],
            [("a-r1", "b-r1", "#1"), ("a-r1", "b-r1", "#2"), ("a-r1", "b-r1", "#3")],
        )
        assert edge_disjoint_paths(snapshot, "a-r1", "b-r1") == 3

    def test_disconnected_pair(self):
        snapshot = _snapshot(T0, ["a-r1", "b-r1", "c-r1"], [("a-r1", "b-r1", "#1")])
        assert edge_disjoint_paths(snapshot, "a-r1", "c-r1") == 0

    def test_peerings_excluded_from_paths(self):
        # A path through a peering must not count as internal diversity.
        snapshot = _snapshot(
            T0,
            ["a-r1", "b-r1", "IX"],
            [("a-r1", "b-r1", "#1"), ("a-r1", "IX", "#1"), ("IX", "b-r1", "#1")],
        )
        assert edge_disjoint_paths(snapshot, "a-r1", "b-r1") == 1

    def test_missing_router(self):
        snapshot = _snapshot(T0, ["a-r1", "b-r1"], [("a-r1", "b-r1", "#1")])
        assert edge_disjoint_paths(snapshot, "a-r1", "ghost") == 0

    def test_core_diversity_on_simulator(self, europe_reference):
        report = core_path_diversity(europe_reference, max_pairs=15)
        assert report.pairs_sampled == 15
        # The paper's claim: core routers see real path diversity.
        assert report.fraction_multipath == 1.0
        assert report.mean_disjoint_paths > 5

    def test_empty_core(self):
        snapshot = _snapshot(T0, ["a-r1", "b-r1"], [("a-r1", "b-r1", "#1")])
        report = core_path_diversity(snapshot, min_degree=20)
        assert report.pairs_sampled == 0
