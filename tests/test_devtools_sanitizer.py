"""Tests for the runtime lock sanitizer (repro.devtools.sanitizer).

The detectors are driven on private :class:`LockSanitizer` instances —
a genuine two-thread lock-order inversion, same-lock re-entry raising
:class:`~repro.errors.ConcurrencyError` instead of deadlocking, legal
RLock nesting, the long-held warning, and the nonblocking-probe
exemption that keeps ``threading.Condition`` working.  The global
install path is exercised separately: repro-package constructors get
instrumented locks, everyone else keeps the real thing, and a real
server-cache/registry workload runs clean under instrumentation.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.devtools.sanitizer import (
    LockSanitizer,
    SanitizerConfig,
    active_sanitizer,
    install_sanitizer,
    is_installed,
    measure_overhead,
    uninstall_sanitizer,
)
from repro.errors import ConcurrencyError


def run_thread(target) -> None:
    """Run ``target`` on a worker thread to completion, surfacing errors."""
    failures: list[BaseException] = []

    def guarded() -> None:
        try:
            target()
        except BaseException as exc:  # noqa: BLE001 - reraised below
            failures.append(exc)

    worker = threading.Thread(target=guarded)
    worker.start()
    worker.join(timeout=10)
    assert not worker.is_alive(), "worker wedged"
    if failures:
        raise failures[0]


class TestInversionDetector:
    def test_two_thread_lock_order_inversion_caught(self):
        sanitizer = LockSanitizer()
        a = sanitizer.wrap("A")
        b = sanitizer.wrap("B")

        def forward() -> None:
            with a:
                with b:
                    pass

        def backward() -> None:
            with b:
                with a:
                    pass

        run_thread(forward)
        run_thread(backward)
        fatal = sanitizer.report.fatal()
        assert len(fatal) == 1
        assert fatal[0].kind == "lock-order-inversion"
        assert "A" in fatal[0].message and "B" in fatal[0].message
        assert "opposite order" in fatal[0].message

    def test_consistent_order_is_clean(self):
        sanitizer = LockSanitizer()
        a = sanitizer.wrap("A")
        b = sanitizer.wrap("B")

        def forward() -> None:
            with a:
                with b:
                    pass

        run_thread(forward)
        run_thread(forward)
        with a:
            with b:
                pass
        assert sanitizer.report.findings() == []

    def test_render_names_the_verdict(self):
        sanitizer = LockSanitizer()
        assert "clean" in sanitizer.report.render()


class TestReentryDetector:
    def test_reentry_raises_instead_of_deadlocking(self):
        sanitizer = LockSanitizer()
        lock = sanitizer.wrap("L")
        lock.acquire()
        try:
            with pytest.raises(ConcurrencyError, match="re-acquires"):
                lock.acquire()
        finally:
            lock.release()
        assert [f.kind for f in sanitizer.report.fatal()] == ["lock-reentry"]

    def test_rlock_nesting_is_legal(self):
        sanitizer = LockSanitizer()
        rlock = sanitizer.wrap("R", reentrant=True)
        with rlock:
            with rlock:
                assert sanitizer.held_count() == 1
        assert sanitizer.held_count() == 0
        assert sanitizer.report.findings() == []

    def test_nonblocking_probe_on_self_held_lock_is_exempt(self):
        # threading.Condition._is_owned probes a self-held lock with
        # acquire(False); that must neither raise nor record anything.
        sanitizer = LockSanitizer()
        lock = sanitizer.wrap("L")
        lock.acquire()
        try:
            assert lock.acquire(blocking=False) is False
        finally:
            lock.release()
        assert sanitizer.report.findings() == []

    def test_condition_over_instrumented_lock_works(self):
        sanitizer = LockSanitizer()
        condition = threading.Condition(sanitizer.wrap("C"))  # type: ignore[arg-type]
        with condition:
            condition.notify_all()
        assert sanitizer.report.fatal() == []


class TestLongHoldDetector:
    def test_slow_hold_warns_but_does_not_fail(self):
        sanitizer = LockSanitizer(SanitizerConfig(long_hold_ms=1.0))
        lock = sanitizer.wrap("slow")
        with lock:
            time.sleep(0.01)
        (finding,) = sanitizer.report.findings()
        assert finding.kind == "long-held-lock"
        assert not finding.fatal
        assert sanitizer.report.fatal() == []

    def test_fast_hold_is_silent(self):
        sanitizer = LockSanitizer(SanitizerConfig(long_hold_ms=1000.0))
        with sanitizer.wrap("fast"):
            pass
        assert sanitizer.report.findings() == []

    def test_config_rejects_nonpositive_threshold(self):
        with pytest.raises(ConcurrencyError):
            SanitizerConfig(long_hold_ms=0)


class TestGlobalInstall:
    def test_scopes_instrumentation_to_repro_modules(self):
        sanitizer = install_sanitizer()
        try:
            assert is_installed()
            assert active_sanitizer() is sanitizer
            assert install_sanitizer() is sanitizer  # idempotent

            # This test module is not repro.*: the factory hands back a
            # real lock.
            raw = threading.Lock()
            assert not hasattr(raw, "seq")

            # A constructor whose calling module is repro.* gets wrapped.
            namespace = {"__name__": "repro.fake_module"}
            exec(
                "import threading\n"
                "def make():\n"
                "    return threading.Lock()\n",
                namespace,
            )
            wrapped = namespace["make"]()
            assert hasattr(wrapped, "seq")
            with wrapped:
                pass
        finally:
            uninstall_sanitizer()
        assert not is_installed()
        assert threading.Lock is not None and not hasattr(
            threading.Lock(), "seq"
        )

    def test_real_server_state_runs_clean_under_instrumentation(self):
        # The integration the tsan pytest lane relies on: real repro
        # objects built while installed carry instrumented locks, and a
        # concurrent cache + registry workload reports nothing.
        sanitizer = install_sanitizer()
        sanitizer.report.clear()
        try:
            from repro.server.cache import ResponseCache
            from repro.telemetry.registry import MetricsRegistry

            cache = ResponseCache(capacity=32)
            registry = MetricsRegistry()

            def hammer() -> None:
                for index in range(200):
                    key = ("k", index % 8)
                    cache.put(key, b"body", "application/json")
                    cache.get("probe", key)
                    registry.counter("repro_probe_total", "probe").inc(1)
                    len(cache)

            workers = [threading.Thread(target=hammer) for _ in range(4)]
            for worker in workers:
                worker.start()
            for worker in workers:
                worker.join(timeout=30)
            assert sanitizer.report.fatal() == []
        finally:
            uninstall_sanitizer()


class TestOverheadProbe:
    def test_measure_overhead_reports_sane_numbers(self):
        numbers = measure_overhead(iterations=500)
        assert numbers["iterations"] == 500.0
        assert numbers["raw_ns_per_pair"] > 0
        assert numbers["instrumented_ns_per_pair"] > 0
        assert numbers["overhead_x"] > 0

    def test_measure_overhead_rejects_nonpositive(self):
        with pytest.raises(ConcurrencyError):
            measure_overhead(iterations=0)
