"""Integration tests: the full SVG → snapshot extraction pipeline.

The decisive test of the reproduction: a snapshot rendered by our
weathermap renderer and pushed through Algorithms 1+2 must come back
*identical* — same nodes, same links, same labels, same loads.
"""

from collections import Counter

import pytest

from repro.constants import MapName, REFERENCE_DATE
from repro.errors import IsolatedRouterError, MalformedSvgError
from repro.layout.renderer import MapRenderer
from repro.parsing.checks import run_sanity_checks
from repro.parsing.pipeline import parse_svg


def _link_signatures(snapshot) -> Counter:
    return Counter(
        tuple(
            sorted(
                (
                    (link.a.node, link.a.label, link.a.load),
                    (link.b.node, link.b.label, link.b.load),
                )
            )
        )
        for link in snapshot.links
    )


class TestRoundTrip:
    def test_apac_counts(self, apac_reference, apac_parsed):
        assert apac_parsed.snapshot.summary_counts() == apac_reference.summary_counts()

    def test_apac_exact_links(self, apac_reference, apac_parsed):
        assert _link_signatures(apac_parsed.snapshot) == _link_signatures(apac_reference)

    def test_apac_node_sets(self, apac_reference, apac_parsed):
        assert set(apac_parsed.snapshot.nodes) == set(apac_reference.nodes)

    def test_report_clean(self, apac_parsed):
        assert apac_parsed.report.ok
        assert apac_parsed.report.unused_labels == 0

    def test_timestamp_stamped(self, apac_parsed, apac_reference):
        assert apac_parsed.snapshot.timestamp == apac_reference.timestamp

    @pytest.mark.parametrize(
        "map_name", [MapName.EUROPE, MapName.WORLD, MapName.NORTH_AMERICA]
    )
    def test_all_maps_round_trip(self, simulator, map_name):
        snapshot = simulator.snapshot(map_name, REFERENCE_DATE)
        svg = MapRenderer().render(snapshot)
        parsed = parse_svg(svg, map_name, snapshot.timestamp)
        assert _link_signatures(parsed.snapshot) == _link_signatures(snapshot)

    def test_mid_window_round_trip(self, simulator):
        from datetime import datetime, timezone

        when = datetime(2021, 3, 17, 8, 45, tzinfo=timezone.utc)
        snapshot = simulator.snapshot(MapName.ASIA_PACIFIC, when)
        svg = MapRenderer().render(snapshot)
        parsed = parse_svg(svg, MapName.ASIA_PACIFIC, when)
        assert _link_signatures(parsed.snapshot) == _link_signatures(snapshot)


class TestFailureModes:
    def test_not_xml(self):
        with pytest.raises(MalformedSvgError):
            parse_svg("this is not xml at all")

    def test_truncated_document(self, apac_svg):
        with pytest.raises(MalformedSvgError):
            parse_svg(apac_svg[: len(apac_svg) // 2])

    def test_mangled_attribute(self, apac_svg):
        import re

        # Mangle an attribute on a tag the extraction actually parses (a
        # link-label box), like the malformed values the paper observed.
        corrupted = re.sub(
            r'class="node" x="[\d.]+"', 'class="node" x="12..34"', apac_svg, count=1
        )
        assert corrupted != apac_svg
        with pytest.raises(MalformedSvgError):
            parse_svg(corrupted)

    def test_missing_objects(self, apac_svg):
        import re

        from repro.errors import AttributionError

        corrupted = re.sub(
            r'<g class="object[^"]*">.*?</g>', "", apac_svg, flags=re.DOTALL
        )
        with pytest.raises(AttributionError):
            parse_svg(corrupted)


class TestSanityChecks:
    def test_isolated_router_strict(self, apac_parsed):
        from repro.svgdoc.elements import ObjectElement
        from repro.geometry import Rect

        extraction = apac_parsed.extraction
        extraction.routers.append(
            ObjectElement(name="ghost-router", box=Rect(1, 1, 10, 10))
        )
        links = []  # nothing connects ghost-router
        with pytest.raises(IsolatedRouterError):
            run_sanity_checks(extraction, links, strict=True)
        extraction.routers.pop()

    def test_isolated_router_lenient(self, apac_parsed):
        from repro.svgdoc.elements import ObjectElement
        from repro.geometry import Rect

        extraction = apac_parsed.extraction
        extraction.routers.append(
            ObjectElement(name="ghost-router", box=Rect(1, 1, 10, 10))
        )
        report = run_sanity_checks(extraction, [], strict=False)
        extraction.routers.pop()
        assert "ghost-router" in report.isolated_routers
        assert not report.ok

    def test_peerings_may_be_linkless(self):
        """Only OVH *routers* must have a link; peerings are exempt."""
        from repro.geometry import Rect
        from repro.parsing.algorithm1 import ExtractionResult
        from repro.svgdoc.elements import ObjectElement

        extraction = ExtractionResult(
            routers=[ObjectElement(name="SOMEPEER", box=Rect(0, 0, 10, 10))]
        )
        report = run_sanity_checks(extraction, [], strict=True)
        assert report.peering_count == 1


class TestFileParsing:
    """File- and bytes-based parsing must accept the same options."""

    def test_options_forwarded(self, tmp_path, apac_svg, apac_reference):
        from repro.parsing.pipeline import parse_svg_file

        path = tmp_path / "apac.svg"
        path.write_text(apac_svg, encoding="utf-8")
        from_file = parse_svg_file(
            path,
            MapName.ASIA_PACIFIC,
            apac_reference.timestamp,
            label_distance_threshold=123.0,
            accelerated=False,
        )
        from_bytes = parse_svg(
            apac_svg.encode("utf-8"),
            MapName.ASIA_PACIFIC,
            apac_reference.timestamp,
            label_distance_threshold=123.0,
            accelerated=False,
        )
        assert _link_signatures(from_file.snapshot) == _link_signatures(
            from_bytes.snapshot
        )
        assert from_file.snapshot.summary_counts() == from_bytes.snapshot.summary_counts()

    def test_every_option_reaches_parse_svg(self, tmp_path, apac_svg, monkeypatch):
        """No option may be silently dropped on the file path."""
        from repro.parsing import pipeline

        captured = {}

        def recording(source, **kwargs):
            captured.update(kwargs)
            return "sentinel"

        monkeypatch.setattr(pipeline, "parse_svg", recording)
        path = tmp_path / "apac.svg"
        path.write_text(apac_svg, encoding="utf-8")
        with pytest.warns(DeprecationWarning):
            result = pipeline.parse_svg_file(
                path,
                MapName.ASIA_PACIFIC,
                strict=False,
                label_distance_threshold=42.0,
                accelerated=False,
            )
        assert result == "sentinel"
        assert captured["strict"] is False
        assert captured["map_name"] == MapName.ASIA_PACIFIC
        options = captured["options"]
        assert options.label_distance_threshold == 42.0
        assert options.accelerated is False
        assert options.fast_path is True
