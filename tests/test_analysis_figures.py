"""Tests for the figure-level analyses (Figures 4, 5) on simulator data.

These run the same computations as the benchmark harness, on smaller
windows, and assert the paper's qualitative claims.
"""

from datetime import datetime, timedelta, timezone

import pytest

from repro.analysis.degrees import degree_ccdf, degree_statistics
from repro.analysis.imbalance import collect_imbalances, imbalance_cdfs, imbalance_values
from repro.analysis.infrastructure import (
    evolution_from_snapshots,
    infrastructure_evolution,
    structural_events,
)
from repro.analysis.loads import collect_load_samples, hour_of_day_bands, load_cdfs
from repro.constants import COLLECTION_START, MapName, REFERENCE_DATE


def _utc(*args) -> datetime:
    return datetime(*args, tzinfo=timezone.utc)


@pytest.fixture(scope="module")
def day_snapshots(simulator):
    """One simulated day of Europe snapshots, hourly."""
    base = _utc(2022, 4, 6)
    return [
        simulator.snapshot(MapName.EUROPE, base + timedelta(hours=h))
        for h in range(24)
    ]


class TestInfrastructureEvolution:
    def test_series_cover_window(self, simulator):
        evolution = infrastructure_evolution(
            simulator, MapName.EUROPE, interval=timedelta(days=7)
        )
        assert evolution.routers.times[0] == COLLECTION_START
        assert len(evolution.routers) == len(evolution.internal_links)

    def test_reference_values(self, simulator):
        evolution = infrastructure_evolution(
            simulator, MapName.EUROPE, interval=timedelta(days=7)
        )
        assert evolution.routers.values[-1] == 113
        assert evolution.internal_links.values[-1] == 744
        assert evolution.external_links.values[-1] == 265

    def test_make_before_break_classified(self, simulator):
        evolution = infrastructure_evolution(
            simulator,
            MapName.EUROPE,
            start=_utc(2020, 7, 1),
            end=_utc(2020, 12, 1),
            interval=timedelta(days=1),
        )
        events = structural_events(evolution.routers, min_delta=2.5)
        kinds = [event.kind for event in events]
        assert "make-before-break" in kinds

    def test_from_snapshots_matches_fast_path(self, simulator, day_snapshots):
        from_snaps = evolution_from_snapshots(day_snapshots)
        direct = simulator.counts(MapName.EUROPE, day_snapshots[0].timestamp)
        assert from_snaps.routers.values[0] == direct[0]
        assert from_snaps.internal_links.values[0] == direct[1]


class TestDegreeAnalysis:
    def test_ccdf_shape(self, europe_reference):
        degrees, fractions = degree_ccdf(europe_reference)
        assert degrees[0] >= 1
        assert fractions[-1] == 0.0

    def test_paper_claims(self, europe_reference):
        stats = degree_statistics(europe_reference)
        assert stats.count == 113
        assert stats.fraction_single_link > 0.20
        assert stats.fraction_over_20 > 0.20
        assert stats.max > 20

    def test_empty_snapshot(self):
        from repro.topology.model import MapSnapshot

        empty = MapSnapshot(map_name=MapName.EUROPE, timestamp=_utc(2022, 1, 1))
        stats = degree_statistics(empty)
        assert stats.count == 0


class TestLoadAnalysis:
    def test_sample_counts(self, day_snapshots):
        samples = collect_load_samples(day_snapshots)
        expected = sum(2 * len(s.links) for s in day_snapshots)
        assert len(samples) == expected
        assert len(samples.internal) + len(samples.external) == expected

    def test_diurnal_cycle(self, day_snapshots):
        # Median "reaching its lowest point between 2 and 4 a.m. and its
        # highest point between 7 and 9 p.m."
        samples = collect_load_samples(day_snapshots)
        bands = hour_of_day_bands(samples)
        assert bands.median_trough_hour() in (1, 2, 3, 4, 5)
        assert bands.median_peak_hour() in (18, 19, 20, 21)

    def test_variance_grows_with_load(self, day_snapshots):
        samples = collect_load_samples(day_snapshots)
        bands = hour_of_day_bands(samples)
        assert bands.spread_at(bands.median_peak_hour()) > bands.spread_at(
            bands.median_trough_hour()
        )

    def test_external_lower_than_internal(self, day_snapshots):
        import numpy

        samples = collect_load_samples(day_snapshots)
        assert numpy.mean(samples.external) < numpy.mean(samples.internal)

    def test_load_cdf_claims(self, day_snapshots):
        # "75 % of the loads are below 33 % and very few loads exceed 60 %."
        from repro.analysis.stats import fraction_at_most

        samples = collect_load_samples(day_snapshots)
        assert 0.60 < fraction_at_most(samples.all_loads, 33) < 0.92
        assert fraction_at_most(samples.all_loads, 60) > 0.93

    def test_cdfs_well_formed(self, day_snapshots):
        samples = collect_load_samples(day_snapshots)
        cdfs = load_cdfs(samples)
        assert set(cdfs) == {"all", "internal", "external"}
        for xs, fractions in cdfs.values():
            assert fractions[-1] == 1.0


class TestImbalanceAnalysis:
    def test_imbalance_claims(self, day_snapshots):
        # ">60 % of the imbalance values are lower or equal to 1 %" and
        # external groups ">90 % ... lower or equal to 2 %".
        result = collect_imbalances(day_snapshots)
        assert result.fraction_within(1.0, "all") > 0.60
        assert result.fraction_within(2.0, "external") > 0.90

    def test_external_tighter_than_internal(self, day_snapshots):
        result = collect_imbalances(day_snapshots)
        assert result.fraction_within(1.0, "external") >= result.fraction_within(
            1.0, "internal"
        )

    def test_filtering_applied(self, europe_reference):
        result = imbalance_values(europe_reference)
        # Every reported imbalance comes from a >=2-link active group.
        assert all(value >= 0 for value in result.all_values)

    def test_cdfs_keys(self, europe_reference):
        cdfs = imbalance_cdfs(imbalance_values(europe_reference))
        assert set(cdfs) == {"internal", "external", "all"}

    def test_skewed_tail_exists(self, day_snapshots):
        # The persistent-skew minority produces a visible tail.
        result = collect_imbalances(day_snapshots)
        assert max(result.all_values) > 3


class TestWeeklyContrast:
    def test_weekends_quieter(self, simulator):
        from repro.analysis.loads import collect_load_samples, weekly_contrast

        # Wed 2022-04-06 vs Sat 2022-04-09, same hours of day.
        wednesday = _utc(2022, 4, 6)
        saturday = _utc(2022, 4, 9)
        snapshots = []
        for day in (wednesday, saturday):
            for hour in (4, 10, 16, 22):
                snapshots.append(
                    simulator.snapshot(MapName.EUROPE, day + timedelta(hours=hour))
                )
        contrast = weekly_contrast(collect_load_samples(snapshots))
        assert contrast.weekday_samples > 0 and contrast.weekend_samples > 0
        assert contrast.weekend_ratio < 1.0

    def test_empty_sides(self):
        from repro.analysis.loads import LoadSamples, weekly_contrast

        contrast = weekly_contrast(LoadSamples())
        assert contrast.weekday_mean == 0.0
        assert contrast.weekend_ratio == 0.0
