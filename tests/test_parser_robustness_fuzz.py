"""Robustness fuzzing: the parser never crashes with untyped exceptions.

The bulk processor's contract is that *any* input — however mangled —
either parses or raises an exception from the repro error taxonomy, so
Table 2's accounting can always classify it.  Random mutations of a valid
document must never escape that contract.
"""

from hypothesis import given, settings, strategies as st

from repro.constants import MapName
from repro.errors import ReproError
from repro.parsing.pipeline import parse_svg
from repro.yamlio.serialize import snapshot_to_yaml


def _mutate(document: str, operations) -> str:
    """Apply a list of (kind, position, payload) mutations."""
    data = document
    for kind, position, payload in operations:
        index = position % max(1, len(data))
        if kind == "delete":
            span = payload % 50 + 1
            data = data[:index] + data[index + span:]
        elif kind == "insert":
            junk = chr(32 + payload % 94) * (payload % 9 + 1)
            data = data[:index] + junk + data[index:]
        elif kind == "truncate":
            data = data[:index]
        elif kind == "duplicate":
            span = payload % 120 + 1
            data = data[:index] + data[index:index + span] + data[index:]
    return data


mutations = st.lists(
    st.tuples(
        st.sampled_from(("delete", "insert", "truncate", "duplicate")),
        st.integers(min_value=0, max_value=10**9),
        st.integers(min_value=0, max_value=10**9),
    ),
    min_size=1,
    max_size=6,
)


@given(mutations)
@settings(max_examples=150, deadline=None)
def test_mutated_documents_fail_typed_or_parse(apac_svg, operations):
    mutated = _mutate(apac_svg, operations)
    try:
        parsed = parse_svg(mutated, MapName.ASIA_PACIFIC, strict=False)
    except ReproError:
        return  # typed failure: countable by the processor
    # Or it still parses — then the result must be structurally sound.
    for link in parsed.snapshot.links:
        assert 0 <= link.a.load <= 100
        assert 0 <= link.b.load <= 100
        assert link.a.node != link.b.node


@given(st.binary(min_size=0, max_size=400))
@settings(max_examples=100, deadline=None)
def test_arbitrary_bytes_fail_typed(data):
    try:
        parse_svg(data, MapName.EUROPE, strict=False)
    except ReproError:
        pass


def _observed_outcome(document, fast_path: bool):
    """What a caller can see from one parse: the YAML or the typed error."""
    try:
        parsed = parse_svg(
            document, MapName.ASIA_PACIFIC, strict=False, fast_path=fast_path
        )
    except ReproError as exc:
        return ("error", type(exc), str(exc))
    return ("ok", snapshot_to_yaml(parsed.snapshot))


@given(mutations)
@settings(max_examples=150, deadline=None)
def test_mutated_documents_fast_and_faithful_agree(apac_svg, operations):
    """Differential fuzzing of the two parse paths.

    On *any* mutated document the streaming fast path must be
    indistinguishable from the faithful DOM pipeline: either both produce
    byte-identical YAML, or both raise the same exception type with the
    same message.  (The fast path guarantees this by falling back to the
    DOM path on anything outside the expected shape, so the property holds
    even for inputs the stream machine refuses.)
    """
    mutated = _mutate(apac_svg, operations)
    assert _observed_outcome(mutated, True) == _observed_outcome(mutated, False)


@given(st.integers(min_value=0, max_value=10**9))
@settings(max_examples=60, deadline=None)
def test_truncated_documents_fast_and_faithful_agree(apac_svg, cut):
    """Every truncation point yields identical outcomes on both paths."""
    truncated = apac_svg[: cut % (len(apac_svg) + 1)]
    assert _observed_outcome(truncated, True) == _observed_outcome(
        truncated, False
    )
