"""Tests for the site-to-site volume matrix."""

from datetime import datetime, timezone

import pytest

from repro.analysis.matrix import site_volume_matrix
from repro.constants import MapName, REFERENCE_DATE
from repro.peeringdb.feed import SyntheticPeeringDB
from repro.topology.model import Link, LinkEnd, MapSnapshot, Node

NOW = datetime(2022, 9, 12, tzinfo=timezone.utc)


def _snapshot():
    snapshot = MapSnapshot(map_name=MapName.EUROPE, timestamp=NOW)
    for name in ("fra-r1", "fra-r2", "lon-r1", "IXP"):
        snapshot.add_node(Node.from_name(name))
    # fra→lon at 50 % and 30 % on two parallel 100G links.
    snapshot.add_link(Link(LinkEnd("fra-r1", "#1", 50), LinkEnd("lon-r1", "#1", 20)))
    snapshot.add_link(Link(LinkEnd("fra-r1", "#2", 30), LinkEnd("lon-r1", "#2", 10)))
    # intra-site link: must not appear in the matrix.
    snapshot.add_link(Link(LinkEnd("fra-r1", "#1", 40), LinkEnd("fra-r2", "#1", 40)))
    # external link to a peering.
    snapshot.add_link(Link(LinkEnd("lon-r1", "#1", 10), LinkEnd("IXP", "#1", 5)))
    return snapshot


class TestMatrix:
    def test_directed_aggregation(self):
        matrix = site_volume_matrix(_snapshot())
        # (50% + 30%) of 100G each direction.
        assert matrix.volume("fra", "lon") == pytest.approx(80.0)
        assert matrix.volume("lon", "fra") == pytest.approx(30.0)

    def test_intra_site_excluded(self):
        matrix = site_volume_matrix(_snapshot())
        assert matrix.volume("fra", "fra") == 0.0

    def test_peerings_are_places(self):
        matrix = site_volume_matrix(_snapshot())
        assert "IXP" in matrix.sites
        assert matrix.volume("lon", "IXP") == pytest.approx(10.0)
        assert matrix.volume("IXP", "lon") == pytest.approx(5.0)

    def test_busiest_pairs(self):
        matrix = site_volume_matrix(_snapshot())
        top = matrix.busiest_pairs(top=1)
        assert top[0][:2] == ("fra", "lon")

    def test_csv_export(self, tmp_path):
        matrix = site_volume_matrix(_snapshot())
        text = matrix.to_csv(tmp_path / "tm.csv")
        lines = text.strip().splitlines()
        assert lines[0].startswith("source\\target")
        assert len(lines) == 1 + len(matrix.sites)

    def test_peeringdb_capacity_applied(self, simulator):
        snapshot = simulator.snapshot(MapName.EUROPE, REFERENCE_DATE)
        peeringdb = SyntheticPeeringDB(simulator)
        with_db = site_volume_matrix(snapshot, peeringdb)
        without_db = site_volume_matrix(snapshot)
        # Capacity-aware volumes differ from the flat-100G assumption.
        assert with_db.total_gbps() != pytest.approx(without_db.total_gbps())
        assert with_db.total_gbps() > 0

    def test_simulator_matrix_shape(self, europe_reference):
        matrix = site_volume_matrix(europe_reference)
        # Every configured site present plus the peerings.
        site_codes = {s for s in matrix.sites if s.islower()}
        assert len(site_codes) >= 10
        assert matrix.total_gbps() > 1000  # multi-Tbps backbone
