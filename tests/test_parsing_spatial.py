"""Tests for the grid index and accelerated-vs-faithful equivalence."""

import pytest

from repro.geometry import Point, Rect
from repro.parsing.spatial import GridIndex


class TestGridIndex:
    def test_empty(self):
        index = GridIndex([])
        assert len(index) == 0
        assert index.near(Point(0, 0), 100) == []

    def test_finds_nearby(self):
        index = GridIndex([(Rect(10, 10, 20, 20), "a"), (Rect(500, 500, 20, 20), "b")])
        found = [payload for _, payload in index.near(Point(15, 15), 50)]
        assert found == ["a"]

    def test_radius_respected(self):
        # Box left edge at x=100; query point at x=0 → distance 100.
        index = GridIndex([(Rect(100, 0, 10, 10), "a")])
        assert index.near(Point(0, 5), 99) == []
        assert len(index.near(Point(0, 5), 101)) == 1

    def test_large_box_spanning_cells(self):
        index = GridIndex([(Rect(0, 0, 1000, 30), "wide")], cell_size=64)
        # Query far from the box origin but on the box.
        found = index.near(Point(900, 15), 10)
        assert len(found) == 1

    def test_no_duplicates_across_cells(self):
        index = GridIndex([(Rect(0, 0, 500, 500), "big")], cell_size=64)
        assert len(index.near(Point(250, 250), 300)) == 1

    def test_negative_coordinates(self):
        index = GridIndex([(Rect(-200, -200, 20, 20), "neg")])
        assert len(index.near(Point(-190, -190), 10)) == 1


class TestEquivalence:
    """Accelerated attribution must match the paper's faithful loop."""

    def test_identical_output_on_real_map(self, apac_svg, apac_reference):
        from collections import Counter

        from repro.constants import MapName
        from repro.parsing.pipeline import parse_svg

        fast = parse_svg(apac_svg, MapName.ASIA_PACIFIC, apac_reference.timestamp)
        slow = parse_svg(
            apac_svg,
            MapName.ASIA_PACIFIC,
            apac_reference.timestamp,
            accelerated=False,
        )

        def signatures(snapshot):
            return Counter(
                tuple(
                    sorted(
                        (
                            (l.a.node, l.a.label, l.a.load),
                            (l.b.node, l.b.label, l.b.load),
                        )
                    )
                )
                for l in snapshot.links
            )

        assert signatures(fast.snapshot) == signatures(slow.snapshot)

    def test_identical_errors(self):
        """Both modes fail the same way on a label-less document."""
        from repro.errors import MissingLabelError
        from repro.geometry import Rect
        from repro.parsing.algorithm1 import ExtractedLink, ExtractionResult
        from repro.parsing.algorithm2 import attribute_objects
        from repro.svgdoc.elements import ArrowElement, ObjectElement

        def arrow(x):
            return ArrowElement(points=(Point(x, 0), Point(x + 20, 5), Point(x, 10)))

        world = ExtractionResult(
            routers=[
                ObjectElement(name="left", box=Rect(0, -8, 40, 26)),
                ObjectElement(name="right", box=Rect(300, -8, 40, 26)),
            ],
            links=[ExtractedLink(arrows=[arrow(50), arrow(280)], loads=[10.0, 20.0])],
            labels=[],
        )
        with pytest.raises(MissingLabelError):
            attribute_objects(world, accelerated=True)
        with pytest.raises(MissingLabelError):
            attribute_objects(world, accelerated=False)
