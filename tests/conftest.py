"""Shared fixtures and the opt-in lock-sanitizer pytest lane.

Expensive artefacts (the paper-calibrated simulator, rendered reference
snapshots) are session-scoped: the simulator is deterministic, so sharing
it across tests loses nothing.

``pytest --repro-tsan`` (or ``REPRO_TSAN=1``) installs the instrumented
lock mode from :mod:`repro.devtools.sanitizer` for the whole session:
every ``threading.Lock``/``RLock`` constructed inside the ``repro``
package records acquisition order, and the run **fails** if any test
provokes a lock-order inversion or a same-lock re-entry — turning
would-be deadlocks into red test output.
"""

from __future__ import annotations

import os

import pytest

from repro.constants import MapName, REFERENCE_DATE
from repro.layout.renderer import MapRenderer
from repro.parsing.pipeline import parse_svg
from repro.simulation.network import BackboneSimulator

_TSAN_KEY = pytest.StashKey[bool]()


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--repro-tsan",
        action="store_true",
        default=False,
        help="instrument repro-package locks and fail the run on "
        "lock-order inversions, re-entry, or long-held locks",
    )


def pytest_configure(config: pytest.Config) -> None:
    enabled = bool(config.getoption("--repro-tsan")) or os.environ.get(
        "REPRO_TSAN", ""
    ) not in ("", "0")
    config.stash[_TSAN_KEY] = enabled
    if enabled:
        from repro.devtools.sanitizer import install_sanitizer

        install_sanitizer()


def pytest_sessionfinish(session: pytest.Session, exitstatus: int) -> None:
    if not session.config.stash.get(_TSAN_KEY, False):
        return
    from repro.devtools.sanitizer import active_sanitizer

    sanitizer = active_sanitizer()
    if sanitizer is None:  # a test uninstalled it; nothing left to report
        return
    report = sanitizer.report
    rendered = report.render()
    if rendered:
        print(f"\n{rendered}")
    if report.fatal() and session.exitstatus == 0:
        session.exitstatus = 1


def pytest_unconfigure(config: pytest.Config) -> None:
    if not config.stash.get(_TSAN_KEY, False):
        return
    from repro.devtools.sanitizer import uninstall_sanitizer

    uninstall_sanitizer()


@pytest.fixture(scope="session")
def simulator() -> BackboneSimulator:
    """The default paper-calibrated simulator."""
    return BackboneSimulator()


@pytest.fixture(scope="session")
def europe_reference(simulator):
    """The Europe map on the Table 1 reference date."""
    return simulator.snapshot(MapName.EUROPE, REFERENCE_DATE)


@pytest.fixture(scope="session")
def apac_reference(simulator):
    """The smallest peered map — cheap to render and parse."""
    return simulator.snapshot(MapName.ASIA_PACIFIC, REFERENCE_DATE)


@pytest.fixture(scope="session")
def apac_svg(apac_reference):
    """A rendered Asia-Pacific reference SVG document."""
    return MapRenderer().render(apac_reference)


@pytest.fixture(scope="session")
def apac_parsed(apac_svg, apac_reference):
    """The Asia-Pacific SVG pushed back through the extraction pipeline."""
    return parse_svg(
        apac_svg, MapName.ASIA_PACIFIC, apac_reference.timestamp
    )
