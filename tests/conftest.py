"""Shared fixtures.

Expensive artefacts (the paper-calibrated simulator, rendered reference
snapshots) are session-scoped: the simulator is deterministic, so sharing
it across tests loses nothing.
"""

from __future__ import annotations

import pytest

from repro.constants import MapName, REFERENCE_DATE
from repro.layout.renderer import MapRenderer
from repro.parsing.pipeline import parse_svg
from repro.simulation.network import BackboneSimulator


@pytest.fixture(scope="session")
def simulator() -> BackboneSimulator:
    """The default paper-calibrated simulator."""
    return BackboneSimulator()


@pytest.fixture(scope="session")
def europe_reference(simulator):
    """The Europe map on the Table 1 reference date."""
    return simulator.snapshot(MapName.EUROPE, REFERENCE_DATE)


@pytest.fixture(scope="session")
def apac_reference(simulator):
    """The smallest peered map — cheap to render and parse."""
    return simulator.snapshot(MapName.ASIA_PACIFIC, REFERENCE_DATE)


@pytest.fixture(scope="session")
def apac_svg(apac_reference):
    """A rendered Asia-Pacific reference SVG document."""
    return MapRenderer().render(apac_reference)


@pytest.fixture(scope="session")
def apac_parsed(apac_svg, apac_reference):
    """The Asia-Pacific SVG pushed back through the extraction pipeline."""
    return parse_svg(
        apac_svg, MapName.ASIA_PACIFIC, apac_reference.timestamp
    )
