"""Unit tests for element lifetimes and the alive-count index."""

from datetime import datetime, timedelta, timezone

import pytest

from repro.errors import SimulationError
from repro.simulation.evolution import FOREVER, Lifetime, _EventCounter


def _utc(*args) -> datetime:
    return datetime(*args, tzinfo=timezone.utc)


class TestLifetime:
    def test_alive_between_birth_and_death(self):
        life = Lifetime(birth=_utc(2021, 1, 1), death=_utc(2021, 6, 1))
        assert life.alive_at(_utc(2021, 3, 1))
        assert not life.alive_at(_utc(2020, 12, 31))
        assert not life.alive_at(_utc(2021, 6, 1))  # death is exclusive

    def test_birth_inclusive(self):
        life = Lifetime(birth=_utc(2021, 1, 1))
        assert life.alive_at(_utc(2021, 1, 1))

    def test_forever_by_default(self):
        life = Lifetime(birth=_utc(2021, 1, 1))
        assert life.alive_at(_utc(2099, 1, 1))

    def test_death_before_birth_rejected(self):
        with pytest.raises(SimulationError):
            Lifetime(birth=_utc(2021, 6, 1), death=_utc(2021, 1, 1))

    def test_outage_hides_element(self):
        life = Lifetime(
            birth=_utc(2021, 1, 1),
            outages=((_utc(2021, 8, 9), _utc(2021, 8, 14)),),
        )
        assert not life.alive_at(_utc(2021, 8, 10))
        assert life.alive_at(_utc(2021, 8, 14))  # outage end exclusive
        assert life.alive_at(_utc(2021, 8, 8))

    def test_empty_outage_rejected(self):
        with pytest.raises(SimulationError):
            Lifetime(birth=_utc(2021, 1, 1), outages=((_utc(2021, 2, 1), _utc(2021, 2, 1)),))


class TestIntervals:
    def test_simple_interval(self):
        life = Lifetime(birth=_utc(2021, 1, 1), death=_utc(2021, 6, 1))
        assert life.intervals() == [(_utc(2021, 1, 1), _utc(2021, 6, 1))]

    def test_outage_splits_interval(self):
        life = Lifetime(
            birth=_utc(2021, 1, 1),
            death=_utc(2021, 12, 1),
            outages=((_utc(2021, 6, 1), _utc(2021, 6, 10)),),
        )
        assert life.intervals() == [
            (_utc(2021, 1, 1), _utc(2021, 6, 1)),
            (_utc(2021, 6, 10), _utc(2021, 12, 1)),
        ]

    def test_outage_at_birth_trims_start(self):
        life = Lifetime(
            birth=_utc(2021, 1, 1),
            outages=((_utc(2021, 1, 1), _utc(2021, 1, 5)),),
        )
        assert life.intervals()[0][0] == _utc(2021, 1, 5)

    def test_intersect(self):
        a = Lifetime(birth=_utc(2021, 1, 1), death=_utc(2021, 6, 1))
        b = Lifetime(birth=_utc(2021, 3, 1), death=_utc(2021, 9, 1))
        assert a.intersect(b) == [(_utc(2021, 3, 1), _utc(2021, 6, 1))]

    def test_intersect_disjoint(self):
        a = Lifetime(birth=_utc(2021, 1, 1), death=_utc(2021, 2, 1))
        b = Lifetime(birth=_utc(2021, 3, 1), death=_utc(2021, 4, 1))
        assert a.intersect(b) == []

    def test_intersect_with_forever(self):
        a = Lifetime(birth=_utc(2021, 1, 1))
        b = Lifetime(birth=_utc(2021, 3, 1))
        assert a.intersect(b) == [(_utc(2021, 3, 1), FOREVER)]


class TestEventCounter:
    def test_counts_over_time(self):
        counter = _EventCounter(
            [
                (_utc(2021, 1, 1), _utc(2021, 6, 1)),
                (_utc(2021, 3, 1), FOREVER),
            ]
        )
        assert counter.count_at(_utc(2020, 12, 1)) == 0
        assert counter.count_at(_utc(2021, 2, 1)) == 1
        assert counter.count_at(_utc(2021, 4, 1)) == 2
        assert counter.count_at(_utc(2021, 7, 1)) == 1

    def test_boundary_semantics(self):
        counter = _EventCounter([(_utc(2021, 1, 1), _utc(2021, 2, 1))])
        assert counter.count_at(_utc(2021, 1, 1)) == 1  # start inclusive
        assert counter.count_at(_utc(2021, 2, 1)) == 0  # end exclusive

    def test_simultaneous_events_merged(self):
        when = _utc(2021, 1, 1)
        counter = _EventCounter([(when, FOREVER), (when, FOREVER), (when, FOREVER)])
        assert counter.count_at(when) == 3

    def test_empty(self):
        assert _EventCounter([]).count_at(_utc(2021, 1, 1)) == 0
