"""Tests for congestion-episode detection."""

from datetime import datetime, timedelta, timezone

import pytest

from repro.analysis.congestion import (
    congestion_rate_by_hour,
    find_congestion,
)
from repro.constants import MapName
from repro.topology.model import Link, LinkEnd, MapSnapshot, Node

T0 = datetime(2022, 5, 2, tzinfo=timezone.utc)


def _snapshot(when, load_ab, load_ba=10):
    snapshot = MapSnapshot(map_name=MapName.EUROPE, timestamp=when)
    snapshot.add_node(Node.from_name("r1"))
    snapshot.add_node(Node.from_name("r2"))
    snapshot.add_link(Link(LinkEnd("r1", "#1", load_ab), LinkEnd("r2", "#1", load_ba)))
    return snapshot


def _series(loads):
    return [
        _snapshot(T0 + timedelta(minutes=5 * index), load)
        for index, load in enumerate(loads)
    ]


class TestEpisodes:
    def test_sustained_run_detected(self):
        summary = find_congestion(_series([50, 90, 92, 95, 60]))
        assert len(summary.episodes) == 1
        episode = summary.episodes[0]
        assert episode.source == "r1" and episode.target == "r2"
        assert episode.samples == 3
        assert episode.peak_load == 95
        assert episode.duration == timedelta(minutes=10)

    def test_single_sample_ignored(self):
        summary = find_congestion(_series([50, 90, 60, 91, 50]))
        assert summary.episodes == ()
        assert summary.congested_samples == 2

    def test_min_samples_configurable(self):
        summary = find_congestion(_series([50, 90, 60]), min_samples=1)
        assert len(summary.episodes) == 1

    def test_run_open_at_end_closed(self):
        summary = find_congestion(_series([50, 90, 95]))
        assert len(summary.episodes) == 1
        assert summary.episodes[0].samples == 2

    def test_directions_independent(self):
        snapshots = [
            _snapshot(T0, 90, 90),
            _snapshot(T0 + timedelta(minutes=5), 90, 50),
        ]
        summary = find_congestion(snapshots)
        # r1→r2 sustained two snapshots; r2→r1 only one.
        assert len(summary.episodes) == 1
        assert summary.episodes[0].source == "r1"

    def test_fraction_accounting(self):
        summary = find_congestion(_series([90, 90]))
        assert summary.directed_samples == 4
        assert summary.congested_samples == 2
        assert summary.congested_fraction == 0.5

    def test_longest(self):
        summary = find_congestion(_series([90, 90, 10, 90, 90, 90]))
        assert summary.longest.samples == 3


class TestOnSimulator:
    def test_congestion_is_occasional(self, simulator):
        snapshots = [
            simulator.snapshot(MapName.EUROPE, T0 + timedelta(hours=h))
            for h in range(24)
        ]
        summary = find_congestion(snapshots)
        # "congestion inside the network happens occasionally": a small
        # but non-zero fraction of samples run hot.
        assert 0 < summary.congested_fraction < 0.02

    def test_rate_follows_day_cycle(self, simulator):
        snapshots = [
            simulator.snapshot(MapName.EUROPE, T0 + timedelta(hours=h))
            for h in range(24)
        ]
        rates = congestion_rate_by_hour(snapshots)
        night = sum(rates.get(h, 0) for h in (2, 3, 4))
        evening = sum(rates.get(h, 0) for h in (18, 19, 20))
        assert evening > night
