"""Tests for collection-quality analytics and capacity estimation."""

from datetime import datetime, timedelta, timezone

import pytest

from repro.analysis.capacity import (
    peering_volume,
    total_egress_capacity_gbps,
    total_egress_volume_gbps,
    volume_gbps,
)
from repro.analysis.collection import (
    collection_quality,
    distance_cdf,
    inter_snapshot_distances,
)
from repro.constants import MapName, REFERENCE_DATE, SNAPSHOT_INTERVAL
from repro.peeringdb.feed import SyntheticPeeringDB

T0 = datetime(2022, 1, 1, tzinfo=timezone.utc)


def _stamps(*minute_offsets):
    return [T0 + timedelta(minutes=m) for m in minute_offsets]


class TestDistances:
    def test_regular(self):
        distances = inter_snapshot_distances(_stamps(0, 5, 10, 15))
        assert list(distances) == [300, 300, 300]

    def test_short_list(self):
        assert inter_snapshot_distances(_stamps(0)).size == 0

    def test_cdf(self):
        xs, fractions = distance_cdf(_stamps(0, 5, 15))
        assert list(xs) == [300, 600]


class TestCollectionQuality:
    def test_perfect_collection(self):
        quality = collection_quality(_stamps(0, 5, 10, 15, 20))
        assert quality.fraction_at_resolution == 1.0
        assert quality.longest_gap == SNAPSHOT_INTERVAL
        assert len(quality.time_frames) == 1

    def test_single_miss(self):
        quality = collection_quality(_stamps(0, 5, 15, 20))
        assert quality.fraction_at_resolution == pytest.approx(2 / 3)
        assert quality.fraction_within_one_miss == 1.0

    def test_segment_split(self):
        stamps = _stamps(0, 5) + [T0 + timedelta(days=10)]
        quality = collection_quality(stamps)
        assert len(quality.time_frames) == 2
        assert quality.longest_gap > timedelta(days=9)

    def test_empty(self):
        quality = collection_quality([])
        assert quality.snapshot_count == 0
        assert quality.covered == timedelta(0)


class TestCapacity:
    def test_volume(self):
        assert volume_gbps(50, 100) == 50.0
        assert volume_gbps(0, 400) == 0.0

    @pytest.fixture(scope="class")
    def europe(self, simulator):
        return (
            simulator.snapshot(MapName.EUROPE, REFERENCE_DATE),
            SyntheticPeeringDB(simulator),
        )

    def test_amsix_volume(self, simulator, europe):
        snapshot, peeringdb = europe
        volume = peering_volume(snapshot, peeringdb, simulator.upgrade.peering)
        assert volume is not None
        assert volume.links == 5
        assert volume.capacity_gbps == 500
        assert 0 < volume.egress_gbps < 500
        assert 0 <= volume.egress_utilisation <= 1

    def test_unknown_peering(self, europe):
        snapshot, peeringdb = europe
        assert peering_volume(snapshot, peeringdb, "NOT-THERE") is None

    def test_total_egress_capacity_positive(self, europe):
        snapshot, peeringdb = europe
        capacity = total_egress_capacity_gbps(snapshot, peeringdb)
        # Dozens of peerings at 10-400 Gbps each: several Tbps.
        assert capacity > 2000

    def test_volume_below_capacity(self, europe):
        snapshot, peeringdb = europe
        volume = total_egress_volume_gbps(snapshot, peeringdb)
        capacity = total_egress_capacity_gbps(snapshot, peeringdb)
        assert 0 < volume < capacity
