"""Unit tests for the synthetic PeeringDB substrate."""

from datetime import datetime, timedelta, timezone

import pytest

from repro.errors import DatasetError, SchemaError
from repro.peeringdb.feed import SyntheticPeeringDB
from repro.peeringdb.model import CapacityRecord, NetworkPresence


def _utc(*args) -> datetime:
    return datetime(*args, tzinfo=timezone.utc)


class TestCapacityRecord:
    def test_positive_capacity_required(self):
        with pytest.raises(SchemaError):
            CapacityRecord(peering="X", capacity_gbps=0, updated=_utc(2022, 1, 1))


class TestNetworkPresence:
    def _presence(self) -> NetworkPresence:
        return NetworkPresence(
            peering="AMS-IX",
            records=(
                CapacityRecord("AMS-IX", 400, _utc(2020, 7, 1)),
                CapacityRecord("AMS-IX", 500, _utc(2022, 3, 14)),
            ),
        )

    def test_capacity_at(self):
        presence = self._presence()
        assert presence.capacity_at(_utc(2021, 1, 1)) == 400
        assert presence.capacity_at(_utc(2022, 3, 14)) == 500
        assert presence.capacity_at(_utc(2020, 1, 1)) is None

    def test_changes(self):
        changes = self._presence().changes()
        assert changes == [(_utc(2022, 3, 14), 400, 500)]

    def test_wrong_peering_rejected(self):
        with pytest.raises(SchemaError):
            NetworkPresence(
                peering="AMS-IX",
                records=(CapacityRecord("DE-CIX", 100, _utc(2021, 1, 1)),),
            )

    def test_unordered_records_rejected(self):
        with pytest.raises(SchemaError):
            NetworkPresence(
                peering="X",
                records=(
                    CapacityRecord("X", 100, _utc(2022, 1, 1)),
                    CapacityRecord("X", 200, _utc(2021, 1, 1)),
                ),
            )


class TestSyntheticFeed:
    def test_covers_every_peering(self, simulator):
        from repro.constants import MapName, REFERENCE_DATE

        peeringdb = SyntheticPeeringDB(simulator)
        snapshot = simulator.snapshot(MapName.EUROPE, REFERENCE_DATE)
        for node in snapshot.peerings:
            assert peeringdb.capacity_at(node.name, REFERENCE_DATE) is not None

    def test_upgrade_history(self, simulator):
        scenario = simulator.upgrade
        peeringdb = SyntheticPeeringDB(simulator)
        before = peeringdb.capacity_at(scenario.peering, scenario.peeringdb_at - timedelta(days=1))
        after = peeringdb.capacity_at(scenario.peering, scenario.peeringdb_at + timedelta(days=1))
        assert (before, after) == (400, 500)

    def test_changes_near(self, simulator):
        scenario = simulator.upgrade
        peeringdb = SyntheticPeeringDB(simulator)
        changes = peeringdb.changes_near(
            scenario.peering, scenario.added_at, timedelta(days=30)
        )
        assert len(changes) == 1

    def test_changes_near_window_respected(self, simulator):
        scenario = simulator.upgrade
        peeringdb = SyntheticPeeringDB(simulator)
        changes = peeringdb.changes_near(
            scenario.peering,
            scenario.peeringdb_at + timedelta(days=300),
            timedelta(days=10),
        )
        assert changes == []

    def test_unknown_peering_raises(self, simulator):
        peeringdb = SyntheticPeeringDB(simulator)
        with pytest.raises(DatasetError):
            peeringdb.presence("NOT-AN-IX")

    def test_generic_capacities_plausible(self, simulator):
        peeringdb = SyntheticPeeringDB(simulator)
        from repro.constants import REFERENCE_DATE

        capacities = {
            peeringdb.capacity_at(name, REFERENCE_DATE)
            for name in peeringdb.peerings()
        }
        assert capacities <= {10, 40, 100, 200, 400, 500}
