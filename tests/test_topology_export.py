"""Tests for topology export formats."""

from datetime import datetime, timezone

import pytest

from repro.constants import MapName
from repro.errors import SchemaError
from repro.topology.export import from_graphml, to_adjacency_csv, to_graphml
from repro.topology.model import Link, LinkEnd, MapSnapshot, Node

NOW = datetime(2022, 9, 12, tzinfo=timezone.utc)


def _snapshot() -> MapSnapshot:
    snapshot = MapSnapshot(map_name=MapName.EUROPE, timestamp=NOW)
    for name in ("fra-r1", "par-r2", "AMS-IX"):
        snapshot.add_node(Node.from_name(name))
    snapshot.add_link(Link(LinkEnd("fra-r1", "#1", 42), LinkEnd("par-r2", "#1", 9)))
    snapshot.add_link(Link(LinkEnd("fra-r1", "#2", 10), LinkEnd("par-r2", "#2", 11)))
    snapshot.add_link(Link(LinkEnd("par-r2", "#1", 30), LinkEnd("AMS-IX", "#1", 5)))
    return snapshot


class TestGraphml:
    def test_round_trip_counts(self):
        restored = from_graphml(to_graphml(_snapshot()))
        assert restored.summary_counts() == (2, 2, 1)

    def test_round_trip_metadata(self):
        restored = from_graphml(to_graphml(_snapshot()))
        assert restored.map_name is MapName.EUROPE
        assert restored.timestamp == NOW

    def test_round_trip_loads_and_labels(self):
        restored = from_graphml(to_graphml(_snapshot()))
        signatures = {
            tuple(sorted([(l.a.node, l.a.label, l.a.load), (l.b.node, l.b.label, l.b.load)]))
            for l in restored.links
        }
        assert (("fra-r1", "#1", 42.0), ("par-r2", "#1", 9.0)) in signatures

    def test_kind_preserved(self):
        restored = from_graphml(to_graphml(_snapshot()))
        assert restored.nodes["AMS-IX"].is_peering

    def test_parallel_links_preserved(self):
        restored = from_graphml(to_graphml(_snapshot()))
        parallel = [l for l in restored.links if set(l.nodes) == {"fra-r1", "par-r2"}]
        assert len(parallel) == 2

    def test_file_output(self, tmp_path):
        target = tmp_path / "out" / "snapshot.graphml"
        to_graphml(_snapshot(), target)
        assert target.exists()

    def test_invalid_graphml(self):
        with pytest.raises(SchemaError):
            from_graphml("<not-graphml/>")

    def test_missing_metadata(self):
        import io

        import networkx

        buffer = io.BytesIO()
        networkx.write_graphml(networkx.MultiGraph(), buffer)
        with pytest.raises(SchemaError):
            from_graphml(buffer.getvalue().decode("utf-8"))

    def test_simulator_snapshot_round_trips(self, apac_reference):
        restored = from_graphml(to_graphml(apac_reference))
        assert restored.summary_counts() == apac_reference.summary_counts()


class TestAdjacencyCsv:
    def test_rows(self):
        text = to_adjacency_csv(_snapshot())
        lines = text.strip().splitlines()
        assert len(lines) == 4  # header + 3 links
        assert lines[0].startswith("node_a,")

    def test_external_flag(self):
        text = to_adjacency_csv(_snapshot())
        external_rows = [line for line in text.splitlines() if line.endswith(",1")]
        assert len(external_rows) == 1
        assert "AMS-IX" in external_rows[0]

    def test_file_output(self, tmp_path):
        target = tmp_path / "links.csv"
        to_adjacency_csv(_snapshot(), target)
        assert target.read_text(encoding="utf-8").count("\n") == 4
