"""Tests for layout-agnostic read handles (repro.dataset.handles).

:func:`resolve_read_handle` is the one place the read path decides flat
vs sharded, and :func:`read_generation` is the stat-cheap token the HTTP
server compares per request to know when an ingest checkpoint has moved
a map's serving index.  Both contracts are pinned here: the right engine
class per store layout, ``None`` on anything unservable, and a token
that changes exactly when the on-disk index identity changes.
"""

from __future__ import annotations

from datetime import datetime, timedelta, timezone

import pytest

from repro.constants import MapName
from repro.dataset.handles import read_generation, resolve_read_handle
from repro.dataset.index import build_index
from repro.dataset.processor import process_svg_bytes
from repro.dataset.query import MappedIndex
from repro.dataset.shards import ShardedMappedIndex, compact_map_shards
from repro.dataset.store import DatasetStore, InMemoryStore, ShardedDatasetStore

T0 = datetime(2022, 9, 12, tzinfo=timezone.utc)
MAP = MapName.ASIA_PACIFIC


@pytest.fixture(scope="module")
def reference_yaml(apac_svg) -> str:
    outcome = process_svg_bytes(apac_svg.encode("utf-8"), MAP, T0)
    assert outcome.yaml_text is not None
    return outcome.yaml_text


def flat_store(root, yaml_text: str, snapshots: int = 3) -> DatasetStore:
    store = DatasetStore(root)
    for slot in range(snapshots):
        store.write(MAP, T0 + timedelta(minutes=5 * slot), "yaml", yaml_text)
    return store


def sharded_store(root, yaml_text: str, days: int = 2) -> ShardedDatasetStore:
    store = ShardedDatasetStore(root)
    store.mark()
    for day in range(days):
        for slot in range(3):
            when = T0 + timedelta(days=day, minutes=5 * slot)
            store.write(MAP, when, "yaml", yaml_text)
    return store


class TestResolve:
    def test_flat_store_resolves_to_mapped_index(self, tmp_path, reference_yaml):
        store = flat_store(tmp_path, reference_yaml)
        build_index(store, MAP)
        handle = resolve_read_handle(store, MAP)
        assert isinstance(handle, MappedIndex)
        assert len(handle) == 3
        handle.close()

    def test_sharded_store_resolves_to_sharded_engine(
        self, tmp_path, reference_yaml
    ):
        store = sharded_store(tmp_path, reference_yaml)
        compact_map_shards(store, MAP)
        handle = resolve_read_handle(store, MAP)
        assert isinstance(handle, ShardedMappedIndex)
        assert len(handle) == 6
        handle.close()

    def test_in_memory_store_resolves_to_none(self, reference_yaml):
        store = InMemoryStore()
        store.write(MAP, T0, "yaml", reference_yaml)
        assert resolve_read_handle(store, MAP) is None

    def test_unindexed_map_resolves_to_none(self, tmp_path, reference_yaml):
        store = flat_store(tmp_path, reference_yaml)
        assert resolve_read_handle(store, MAP) is None

    def test_stale_flat_index_resolves_to_none(self, tmp_path, reference_yaml):
        store = flat_store(tmp_path, reference_yaml)
        build_index(store, MAP)
        store.write(MAP, T0 + timedelta(hours=1), "yaml", reference_yaml)
        assert resolve_read_handle(store, MAP) is None
        # ... unless the caller pins a generation itself and opts out.
        handle = resolve_read_handle(store, MAP, require_fresh=False)
        assert isinstance(handle, MappedIndex)
        handle.close()


class TestGeneration:
    def test_flat_token_names_the_index_file(self, tmp_path, reference_yaml):
        store = flat_store(tmp_path, reference_yaml)
        assert read_generation(store, MAP) is None  # no index yet
        build_index(store, MAP)
        token = read_generation(store, MAP)
        assert token is not None and token[0] == "flat"
        stat = store.index_path(MAP).stat()
        assert token[1:] == (stat.st_ino, stat.st_size, stat.st_mtime_ns)

    def test_flat_token_changes_on_rebuild(self, tmp_path, reference_yaml):
        store = flat_store(tmp_path, reference_yaml)
        build_index(store, MAP)
        before = read_generation(store, MAP)
        store.write(MAP, T0 + timedelta(hours=1), "yaml", reference_yaml)
        build_index(store, MAP)
        after = read_generation(store, MAP)
        assert before is not None and after is not None
        assert after != before

    def test_sharded_token_names_the_manifest(self, tmp_path, reference_yaml):
        store = sharded_store(tmp_path, reference_yaml)
        assert read_generation(store, MAP) is None  # never compacted
        compact_map_shards(store, MAP)
        token = read_generation(store, MAP)
        assert token is not None and token[0] == "sharded"

    def test_sharded_token_changes_on_compaction(
        self, tmp_path, reference_yaml
    ):
        store = sharded_store(tmp_path, reference_yaml)
        compact_map_shards(store, MAP)
        before = read_generation(store, MAP)
        new_day = T0 + timedelta(days=7)
        store.write(MAP, new_day, "yaml", reference_yaml)
        compact_map_shards(store, MAP, only=["2022-09-19"])
        after = read_generation(store, MAP)
        assert before is not None and after is not None
        assert after != before  # manifest rewritten atomically

    def test_untouched_map_keeps_its_token(self, tmp_path, reference_yaml):
        store = sharded_store(tmp_path, reference_yaml)
        compact_map_shards(store, MAP)
        first = read_generation(store, MAP)
        second = read_generation(store, MAP)
        assert first == second

    def test_in_memory_store_has_no_token(self, reference_yaml):
        store = InMemoryStore()
        store.write(MAP, T0, "yaml", reference_yaml)
        assert read_generation(store, MAP) is None


class TestLazyShardOpening:
    """Satellite of PR 8: shard pruning must keep unqueried days unmapped."""

    def test_fresh_handle_opens_nothing(self, tmp_path, reference_yaml):
        store = sharded_store(tmp_path, reference_yaml, days=3)
        compact_map_shards(store, MAP)
        handle = resolve_read_handle(store, MAP)
        assert isinstance(handle, ShardedMappedIndex)
        assert handle.opened_shard_keys == []
        assert len(handle) == 9  # row counts come from manifest hints
        handle.close()

    def test_windowed_scan_opens_only_overlapping_shards(
        self, tmp_path, reference_yaml
    ):
        from repro.dataset.query import ScanPredicate

        store = sharded_store(tmp_path, reference_yaml, days=3)
        compact_map_shards(store, MAP)
        handle = resolve_read_handle(store, MAP)
        assert isinstance(handle, ShardedMappedIndex)
        day2 = T0 + timedelta(days=1)
        result = handle.scan(
            ScanPredicate(start=day2, end=day2 + timedelta(days=1))
        )
        assert result.snapshot_count == 3
        assert handle.opened_shard_keys == ["2022-09-13"]
        handle.close()
