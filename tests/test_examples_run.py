"""Every shipped example must run clean end to end.

The examples are deliverables; this guards them against API drift.  Each
runs in a subprocess (its own interpreter, like a user would) and must
exit 0 without traceback output.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

EXAMPLES = sorted(path.name for path in EXAMPLES_DIR.glob("*.py"))


def test_examples_discovered():
    assert len(EXAMPLES) >= 8


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs_clean(script):
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert "Traceback" not in completed.stderr
    assert completed.stdout.strip()  # every example narrates its findings
