"""Tests for per-day shard indexes: compaction, freshness, serving tiers.

The headline contract: :func:`compact_map_shards` touches only shards
whose sources changed (O(new shard), not O(corpus)), and the sharded
serving tiers — loaders and the query engine — return exactly what the
monolithic index returns over the same YAML tree.
"""

from __future__ import annotations

import os
from datetime import datetime, timedelta, timezone

import pytest

from repro.constants import MapName
from repro.dataset.index import build_index
from repro.dataset.loader import latest_snapshot, load_all
from repro.dataset.processor import process_svg_bytes
from repro.dataset.query import ScanPredicate, open_query
from repro.dataset.shards import (
    ShardManifest,
    compact_map_shards,
    fresh_shard_indexes,
    open_sharded_query,
    verify_shards,
)
from repro.dataset.store import DatasetStore, ShardedDatasetStore
from repro.errors import DatasetError

T0 = datetime(2022, 9, 12, tzinfo=timezone.utc)
MAP = MapName.ASIA_PACIFIC
DAYS = (T0, T0 + timedelta(days=1), T0 + timedelta(days=2))
PER_DAY = 3


@pytest.fixture(scope="module")
def reference_yaml(apac_svg) -> str:
    """One processed YAML document, reused at every timestamp.

    Timestamps are authoritative from file names, so one document can
    stand in for the whole corpus.
    """
    outcome = process_svg_bytes(apac_svg.encode("utf-8"), MAP, T0)
    assert outcome.yaml_text is not None
    return outcome.yaml_text


def build_corpus(root, yaml_text: str) -> ShardedDatasetStore:
    """Three day-shards of YAML snapshots in a marked sharded store."""
    store = ShardedDatasetStore(root)
    store.mark()
    for day in DAYS:
        for slot in range(PER_DAY):
            store.write(MAP, day + timedelta(minutes=5 * slot), "yaml", yaml_text)
    return store


class TestCompaction:
    def test_first_compaction_builds_every_shard(self, tmp_path, reference_yaml):
        store = build_corpus(tmp_path, reference_yaml)
        stats = compact_map_shards(store, MAP)
        assert sorted(stats.built) == store.shard_keys(MAP, "yaml")
        assert stats.skipped == [] and stats.removed == []
        assert stats.rows == len(DAYS) * PER_DAY
        for key in stats.built:
            assert store.shard_index_path(MAP, key).exists()

    def test_recompaction_skips_everything(self, tmp_path, reference_yaml):
        store = build_corpus(tmp_path, reference_yaml)
        compact_map_shards(store, MAP)
        again = compact_map_shards(store, MAP)
        assert again.built == [] and again.removed == []
        assert sorted(again.skipped) == store.shard_keys(MAP, "yaml")
        assert again.parsed == 0

    def test_new_day_builds_only_its_shard(self, tmp_path, reference_yaml):
        store = build_corpus(tmp_path, reference_yaml)
        compact_map_shards(store, MAP)
        new_day = T0 + timedelta(days=5)
        store.write(MAP, new_day, "yaml", reference_yaml)
        stats = compact_map_shards(store, MAP)
        assert stats.built == ["2022-09-17"]
        assert len(stats.skipped) == len(DAYS)
        assert stats.parsed == 1  # only the new file was read

    def test_touched_file_rebuilds_only_its_shard(self, tmp_path, reference_yaml):
        store = build_corpus(tmp_path, reference_yaml)
        compact_map_shards(store, MAP)
        victim = next(store.iter_shard_refs(MAP, "yaml", "2022-09-13")).path
        os.utime(victim, ns=(1, 1))  # same bytes, new stat → fingerprint change
        stats = compact_map_shards(store, MAP)
        assert stats.built == ["2022-09-13"]
        assert len(stats.skipped) == len(DAYS) - 1

    def test_removed_day_sweeps_shard(self, tmp_path, reference_yaml):
        store = build_corpus(tmp_path, reference_yaml)
        compact_map_shards(store, MAP)
        for ref in list(store.iter_shard_refs(MAP, "yaml", "2022-09-12")):
            ref.path.unlink()
        stats = compact_map_shards(store, MAP)
        assert stats.removed == ["2022-09-12"]
        assert not store.shard_index_path(MAP, "2022-09-12").parent.exists()
        manifest = ShardManifest.load(store.shards_manifest_path(MAP))
        assert "2022-09-12" not in manifest.shards

    def test_only_restricts_the_walk(self, tmp_path, reference_yaml):
        store = build_corpus(tmp_path, reference_yaml)
        compact_map_shards(store, MAP)
        for key in ("2022-09-12", "2022-09-14"):
            ref = next(store.iter_shard_refs(MAP, "yaml", key))
            os.utime(ref.path, ns=(2, 2))
        stats = compact_map_shards(store, MAP, only=["2022-09-12"])
        assert stats.built == ["2022-09-12"]
        # The other stale shard was out of scope — a full pass catches it.
        assert verify_shards(store, MAP) is None
        full = compact_map_shards(store, MAP)
        assert full.built == ["2022-09-14"]
        assert verify_shards(store, MAP) is not None

    def test_only_rejects_bad_keys(self, tmp_path, reference_yaml):
        store = build_corpus(tmp_path, reference_yaml)
        with pytest.raises(DatasetError):
            compact_map_shards(store, MAP, only=["not-a-day"])

    def test_rebuild_discards_and_rebuilds_all(self, tmp_path, reference_yaml):
        store = build_corpus(tmp_path, reference_yaml)
        compact_map_shards(store, MAP)
        stats = compact_map_shards(store, MAP, rebuild=True)
        assert sorted(stats.built) == store.shard_keys(MAP, "yaml")
        assert stats.skipped == []


class TestFreshness:
    def test_fresh_after_compaction(self, tmp_path, reference_yaml):
        store = build_corpus(tmp_path, reference_yaml)
        compact_map_shards(store, MAP)
        indexes = fresh_shard_indexes(store, MAP)
        assert indexes is not None
        assert [len(index) for index in indexes] == [PER_DAY] * len(DAYS)

    def test_stale_on_any_touch(self, tmp_path, reference_yaml):
        store = build_corpus(tmp_path, reference_yaml)
        compact_map_shards(store, MAP)
        os.utime(next(store.iter_shard_refs(MAP, "yaml", "2022-09-14")).path, ns=(3, 3))
        assert fresh_shard_indexes(store, MAP) is None

    def test_stale_on_new_day(self, tmp_path, reference_yaml):
        store = build_corpus(tmp_path, reference_yaml)
        compact_map_shards(store, MAP)
        store.write(MAP, T0 + timedelta(days=9), "yaml", reference_yaml)
        assert fresh_shard_indexes(store, MAP) is None

    def test_parser_version_skew_discards_manifest(self, tmp_path, reference_yaml):
        store = build_corpus(tmp_path, reference_yaml)
        compact_map_shards(store, MAP, parser_version=-1)
        assert verify_shards(store, MAP) is None
        stats = compact_map_shards(store, MAP)
        assert sorted(stats.built) == store.shard_keys(MAP, "yaml")

    def test_empty_map_is_fresh_and_empty(self, tmp_path):
        store = ShardedDatasetStore(tmp_path)
        store.mark()
        compact_map_shards(store, MAP)
        assert fresh_shard_indexes(store, MAP) == []


class TestServingEquivalence:
    @pytest.fixture()
    def twin_stores(self, tmp_path, reference_yaml):
        """The same YAML tree under a sharded and a flat store."""
        sharded = build_corpus(tmp_path / "sharded", reference_yaml)
        compact_map_shards(sharded, MAP)
        flat = DatasetStore(tmp_path / "flat")
        for ref in sharded.iter_refs(MAP, "yaml"):
            flat.write(MAP, ref.timestamp, "yaml", ref.path.read_bytes())
        build_index(flat, MAP)
        return sharded, flat

    def test_query_matches_monolithic(self, twin_stores):
        sharded, flat = twin_stores
        predicate = ScanPredicate(start=T0, end=T0 + timedelta(days=2))
        with open_sharded_query(sharded, MAP) as sharded_engine, open_query(
            flat, MAP
        ) as flat_engine:
            assert sharded_engine is not None and flat_engine is not None
            ours = sharded_engine.scan(predicate)
            theirs = flat_engine.scan(predicate)
            assert len(ours) == len(theirs)
            assert ours.snapshot_count == theirs.snapshot_count
            assert ours.directed_loads() == theirs.directed_loads()
            key = lambda r: (  # noqa: E731
                r.timestamp, r.node_a, r.label_a, r.load_a,
                r.node_b, r.label_b, r.load_b,
            )
            assert list(map(key, ours.records())) == list(map(key, theirs.records()))

    def test_sharded_engine_surface(self, twin_stores):
        sharded, _ = twin_stores
        engine = open_sharded_query(sharded, MAP)
        assert engine is not None
        with engine:
            assert engine.shard_keys == sharded.shard_keys(MAP, "yaml")
            assert len(engine) == len(DAYS) * PER_DAY
            engine.check_generation()  # fresh → no raise
        assert engine.closed

    def test_loader_serves_from_shards(self, twin_stores):
        sharded, flat = twin_stores
        ours = load_all(sharded, MAP)
        theirs = load_all(flat, MAP)
        assert [s.timestamp for s in ours] == [s.timestamp for s in theirs]
        assert [len(s.nodes) for s in ours] == [len(s.nodes) for s in theirs]
        last = latest_snapshot(sharded, MAP)
        assert last is not None
        assert last.timestamp == theirs[-1].timestamp

    def test_loader_falls_back_to_yaml_when_stale(self, twin_stores):
        sharded, _ = twin_stores
        os.utime(
            next(sharded.iter_shard_refs(MAP, "yaml", "2022-09-13")).path, ns=(4, 4)
        )
        snapshots = load_all(sharded, MAP)  # YAML path, still complete
        assert len(snapshots) == len(DAYS) * PER_DAY

    def test_window_respects_shard_boundaries(self, twin_stores):
        sharded, _ = twin_stores
        middle_day = load_all(
            sharded, MAP, start=DAYS[1], end=DAYS[1] + timedelta(days=1)
        )
        assert [s.timestamp for s in middle_day] == [
            DAYS[1] + timedelta(minutes=5 * slot) for slot in range(PER_DAY)
        ]
