"""Tests for the streaming fast-path extractor and its support code.

The contract under test: on a well-shaped document :func:`stream_extract`
produces *exactly* the extraction the DOM path would (so the downstream
pipeline cannot tell which path ran), and on anything else it returns
``None`` so the DOM path owns all error reporting.
"""

from __future__ import annotations

import pytest

from repro.constants import MapName
from repro.errors import MalformedSvgError
from repro.parsing import stream as stream_module
from repro.parsing.algorithm1 import extract_objects
from repro.parsing.pipeline import StageTimings, parse_svg
from repro.parsing.stream import stream_extract
from repro.svgdoc import reader as reader_module
from repro.svgdoc.reader import (
    parse_dimension_value,
    read_svg_tags,
)
from repro.yamlio.serialize import snapshot_to_yaml

SVG_NS = 'xmlns="http://www.w3.org/2000/svg"'


def document(body: str, root_attrs: str = 'width="800" height="600"') -> str:
    return f"<svg {SVG_NS} {root_attrs}>{body}</svg>"


#: A minimal well-shaped weathermap: two routers, one link (two arrows +
#: two loads), two labels.
MINIMAL = document(
    """
  <g class="object">
    <rect x="10" y="10" width="60" height="20"/>
    <text x="12" y="24">rbx-g1</text>
  </g>
  <g class="object">
    <rect x="210" y="10" width="60" height="20"/>
    <text x="212" y="24">fra-g1</text>
  </g>
  <polygon class="arrow" points="70,20 90,15 90,25" fill="#00cc00"/>
  <polygon class="arrow" points="210,20 190,15 190,25" fill="#cc0000"/>
  <text class="labellink" x="95" y="18">12%</text>
  <text class="labellink" x="175" y="18">57%</text>
  <rect class="node" x="80" y="12" width="20" height="14"/>
  <text class="node" x="82" y="22">#1</text>
  <rect class="node" x="180" y="12" width="20" height="14"/>
  <text class="node" x="182" y="22">#1</text>
"""
)


class TestStreamEqualsDom:
    def test_minimal_document(self):
        streamed = stream_extract(MINIMAL)
        assert streamed is not None
        extraction, width, height = streamed
        dom = extract_objects(read_svg_tags(MINIMAL))
        assert extraction == dom
        assert (width, height) == (800.0, 600.0)

    def test_rendered_documents(self, apac_svg, apac_reference):
        streamed = stream_extract(apac_svg)
        assert streamed is not None
        assert streamed[0] == extract_objects(read_svg_tags(apac_svg))

    def test_bytes_and_str_sources_agree(self, apac_svg):
        assert stream_extract(apac_svg) == stream_extract(
            apac_svg.encode("utf-8")
        )

    def test_path_source(self, tmp_path):
        path = tmp_path / "map.svg"
        path.write_text(MINIMAL, encoding="utf-8")
        assert stream_extract(path) == stream_extract(MINIMAL)

    def test_unreadable_path_raises_oserror(self, tmp_path):
        with pytest.raises(OSError):
            stream_extract(tmp_path / "absent.svg")


class TestFallbackTriggers:
    """Out-of-shape inputs return None — never a raised extraction error."""

    @pytest.mark.parametrize(
        "source",
        [
            "",  # no XML at all
            "not xml",
            "<svg broken",  # well past any shape check
            document("<g class='object'><rect x='1' y='1' width='5' height='5'/></g>"),  # nameless group
            document("<g class='object'><text>ghost</text></g>"),  # boxless group
            document("<polygon class='arrow' points='0,0 1,1'/>"),  # short points
            document("<text class='labellink' x='1' y='1'>12%</text>"),  # load before arrows
            document("<rect class='node' x='1' y='1' width='4' height='4'/>"),  # dangling label box
            document("<text class='node' x='1' y='1'>#1</text>"),  # label text, no box
            document("<div class='labellink'>12%</div>"),  # classify_tag rejects
            document("<rect class='node' x='1' y='1' width='0' height='4'/>"),  # zero extent
            document("", root_attrs='width="800pxx" height="600"'),  # bad dimension
            "<root></root>",  # root is not <svg>
            "<svg>&undefined;</svg>",  # undefined entity: expat error
        ],
    )
    def test_returns_none(self, source):
        assert stream_extract(source) is None

    def test_defined_entity_expands_like_the_dom_path(self):
        source = "<!DOCTYPE svg [<!ENTITY e 'x'>]><svg>&e;</svg>"
        streamed = stream_extract(source)
        # Both paths expand the internal entity to plain text and extract
        # nothing; the fast path need not fall back to agree.
        assert streamed is not None
        assert streamed[0] == extract_objects(read_svg_tags(source))

    def test_fallback_reaches_dom_error(self):
        """parse_svg surfaces the DOM path's exact typed error."""
        bad = document("<div class='labellink'>12%</div>")
        with pytest.raises(MalformedSvgError) as via_fast:
            parse_svg(bad, MapName.EUROPE)
        with pytest.raises(MalformedSvgError) as via_dom:
            parse_svg(bad, MapName.EUROPE, fast_path=False)
        assert str(via_fast.value) == str(via_dom.value)

    def test_fast_path_never_touches_the_dom_reader(self, apac_svg, monkeypatch):
        """A well-shaped document must be handled without the DOM pipeline."""

        def forbidden(source):
            raise AssertionError("fast path fell back to read_svg_tags")

        import repro.parsing.pipeline as pipeline_module

        monkeypatch.setattr(pipeline_module, "read_svg_tags", forbidden)
        parsed = parse_svg(apac_svg, MapName.ASIA_PACIFIC)
        assert parsed.snapshot.links


class TestDifferentialYaml:
    def test_byte_identical_yaml(self, apac_svg, apac_reference):
        fast = parse_svg(apac_svg, MapName.ASIA_PACIFIC, apac_reference.timestamp)
        slow = parse_svg(
            apac_svg,
            MapName.ASIA_PACIFIC,
            apac_reference.timestamp,
            fast_path=False,
        )
        assert snapshot_to_yaml(fast.snapshot) == snapshot_to_yaml(slow.snapshot)


class TestStageTimings:
    def test_fast_path_hit_accounting(self, apac_svg):
        timings = StageTimings()
        parse_svg(apac_svg, MapName.ASIA_PACIFIC, timings=timings)
        assert timings.fast_path_hits == 1
        assert timings.fallbacks == 0
        assert timings.seconds["read"] == 0.0  # fused pass: no separate read
        assert timings.seconds["extract"] > 0.0
        assert timings.total == sum(timings.seconds.values())

    def test_fallback_accounting(self):
        bad = document("<div class='labellink'>12%</div>")
        timings = StageTimings()
        with pytest.raises(MalformedSvgError):
            parse_svg(bad, MapName.EUROPE, timings=timings)
        assert timings.fast_path_hits == 0
        assert timings.fallbacks == 1

    def test_as_dict_shape(self):
        timings = StageTimings()
        timings.add("extract", 0.5)
        view = timings.as_dict()
        assert set(view) == {"seconds", "fast_path_hits", "fallbacks"}
        assert view["seconds"]["extract"] == 0.5


class TestDimensionParsing:
    @pytest.mark.parametrize(
        ("raw", "expected"),
        [
            ("800", 800.0),
            ("800px", 800.0),
            (" 640.5 pt ", 640.5),
            ("100%", 100.0),
            ("-3.5mm", -3.5),
            (".5in", 0.5),
            ("1e3", 1000.0),
            ("2E2px", 200.0),
        ],
    )
    def test_accepts_number_with_optional_unit(self, raw, expected):
        assert parse_dimension_value(raw) == expected

    @pytest.mark.parametrize(
        "raw",
        ["", "px", "800pxx", "800 600", "12furlong", "1..2", "--5", "8,0", "nan"],
    )
    def test_rejects_malformed(self, raw):
        with pytest.raises(MalformedSvgError):
            parse_dimension_value(raw)

    def test_root_attribute_error_names_the_attribute(self):
        with pytest.raises(MalformedSvgError, match="width.*800pxx"):
            read_svg_tags(document("", root_attrs='width="800pxx" height="1"'))


class TestTagStreamCaching:
    def test_tags_returns_the_same_tuple(self, apac_svg):
        stream = read_svg_tags(apac_svg)
        assert stream.tags is stream.tags
        assert isinstance(stream.tags, tuple)
        assert len(stream.tags) == len(stream)


class TestSharedCaches:
    def test_caches_stay_bounded(self, monkeypatch):
        monkeypatch.setattr(stream_module, "_CACHE_LIMIT", 4)
        stream_module._FLOAT_CACHE.clear()
        for value in range(10):
            stream_module._float_token(str(value))
        assert len(stream_module._FLOAT_CACHE) <= 6

    def test_float_cache_hits_are_identical(self):
        first = stream_module._float_token("33.25")
        assert stream_module._float_token("33.25") == first
