"""Tests for the ParseOptions API redesign and its telemetry wiring.

Contracts: the options object and the deprecated per-call kwargs produce
identical results (the kwargs warning exactly once per call), options
survive pickling into pool workers, and instrumented runs — serial or
parallel, live registry or null sink — write byte-identical YAML.
"""

from __future__ import annotations

import pickle
import warnings
from dataclasses import FrozenInstanceError
from datetime import datetime, timedelta, timezone

import pytest

from repro.constants import LABEL_DISTANCE_THRESHOLD, MapName
from repro.dataset.engine import process_map_parallel
from repro.dataset.processor import process_map, process_svg_bytes
from repro.dataset.store import DatasetStore
from repro.dataset.validate import validate_map
from repro.layout.renderer import MapRenderer
from repro.parsing.pipeline import (
    DEFAULT_PARSE_OPTIONS,
    ParseOptions,
    parse_svg,
    resolve_parse_options,
)
from repro.telemetry import MetricsRegistry, NullRegistry, use_registry

T0 = datetime(2022, 9, 12, tzinfo=timezone.utc)
MAP = MapName.ASIA_PACIFIC


@pytest.fixture(scope="module")
def svg(simulator) -> str:
    return MapRenderer().render(simulator.snapshot(MAP, T0))


def build_corpus(root, svg: str, files: int = 4, corrupt: bool = True) -> DatasetStore:
    store = DatasetStore(root)
    for index in range(files):
        when = T0 + timedelta(minutes=5 * index)
        broken = corrupt and index == 2
        store.write(MAP, when, "svg", "<svg broken" if broken else svg)
    return store


def yaml_tree(store: DatasetStore) -> dict[str, bytes]:
    return {
        ref.path.name: ref.path.read_bytes()
        for ref in store.iter_refs(MAP, "yaml")
    }


class TestParseOptions:
    def test_defaults_mirror_the_legacy_kwargs(self):
        options = ParseOptions()
        assert options.fast_path is True
        assert options.accelerated is True
        assert options.label_distance_threshold == LABEL_DISTANCE_THRESHOLD

    def test_frozen(self):
        with pytest.raises(FrozenInstanceError):
            ParseOptions().fast_path = False

    def test_picklable(self):
        options = ParseOptions(fast_path=False, label_distance_threshold=10.0)
        assert pickle.loads(pickle.dumps(options)) == options


class TestResolveParseOptions:
    def test_no_arguments_yields_defaults(self):
        assert resolve_parse_options() is DEFAULT_PARSE_OPTIONS

    def test_options_passed_through(self):
        options = ParseOptions(fast_path=False)
        assert resolve_parse_options(options) is options

    def test_deprecated_kwarg_warns_once_per_call(self):
        with pytest.warns(DeprecationWarning) as caught:
            options = resolve_parse_options(fast_path=False, accelerated=False)
        assert len(caught) == 1
        assert "deprecated" in str(caught[0].message)
        assert options == ParseOptions(fast_path=False, accelerated=False)

    def test_mixing_options_and_deprecated_kwargs_rejected(self):
        with pytest.raises(TypeError):
            resolve_parse_options(ParseOptions(), fast_path=False)


class TestDeprecatedCallPaths:
    def test_parse_svg_kwargs_warn_and_match_options(self, svg):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            via_options = parse_svg(
                svg, MAP, T0, options=ParseOptions(fast_path=False)
            )
        with pytest.warns(DeprecationWarning):
            via_kwargs = parse_svg(svg, MAP, T0, fast_path=False)
        assert via_options.snapshot == via_kwargs.snapshot

    def test_parse_svg_threshold_kwarg_still_honoured(self, svg):
        with pytest.warns(DeprecationWarning):
            parsed = parse_svg(svg, MAP, T0, label_distance_threshold=200.0)
        assert parsed.snapshot.links

    def test_process_svg_bytes_kwarg_warns_and_matches(self, svg):
        data = svg.encode()
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            via_options = process_svg_bytes(
                data, MAP, T0, options=ParseOptions(fast_path=False)
            )
        with pytest.warns(DeprecationWarning):
            via_kwargs = process_svg_bytes(data, MAP, T0, fast_path=False)
        assert via_options.yaml_text == via_kwargs.yaml_text

    def test_validate_map_kwarg_warns(self, svg, tmp_path):
        store = build_corpus(tmp_path, svg)
        process_map(store, MAP)
        with pytest.warns(DeprecationWarning):
            report = validate_map(store, MAP, fast_path=False)
        assert report.yaml_files == 3

    def test_engine_kwarg_warns(self, svg, tmp_path):
        store = build_corpus(tmp_path, svg)
        with pytest.warns(DeprecationWarning):
            stats = process_map_parallel(store, MAP, workers=1, fast_path=False)
        assert stats.processed == 3


class TestByteIdenticalOutputs:
    def test_options_path_matches_deprecated_kwargs_path(self, svg, tmp_path):
        """The ISSUE's acceptance criterion: identical YAML bytes."""
        store_a = build_corpus(tmp_path / "a", svg)
        store_b = build_corpus(tmp_path / "b", svg)
        process_map(store_a, MAP, options=ParseOptions(fast_path=False))
        with pytest.warns(DeprecationWarning):
            process_map(store_b, MAP, fast_path=False)
        assert yaml_tree(store_a) == yaml_tree(store_b)

    def test_null_registry_run_is_byte_identical(self, svg, tmp_path):
        """Telemetry never changes outputs."""
        store_a = build_corpus(tmp_path / "a", svg)
        store_b = build_corpus(tmp_path / "b", svg)
        with use_registry(MetricsRegistry()):
            process_map(store_a, MAP)
        with use_registry(NullRegistry()):
            process_map(store_b, MAP)
        assert yaml_tree(store_a) == yaml_tree(store_b)


class TestTelemetryTotals:
    def test_parallel_totals_equal_serial_totals(self, svg, tmp_path):
        """Worker snapshots merged in the parent reproduce the serial
        counters exactly — files, failures, and stage observations."""
        store_serial = build_corpus(tmp_path / "serial", svg, files=6)
        store_parallel = build_corpus(tmp_path / "parallel", svg, files=6)
        serial, parallel = MetricsRegistry(), MetricsRegistry()
        with use_registry(serial):
            process_map(store_serial, MAP)
        with use_registry(parallel):
            process_map_parallel(
                store_parallel, MAP, workers=2, chunk_size=2, update_index=False
            )
        for name in ("repro_files_total", "repro_failures_total",
                     "repro_yaml_bytes_total"):
            assert parallel.get(name).series() == serial.get(name).series(), name
        stage_serial = serial.get("repro_parse_stage_seconds")
        stage_parallel = parallel.get("repro_parse_stage_seconds")
        for key in stage_serial.series():
            labels = dict(key)
            assert stage_parallel.count(**labels) == stage_serial.count(**labels)
        fast_serial = serial.get("repro_parse_fast_path_total")
        fast_parallel = parallel.get("repro_parse_fast_path_total")
        assert fast_parallel.series() == fast_serial.series()

    def test_manifest_hits_counted_on_warm_rerun(self, svg, tmp_path):
        store = build_corpus(tmp_path, svg, files=4)
        process_map_parallel(store, MAP, workers=1, update_index=False)
        registry = MetricsRegistry()
        with use_registry(registry):
            process_map_parallel(store, MAP, workers=1, update_index=False)
        lookups = registry.get("repro_manifest_lookups_total")
        assert lookups.value(map=MAP.value, outcome="hit") == 4
        assert lookups.value(map=MAP.value, outcome="miss") == 0
        files = registry.get("repro_files_total")
        assert files.value(map=MAP.value, outcome="skipped") == 4

    def test_index_cache_hit_and_miss_counted(self, svg, tmp_path):
        from repro.dataset.index import build_index, fresh_index

        store = build_corpus(tmp_path, svg, files=3, corrupt=False)
        process_map(store, MAP)
        registry = MetricsRegistry()
        with use_registry(registry):
            assert fresh_index(store, MAP) is None  # no index yet -> miss
            build_index(store, MAP)
            assert fresh_index(store, MAP) is not None  # now a hit
        cache = registry.get("repro_index_cache_total")
        assert cache.value(map=MAP.value, outcome="miss") == 1
        assert cache.value(map=MAP.value, outcome="hit") == 1
        rows = registry.get("repro_index_rows_total")
        assert rows.value(map=MAP.value, outcome="parsed") == 3
        assert registry.get("repro_index_build_seconds").count(map=MAP.value) == 1

    def test_loader_counts_snapshots_by_source(self, svg, tmp_path):
        from repro.dataset.index import build_index
        from repro.dataset.loader import load_all

        store = build_corpus(tmp_path, svg, files=3, corrupt=False)
        process_map(store, MAP)
        registry = MetricsRegistry()
        with use_registry(registry):
            yaml_loaded = load_all(store, MAP, use_index=False)
            build_index(store, MAP)
            index_loaded = load_all(store, MAP)
        assert yaml_loaded == index_loaded
        loaded = registry.get("repro_snapshots_loaded_total")
        assert loaded.value(map=MAP.value, source="yaml") == 3
        assert loaded.value(map=MAP.value, source="index") == 3
