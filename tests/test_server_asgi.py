"""Conformance tests for the ASGI adapter (repro.server.asgi).

The adapter is a plain ASGI-3 callable, so the whole protocol is
exercised here with hand-rolled ``scope``/``receive``/``send`` — no
uvicorn, no test client dependency.  The headline contract is parity:
for the same store, the ASGI app and the threaded ``WeatherServer``
answer **byte-for-byte identically** — same JSON bodies, same ETags,
same error envelopes, and identical SSE frames for the same generation
(baseline *and* a live checkpoint observed by both watchers).
"""

from __future__ import annotations

import asyncio
import http.client
import threading
from contextlib import contextmanager
from datetime import datetime, timedelta, timezone

import pytest

from repro.constants import MapName
from repro.dataset.processor import process_svg_bytes
from repro.dataset.shards import compact_map_shards
from repro.dataset.store import ShardedDatasetStore
from repro.errors import ServerError
from repro.server import ServeOptions, create_asgi_app, create_server
from repro.server.asgi import serve_asgi

T0 = datetime(2022, 9, 12, tzinfo=timezone.utc)
MAP = MapName.ASIA_PACIFIC
TICK = 0.05


@pytest.fixture(scope="module")
def reference_yaml(apac_svg) -> str:
    outcome = process_svg_bytes(apac_svg.encode("utf-8"), MAP, T0)
    assert outcome.yaml_text is not None
    return outcome.yaml_text


def build_corpus(root, yaml_text: str) -> ShardedDatasetStore:
    store = ShardedDatasetStore(root)
    store.mark()
    store.write(MAP, T0, "yaml", yaml_text)
    compact_map_shards(store, MAP)
    return store


def checkpoint(store, yaml_text: str, when: datetime) -> None:
    store.write(MAP, when, "yaml", yaml_text)
    compact_map_shards(store, MAP, only=[when.strftime("%Y-%m-%d")])


@contextmanager
def running_server(store, **option_kwargs):
    option_kwargs.setdefault("watch_interval", TICK)
    server = create_server(store, ServeOptions(port=0, **option_kwargs))
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


@contextmanager
def asgi_app(store, **option_kwargs):
    option_kwargs.setdefault("port", 0)
    option_kwargs.setdefault("watch_interval", TICK)
    app = create_asgi_app(store, ServeOptions(**option_kwargs))
    try:
        yield app
    finally:
        app.state.close()


def http_scope(path: str, *, method: str = "GET", query: bytes = b"",
               headers=()) -> dict:
    return {
        "type": "http",
        "asgi": {"version": "3.0"},
        "method": method,
        "path": path,
        "query_string": query,
        "headers": [
            (name.encode("latin-1"), value.encode("latin-1"))
            for name, value in headers
        ],
    }


async def asgi_get(app, path: str, **scope_kwargs) -> tuple[int, dict, bytes]:
    """One non-streaming request; (status, headers, body)."""
    messages: list[dict] = []

    async def receive() -> dict:
        return {"type": "http.request", "body": b"", "more_body": False}

    async def send(message: dict) -> None:
        messages.append(message)

    await app(http_scope(path, **scope_kwargs), receive, send)
    start = messages[0]
    assert start["type"] == "http.response.start"
    body = b"".join(
        message.get("body", b"")
        for message in messages
        if message["type"] == "http.response.body"
    )
    headers = {
        name.decode("latin-1"): value.decode("latin-1")
        for name, value in start["headers"]
    }
    return start["status"], headers, body


async def asgi_stream_frames(
    app, path: str, *, frames_wanted: int, headers=(), on_frame=None
) -> tuple[dict, list[bytes]]:
    """Drain an SSE response until ``frames_wanted`` frames arrived.

    ``on_frame(index)`` runs after each frame (for mid-stream
    checkpoints); the client then disconnects and the app must finish.
    """
    receive_queue: asyncio.Queue[dict] = asyncio.Queue()
    start_message: dict = {}
    frames: list[bytes] = []
    buffer = bytearray()
    done = asyncio.Event()

    async def receive() -> dict:
        return await receive_queue.get()

    async def send(message: dict) -> None:
        if message["type"] == "http.response.start":
            start_message.update(message)
            return
        buffer.extend(message.get("body", b""))
        while b"\n\n" in buffer:
            frame, _, rest = bytes(buffer).partition(b"\n\n")
            buffer[:] = rest
            if frame.startswith(b":"):
                continue  # heartbeat
            frames.append(frame + b"\n\n")
            if on_frame is not None:
                on_frame(len(frames))
            if len(frames) >= frames_wanted:
                done.set()

    async def disconnect_when_done() -> None:
        await done.wait()
        await receive_queue.put({"type": "http.disconnect"})

    task = asyncio.ensure_future(
        app(http_scope(path, headers=headers), receive, send)
    )
    closer = asyncio.ensure_future(disconnect_when_done())
    await asyncio.wait_for(task, timeout=30)
    await closer
    return start_message, frames


def threaded_get(port: int, path: str, method: str = "GET"):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        conn.request(method, path)
        response = conn.getresponse()
        return response.status, dict(response.getheaders()), response.read()
    finally:
        conn.close()


class ThreadedSseReader:
    """A live SSE stream off the threaded server, read frame by frame."""

    def __init__(self, port: int, path: str) -> None:
        self.conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
        self.conn.request("GET", path)
        self.response = self.conn.getresponse()

    def next_frame(self) -> bytes:
        """The next non-heartbeat frame, raw bytes."""
        while True:
            lines: list[bytes] = []
            while True:
                line = self.response.readline()
                assert line, "stream ended unexpectedly"
                if line == b"\n":
                    break
                lines.append(line)
            if lines and not lines[0].startswith(b":"):
                # lines keep their trailing newlines; re-add the blank
                # separator so these bytes equal what came off the wire.
                return b"".join(lines) + b"\n"

    def close(self) -> None:
        self.conn.close()


class TestLifespan:
    def test_startup_and_shutdown_complete(self, tmp_path, reference_yaml):
        store = build_corpus(tmp_path, reference_yaml)
        app = create_asgi_app(store, ServeOptions(port=0, watch_interval=TICK))
        sent: list[dict] = []
        incoming = [
            {"type": "lifespan.startup"},
            {"type": "lifespan.shutdown"},
        ]

        async def receive() -> dict:
            return incoming.pop(0)

        async def send(message: dict) -> None:
            sent.append(message)

        asyncio.run(app({"type": "lifespan"}, receive, send))
        assert [message["type"] for message in sent] == [
            "lifespan.startup.complete",
            "lifespan.shutdown.complete",
        ]

    def test_unsupported_scope_type_is_typed(self, tmp_path, reference_yaml):
        store = build_corpus(tmp_path, reference_yaml)
        with asgi_app(store) as app:
            async def never_receive() -> dict:
                raise AssertionError("must not be called")

            async def never_send(message: dict) -> None:
                raise AssertionError("must not be called")

            with pytest.raises(ServerError, match="websocket"):
                asyncio.run(
                    app({"type": "websocket"}, never_receive, never_send)
                )


class TestParityWithThreadedServer:
    PATHS = (
        "/v1/healthz",
        "/v1/maps",
        f"/v1/maps/{MAP.value}/snapshot",
        f"/v1/maps/{MAP.value}/evolution",
        "/v1/maps/atlantis/snapshot",
        f"/v1/maps/{MAP.value}/generation",
        f"/maps/{MAP.value}/snapshot",  # deprecated surface, with headers
    )

    def test_json_surfaces_agree_byte_for_byte(self, tmp_path, reference_yaml):
        store = build_corpus(tmp_path, reference_yaml)
        with running_server(store) as server, asgi_app(store) as app:
            port = server.server_address[1]
            for path in self.PATHS:
                t_status, t_headers, t_body = threaded_get(port, path)
                a_status, a_headers, a_body = asyncio.run(asgi_get(app, path))
                assert a_status == t_status, path
                assert a_body == t_body, path
                for name in ("Content-Type", "ETag", "Deprecation", "Link"):
                    assert a_headers.get(name.lower()) == t_headers.get(name), (
                        path, name,
                    )

    def test_head_serves_headers_without_a_body(self, tmp_path, reference_yaml):
        store = build_corpus(tmp_path, reference_yaml)
        with asgi_app(store) as app:
            status, headers, body = asyncio.run(
                asgi_get(app, "/v1/maps", method="HEAD")
            )
            assert status == 200
            assert body == b""
            assert int(headers["content-length"]) > 0

    def test_post_is_405_with_the_envelope(self, tmp_path, reference_yaml):
        store = build_corpus(tmp_path, reference_yaml)
        with asgi_app(store) as app:
            status, headers, body = asyncio.run(
                asgi_get(app, "/v1/maps", method="POST")
            )
            assert status == 405
            assert headers["allow"] == "GET, HEAD"
            assert b'"method_not_allowed"' in body

    def test_sse_frames_agree_byte_for_byte(self, tmp_path, reference_yaml):
        """Baseline + one live checkpoint, seen identically by both
        transports' independent watchers over the same store."""
        store = build_corpus(tmp_path, reference_yaml)
        with running_server(store) as server, asgi_app(store) as app:
            port = server.server_address[1]
            path = f"/v1/maps/{MAP.value}/events"
            # The threaded subscriber connects first, so both transports
            # watch the same two generations live.
            threaded = ThreadedSseReader(port, path)
            threaded_frames = [threaded.next_frame()]  # the baseline
            fired = threading.Event()

            def on_frame(count: int) -> None:
                if count == 1 and not fired.is_set():
                    fired.set()
                    checkpoint(store, reference_yaml, T0 + timedelta(minutes=1))

            start, asgi_frames = asyncio.run(
                asgi_stream_frames(app, path, frames_wanted=2, on_frame=on_frame)
            )
            threaded_frames.append(threaded.next_frame())
            threaded.close()
            assert start["status"] == 200
            headers = dict(start["headers"])
            assert headers[b"content-type"] == b"text/event-stream"
            assert asgi_frames == threaded_frames

    def test_last_event_id_resume_over_asgi(self, tmp_path, reference_yaml):
        store = build_corpus(tmp_path, reference_yaml)
        with asgi_app(store) as app:
            app.state.start()
            app.state.feed.poll_now()
            for minute in (1, 2):
                checkpoint(store, reference_yaml, T0 + timedelta(minutes=minute))
                app.state.feed.poll_now()
            _, frames = asyncio.run(
                asgi_stream_frames(
                    app,
                    f"/v1/maps/{MAP.value}/events",
                    frames_wanted=2,
                    headers=(("Last-Event-ID", "1"),),
                )
            )
            assert frames[0].startswith(b"id: 2\n")
            assert frames[1].startswith(b"id: 3\n")


class TestUvicornGate:
    def test_serve_asgi_without_uvicorn_is_typed(
        self, tmp_path, reference_yaml, monkeypatch
    ):
        import builtins

        store = build_corpus(tmp_path, reference_yaml)
        real_import = builtins.__import__

        def no_uvicorn(name, *args, **kwargs):
            if name == "uvicorn":
                raise ImportError("No module named 'uvicorn'")
            return real_import(name, *args, **kwargs)

        monkeypatch.setattr(builtins, "__import__", no_uvicorn)
        with pytest.raises(ServerError, match=r"repro\[asgi\]"):
            serve_asgi(store, ServeOptions(port=0))
