"""Tests for the Figure 6 upgrade detection and PeeringDB correlation."""

from datetime import timedelta

import pytest

from repro.analysis.upgrades import (
    GroupObservation,
    correlate_with_peeringdb,
    detect_upgrades,
    track_peering_group,
)
from repro.constants import MapName
from repro.peeringdb.feed import SyntheticPeeringDB


@pytest.fixture(scope="module")
def upgrade_snapshots(simulator):
    """Six-hourly Europe snapshots spanning the scripted upgrade."""
    scenario = simulator.upgrade
    snapshots = []
    current = scenario.added_at - timedelta(days=8)
    end = scenario.activated_at + timedelta(days=10)
    while current < end:
        snapshots.append(simulator.snapshot(MapName.EUROPE, current))
        current += timedelta(hours=6)
    return snapshots


@pytest.fixture(scope="module")
def observations(upgrade_snapshots, simulator):
    return track_peering_group(upgrade_snapshots, simulator.upgrade.peering)


class TestTracking:
    def test_group_sizes_seen(self, observations, simulator):
        scenario = simulator.upgrade
        sizes = {obs.size for obs in observations}
        assert sizes == {scenario.links_before, scenario.links_after}

    def test_new_link_initially_inactive(self, observations, simulator):
        scenario = simulator.upgrade
        grown = [obs for obs in observations if obs.size == scenario.links_after]
        assert grown[0].active_size == scenario.links_before

    def test_unknown_peering_empty(self, upgrade_snapshots):
        assert track_peering_group(upgrade_snapshots, "NO-SUCH-IX") == []


class TestDetection:
    def test_exactly_one_upgrade(self, observations):
        events = detect_upgrades(observations)
        assert len(events) == 1

    def test_event_dates_match_scenario(self, observations, simulator):
        scenario = simulator.upgrade
        event = detect_upgrades(observations)[0]
        assert abs((event.added_at - scenario.added_at).total_seconds()) < 7 * 3600
        assert (
            abs((event.activated_at - scenario.activated_at).total_seconds())
            < 7 * 3600
        )

    def test_link_counts(self, observations, simulator):
        scenario = simulator.upgrade
        event = detect_upgrades(observations)[0]
        assert event.links_before == scenario.links_before
        assert event.links_after == scenario.links_after
        assert event.expected_load_ratio == pytest.approx(0.8)

    def test_load_drops(self, observations):
        event = detect_upgrades(observations)[0]
        assert event.load_after < event.load_before

    def test_no_upgrade_in_flat_stream(self):
        from datetime import datetime, timezone

        base = datetime(2022, 1, 1, tzinfo=timezone.utc)
        flat = [
            GroupObservation(
                when=base + timedelta(hours=6 * i), loads=(40.0, 41.0, 39.0)
            )
            for i in range(40)
        ]
        assert detect_upgrades(flat) == []

    def test_size_decrease_not_an_upgrade(self):
        from datetime import datetime, timezone

        base = datetime(2022, 1, 1, tzinfo=timezone.utc)
        stream = [
            GroupObservation(when=base + timedelta(hours=i), loads=(40.0,) * 4)
            for i in range(10)
        ] + [
            GroupObservation(
                when=base + timedelta(hours=10 + i), loads=(50.0,) * 3
            )
            for i in range(10)
        ]
        assert detect_upgrades(stream) == []


class TestCorrelation:
    def test_correlated_upgrade(self, observations, simulator):
        scenario = simulator.upgrade
        peeringdb = SyntheticPeeringDB(simulator)
        events = detect_upgrades(observations)
        correlated = correlate_with_peeringdb(events, peeringdb, scenario.peering)
        assert len(correlated) == 1
        item = correlated[0]
        assert item.peeringdb_updated == scenario.peeringdb_at
        assert item.capacity_before_gbps == 400
        assert item.capacity_after_gbps == 500

    def test_per_link_capacity_inferred(self, observations, simulator):
        # "We can conclude that each link has a capacity of 100 Gbps."
        scenario = simulator.upgrade
        peeringdb = SyntheticPeeringDB(simulator)
        correlated = correlate_with_peeringdb(
            detect_upgrades(observations), peeringdb, scenario.peering
        )
        assert correlated[0].inferred_per_link_capacity_gbps == pytest.approx(100.0)

    def test_no_change_no_correlation(self, observations, simulator):
        peeringdb = SyntheticPeeringDB(simulator)
        events = detect_upgrades(observations)
        # Correlating against a peering with a static capacity history.
        static_peering = next(
            name for name in peeringdb.peerings() if name != simulator.upgrade.peering
        )
        assert correlate_with_peeringdb(events, peeringdb, static_peering) == []


class TestScanAllPeerings:
    def test_finds_only_the_scripted_upgrade(self, upgrade_snapshots, simulator):
        from repro.analysis.upgrades import scan_all_peerings

        found = scan_all_peerings(upgrade_snapshots)
        assert simulator.upgrade.peering in found
        assert len(found[simulator.upgrade.peering]) == 1
        # No spurious detections on the dozens of other peerings.
        assert len(found) == 1

    def test_empty_stream(self):
        from repro.analysis.upgrades import scan_all_peerings

        assert scan_all_peerings([]) == {}


class TestDowngrades:
    def _stream(self, sizes_and_loads):
        from datetime import datetime, timezone

        base = datetime(2022, 1, 1, tzinfo=timezone.utc)
        return [
            GroupObservation(
                when=base + timedelta(hours=6 * i), loads=tuple([load] * size)
            )
            for i, (size, load) in enumerate(sizes_and_loads)
        ]

    def test_removal_detected(self):
        from repro.analysis.upgrades import detect_downgrades

        stream = self._stream([(5, 36)] * 10 + [(4, 45)] * 10)
        events = detect_downgrades(stream)
        assert len(events) == 1
        event = events[0]
        assert (event.links_before, event.links_after) == (5, 4)
        assert event.expected_load_ratio == 1.25
        assert event.observed_load_ratio > 1.0

    def test_growth_not_a_downgrade(self):
        from repro.analysis.upgrades import detect_downgrades

        stream = self._stream([(4, 45)] * 10 + [(5, 36)] * 10)
        assert detect_downgrades(stream) == []

    def test_no_downgrade_in_scripted_scenario(self, observations):
        from repro.analysis.upgrades import detect_downgrades

        assert detect_downgrades(observations) == []
