"""Unit tests for chart rendering (SVG charts, ASCII previews, CSV)."""

import pytest

from repro.charts.ascii import ascii_plot, sparkline
from repro.charts.export import series_to_csv
from repro.charts.svgchart import BandSeries, ChartRenderer, Series, StepSeries
from repro.errors import ReproError


class TestSeries:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ReproError):
            Series(name="s", xs=(1, 2), ys=(1,))

    def test_band_length_mismatch_rejected(self):
        with pytest.raises(ReproError):
            BandSeries(name="b", xs=(1, 2), lows=(1,), highs=(2, 3))


class TestChartRenderer:
    def _chart(self) -> ChartRenderer:
        chart = ChartRenderer(title="Test chart", x_label="x", y_label="y")
        chart.add_series(Series(name="line", xs=(0, 1, 2), ys=(0, 1, 4)))
        return chart

    def test_renders_svg(self):
        svg = self._chart().to_svg()
        assert svg.startswith("<svg")
        assert "Test chart" in svg
        assert "<polyline" in svg

    def test_empty_chart_rejected(self):
        with pytest.raises(ReproError):
            ChartRenderer(title="empty").to_svg()

    def test_step_series_has_extra_points(self):
        plain = ChartRenderer(title="t")
        plain.add_series(Series(name="s", xs=(0, 1, 2), ys=(0, 1, 2)))
        stepped = ChartRenderer(title="t")
        stepped.add_series(StepSeries(name="s", xs=(0, 1, 2), ys=(0, 1, 2)))
        plain_points = plain.to_svg().split('points="')[1]
        step_points = stepped.to_svg().split('points="')[1]
        assert len(step_points) > len(plain_points)

    def test_band_rendered_as_polygon(self):
        chart = ChartRenderer(title="band")
        chart.add_band(
            BandSeries(name="b", xs=(0, 1, 2), lows=(0, 1, 1), highs=(2, 3, 3))
        )
        chart.add_series(Series(name="median", xs=(0, 1, 2), ys=(1, 2, 2)))
        assert "<polygon" in chart.to_svg()

    def test_log_x_axis(self):
        chart = ChartRenderer(title="log", x_log=True)
        chart.add_series(Series(name="cdf", xs=(1, 10, 100, 1000), ys=(0, 0.5, 0.9, 1)))
        svg = chart.to_svg()
        assert "1000" in svg

    def test_legend_names_present(self):
        chart = ChartRenderer(title="t")
        chart.add_series(Series(name="internal", xs=(0, 1), ys=(0, 1)))
        chart.add_series(Series(name="external", xs=(0, 1), ys=(1, 0)))
        svg = chart.to_svg()
        assert "internal" in svg and "external" in svg

    def test_write(self, tmp_path):
        target = tmp_path / "charts" / "out.svg"
        self._chart().write(target)
        assert target.exists()
        assert target.read_text(encoding="utf-8").startswith("<svg")

    def test_custom_color_used(self):
        chart = ChartRenderer(title="t")
        chart.add_series(Series(name="s", xs=(0, 1), ys=(0, 1), color="#123456"))
        assert "#123456" in chart.to_svg()


class TestAscii:
    def test_sparkline_length(self):
        line = sparkline([1, 2, 3, 4, 5])
        assert len(line) == 5

    def test_sparkline_downsamples(self):
        line = sparkline(list(range(1000)), width=50)
        assert len(line) == 50

    def test_sparkline_flat(self):
        assert set(sparkline([5, 5, 5])) == {"▁"}

    def test_sparkline_empty(self):
        assert sparkline([]) == ""

    def test_ascii_plot_contains_markers(self):
        plot = ascii_plot([0, 1, 2, 3], [0, 1, 4, 9])
        assert "*" in plot

    def test_ascii_plot_bounds_shown(self):
        plot = ascii_plot([0, 100], [5, 50])
        assert "100" in plot

    def test_ascii_plot_no_data(self):
        assert ascii_plot([], []) == "(no data)"


class TestCsv:
    def test_columns_written(self):
        text = series_to_csv({"x": [1, 2], "y": [3, 4]})
        lines = text.strip().splitlines()
        assert lines[0] == "x,y"
        assert lines[1] == "1,3"

    def test_unequal_lengths_padded(self):
        text = series_to_csv({"x": [1, 2, 3], "y": [9]})
        lines = text.strip().splitlines()
        assert lines[2] == "2,"

    def test_file_output(self, tmp_path):
        target = tmp_path / "data" / "series.csv"
        series_to_csv({"a": [1]}, target)
        assert target.read_text(encoding="utf-8").startswith("a")


class TestGantt:
    def _chart(self):
        from datetime import datetime, timezone

        from repro.charts.gantt import GanttChart

        chart = GanttChart(title="Figure 2")
        chart.add_row(
            "Europe",
            [
                (
                    datetime(2020, 7, 1, tzinfo=timezone.utc),
                    datetime(2022, 9, 12, tzinfo=timezone.utc),
                )
            ],
        )
        chart.add_row(
            "World",
            [
                (
                    datetime(2020, 7, 1, tzinfo=timezone.utc),
                    datetime(2020, 9, 20, tzinfo=timezone.utc),
                ),
                (
                    datetime(2021, 10, 5, tzinfo=timezone.utc),
                    datetime(2022, 9, 12, tzinfo=timezone.utc),
                ),
            ],
        )
        return chart

    def test_renders_rows_and_bars(self):
        svg = self._chart().to_svg()
        assert "Europe" in svg and "World" in svg
        assert svg.count('rx="3"') == 3  # three segment bars

    def test_year_gridlines(self):
        svg = self._chart().to_svg()
        assert "2021" in svg and "2022" in svg

    def test_empty_rejected(self):
        from repro.charts.gantt import GanttChart
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            GanttChart(title="x").to_svg()

    def test_empty_segment_rejected(self):
        from datetime import datetime, timezone

        from repro.charts.gantt import GanttRow
        from repro.errors import ReproError

        when = datetime(2022, 1, 1, tzinfo=timezone.utc)
        with pytest.raises(ReproError):
            GanttRow(label="x", segments=((when, when),))

    def test_write(self, tmp_path):
        target = tmp_path / "fig2.svg"
        self._chart().write(target)
        assert target.read_text(encoding="utf-8").startswith("<svg")
