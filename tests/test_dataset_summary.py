"""Unit tests for Table 1 building and formatting."""

import pytest

from repro.constants import (
    MapName,
    REFERENCE_DATE,
    TABLE1_PAPER,
    TABLE1_PAPER_TOTAL,
)
from repro.dataset.summary import build_table1, format_table1


@pytest.fixture(scope="module")
def table1(simulator):
    snapshots = {
        map_name: simulator.snapshot(map_name, REFERENCE_DATE)
        for map_name in simulator.map_names
    }
    return build_table1(snapshots)


class TestTable1:
    def test_per_map_rows_match_paper(self, table1):
        by_map = {row.map_name: row for row in table1 if row.map_name}
        for map_name, (routers, internal, external) in TABLE1_PAPER.items():
            row = by_map[map_name]
            assert (row.routers, row.internal_links, row.external_links) == (
                routers,
                internal,
                external,
            )

    def test_total_row_deduplicates(self, table1):
        total = table1[-1]
        assert total.map_name is None
        assert (
            total.routers,
            total.internal_links,
            total.external_links,
        ) == TABLE1_PAPER_TOTAL

    def test_total_less_than_sum(self, table1):
        per_map = [row for row in table1 if row.map_name]
        total = table1[-1]
        assert total.routers < sum(row.routers for row in per_map)
        assert total.internal_links < sum(row.internal_links for row in per_map)
        # External links are never shared between maps.
        assert total.external_links == sum(row.external_links for row in per_map)

    def test_partial_map_set(self, simulator):
        rows = build_table1(
            {MapName.EUROPE: simulator.snapshot(MapName.EUROPE, REFERENCE_DATE)}
        )
        assert len(rows) == 2
        assert rows[-1].routers == TABLE1_PAPER[MapName.EUROPE][0]

    def test_formatting(self, table1):
        text = format_table1(table1)
        assert "Europe" in text
        assert "North America" in text
        assert "Total" in text
        assert "1,186" in text
