"""Core topology data model: nodes, links, snapshots, parallel groups."""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime
from enum import Enum
from typing import Iterator

from repro.constants import LOAD_MAX, LOAD_MIN, MapName
from repro.errors import LoadRangeError, SchemaError, UnknownEndpointError


class NodeKind(str, Enum):
    """The two kinds of white boxes on a weather map."""

    ROUTER = "router"
    PEERING = "peering"


@dataclass(frozen=True, slots=True)
class Node:
    """A router or physical peering on the map."""

    name: str
    kind: NodeKind

    @classmethod
    def from_name(cls, name: str) -> Node:
        """Infer the kind from the map's naming convention.

        Peerings are written in upper case on the weathermap, routers in
        lower case (Section 4, Figure 1).
        """
        kind = NodeKind.PEERING if name.upper() == name else NodeKind.ROUTER
        return cls(name=name, kind=kind)

    @property
    def is_router(self) -> bool:
        return self.kind is NodeKind.ROUTER

    @property
    def is_peering(self) -> bool:
        return self.kind is NodeKind.PEERING


@dataclass(frozen=True, slots=True)
class LinkEnd:
    """One end of a bidirectional link: the node it attaches to, the label
    of that end (e.g. ``#1``), and the egress load *from* that end."""

    node: str
    label: str
    load: float

    def __post_init__(self) -> None:
        if not LOAD_MIN <= self.load <= LOAD_MAX:
            raise LoadRangeError(
                f"load {self.load} on end {self.node!r} outside "
                f"[{LOAD_MIN}, {LOAD_MAX}]"
            )


@dataclass(frozen=True, slots=True)
class Link:
    """A bidirectional link between two nodes.

    ``a.load`` is the utilisation in the a→b direction (egress from ``a``),
    ``b.load`` the b→a direction.  Parallel links between the same node pair
    are distinct ``Link`` instances; their labels may or may not be unique
    (the paper notes VODAFONE's parallel links share labels).
    """

    a: LinkEnd
    b: LinkEnd

    def __post_init__(self) -> None:
        if self.a.node == self.b.node:
            raise SchemaError(f"link connects {self.a.node!r} to itself")

    @property
    def nodes(self) -> tuple[str, str]:
        """Endpoint names in document order."""
        return (self.a.node, self.b.node)

    @property
    def key(self) -> tuple[str, str]:
        """Order-independent endpoint pair, for grouping parallel links."""
        return tuple(sorted((self.a.node, self.b.node)))  # type: ignore[return-value]

    def end_for(self, node: str) -> LinkEnd:
        """The end attached to ``node``."""
        if self.a.node == node:
            return self.a
        if self.b.node == node:
            return self.b
        raise UnknownEndpointError(f"{node!r} is not an endpoint of this link")

    def load_from(self, node: str) -> float:
        """Egress load in the direction leaving ``node``."""
        return self.end_for(node).load

    def is_disabled(self) -> bool:
        """"A disabled link is represented with a load level of 0 %"."""
        return self.a.load == 0.0 and self.b.load == 0.0


@dataclass(frozen=True, slots=True)
class ParallelGroup:
    """A directed set of parallel links from ``source`` to ``target``.

    The imbalance analysis of Figure 5c works on these: all parallel links
    between two nodes, considered in one direction.
    """

    source: str
    target: str
    loads: tuple[float, ...]
    external: bool

    @property
    def size(self) -> int:
        """Number of parallel links in the group."""
        return len(self.loads)

    def active_loads(self, minimum_load: float = 2.0) -> tuple[float, ...]:
        """Loads after the paper's filtering.

        "We ignore links with 0 % load as they are unused ... We also
        discount links with 1 % load as we cannot differentiate a low
        traffic load value from control traffic only."
        """
        return tuple(load for load in self.loads if load >= minimum_load)

    def imbalance(self, minimum_load: float = 2.0) -> float | None:
        """Max−min load across the group after filtering.

        Returns ``None`` for groups that the paper removes: "we remove sets
        with only one remaining link".
        """
        active = self.active_loads(minimum_load)
        if len(active) < 2:
            return None
        return max(active) - min(active)


@dataclass
class MapSnapshot:
    """One weather-map observation: the full topology at one instant."""

    map_name: MapName
    timestamp: datetime
    nodes: dict[str, Node] = field(default_factory=dict)
    links: list[Link] = field(default_factory=list)

    def add_node(self, node: Node) -> None:
        """Register a node; idempotent for identical nodes."""
        existing = self.nodes.get(node.name)
        if existing is not None and existing != node:
            raise SchemaError(f"conflicting definitions for node {node.name!r}")
        self.nodes[node.name] = node

    def add_link(self, link: Link) -> None:
        """Register a link; both endpoints must already be nodes."""
        for endpoint in link.nodes:
            if endpoint not in self.nodes:
                raise SchemaError(f"link references unknown node {endpoint!r}")
        self.links.append(link)

    @property
    def routers(self) -> list[Node]:
        """OVH routers on the map (Table 1, column 1)."""
        return [node for node in self.nodes.values() if node.is_router]

    @property
    def peerings(self) -> list[Node]:
        """Physical peerings on the map."""
        return [node for node in self.nodes.values() if node.is_peering]

    def is_external(self, link: Link) -> bool:
        """External links connect a router to a physical peering."""
        kinds = {self.nodes[name].kind for name in link.nodes}
        return NodeKind.PEERING in kinds

    @property
    def internal_links(self) -> list[Link]:
        """Router-to-router links (Table 1, column 2)."""
        return [link for link in self.links if not self.is_external(link)]

    @property
    def external_links(self) -> list[Link]:
        """Router-to-peering links (Table 1, column 3)."""
        return [link for link in self.links if self.is_external(link)]

    def links_of(self, node_name: str) -> list[Link]:
        """Every link with an end on ``node_name`` (parallel links included)."""
        return [link for link in self.links if node_name in link.nodes]

    def degree(self, node_name: str) -> int:
        """Node degree counting parallel links, as in Figure 4c."""
        return len(self.links_of(node_name))

    def iter_loads(self) -> Iterator[tuple[Link, str, float]]:
        """Yield every directed load sample as ``(link, source_node, load)``."""
        for link in self.links:
            yield link, link.a.node, link.a.load
            yield link, link.b.node, link.b.load

    def summary_counts(self) -> tuple[int, int, int]:
        """Table 1 row: (routers, internal links, external links)."""
        return (len(self.routers), len(self.internal_links), len(self.external_links))
