"""Topology model of a backbone weather map.

A :class:`~repro.topology.model.MapSnapshot` is the ground truth the simulator
produces, the structure the parser extracts from SVG, and the unit the dataset
stores as YAML.  The model mirrors the map semantics of Section 4: OVH routers
(lower-case names) and physical peerings (upper-case names) as nodes,
bidirectional links with per-direction load percentages and per-end labels,
parallel links between the same pair of nodes, and the internal/external link
distinction the analysis relies on.
"""

from repro.topology.model import (
    Link,
    LinkEnd,
    MapSnapshot,
    Node,
    NodeKind,
    ParallelGroup,
)
from repro.topology.graph import (
    directed_parallel_groups,
    node_degrees,
    parallel_groups,
    to_networkx,
)
from repro.topology.diff import SnapshotDiff, diff_snapshots
from repro.topology.names import NameGenerator, PEERING_NAMES

__all__ = [
    "Link",
    "LinkEnd",
    "MapSnapshot",
    "Node",
    "NodeKind",
    "ParallelGroup",
    "directed_parallel_groups",
    "node_degrees",
    "parallel_groups",
    "to_networkx",
    "SnapshotDiff",
    "diff_snapshots",
    "NameGenerator",
    "PEERING_NAMES",
]
