"""Graph views over a map snapshot (networkx adapters, degrees, ECMP groups)."""

from __future__ import annotations

from collections import defaultdict

import networkx

from repro.topology.model import MapSnapshot, ParallelGroup


def to_networkx(snapshot: MapSnapshot) -> networkx.MultiGraph:
    """Build a MultiGraph: one node per router/peering, one edge per link.

    Parallel links become parallel edges, so graph-theoretic measures
    (degree, connectivity, path diversity) match the paper's counting.
    """
    graph = networkx.MultiGraph(
        map_name=snapshot.map_name.value,
        timestamp=snapshot.timestamp.isoformat(),
    )
    for node in snapshot.nodes.values():
        graph.add_node(node.name, kind=node.kind.value)
    for link in snapshot.links:
        graph.add_edge(
            link.a.node,
            link.b.node,
            label_a=link.a.label,
            label_b=link.b.label,
            load_ab=link.a.load,
            load_ba=link.b.load,
            external=snapshot.is_external(link),
        )
    return graph


def node_degrees(snapshot: MapSnapshot, routers_only: bool = True) -> dict[str, int]:
    """Degree of each node, counting all parallel links (Figure 4c).

    Args:
        routers_only: restrict to OVH routers, as the paper's CCDF does.
    """
    degrees: dict[str, int] = defaultdict(int)
    for node in snapshot.nodes.values():
        if routers_only and not node.is_router:
            continue
        degrees[node.name] = 0
    for link in snapshot.links:
        for endpoint in link.nodes:
            if endpoint in degrees:
                degrees[endpoint] += 1
    return dict(degrees)


def parallel_groups(snapshot: MapSnapshot) -> dict[tuple[str, str], list]:
    """Undirected parallel-link groups keyed by sorted endpoint pair."""
    groups: dict[tuple[str, str], list] = defaultdict(list)
    for link in snapshot.links:
        groups[link.key].append(link)
    return dict(groups)


def directed_parallel_groups(snapshot: MapSnapshot) -> list[ParallelGroup]:
    """Every *directed* set of parallel links, as used by Figure 5c.

    Each undirected group of n parallel links yields two directed groups of
    n loads each (one per traffic direction).
    """
    result: list[ParallelGroup] = []
    for (left, right), links in sorted(parallel_groups(snapshot).items()):
        external = snapshot.is_external(links[0])
        loads_forward = tuple(link.load_from(left) for link in links)
        loads_backward = tuple(link.load_from(right) for link in links)
        result.append(
            ParallelGroup(source=left, target=right, loads=loads_forward, external=external)
        )
        result.append(
            ParallelGroup(source=right, target=left, loads=loads_backward, external=external)
        )
    return result


def mean_parallel_link_count(snapshot: MapSnapshot) -> float:
    """Average number of parallel links per connected node pair.

    Section 5 reports 6.58 for the Europe map on the reference date.
    """
    groups = parallel_groups(snapshot)
    if not groups:
        return 0.0
    return len(snapshot.links) / len(groups)


def isolated_routers(snapshot: MapSnapshot) -> list[str]:
    """Routers with no link at all — the parser's final sanity check flags
    these ("we ensure that each router is attributed at least one link")."""
    degrees = node_degrees(snapshot, routers_only=True)
    return sorted(name for name, degree in degrees.items() if degree == 0)
