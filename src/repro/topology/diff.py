"""Snapshot diffing: what changed between two observations of a map.

The evolution analysis (Figures 4a/4b) and the event narratives of Section 5
— make-before-break upgrades, forced maintenance, stepwise internal growth —
are all statements about differences between consecutive snapshots.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.topology.model import Link, MapSnapshot


def _link_signature(snapshot: MapSnapshot, link: Link) -> tuple[str, str, str, str]:
    """Identity of a link across snapshots: endpoints plus end labels.

    Loads change every five minutes; endpoints and labels identify the
    physical link.
    """
    first, second = sorted(
        ((link.a.node, link.a.label), (link.b.node, link.b.label))
    )
    return (first[0], first[1], second[0], second[1])


@dataclass
class SnapshotDiff:
    """Structural changes from an ``old`` snapshot to a ``new`` one."""

    added_routers: list[str] = field(default_factory=list)
    removed_routers: list[str] = field(default_factory=list)
    added_peerings: list[str] = field(default_factory=list)
    removed_peerings: list[str] = field(default_factory=list)
    added_internal_links: int = 0
    removed_internal_links: int = 0
    added_external_links: int = 0
    removed_external_links: int = 0

    @property
    def is_empty(self) -> bool:
        """Whether the two snapshots have identical structure."""
        return (
            not self.added_routers
            and not self.removed_routers
            and not self.added_peerings
            and not self.removed_peerings
            and self.added_internal_links == 0
            and self.removed_internal_links == 0
            and self.added_external_links == 0
            and self.removed_external_links == 0
        )

    @property
    def router_delta(self) -> int:
        """Net change in router count."""
        return len(self.added_routers) - len(self.removed_routers)

    @property
    def link_delta(self) -> int:
        """Net change in total link count."""
        return (
            self.added_internal_links
            + self.added_external_links
            - self.removed_internal_links
            - self.removed_external_links
        )


def diff_snapshots(old: MapSnapshot, new: MapSnapshot) -> SnapshotDiff:
    """Compute the structural diff between two snapshots of the same map.

    Parallel links with identical labels are handled by multiset counting,
    so adding one more VODAFONE-style duplicate-label link still counts as
    one added link.
    """
    diff = SnapshotDiff()

    old_routers = {node.name for node in old.routers}
    new_routers = {node.name for node in new.routers}
    diff.added_routers = sorted(new_routers - old_routers)
    diff.removed_routers = sorted(old_routers - new_routers)

    old_peerings = {node.name for node in old.peerings}
    new_peerings = {node.name for node in new.peerings}
    diff.added_peerings = sorted(new_peerings - old_peerings)
    diff.removed_peerings = sorted(old_peerings - new_peerings)

    for external in (False, True):
        old_links = Counter(
            _link_signature(old, link)
            for link in (old.external_links if external else old.internal_links)
        )
        new_links = Counter(
            _link_signature(new, link)
            for link in (new.external_links if external else new.internal_links)
        )
        added = sum((new_links - old_links).values())
        removed = sum((old_links - new_links).values())
        if external:
            diff.added_external_links = added
            diff.removed_external_links = removed
        else:
            diff.added_internal_links = added
            diff.removed_internal_links = removed

    return diff
