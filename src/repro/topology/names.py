"""OVH-style naming for routers and peerings.

Router names on the weathermap look like ``fra-fr5-pb6-nc5``: an IATA-like
site code, a datacenter hall, and a role/unit suffix, all lower case.
Physical peerings carry their network's upper-case name (``ARELION``,
``OMANTEL``, ``AMS-IX``).  The generator is deterministic given a seed, so
the simulator produces the same network for the same configuration.
"""

from __future__ import annotations

import random

from repro.constants import MapName
from repro.errors import NameRegistryError
from repro.rng import stable_seed

#: Site codes per backbone map, loosely modelled on OVH's actual footprint.
SITE_CODES: dict[MapName, list[str]] = {
    MapName.EUROPE: [
        "fra", "rbx", "gra", "sbg", "par", "lon", "ams", "bru", "mil",
        "mad", "vie", "waw", "zur", "prg", "dub", "mrs", "fnc", "lil",
    ],
    MapName.WORLD: [
        "nwk", "lon", "par", "sgp", "syd", "bhs", "mrs", "hkg",
    ],
    MapName.NORTH_AMERICA: [
        "bhs", "nwk", "ash", "chi", "tor", "sea", "lax", "dal", "mia", "hil",
    ],
    MapName.ASIA_PACIFIC: [
        "sgp", "syd", "hkg", "tok", "mum", "che",
    ],
}

#: Peering networks seen on the map edges (upper case on the weathermap).
PEERING_NAMES: list[str] = [
    "ARELION", "OMANTEL", "VODAFONE", "AMS-IX", "DE-CIX", "FRANCE-IX",
    "LINX", "COGENT", "LUMEN", "TATA", "GTT", "ZAYO", "TELIA", "ORANGE",
    "NTT", "PCCW", "SINGTEL", "TELSTRA", "EQUINIX-IX", "ANY2", "SIX",
    "TORIX", "NYIIX", "ESPANIX", "MIX", "NETNOD", "BNIX", "SWISSIX",
    "HKIX", "JPIX", "BBIX", "MEGAPORT", "VERIZON", "COMCAST", "CHARTER",
    "SPRINT", "TELXIUS", "SPARKLE", "EXA", "LIBERTY", "CIRION", "SEABONE",
]

_ROLES = ["pb", "g", "sdtor", "bb", "nc", "th"]


class NameGenerator:
    """Deterministic router/peering name factory for one map."""

    def __init__(self, map_name: MapName, seed: int = 0) -> None:
        self._map_name = map_name
        self._rng = random.Random(stable_seed("names", map_name.value, seed))
        self._issued: set[str] = set()
        self._peering_pool = list(PEERING_NAMES)
        self._rng.shuffle(self._peering_pool)

    @property
    def map_name(self) -> MapName:
        """The map this generator names nodes for."""
        return self._map_name

    def router_name(self, site: str | None = None) -> str:
        """A fresh lower-case router name, e.g. ``fra-fr5-pb6-nc5``.

        Args:
            site: force a specific site code; random site otherwise.
        """
        sites = SITE_CODES[self._map_name]
        while True:
            chosen_site = site or self._rng.choice(sites)
            hall = f"{chosen_site[:2]}{self._rng.randint(1, 9)}"
            role = self._rng.choice(_ROLES)
            name = (
                f"{chosen_site}-{hall}-{role}{self._rng.randint(1, 9)}"
                f"-nc{self._rng.randint(1, 9)}"
            )
            if name not in self._issued:
                self._issued.add(name)
                return name

    def reserve(self, name: str) -> str:
        """Claim a specific name so the generator never issues it again.

        Used for scripted scenarios (the AMS-IX upgrade of Figure 6) that
        need a well-known peering on the map.
        """
        if name in self._issued:
            raise NameRegistryError(f"name {name!r} already issued")
        self._issued.add(name)
        if name in self._peering_pool:
            self._peering_pool.remove(name)
        return name

    def peering_name(self) -> str:
        """A fresh upper-case peering name; falls back to numbered AS names."""
        while self._peering_pool:
            candidate = self._peering_pool.pop()
            if candidate not in self._issued:
                self._issued.add(candidate)
                return candidate
        while True:
            candidate = f"AS{self._rng.randint(1000, 64000)}"
            if candidate not in self._issued:
                self._issued.add(candidate)
                return candidate

    def site_of(self, router_name: str) -> str:
        """Extract the site code prefix from a router name."""
        return router_name.split("-", 1)[0]
