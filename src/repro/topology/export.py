"""Topology exports for downstream research tooling.

The paper positions its dataset next to Rocketfuel and the Topology Zoo;
researchers consuming those use standard graph formats.  This module
exports snapshots as GraphML (node/edge attributes preserved) and as
adjacency CSV, both round-trippable back into a snapshot.
"""

from __future__ import annotations

import csv
import io
from datetime import datetime
from pathlib import Path

import networkx

from repro.constants import MapName
from repro.errors import SchemaError
from repro.topology.graph import to_networkx
from repro.topology.model import Link, LinkEnd, MapSnapshot, Node, NodeKind


def to_graphml(snapshot: MapSnapshot, path: str | Path | None = None) -> str:
    """Serialise a snapshot as GraphML text, optionally writing a file."""
    graph = to_networkx(snapshot)
    buffer = io.BytesIO()
    networkx.write_graphml(graph, buffer)
    text = buffer.getvalue().decode("utf-8")
    if path is not None:
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(text, encoding="utf-8")
    return text


def from_graphml(text: str) -> MapSnapshot:
    """Rebuild a snapshot from GraphML produced by :func:`to_graphml`."""
    try:
        graph = networkx.read_graphml(io.BytesIO(text.encode("utf-8")), force_multigraph=True)
    except Exception as exc:  # networkx raises several parse error types
        raise SchemaError(f"invalid GraphML: {exc}") from exc

    try:
        map_name = MapName(graph.graph["map_name"])
        timestamp = datetime.fromisoformat(graph.graph["timestamp"])
    except (KeyError, ValueError) as exc:
        raise SchemaError("GraphML lacks map metadata") from exc

    snapshot = MapSnapshot(map_name=map_name, timestamp=timestamp)
    for name, data in graph.nodes(data=True):
        kind = NodeKind(data.get("kind", "router"))
        snapshot.add_node(Node(name=str(name), kind=kind))
    for a, b, data in graph.edges(data=True):
        snapshot.add_link(
            Link(
                a=LinkEnd(
                    node=str(a),
                    label=str(data.get("label_a", "#1")),
                    load=float(data.get("load_ab", 0.0)),
                ),
                b=LinkEnd(
                    node=str(b),
                    label=str(data.get("label_b", "#1")),
                    load=float(data.get("load_ba", 0.0)),
                ),
            )
        )
    return snapshot


def to_adjacency_csv(snapshot: MapSnapshot, path: str | Path | None = None) -> str:
    """One row per link: endpoints, labels, loads, category."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(
        ["node_a", "label_a", "load_ab", "node_b", "label_b", "load_ba", "external"]
    )
    for link in snapshot.links:
        writer.writerow(
            [
                link.a.node,
                link.a.label,
                link.a.load,
                link.b.node,
                link.b.label,
                link.b.load,
                int(snapshot.is_external(link)),
            ]
        )
    text = buffer.getvalue()
    if path is not None:
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(text, encoding="utf-8")
    return text
