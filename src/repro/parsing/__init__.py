"""The SVG-to-topology extraction pipeline — the paper's core contribution.

Two stages, exactly as in Section 4:

* :mod:`repro.parsing.algorithm1` — sequential tag-stream parsing into flat
  lists of routers, links (two arrows + two loads each), and link labels,
  relying only on tag classes and document order;
* :mod:`repro.parsing.algorithm2` — geometric *object attribution*: each
  link's line (through its two arrow bases) is intersected with router and
  label boxes; each link end is connected to its nearest intersecting
  router and assigned its nearest intersecting label, labels being consumed
  exactly once.

:mod:`repro.parsing.checks` implements the paper's sanity checks and
:mod:`repro.parsing.pipeline` wraps everything into ``SVG file → MapSnapshot
→ YAML`` with the error taxonomy needed for Table 2's unprocessed-file
accounting.
"""

from repro.parsing.algorithm1 import ExtractedLink, ExtractionResult, extract_objects
from repro.parsing.algorithm2 import AttributedLink, attribute_objects
from repro.parsing.checks import ParseReport, run_sanity_checks
from repro.parsing.pipeline import ParsedMap, parse_svg, parse_svg_file

__all__ = [
    "ExtractedLink",
    "ExtractionResult",
    "extract_objects",
    "AttributedLink",
    "attribute_objects",
    "ParseReport",
    "run_sanity_checks",
    "ParsedMap",
    "parse_svg",
    "parse_svg_file",
]
