"""Spatial grid index used to accelerate Algorithm 2.

The paper's Algorithm 2 intersects every link's line with *every* router
and label box — quadratic in map size, which is fine for one file but slow
for bulk processing.  The accelerated attribution only needs candidates
near a link's two ends: the end's own router box sits a few pixels away
and its label essentially on it, so any candidate farther than a small
radius can never be the nearest.  Falling back to the full scan when the
neighbourhood is empty preserves the error behaviour exactly; tests assert
output equivalence with the faithful mode.

Entries live in parallel arrays addressed by a dense entry id; each grid
cell holds ids.  Queries deduplicate entries spanning several cells with a
per-query epoch stamp on the entry — bumping one integer replaces the
fresh ``set`` + ``id()`` hashing the hot attribution loop used to pay for
on every ``near`` call.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Generic, Iterable, TypeVar

from repro.geometry import Point, Rect

T = TypeVar("T")


class GridIndex(Generic[T]):
    """A uniform grid over axis-aligned boxes supporting disk queries."""

    def __init__(self, items: Iterable[tuple[Rect, T]], cell_size: float = 128.0) -> None:
        self._cell_size = cell_size
        self._boxes: list[Rect] = []
        self._payloads: list[T] = []
        cells: dict[tuple[int, int], list[int]] = defaultdict(list)
        for box, payload in items:
            entry = len(self._boxes)
            self._boxes.append(box)
            self._payloads.append(payload)
            for cell in self._cells_of(box):
                cells[cell].append(entry)
        self._cells = dict(cells)
        #: Per-entry stamp of the last query that touched it; a query is
        #: one bump of ``_epoch``, so "stamp == epoch" means "already seen".
        self._stamps = [0] * len(self._boxes)
        self._epoch = 0

    def __len__(self) -> int:
        return len(self._boxes)

    def _cells_of(self, box: Rect) -> Iterable[tuple[int, int]]:
        x_low = int(box.left // self._cell_size)
        x_high = int(box.right // self._cell_size)
        y_low = int(box.top // self._cell_size)
        y_high = int(box.bottom // self._cell_size)
        for x in range(x_low, x_high + 1):
            for y in range(y_low, y_high + 1):
                yield (x, y)

    def near(self, point: Point, radius: float) -> list[tuple[Rect, T]]:
        """Every indexed item whose box is within ``radius`` of ``point``.

        The grid over-approximates (cell granularity), then the exact
        box-distance filter trims the result.  Entry order follows cell
        scan order, first sighting wins — identical to the historical
        set-based dedup.
        """
        cell_size = self._cell_size
        x_low = int((point.x - radius) // cell_size)
        x_high = int((point.x + radius) // cell_size)
        y_low = int((point.y - radius) // cell_size)
        y_high = int((point.y + radius) // cell_size)
        self._epoch += 1
        epoch = self._epoch
        stamps = self._stamps
        boxes = self._boxes
        payloads = self._payloads
        cells = self._cells
        result: list[tuple[Rect, T]] = []
        for x in range(x_low, x_high + 1):
            for y in range(y_low, y_high + 1):
                bucket = cells.get((x, y))
                if bucket is None:
                    continue
                for entry in bucket:
                    if stamps[entry] == epoch:
                        continue
                    stamps[entry] = epoch
                    box = boxes[entry]
                    if box.distance_to_point(point) <= radius:
                        result.append((box, payloads[entry]))
        return result
