"""Spatial grid index used to accelerate Algorithm 2.

The paper's Algorithm 2 intersects every link's line with *every* router
and label box — quadratic in map size, which is fine for one file but slow
for bulk processing.  The accelerated attribution only needs candidates
near a link's two ends: the end's own router box sits a few pixels away
and its label essentially on it, so any candidate farther than a small
radius can never be the nearest.  Falling back to the full scan when the
neighbourhood is empty preserves the error behaviour exactly; tests assert
output equivalence with the faithful mode.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Generic, Iterable, TypeVar

from repro.geometry import Point, Rect

T = TypeVar("T")


class GridIndex(Generic[T]):
    """A uniform grid over axis-aligned boxes supporting disk queries."""

    def __init__(self, items: Iterable[tuple[Rect, T]], cell_size: float = 128.0) -> None:
        self._cell_size = cell_size
        self._cells: dict[tuple[int, int], list[tuple[Rect, T]]] = defaultdict(list)
        self._count = 0
        for box, payload in items:
            self._count += 1
            for cell in self._cells_of(box):
                self._cells[cell].append((box, payload))

    def __len__(self) -> int:
        return self._count

    def _cells_of(self, box: Rect) -> Iterable[tuple[int, int]]:
        x_low = int(box.left // self._cell_size)
        x_high = int(box.right // self._cell_size)
        y_low = int(box.top // self._cell_size)
        y_high = int(box.bottom // self._cell_size)
        for x in range(x_low, x_high + 1):
            for y in range(y_low, y_high + 1):
                yield (x, y)

    def near(self, point: Point, radius: float) -> list[tuple[Rect, T]]:
        """Every indexed item whose box is within ``radius`` of ``point``.

        The grid over-approximates (cell granularity), then the exact
        box-distance filter trims the result.
        """
        x_low = int((point.x - radius) // self._cell_size)
        x_high = int((point.x + radius) // self._cell_size)
        y_low = int((point.y - radius) // self._cell_size)
        y_high = int((point.y + radius) // self._cell_size)
        seen: set[int] = set()
        result: list[tuple[Rect, T]] = []
        for x in range(x_low, x_high + 1):
            for y in range(y_low, y_high + 1):
                for box, payload in self._cells.get((x, y), ()):
                    key = id(payload)
                    if key in seen:
                        continue
                    seen.add(key)
                    if box.distance_to_point(point) <= radius:
                        result.append((box, payload))
        return result
