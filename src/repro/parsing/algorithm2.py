"""Algorithm 2 — object attribution.

For each link, the straight line through the midpoints of its two arrow
bases is intersected with every router box and every (unconsumed) label
box.  Each of the two link ends is then connected to the intersecting
router closest to it and assigned the intersecting label closest to it;
the label is removed from the pool so "labels get assigned to a link only
once" — the paper's defence against duplicate label texts on parallel
links.

Two execution modes produce identical results:

* ``accelerated=False`` — the faithful quadratic loop exactly as the paper
  states it (every link line against every box);
* ``accelerated=True`` (default) — a grid index limits candidates to boxes
  near each link end.  Any box farther than the search radius can never be
  the nearest (the true router sits a few pixels from the end, the label
  essentially on it), and an empty neighbourhood falls back to the full
  scan, so the error behaviour is preserved too.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.constants import LABEL_DISTANCE_THRESHOLD
from repro.errors import (
    GeometryError,
    MissingLabelError,
    MissingRouterError,
    SelfLinkError,
)
from repro.geometry import Point, Segment
from repro.parsing.algorithm1 import ExtractedLabel, ExtractionResult
from repro.parsing.spatial import GridIndex
from repro.svgdoc.elements import ObjectElement

#: Candidate search radius around each link end in accelerated mode.
#: Comfortably above both the arrow base gap and the label threshold.
_SEARCH_RADIUS = 90.0

_INFINITY = float("inf")


@dataclass(frozen=True, slots=True)
class AttributedEnd:
    """One fully attributed link end."""

    position: Point
    router: ObjectElement
    label: ExtractedLabel
    load: float


@dataclass(frozen=True, slots=True)
class AttributedLink:
    """A link whose ends are connected to routers and labels.

    ``a`` is the end of the first arrow in document order; ``a.load`` is
    the egress load from ``a.router`` towards ``b.router``.
    """

    a: AttributedEnd
    b: AttributedEnd


def attribute_objects(
    extraction: ExtractionResult,
    label_distance_threshold: float = LABEL_DISTANCE_THRESHOLD,
    accelerated: bool = True,
) -> list[AttributedLink]:
    """Run Algorithm 2 on Algorithm 1's output.

    Args:
        extraction: the flat router/link/label lists.
        label_distance_threshold: maximum distance between a link end and
            its label box — the paper's "few pixels" sanity threshold.
        accelerated: use the grid-index candidate search (identical
            results, much faster on large maps).

    Raises:
        MissingRouterError: a link end intersects no router box ("SVG files
            lacking elements, such as OVH routers").
        SelfLinkError: both ends resolve to the same router (the scripts
            "report an error when a link is not connected to two (distinct)
            routers").
        MissingLabelError: no unconsumed label intersects the line within
            the distance threshold.
    """
    labels = list(extraction.labels)
    consumed = [False] * len(labels)
    attributed: list[AttributedLink] = []

    router_index: GridIndex[ObjectElement] | None = None
    label_index: GridIndex[int] | None = None
    if accelerated:
        router_index = GridIndex(
            (router.box, router) for router in extraction.routers
        )
        label_index = GridIndex(
            (label.box, position) for position, label in enumerate(labels)
        )

    for link in extraction.links:
        base_first, base_second = link.bases
        try:
            line = Segment(base_first, base_second)
        except GeometryError as exc:
            raise MissingRouterError(f"degenerate link geometry: {exc}") from exc

        routers_on_line: list[ObjectElement] | None = None
        labels_on_line: list[int] | None = None

        def full_routers() -> list[ObjectElement]:
            nonlocal routers_on_line
            if routers_on_line is None:
                routers_on_line = [
                    router
                    for router in extraction.routers
                    if router.box.intersects_line(line)
                ]
            return routers_on_line

        def full_labels() -> list[int]:
            nonlocal labels_on_line
            if labels_on_line is None:
                labels_on_line = [
                    index
                    for index, label in enumerate(labels)
                    if label.box.intersects_line(line)
                ]
            return labels_on_line

        ends: list[AttributedEnd] = []
        for end_position, load in zip((base_first, base_second), link.loads):
            # --- router attribution -------------------------------------
            # The inlined nearest scans below keep the *first* candidate on
            # equal distances, exactly like min() with a key function.
            router = None
            router_distance = _INFINITY
            if router_index is not None:
                for box, candidate in router_index.near(end_position, _SEARCH_RADIUS):
                    if box.intersects_line(line):
                        distance = box.distance_to_point(end_position)
                        if distance < router_distance:
                            router_distance = distance
                            router = candidate
            if router is None:
                for candidate in full_routers():
                    distance = candidate.box.distance_to_point(end_position)
                    if distance < router_distance:
                        router_distance = distance
                        router = candidate
            if router is None:
                raise MissingRouterError(
                    f"no router box intersects the link line near "
                    f"({end_position.x:.0f}, {end_position.y:.0f})"
                )

            # --- label attribution --------------------------------------
            best_index = -1
            distance = _INFINITY
            if label_index is not None:
                for box, position in label_index.near(end_position, _SEARCH_RADIUS):
                    if not consumed[position] and box.intersects_line(line):
                        candidate_distance = box.distance_to_point(end_position)
                        if candidate_distance < distance:
                            distance = candidate_distance
                            best_index = position
            if best_index < 0:
                for position in full_labels():
                    if consumed[position]:
                        continue
                    candidate_distance = labels[position].box.distance_to_point(
                        end_position
                    )
                    if candidate_distance < distance:
                        distance = candidate_distance
                        best_index = position
            if best_index < 0:
                raise MissingLabelError(
                    f"no label intersects the link line near "
                    f"({end_position.x:.0f}, {end_position.y:.0f})"
                )
            if distance > label_distance_threshold:
                raise MissingLabelError(
                    f"closest label {labels[best_index].text!r} is {distance:.1f} px "
                    f"from the link end, beyond the {label_distance_threshold:.0f} px "
                    "threshold",
                    distance=distance,
                )
            consumed[best_index] = True
            ends.append(
                AttributedEnd(
                    position=end_position,
                    router=router,
                    label=labels[best_index],
                    load=load,
                )
            )

        first, second = ends
        if first.router.name == second.router.name:
            raise SelfLinkError(
                f"link attributed to router {first.router.name!r} at both ends"
            )
        attributed.append(AttributedLink(a=first, b=second))

    return attributed
