"""Streaming fast-path extraction — reader + Algorithm 1 in one expat pass.

The faithful pipeline materialises a full ElementTree DOM, copies it into
:class:`~repro.svgdoc.elements.RawTag` records, then walks those records in
Algorithm 1 — three passes and two throwaway object layers over
machine-generated documents with a fixed shape.  :func:`stream_extract`
fuses all of that into a single pass over ``xml.parsers.expat`` events:
every start/end/character event is dispatched straight into Algorithm 1's
accumulator state machine (routers, arrow/load pairs, label box/text
pairs).  Only router-group subtrees keep any state at all, so box and name
still travel together; nothing else is ever buffered.

Correctness contract
--------------------

The fast path **never** decides that a document is malformed.  On *any*
deviation from the expected weathermap shape — an XML error, an entity
reference, an unparsable attribute, arrows/loads/labels out of order, a
``class`` combination ``classify_tag`` would reject — it returns ``None``
and the caller re-runs the faithful DOM path, which then either succeeds
or raises its usual typed error.  A successful stream therefore implies
the DOM path would have produced the *same* extraction, and a failing
document always surfaces the DOM path's exact exception type and message.
The differential fuzz tests assert both properties.

Repeated-string caches
----------------------

Weathermap series repeat the same coordinate strings thousands of times
(layouts are stable between snapshots; only loads move), so parsed
``points`` tuples, ``<rect>`` geometries, and float tokens are memoised
in module-level caches shared across documents — including across the
files of one bulk run inside a worker process.  Cached values are
immutable (``Point``/``Rect``/``float``), so sharing them is safe.
"""

from __future__ import annotations

from pathlib import Path
from xml.parsers import expat

from repro.constants import LOAD_MAX, LOAD_MIN
from repro.errors import ReproError
from repro.geometry import Point, Rect
from repro.parsing.algorithm1 import (
    ExtractedLabel,
    ExtractedLink,
    ExtractionResult,
)
from repro.svgdoc.elements import ArrowElement, ObjectElement
from repro.svgdoc.reader import load_source, parse_dimension_value

__all__ = ["stream_extract"]

_SVG_NAMESPACE = "http://www.w3.org/2000/svg}"

#: Dispatch codes for one top-level tag, mirroring ``classify_tag``.
_IGNORE = 0
_OBJECT = 1
_ARROW = 2
_LOAD = 3
_LABEL_BOX = 4
_LABEL_TEXT = 5
_BAD = 6  # classify_tag would raise MalformedSvgError

#: Caps keep the shared caches bounded on adversarial input; real series
#: have a small, stable vocabulary that never comes close.
_CACHE_LIMIT = 65536

_NAME_CACHE: dict[str, str] = {}
_DISPATCH_CACHE: dict[str, dict[str, int]] = {}
_FLOAT_CACHE: dict[str, float] = {}
_POINTS_CACHE: dict[str, tuple[Point, ...]] = {}
_RECT_CACHE: dict[tuple[str, str, str, str], Rect] = {}
_INTERN: dict[str, str] = {}


class _Fallback(Exception):
    """Internal signal: shape outside the fast path — use the DOM path."""


def _element_name(raw: str) -> str:
    """Map an expat name to the form ``classify_tag`` compares against.

    expat (namespace separator ``"}"``) reports ``uri}local``; ElementTree
    reports ``{uri}local`` and the reader strips only the SVG namespace.
    """
    name = _NAME_CACHE.get(raw)
    if name is None:
        if raw.startswith(_SVG_NAMESPACE):
            name = raw[len(_SVG_NAMESPACE):]
        elif "}" in raw:
            name = "{" + raw
        else:
            name = raw
        if len(_NAME_CACHE) > _CACHE_LIMIT:
            _NAME_CACHE.clear()
        _NAME_CACHE[raw] = name
    return name


def _dispatch_code(tag: str, svg_class: str) -> int:
    """Replicate ``classify_tag``'s dispatch order exactly."""
    if svg_class.startswith("object"):
        return _OBJECT
    if tag == "polygon":
        return _ARROW
    if svg_class == "labellink":
        return _LOAD if tag == "text" else _BAD
    if svg_class == "node":
        if tag == "rect":
            return _LABEL_BOX
        if tag == "text":
            return _LABEL_TEXT
        return _BAD
    return _IGNORE


def _float_token(token: str) -> float:
    value = _FLOAT_CACHE.get(token)
    if value is None:
        value = float(token)  # ValueError falls back to the DOM path
        if len(_FLOAT_CACHE) > _CACHE_LIMIT:
            _FLOAT_CACHE.clear()
        _FLOAT_CACHE[token] = value
    return value


def _points(raw: str) -> tuple[Point, ...]:
    """Memoised twin of ``elements._parse_points`` (reject → fall back)."""
    points = _POINTS_CACHE.get(raw)
    if points is None:
        tokens = raw.replace(",", " ").split()
        if len(tokens) < 6 or len(tokens) % 2 != 0:
            raise _Fallback
        values = [_float_token(token) for token in tokens]
        points = tuple(
            Point(values[i], values[i + 1]) for i in range(0, len(values), 2)
        )
        if len(_POINTS_CACHE) > _CACHE_LIMIT:
            _POINTS_CACHE.clear()
        _POINTS_CACHE[raw] = points
    return points


def _rect(attributes: dict[str, str]) -> Rect:
    """Memoised twin of ``elements._rect_from_tag`` (reject → fall back)."""
    try:
        key = (
            attributes["x"],
            attributes["y"],
            attributes["width"],
            attributes["height"],
        )
    except KeyError:
        raise _Fallback from None
    rect = _RECT_CACHE.get(key)
    if rect is None:
        # float() ValueError and non-positive-extent GeometryError both
        # propagate to the driver, which falls back to the DOM path.
        rect = Rect(
            _float_token(key[0]),
            _float_token(key[1]),
            _float_token(key[2]),
            _float_token(key[3]),
        )
        if len(_RECT_CACHE) > _CACHE_LIMIT:
            _RECT_CACHE.clear()
        _RECT_CACHE[key] = rect
    return rect


def _interned(text: str) -> str:
    if len(_INTERN) > _CACHE_LIMIT:
        _INTERN.clear()
    return _INTERN.setdefault(text, text)


class _StreamMachine:
    """Algorithm 1's accumulator state machine, fed by expat events."""

    __slots__ = (
        "depth",
        "skip_above",
        "routers",
        "links",
        "labels",
        "link",
        "pending_label_box",
        "capture",
        "capture_code",
        "group_depth",
        "group_box",
        "group_name",
        "root_seen",
        "width",
        "height",
    )

    def __init__(self) -> None:
        self.depth = 0
        self.skip_above = 0  # >0: ignore content until depth drops below it
        self.routers: list[ObjectElement] = []
        self.links: list[ExtractedLink] = []
        self.labels: list[ExtractedLabel] = []
        self.link: ExtractedLink | None = None
        self.pending_label_box: Rect | None = None
        self.capture: list[str] | None = None
        self.capture_code = 0
        self.group_depth = 0  # depth of the open object group, 0 if none
        self.group_box: Rect | None = None
        self.group_name: str | None = None
        self.root_seen = False
        self.width = 0.0
        self.height = 0.0

    # -- expat handlers ---------------------------------------------------

    def start_element(self, raw_name: str, attributes: dict[str, str]) -> None:
        depth = self.depth + 1
        self.depth = depth
        if self.skip_above:
            return
        if self.capture is not None:
            # A child inside a text-bearing element: the DOM path keeps
            # only the text before the first child.  Rare — fall back.
            raise _Fallback

        if depth == 2:
            name = _element_name(raw_name)
            svg_class = attributes.get("class", "")
            by_class = _DISPATCH_CACHE.get(name)
            if by_class is None:
                by_class = _DISPATCH_CACHE[name] = {}
            code = by_class.get(svg_class)
            if code is None:
                code = by_class[svg_class] = _dispatch_code(name, svg_class)
            if code == _IGNORE:
                self.skip_above = depth
            elif code == _ARROW:
                self._arrow(attributes)
                self.skip_above = depth
            elif code == _OBJECT:
                self.group_depth = depth
                self.group_box = None
                self.group_name = None
            elif code == _LOAD:
                # classify_tag validates the x/y anchor even though the
                # load value is all Algorithm 1 consumes.
                try:
                    _float_token(attributes["x"])
                    _float_token(attributes["y"])
                except (KeyError, ValueError):
                    raise _Fallback from None
                self.capture = []
                self.capture_code = _LOAD
            elif code == _LABEL_BOX:
                if self.pending_label_box is not None:
                    raise _Fallback  # "two label boxes without text between"
                self.pending_label_box = _rect(attributes)
                self.skip_above = depth
            elif code == _LABEL_TEXT:
                if self.pending_label_box is None:
                    raise _Fallback  # "label text with no preceding label box"
                self.capture = []
                self.capture_code = _LABEL_TEXT
            else:  # _BAD: classify_tag would raise MalformedSvgError
                raise _Fallback
        elif depth == 1:
            if _element_name(raw_name) != "svg":
                raise _Fallback
            self.root_seen = True
            # The reader validates width/height right after parsing; do it
            # here so the fast path never succeeds where the reader raises.
            try:
                self.width = parse_dimension_value(attributes.get("width", "0"))
                self.height = parse_dimension_value(attributes.get("height", "0"))
            except ReproError:
                raise _Fallback from None
        elif self.group_depth and depth == self.group_depth + 1:
            name = _element_name(raw_name)
            if name == "rect" and self.group_box is None:
                self.group_box = _rect(attributes)
                self.skip_above = depth
            elif name == "text" and self.group_name is None:
                self.capture = []
                self.capture_code = _OBJECT
            else:
                # Extra children are ignored by _parse_object — their
                # attributes are never parsed, so don't validate them.
                self.skip_above = depth
        else:
            raise _Fallback

    def end_element(self, raw_name: str) -> None:
        depth = self.depth
        self.depth = depth - 1
        if self.skip_above:
            if depth == self.skip_above:
                self.skip_above = 0
            return
        capture = self.capture
        if capture is not None:
            self.capture = None
            text = "".join(capture)
            code = self.capture_code
            if code == _LOAD:
                self._load(text)
            elif code == _LABEL_TEXT:
                self.labels.append(
                    ExtractedLabel(box=self.pending_label_box, text=text.strip())
                )
                self.pending_label_box = None
            else:  # _OBJECT: the group's name text
                self.group_name = text.strip()
            return
        if self.group_depth and depth == self.group_depth:
            self.group_depth = 0
            if self.group_box is None or not self.group_name:
                raise _Fallback  # "object group lacks elements"
            self.routers.append(
                ObjectElement(name=_interned(self.group_name), box=self.group_box)
            )

    def character_data(self, data: str) -> None:
        if self.capture is not None:
            self.capture.append(data)

    def default_handler(self, data: str) -> None:
        # With DefaultHandlerExpand set, defined internal entities still
        # expand into character data; anything reported here that looks
        # like an entity reference is outside the fast path's shape.
        if data.startswith("&"):
            raise _Fallback

    # -- Algorithm 1 transitions ------------------------------------------

    def _arrow(self, attributes: dict[str, str]) -> None:
        element = ArrowElement(
            points=_points(attributes.get("points", "")),
            fill=_interned(attributes.get("fill", "")),
        )
        link = self.link
        if link is None:
            self.link = ExtractedLink(arrows=[element])
        elif len(link.arrows) == 1 and not link.loads:
            link.arrows.append(element)
        else:
            raise _Fallback  # "third arrow before ... loads completed"

    def _load(self, raw_text: str) -> None:
        link = self.link
        if link is None or len(link.arrows) != 2:
            raise _Fallback  # "load percentage with no preceding arrow pair"
        text = raw_text.strip()
        if not text.endswith("%"):
            raise _Fallback  # "lacks a % suffix"
        load = _float_token(text[:-1].strip())
        if not LOAD_MIN <= load <= LOAD_MAX:
            raise _Fallback  # LoadRangeError in the DOM path
        link.loads.append(load)
        if len(link.loads) == 2:
            self.links.append(link)
            self.link = None


def stream_extract(
    source: str | Path | bytes,
) -> tuple[ExtractionResult, float, float] | None:
    """Extract a weathermap document in one streaming pass.

    Returns ``(extraction, width, height)`` when the document matches the
    expected shape, or ``None`` when the caller must fall back to the
    faithful ``read_svg_tags`` + ``extract_objects`` path — including for
    every malformed document, so the DOM path owns all error reporting.

    Raises:
        OSError: when ``source`` names a file that cannot be read (the
            same error the DOM path would raise).
    """
    data = load_source(source)
    machine = _StreamMachine()
    try:
        if isinstance(data, str):
            # ElementTree re-encodes text sources to UTF-8 before expat
            # sees them; doing the same keeps encoding-declaration edge
            # cases (and their errors) byte-identical between the paths.
            data = data.encode("utf-8")
        parser = expat.ParserCreate(None, "}")
        parser.buffer_text = True
        parser.specified_attributes = True
        parser.StartElementHandler = machine.start_element
        parser.EndElementHandler = machine.end_element
        parser.CharacterDataHandler = machine.character_data
        parser.DefaultHandlerExpand = machine.default_handler
        parser.Parse(data, True)
    except (
        _Fallback,
        expat.ExpatError,
        ReproError,
        ValueError,
        LookupError,
        OverflowError,
    ):
        return None
    if (
        not machine.root_seen
        or machine.link is not None
        or machine.pending_label_box is not None
    ):
        return None
    return (
        ExtractionResult(
            routers=machine.routers, links=machine.links, labels=machine.labels
        ),
        machine.width,
        machine.height,
    )
