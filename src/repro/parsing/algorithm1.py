"""Algorithm 1 — SVG parsing to objects.

A faithful implementation of the paper's Algorithm 1: iterate the SVG tags
in document order, dispatch on ``class``/tag type, and accumulate three flat
lists — routers (and peerings), links, and link labels.  Links are stateful:
"two successive polygon SVG tags represent the two arrows of a bidirectional
link" and "the two load levels follow the two arrows"; labels are stateful
the same way (white box first, text second).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.constants import LOAD_MAX, LOAD_MIN
from repro.errors import IncompleteLinkError, LoadRangeError, MalformedSvgError
from repro.geometry import Point, Rect
from repro.svgdoc.elements import (
    ArrowElement,
    LabelBoxElement,
    LabelTextElement,
    LoadTextElement,
    ObjectElement,
    classify_tag,
)
from repro.svgdoc.reader import SvgTagStream


@dataclass
class ExtractedLink:
    """A link as Algorithm 1 sees it: two arrows and two load percentages.

    ``arrows[0]`` is the first arrow in document order; its load is
    ``loads[0]`` and its base is the link end nearest the egress router of
    that direction.
    """

    arrows: list[ArrowElement] = field(default_factory=list)
    loads: list[float] = field(default_factory=list)

    @property
    def is_complete(self) -> bool:
        """Two arrows and two loads make a complete link."""
        return len(self.arrows) == 2 and len(self.loads) == 2

    @property
    def bases(self) -> tuple[Point, Point]:
        """The two arrow-basis midpoints (the link's geometric ends)."""
        if len(self.arrows) != 2:
            raise IncompleteLinkError(
                f"link has {len(self.arrows)} arrows, expected 2"
            )
        return (self.arrows[0].base_midpoint, self.arrows[1].base_midpoint)


@dataclass(frozen=True, slots=True)
class ExtractedLabel:
    """A link label: its white box and its text (e.g. ``#1``)."""

    box: Rect
    text: str


@dataclass
class ExtractionResult:
    """Output of Algorithm 1: the three flat object lists."""

    routers: list[ObjectElement] = field(default_factory=list)
    links: list[ExtractedLink] = field(default_factory=list)
    labels: list[ExtractedLabel] = field(default_factory=list)


def extract_objects(stream: SvgTagStream) -> ExtractionResult:
    """Run Algorithm 1 over a tag stream.

    Raises:
        MalformedSvgError: on structurally invalid tags (bad attribute
            values, label text without a preceding label box, ...).
        IncompleteLinkError: when arrows/loads do not pair up into links.
        LoadRangeError: when a load lies outside [0, 100] — the paper's
            first sanity check, applied during extraction.
    """
    result = ExtractionResult()
    link: ExtractedLink | None = None
    pending_label_box: LabelBoxElement | None = None

    for tag in stream:
        element = classify_tag(tag)
        if element is None:
            continue

        if isinstance(element, ObjectElement):
            result.routers.append(element)
        elif isinstance(element, ArrowElement):
            if link is None:
                link = ExtractedLink(arrows=[element])
            elif len(link.arrows) == 1 and not link.loads:
                link.arrows.append(element)
            else:
                raise IncompleteLinkError(
                    "third arrow before the previous link's loads completed"
                )
        elif isinstance(element, LoadTextElement):
            if link is None or len(link.arrows) != 2:
                raise IncompleteLinkError(
                    "load percentage with no preceding arrow pair"
                )
            load = element.load
            if not LOAD_MIN <= load <= LOAD_MAX:
                raise LoadRangeError(
                    f"link load {load} outside [{LOAD_MIN}, {LOAD_MAX}]"
                )
            link.loads.append(load)
            if len(link.loads) == 2:
                result.links.append(link)
                link = None
        elif isinstance(element, LabelBoxElement):
            if pending_label_box is not None:
                raise MalformedSvgError("two label boxes without text between")
            pending_label_box = element
        elif isinstance(element, LabelTextElement):
            if pending_label_box is None:
                raise MalformedSvgError("label text with no preceding label box")
            result.labels.append(
                ExtractedLabel(box=pending_label_box.box, text=element.text)
            )
            pending_label_box = None

    if link is not None:
        raise IncompleteLinkError("document ended with an incomplete link")
    if pending_label_box is not None:
        raise MalformedSvgError("document ended with an unclosed label")
    return result
