"""End-to-end extraction: SVG document → :class:`MapSnapshot`.

This is the processing step the paper ran over 542,049 collected files:
read the tag stream, run Algorithm 1, run Algorithm 2, run the sanity
checks, and emit the structured topology (serialised to YAML by
:mod:`repro.yamlio`).  Every failure raises a typed exception from
:mod:`repro.errors`, so bulk runs can account for unprocessable files the
way Table 2 does.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime, timezone
from pathlib import Path

from repro.constants import LABEL_DISTANCE_THRESHOLD, MapName
from repro.parsing.algorithm1 import ExtractionResult, extract_objects
from repro.parsing.algorithm2 import attribute_objects
from repro.parsing.checks import ParseReport, run_sanity_checks
from repro.svgdoc.reader import read_svg_tags
from repro.topology.model import Link, LinkEnd, MapSnapshot, Node, NodeKind

#: Timestamp used when the caller provides none.
_EPOCH = datetime(1970, 1, 1, tzinfo=timezone.utc)

#: Version of the extraction pipeline.  Bump whenever a change alters the
#: YAML a given SVG produces — the incremental bulk engine
#: (:mod:`repro.dataset.engine`) stores this in its manifest and
#: reprocesses every file when it no longer matches.
PARSER_VERSION = 1


@dataclass
class ParsedMap:
    """The result of processing one weathermap SVG."""

    snapshot: MapSnapshot
    report: ParseReport
    extraction: ExtractionResult


def _snapshot_from(
    extraction: ExtractionResult,
    links,
    map_name: MapName,
    timestamp: datetime,
) -> MapSnapshot:
    """Assemble the topology model from attributed objects."""
    snapshot = MapSnapshot(map_name=map_name, timestamp=timestamp)
    for obj in extraction.routers:
        kind = NodeKind.PEERING if obj.is_peering else NodeKind.ROUTER
        snapshot.add_node(Node(name=obj.name, kind=kind))
    for link in links:
        snapshot.add_link(
            Link(
                a=LinkEnd(
                    node=link.a.router.name,
                    label=link.a.label.text,
                    load=link.a.load,
                ),
                b=LinkEnd(
                    node=link.b.router.name,
                    label=link.b.label.text,
                    load=link.b.load,
                ),
            )
        )
    return snapshot


def parse_svg(
    source: str | bytes,
    map_name: MapName = MapName.EUROPE,
    timestamp: datetime | None = None,
    strict: bool = True,
    label_distance_threshold: float = LABEL_DISTANCE_THRESHOLD,
    accelerated: bool = True,
) -> ParsedMap:
    """Extract the topology from an SVG document.

    Args:
        source: SVG document text or bytes.
        map_name: which backbone map the document depicts.
        timestamp: observation time to stamp the snapshot with.
        strict: raise on sanity-check failures instead of recording them.
        label_distance_threshold: Algorithm 2 label-distance limit.
        accelerated: use the grid-indexed attribution (identical results;
            set False for the paper's exact quadratic formulation).

    Raises:
        MalformedSvgError: not an SVG, or invalid attribute values.
        ParseError subclasses: extraction or attribution failures.
    """
    stream = read_svg_tags(source)
    extraction = extract_objects(stream)
    links = attribute_objects(
        extraction,
        label_distance_threshold=label_distance_threshold,
        accelerated=accelerated,
    )
    report = run_sanity_checks(extraction, links, strict=strict)
    snapshot = _snapshot_from(
        extraction, links, map_name, timestamp if timestamp is not None else _EPOCH
    )
    return ParsedMap(snapshot=snapshot, report=report, extraction=extraction)


def parse_svg_file(
    path: str | Path,
    map_name: MapName = MapName.EUROPE,
    timestamp: datetime | None = None,
    strict: bool = True,
    label_distance_threshold: float = LABEL_DISTANCE_THRESHOLD,
    accelerated: bool = True,
) -> ParsedMap:
    """Extract the topology from an SVG file on disk.

    Accepts the same options as :func:`parse_svg`, so file- and
    bytes-based parsing behave identically.
    """
    return parse_svg(
        Path(path).read_bytes(),
        map_name=map_name,
        timestamp=timestamp,
        strict=strict,
        label_distance_threshold=label_distance_threshold,
        accelerated=accelerated,
    )
