"""End-to-end extraction: SVG document → :class:`MapSnapshot`.

This is the processing step the paper ran over 542,049 collected files:
read the tag stream, run Algorithm 1, run Algorithm 2, run the sanity
checks, and emit the structured topology (serialised to YAML by
:mod:`repro.yamlio`).  Every failure raises a typed exception from
:mod:`repro.errors`, so bulk runs can account for unprocessable files the
way Table 2 does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from time import perf_counter

from repro.constants import LABEL_DISTANCE_THRESHOLD, MapName
from repro.parsing.algorithm1 import ExtractionResult, extract_objects
from repro.parsing.algorithm2 import attribute_objects
from repro.parsing.checks import ParseReport, run_sanity_checks
from repro.parsing.stream import stream_extract
from repro.svgdoc.reader import read_svg_tags
from repro.topology.model import Link, LinkEnd, MapSnapshot, Node, NodeKind

#: Timestamp used when the caller provides none.
_EPOCH = datetime(1970, 1, 1, tzinfo=timezone.utc)

#: Version of the extraction pipeline.  Bump whenever a change alters the
#: YAML a given SVG produces — the incremental bulk engine
#: (:mod:`repro.dataset.engine`) stores this in its manifest and
#: reprocesses every file when it no longer matches.
#:
#: 2: stricter root width/height parsing (malformed unit suffixes now fail
#:    instead of silently mis-parsing), so some previously-processed files
#:    change outcome.
PARSER_VERSION = 2


@dataclass
class StageTimings:
    """Cumulative per-stage wall time over one or more parsed documents.

    Pass an instance to :func:`parse_svg` (and
    :func:`repro.dataset.processor.process_svg_bytes`, which adds the YAML
    emission) to attribute processing time to the pipeline stages.  The
    fused streaming pass cannot split reading from extraction, so its
    whole pass is charged to ``extract`` and ``read`` stays 0 unless the
    DOM path runs.
    """

    seconds: dict[str, float] = field(
        default_factory=lambda: {
            "read": 0.0,
            "extract": 0.0,
            "attribute": 0.0,
            "checks": 0.0,
            "serialize": 0.0,
        }
    )
    #: Documents the streaming fast path handled end-to-end.
    fast_path_hits: int = 0
    #: Documents that fell back to the faithful DOM path.
    fallbacks: int = 0

    def add(self, stage: str, elapsed: float) -> None:
        self.seconds[stage] = self.seconds.get(stage, 0.0) + elapsed

    @property
    def total(self) -> float:
        return sum(self.seconds.values())

    def as_dict(self) -> dict:
        """JSON-friendly view (used by the throughput benchmark)."""
        return {
            "seconds": {key: round(value, 4) for key, value in self.seconds.items()},
            "fast_path_hits": self.fast_path_hits,
            "fallbacks": self.fallbacks,
        }


@dataclass
class ParsedMap:
    """The result of processing one weathermap SVG."""

    snapshot: MapSnapshot
    report: ParseReport
    extraction: ExtractionResult


def _snapshot_from(
    extraction: ExtractionResult,
    links,
    map_name: MapName,
    timestamp: datetime,
) -> MapSnapshot:
    """Assemble the topology model from attributed objects."""
    snapshot = MapSnapshot(map_name=map_name, timestamp=timestamp)
    for obj in extraction.routers:
        kind = NodeKind.PEERING if obj.is_peering else NodeKind.ROUTER
        snapshot.add_node(Node(name=obj.name, kind=kind))
    for link in links:
        snapshot.add_link(
            Link(
                a=LinkEnd(
                    node=link.a.router.name,
                    label=link.a.label.text,
                    load=link.a.load,
                ),
                b=LinkEnd(
                    node=link.b.router.name,
                    label=link.b.label.text,
                    load=link.b.load,
                ),
            )
        )
    return snapshot


def parse_svg(
    source: str | bytes,
    map_name: MapName = MapName.EUROPE,
    timestamp: datetime | None = None,
    strict: bool = True,
    label_distance_threshold: float = LABEL_DISTANCE_THRESHOLD,
    accelerated: bool = True,
    fast_path: bool = True,
    timings: StageTimings | None = None,
) -> ParsedMap:
    """Extract the topology from an SVG document.

    Args:
        source: SVG document text or bytes.
        map_name: which backbone map the document depicts.
        timestamp: observation time to stamp the snapshot with.
        strict: raise on sanity-check failures instead of recording them.
        label_distance_threshold: Algorithm 2 label-distance limit.
        accelerated: use the grid-indexed attribution (identical results;
            set False for the paper's exact quadratic formulation).
        fast_path: run reader + Algorithm 1 as one fused streaming pass
            (:func:`repro.parsing.stream.stream_extract`); identical
            results, and any document outside the expected shape falls
            back to the faithful DOM path below — set False to force that
            path outright.
        timings: accumulate per-stage wall time into this object.

    Raises:
        MalformedSvgError: not an SVG, or invalid attribute values.
        ParseError subclasses: extraction or attribution failures.
    """
    extraction: ExtractionResult | None = None
    if fast_path:
        started = perf_counter() if timings is not None else 0.0
        streamed = stream_extract(source)
        if streamed is not None:
            extraction = streamed[0]
        if timings is not None:
            if extraction is not None:
                timings.add("extract", perf_counter() - started)
                timings.fast_path_hits += 1
            else:
                timings.fallbacks += 1
    if extraction is None:
        if timings is None:
            stream = read_svg_tags(source)
            extraction = extract_objects(stream)
        else:
            started = perf_counter()
            stream = read_svg_tags(source)
            timings.add("read", perf_counter() - started)
            started = perf_counter()
            extraction = extract_objects(stream)
            timings.add("extract", perf_counter() - started)

    started = perf_counter() if timings is not None else 0.0
    links = attribute_objects(
        extraction,
        label_distance_threshold=label_distance_threshold,
        accelerated=accelerated,
    )
    if timings is not None:
        timings.add("attribute", perf_counter() - started)
        started = perf_counter()
    report = run_sanity_checks(extraction, links, strict=strict)
    if timings is not None:
        timings.add("checks", perf_counter() - started)
        started = perf_counter()
    snapshot = _snapshot_from(
        extraction, links, map_name, timestamp if timestamp is not None else _EPOCH
    )
    if timings is not None:
        timings.add("serialize", perf_counter() - started)
    return ParsedMap(snapshot=snapshot, report=report, extraction=extraction)


def parse_svg_file(
    path: str | Path,
    map_name: MapName = MapName.EUROPE,
    timestamp: datetime | None = None,
    strict: bool = True,
    label_distance_threshold: float = LABEL_DISTANCE_THRESHOLD,
    accelerated: bool = True,
    fast_path: bool = True,
    timings: StageTimings | None = None,
) -> ParsedMap:
    """Extract the topology from an SVG file on disk.

    Accepts the same options as :func:`parse_svg`, so file- and
    bytes-based parsing behave identically.
    """
    return parse_svg(
        Path(path).read_bytes(),
        map_name=map_name,
        timestamp=timestamp,
        strict=strict,
        label_distance_threshold=label_distance_threshold,
        accelerated=accelerated,
        fast_path=fast_path,
        timings=timings,
    )
