"""End-to-end extraction: SVG document → :class:`MapSnapshot`.

This is the processing step the paper ran over 542,049 collected files:
read the tag stream, run Algorithm 1, run Algorithm 2, run the sanity
checks, and emit the structured topology (serialised to YAML by
:mod:`repro.yamlio`).  Every failure raises a typed exception from
:mod:`repro.errors`, so bulk runs can account for unprocessable files the
way Table 2 does.

Parsing behaviour is configured through one frozen :class:`ParseOptions`
object (``fast_path``, ``accelerated``, ``label_distance_threshold``)
accepted as ``options=`` by every entry point from :func:`parse_svg` up
to the bulk engine and the CLI.  The historical individual keywords
still work but are deprecated aliases, normalised into a
:class:`ParseOptions` at the boundary with a ``DeprecationWarning``.

Every parse also feeds the process-wide metrics registry
(:mod:`repro.telemetry`): per-stage wall time lands in the
``repro_parse_stage_seconds`` histogram and fast-path hits/fallbacks in
``repro_parse_fast_path_total``, whatever the caller does — the
:class:`StageTimings` accumulator remains only as a per-run view for
callers that want their own scoped numbers.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, replace
from datetime import datetime, timezone
from pathlib import Path
from time import perf_counter

from repro.constants import LABEL_DISTANCE_THRESHOLD, MapName
from repro.errors import OptionsError
from repro.parsing.algorithm1 import ExtractionResult, extract_objects
from repro.parsing.algorithm2 import AttributedLink, attribute_objects
from repro.parsing.checks import ParseReport, run_sanity_checks
from repro.parsing.stream import stream_extract
from repro.svgdoc.reader import read_svg_tags
from repro.telemetry import MetricsRegistry, get_registry
from repro.topology.model import Link, LinkEnd, MapSnapshot, Node, NodeKind

#: Timestamp used when the caller provides none.
_EPOCH = datetime(1970, 1, 1, tzinfo=timezone.utc)

#: Version of the extraction pipeline.  Bump whenever a change alters the
#: YAML a given SVG produces — the incremental bulk engine
#: (:mod:`repro.dataset.engine`) stores this in its manifest and
#: reprocesses every file when it no longer matches.
#:
#: 2: stricter root width/height parsing (malformed unit suffixes now fail
#:    instead of silently mis-parsing), so some previously-processed files
#:    change outcome.
PARSER_VERSION = 2

@dataclass(frozen=True, slots=True)
class ParseOptions:
    """How to run the extraction pipeline — one object, passed everywhere.

    Replaces the ``fast_path`` / ``accelerated`` /
    ``label_distance_threshold`` keywords that used to be threaded
    through every layer individually.  Frozen so a single instance can be
    shared across threads and pickled to pool workers.

    Attributes:
        fast_path: run reader + Algorithm 1 as one fused streaming pass
            (:func:`repro.parsing.stream.stream_extract`); identical
            results, and any document outside the expected shape falls
            back to the faithful DOM path — ``False`` forces that path
            outright.
        accelerated: use the grid-indexed attribution (identical
            results; ``False`` for the paper's exact quadratic
            formulation).
        label_distance_threshold: Algorithm 2 label-distance limit.
    """

    fast_path: bool = True
    accelerated: bool = True
    label_distance_threshold: float = LABEL_DISTANCE_THRESHOLD


#: The defaults every entry point shares.
DEFAULT_PARSE_OPTIONS = ParseOptions()


def resolve_parse_options(
    options: ParseOptions | None = None,
    *,
    label_distance_threshold: float | None = None,
    accelerated: bool | None = None,
    fast_path: bool | None = None,
    stacklevel: int = 3,
) -> ParseOptions:
    """Normalise an ``options=`` object and/or deprecated keywords.

    The boundary every public entry point funnels through: without any
    deprecated keyword the given options object (or the shared default)
    comes back as-is; with deprecated keywords a single
    ``DeprecationWarning`` is emitted — one warning per call, however
    many aliases were passed — and an equivalent :class:`ParseOptions`
    is built.  Mixing ``options=`` with a deprecated keyword is
    ambiguous and raises :class:`~repro.errors.OptionsError` (a
    :class:`TypeError`).
    """
    overrides: dict[str, object] = {}
    if label_distance_threshold is not None:
        overrides["label_distance_threshold"] = label_distance_threshold
    if accelerated is not None:
        overrides["accelerated"] = accelerated
    if fast_path is not None:
        overrides["fast_path"] = fast_path
    if not overrides:
        return options if options is not None else DEFAULT_PARSE_OPTIONS
    names = ", ".join(sorted(overrides))
    if options is not None:
        raise OptionsError(
            f"pass options=ParseOptions(...) or the deprecated "
            f"keyword(s) {names}, not both"
        )
    warnings.warn(
        f"the {names} keyword(s) are deprecated; pass "
        f"options=ParseOptions(...) instead",
        DeprecationWarning,
        stacklevel=stacklevel,
    )
    return replace(DEFAULT_PARSE_OPTIONS, **overrides)


#: Per-stage histogram bounds: stages run sub-millisecond (checks) to
#: tens of milliseconds (DOM extract on a big map).
STAGE_BUCKETS: tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 1.0,
)


class _PipelineMetrics:
    """The pipeline's instruments, bound once per active registry."""

    __slots__ = ("registry", "stage", "fast_path")

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        self.stage = registry.histogram(
            "repro_parse_stage_seconds",
            "Wall time per extraction pipeline stage",
            buckets=STAGE_BUCKETS,
        )
        self.fast_path = registry.counter(
            "repro_parse_fast_path_total",
            "Documents the fused streaming pass handled (hit) or "
            "punted to the DOM path (fallback)",
        )


_metrics_cache: _PipelineMetrics | None = None


def _metrics() -> _PipelineMetrics:
    """Instrument bundle for the active registry (cached per registry)."""
    global _metrics_cache
    cached = _metrics_cache
    registry = get_registry()
    if cached is None or cached.registry is not registry:
        cached = _metrics_cache = _PipelineMetrics(registry)
    return cached


def observe_stage(stage: str, elapsed: float) -> None:
    """Charge ``elapsed`` seconds to one pipeline stage's histogram.

    For the few call sites outside this module that extend a stage —
    the YAML emission in :mod:`repro.dataset.processor` counts as
    ``serialize`` time, matching :class:`StageTimings`.
    """
    _metrics().stage.observe(elapsed, stage=stage)


@dataclass
class StageTimings:
    """Cumulative per-stage wall time over one or more parsed documents.

    A caller-scoped accumulator: pass an instance to :func:`parse_svg`
    (and :func:`repro.dataset.processor.process_svg_bytes`, which adds
    the YAML emission) to collect per-stage wall time for *this run
    only*.  The same numbers always also flow into the process-wide
    ``repro_parse_stage_seconds`` histogram and
    ``repro_parse_fast_path_total`` counter in
    :mod:`repro.telemetry` — new code should read those.  The fused
    streaming pass cannot split reading from extraction, so its whole
    pass is charged to ``extract`` and ``read`` stays 0 unless the DOM
    path runs.
    """

    seconds: dict[str, float] = field(
        default_factory=lambda: {
            "read": 0.0,
            "extract": 0.0,
            "attribute": 0.0,
            "checks": 0.0,
            "serialize": 0.0,
        }
    )
    #: Documents the streaming fast path handled end-to-end.
    fast_path_hits: int = 0
    #: Documents that fell back to the faithful DOM path.
    fallbacks: int = 0

    def add(self, stage: str, elapsed: float) -> None:
        self.seconds[stage] = self.seconds.get(stage, 0.0) + elapsed

    @property
    def total(self) -> float:
        return sum(self.seconds.values())

    def as_dict(self) -> dict:
        """JSON-friendly view (used by the throughput benchmark)."""
        return {
            "seconds": {key: round(value, 4) for key, value in self.seconds.items()},
            "fast_path_hits": self.fast_path_hits,
            "fallbacks": self.fallbacks,
        }


@dataclass
class ParsedMap:
    """The result of processing one weathermap SVG."""

    snapshot: MapSnapshot
    report: ParseReport
    extraction: ExtractionResult


def _snapshot_from(
    extraction: ExtractionResult,
    links: list[AttributedLink],
    map_name: MapName,
    timestamp: datetime,
) -> MapSnapshot:
    """Assemble the topology model from attributed objects."""
    snapshot = MapSnapshot(map_name=map_name, timestamp=timestamp)
    for obj in extraction.routers:
        kind = NodeKind.PEERING if obj.is_peering else NodeKind.ROUTER
        snapshot.add_node(Node(name=obj.name, kind=kind))
    for link in links:
        snapshot.add_link(
            Link(
                a=LinkEnd(
                    node=link.a.router.name,
                    label=link.a.label.text,
                    load=link.a.load,
                ),
                b=LinkEnd(
                    node=link.b.router.name,
                    label=link.b.label.text,
                    load=link.b.load,
                ),
            )
        )
    return snapshot


def parse_svg(
    source: str | bytes,
    map_name: MapName = MapName.EUROPE,
    timestamp: datetime | None = None,
    strict: bool = True,
    options: ParseOptions | None = None,
    *,
    label_distance_threshold: float | None = None,
    accelerated: bool | None = None,
    fast_path: bool | None = None,
    timings: StageTimings | None = None,
) -> ParsedMap:
    """Extract the topology from an SVG document.

    Args:
        source: SVG document text or bytes.
        map_name: which backbone map the document depicts.
        timestamp: observation time to stamp the snapshot with.
        strict: raise on sanity-check failures instead of recording them.
        options: how to parse (fast path, attribution acceleration,
            label-distance threshold); defaults to
            :data:`DEFAULT_PARSE_OPTIONS`.
        label_distance_threshold: deprecated — use
            ``options=ParseOptions(label_distance_threshold=...)``.
        accelerated: deprecated — use
            ``options=ParseOptions(accelerated=...)``.
        fast_path: deprecated — use ``options=ParseOptions(fast_path=...)``.
        timings: accumulate per-stage wall time into this object (the
            process-wide telemetry histogram is fed either way).

    Raises:
        MalformedSvgError: not an SVG, or invalid attribute values.
        ParseError subclasses: extraction or attribution failures.
    """
    opts = resolve_parse_options(
        options,
        label_distance_threshold=label_distance_threshold,
        accelerated=accelerated,
        fast_path=fast_path,
    )
    metrics = _metrics()
    stage_hist = metrics.stage

    extraction: ExtractionResult | None = None
    if opts.fast_path:
        started = perf_counter()
        streamed = stream_extract(source)
        elapsed = perf_counter() - started
        if streamed is not None:
            extraction = streamed[0]
            stage_hist.observe(elapsed, stage="extract")
            metrics.fast_path.inc(1, outcome="hit")
            if timings is not None:
                timings.add("extract", elapsed)
                timings.fast_path_hits += 1
        else:
            metrics.fast_path.inc(1, outcome="fallback")
            if timings is not None:
                timings.fallbacks += 1
    if extraction is None:
        started = perf_counter()
        stream = read_svg_tags(source)
        elapsed = perf_counter() - started
        stage_hist.observe(elapsed, stage="read")
        if timings is not None:
            timings.add("read", elapsed)
        started = perf_counter()
        extraction = extract_objects(stream)
        elapsed = perf_counter() - started
        stage_hist.observe(elapsed, stage="extract")
        if timings is not None:
            timings.add("extract", elapsed)

    started = perf_counter()
    links = attribute_objects(
        extraction,
        label_distance_threshold=opts.label_distance_threshold,
        accelerated=opts.accelerated,
    )
    elapsed = perf_counter() - started
    stage_hist.observe(elapsed, stage="attribute")
    if timings is not None:
        timings.add("attribute", elapsed)

    started = perf_counter()
    report = run_sanity_checks(extraction, links, strict=strict)
    elapsed = perf_counter() - started
    stage_hist.observe(elapsed, stage="checks")
    if timings is not None:
        timings.add("checks", elapsed)

    started = perf_counter()
    snapshot = _snapshot_from(
        extraction, links, map_name, timestamp if timestamp is not None else _EPOCH
    )
    elapsed = perf_counter() - started
    stage_hist.observe(elapsed, stage="serialize")
    if timings is not None:
        timings.add("serialize", elapsed)
    return ParsedMap(snapshot=snapshot, report=report, extraction=extraction)


def parse_svg_file(
    path: str | Path,
    map_name: MapName = MapName.EUROPE,
    timestamp: datetime | None = None,
    strict: bool = True,
    options: ParseOptions | None = None,
    *,
    label_distance_threshold: float | None = None,
    accelerated: bool | None = None,
    fast_path: bool | None = None,
    timings: StageTimings | None = None,
) -> ParsedMap:
    """Extract the topology from an SVG file on disk.

    Accepts the same options as :func:`parse_svg`, so file- and
    bytes-based parsing behave identically.
    """
    opts = resolve_parse_options(
        options,
        label_distance_threshold=label_distance_threshold,
        accelerated=accelerated,
        fast_path=fast_path,
    )
    return parse_svg(
        Path(path).read_bytes(),
        map_name=map_name,
        timestamp=timestamp,
        strict=strict,
        options=opts,
        timings=timings,
    )
