"""Post-attribution sanity checks (Section 4, "Parsing sanity checks").

Algorithm 1 already enforces the in-stream checks (loads within [0, 100],
two arrows per link); Algorithm 2 enforces the geometric ones (label
distance threshold, single-use labels, two distinct routers per link).
This module runs the remaining whole-map checks and produces the
:class:`ParseReport` the dataset pipeline stores alongside each YAML.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import IsolatedRouterError
from repro.parsing.algorithm1 import ExtractionResult
from repro.parsing.algorithm2 import AttributedLink
from repro.svgdoc.colors import WEATHERMAP_SCALE, LoadColorScale


@dataclass
class ParseReport:
    """Statistics and warnings from parsing one SVG document."""

    router_count: int = 0
    peering_count: int = 0
    link_count: int = 0
    label_count: int = 0
    unused_labels: int = 0
    color_mismatches: int = 0
    isolated_routers: list[str] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether the document passed every check."""
        return not self.isolated_routers and not self.warnings


def check_load_colors(
    extraction: ExtractionResult,
    scale: LoadColorScale = WEATHERMAP_SCALE,
) -> int:
    """Count load texts whose arrow colour disagrees with the percentage.

    The weathermap encodes each load twice — "explicitly with a percentage
    and implicitly through its color" — so the two can be cross-checked.
    A mismatch means a stale or tampered document (or a scale change).
    """
    mismatches = 0
    for link in extraction.links:
        for arrow, load in zip(link.arrows, link.loads):
            if not arrow.fill:
                continue
            if not scale.is_consistent(load, arrow.fill):
                mismatches += 1
    return mismatches


def run_sanity_checks(
    extraction: ExtractionResult,
    links: list[AttributedLink],
    strict: bool = True,
    check_colors: bool = True,
) -> ParseReport:
    """Validate a fully attributed map.

    Args:
        extraction: Algorithm 1 output (for element totals).
        links: Algorithm 2 output.
        strict: raise on failed checks instead of recording warnings.
        check_colors: cross-check each load percentage against its arrow
            colour (mismatches are warnings, never fatal).

    Raises:
        IsolatedRouterError: in strict mode, when an OVH router ends up
            with no link — the paper's final check ("we ensure that each
            router is attributed at least one link").
    """
    connected: set[str] = set()
    for link in links:
        connected.add(link.a.router.name)
        connected.add(link.b.router.name)

    report = ParseReport(
        router_count=sum(1 for obj in extraction.routers if obj.is_router),
        peering_count=sum(1 for obj in extraction.routers if obj.is_peering),
        link_count=len(links),
        label_count=len(extraction.labels),
        unused_labels=len(extraction.labels) - 2 * len(links),
    )

    if check_colors:
        report.color_mismatches = check_load_colors(extraction)
        if report.color_mismatches:
            report.warnings.append(
                f"{report.color_mismatches} loads disagree with their arrow colour"
            )

    isolated = sorted(
        obj.name
        for obj in extraction.routers
        if obj.is_router and obj.name not in connected
    )
    if isolated:
        if strict:
            raise IsolatedRouterError(
                f"{len(isolated)} routers have no attributed link: "
                f"{isolated[:5]}"
            )
        report.isolated_routers = isolated
        report.warnings.append(f"{len(isolated)} isolated routers")

    if report.unused_labels:
        report.warnings.append(
            f"{report.unused_labels} labels were never attributed to a link end"
        )
    return report
