"""Stable, hierarchical random-seed derivation.

Python's built-in ``hash`` is salted per process, so it must never feed a
simulation seed.  ``stable_seed`` derives a 64-bit seed from arbitrary string
and integer parts with BLAKE2, and ``substream`` builds an independent
``random.Random`` for a namespaced component — the idiom used throughout the
simulator so that, e.g., the load noise of one link at one timestamp is a
pure function of (seed, map, link id, timestamp).
"""

from __future__ import annotations

import hashlib
import random
from datetime import datetime


def stable_seed(*parts: str | int | float | datetime) -> int:
    """Derive a stable 64-bit seed from the given parts.

    Parts are canonicalised to text, so ``stable_seed(5)`` and
    ``stable_seed("5")`` coincide deliberately — callers namespace with
    distinct string prefixes instead.
    """
    digest = hashlib.blake2b(digest_size=8)
    for part in parts:
        if isinstance(part, datetime):
            token = part.isoformat()
        else:
            token = str(part)
        digest.update(token.encode("utf-8"))
        digest.update(b"\x1f")
    return int.from_bytes(digest.digest(), "big")


def substream(*parts: str | int | float | datetime) -> random.Random:
    """An independent PRNG for the namespace identified by ``parts``."""
    return random.Random(stable_seed(*parts))


def stable_uniform(*parts: str | int | float | datetime) -> float:
    """A single stable uniform draw in [0, 1) for the namespace."""
    return substream(*parts).random()
