"""Service layer: JSON-safe payloads computed straight off the columns.

Each builder takes an already-resolved read handle (the router never
touches storage, the services never touch HTTP) and returns a plain
dict for the app layer to render.  Nothing here constructs a
``MapSnapshot`` or imports the parsing pipeline — REP008 enforces that
— so every payload is assembled from zero-copy column views:

* ``snapshot`` bisects to one row and slices that row's membership and
  link columns (on a sharded handle, the newest overlapping shard is
  the only one opened);
* ``series`` is a predicate-pushdown :meth:`scan` with the link filter
  bound, normalised so *a_to_b* is always the egress direction leaving
  the first requested endpoint;
* ``imbalance`` / ``evolution`` reuse the vectorised accessors from
  :mod:`repro.analysis.columnar`, fanned per shard and merged in time
  order (shards partition time, so concatenation preserves order).
"""

from __future__ import annotations

from datetime import datetime, timedelta, timezone
from typing import Any, Iterator

from repro.analysis.columnar import count_series, imbalance_samples
from repro.analysis.imbalance import MINIMUM_ACTIVE_LOAD, ImbalanceResult
from repro.analysis.timeseries import TimeSeries
from repro.constants import MapName
from repro.dataset.handles import ReadHandle
from repro.dataset.query import MappedIndex, ScanPredicate
from repro.dataset.shards import ShardedMappedIndex
from repro.errors import (
    AnalysisError,
    QueryError,
    ReproError,
    ServerError,
    SnapshotIndexError,
    SnapshotNotFoundError,
    UnknownEndpointError,
)
from repro.server.engines import EngineCache

__all__ = [
    "error_body",
    "error_status",
    "evolution_payload",
    "imbalance_payload",
    "maps_payload",
    "series_payload",
    "snapshot_payload",
]

# -- the unified error envelope -------------------------------------------
#
# Every non-2xx response the read API produces is
# ``{"error": {"code", "message", "map"?}}``, and this table is the one
# place a typed :mod:`repro.errors` class maps to an HTTP status and a
# stable machine-readable code.  Order matters: the first matching
# (most specific) entry wins, so subclasses come before their bases.

ERROR_MAPPING: tuple[tuple[type[Exception], int, str], ...] = (
    (SnapshotNotFoundError, 404, "snapshot_not_found"),
    (SnapshotIndexError, 503, "index_unavailable"),
    (UnknownEndpointError, 404, "unknown_endpoint"),
    (QueryError, 400, "bad_query"),
    (AnalysisError, 400, "empty_window"),
    (ServerError, 500, "server_error"),
    (ReproError, 500, "internal_error"),
)


def error_status(exc: BaseException) -> tuple[int, str]:
    """The ``(http_status, code)`` one typed error renders as."""
    for error_type, status, code in ERROR_MAPPING:
        if isinstance(exc, error_type):
            return status, code
    return 500, "internal_error"


def error_body(
    code: str, message: str, map_name: MapName | None = None
) -> dict:
    """The envelope every non-2xx response carries."""
    error: dict = {"code": code, "message": message}
    if map_name is not None:
        error["map"] = map_name.value
    return {"error": error}

#: Imbalance thresholds summarised per bucket — the Figure 5c x-axis
#: points the paper's discussion leans on.
IMBALANCE_THRESHOLDS = (5.0, 10.0, 25.0)


def _iso(when: datetime) -> str:
    return when.astimezone(timezone.utc).isoformat()


def _floor_second(when: datetime) -> datetime:
    """Clamp to whole seconds — index timestamps are integral epochs."""
    return datetime.fromtimestamp(int(when.timestamp()), tz=timezone.utc)


def _single_engines(
    handle: ReadHandle,
    start: datetime | None = None,
    end: datetime | None = None,
    *,
    reverse: bool = False,
) -> Iterator[MappedIndex]:
    """The per-shard engines a window touches (the handle itself, flat)."""
    if isinstance(handle, ShardedMappedIndex):
        yield from handle.iter_engines(start, end, reverse=reverse)
    else:
        yield handle


def _prefix_sum(counts: Any, row: int) -> int:
    """Sum of a count column's first ``row`` entries (small windows)."""
    return int(sum(counts[:row]))


def _time_range(handle: ReadHandle) -> tuple[datetime, datetime] | None:
    """First and last snapshot timestamps, opening at most two shards."""
    first = last = None
    for engine in _single_engines(handle):
        if len(engine):
            first = engine.timestamp_at(0)
            break
    for engine in _single_engines(handle, reverse=True):
        if len(engine):
            last = engine.timestamp_at(len(engine) - 1)
            break
    if first is None or last is None:
        return None
    return first, last


def maps_payload(engines: EngineCache) -> dict:
    """``GET /maps`` — every map with a queryable index, with its extent."""
    maps = []
    for map_name in MapName:
        try:
            pinned = engines.handle(map_name)
        except SnapshotNotFoundError:
            continue
        if len(pinned.handle) == 0:
            continue  # a sharded store resolves empty maps to empty engines
        entry: dict = {
            "name": map_name.value,
            "title": map_name.title,
            "snapshots": len(pinned.handle),
        }
        extent = _time_range(pinned.handle)
        if extent is not None:
            entry["first"] = _iso(extent[0])
            entry["last"] = _iso(extent[1])
        maps.append(entry)
    return {"maps": maps}


def _latest_row(
    handle: ReadHandle, at: datetime | None
) -> tuple[MappedIndex, int] | None:
    """The newest (engine, row) at or before ``at`` — newest shard first."""
    end = None if at is None else _floor_second(at) + timedelta(seconds=1)
    for engine in _single_engines(handle, end=end, reverse=True):
        rows = engine.rows_in_window(None, end)
        if rows.stop > 0:
            return engine, rows.stop - 1
    return None


def snapshot_payload(
    handle: ReadHandle, map_name: MapName, at: datetime | None = None
) -> dict:
    """``GET /maps/<m>/snapshot`` — one row sliced out of the columns.

    Raises:
        SnapshotNotFoundError: the map holds no snapshot at or before
            ``at`` (or none at all).
    """
    located = _latest_row(handle, at)
    if located is None:
        moment = "at all" if at is None else f"at or before {_iso(at)}"
        raise SnapshotNotFoundError(
            f"map {map_name.value!r} has no snapshot {moment}"
        )
    engine, row = located
    router_lo = _prefix_sum(engine.router_counts, row)
    peering_lo = _prefix_sum(engine.peering_counts, row)
    lo, hi = engine.link_slice(range(row, row + 1))
    names = engine.names
    labels = engine.labels
    links = [
        {
            "node_a": names[engine.link_a_nodes[j]],
            "label_a": labels[engine.link_a_labels[j]],
            "load_a": float(engine.link_a_loads[j]),
            "node_b": names[engine.link_b_nodes[j]],
            "label_b": labels[engine.link_b_labels[j]],
            "load_b": float(engine.link_b_loads[j]),
        }
        for j in range(lo, hi)
    ]
    return {
        "map": map_name.value,
        "timestamp": _iso(engine.timestamp_at(row)),
        "routers": [
            names[engine.router_ids[j]]
            for j in range(
                router_lo, router_lo + int(engine.router_counts[row])
            )
        ],
        "peerings": [
            names[engine.peering_ids[j]]
            for j in range(
                peering_lo, peering_lo + int(engine.peering_counts[row])
            )
        ],
        "links": links,
    }


def series_payload(
    handle: ReadHandle,
    map_name: MapName,
    link: tuple[str, str],
    start: datetime | None = None,
    end: datetime | None = None,
) -> dict:
    """``GET /maps/<m>/series`` — one link's directed loads over a window.

    The predicate (time window + link filter) is pushed straight into
    the engine's scan; points normalise both stored orientations so
    ``a_to_b`` is always the egress load leaving ``link[0]``.
    """
    predicate = ScanPredicate(start=start, end=end, link=link)
    result = handle.scan(predicate)
    points = []
    for record in result.records():
        if record.node_a == link[0]:
            forward, backward = record.load_a, record.load_b
        else:
            forward, backward = record.load_b, record.load_a
        points.append(
            {
                "time": _iso(record.timestamp),
                "a_to_b": forward,
                "b_to_a": backward,
            }
        )
    return {
        "map": map_name.value,
        "link": {"a": link[0], "b": link[1]},
        "points": points,
    }


def imbalance_payload(
    handle: ReadHandle,
    map_name: MapName,
    start: datetime | None = None,
    end: datetime | None = None,
    minimum_load: float = MINIMUM_ACTIVE_LOAD,
) -> dict:
    """``GET /maps/<m>/imbalance`` — the Figure 5c summary over a window."""
    merged = ImbalanceResult()
    for engine in _single_engines(handle, start, end):
        shard = imbalance_samples(engine, start, end, minimum_load)
        merged.internal.extend(shard.internal)
        merged.external.extend(shard.external)

    def bucket(values: list[float]) -> dict:
        summary: dict = {"count": len(values)}
        if values:
            summary["mean"] = sum(values) / len(values)
            summary["max"] = max(values)
            summary["fraction_within"] = {
                str(threshold): sum(
                    1 for value in values if value <= threshold
                )
                / len(values)
                for threshold in IMBALANCE_THRESHOLDS
            }
        return summary

    return {
        "map": map_name.value,
        "minimum_load": minimum_load,
        "internal": bucket(merged.internal),
        "external": bucket(merged.external),
    }


def evolution_payload(
    handle: ReadHandle,
    map_name: MapName,
    start: datetime | None = None,
    end: datetime | None = None,
) -> dict:
    """``GET /maps/<m>/evolution`` — the Figure 4 count series over a window.

    Raises:
        AnalysisError: the window selects no snapshots, matching the
            columnar accessor's own contract.
    """
    parts = []
    for engine in _single_engines(handle, start, end):
        try:
            parts.append(count_series(engine, start, end))
        except AnalysisError:
            continue  # this shard's slice of the window is empty
    if not parts:
        raise AnalysisError(
            f"map {map_name.value!r} has no snapshots in the window"
        )

    def merged(selector: str) -> dict:
        times: list[str] = []
        values: list[float] = []
        for part in parts:
            series: TimeSeries = getattr(part, selector)
            times.extend(_iso(when) for when in series.times)
            values.extend(series.values)
        return {"times": times, "values": values}

    return {
        "map": map_name.value,
        "routers": merged("routers"),
        "internal_links": merged("internal_links"),
        "external_links": merged("external_links"),
    }
