"""The response cache: rendered bodies keyed by (map, endpoint, query, generation).

The weather map's read patterns are heavily skewed — the paper's
operators watch "the current snapshot" of a handful of maps — so the
server keeps fully-rendered response bodies, not parsed intermediates.
Correctness comes from the key, not from invalidation callbacks: the
index *generation token* (see :func:`repro.dataset.handles.read_generation`)
is part of every key, so an ingest checkpoint that rewrites the index
simply stops matching the old entries, which age out of the LRU on
their own.  Historical windows are immutable by construction, which is
what makes the strong ETags safe to serve with ``If-None-Match``.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Hashable

from repro.errors import ServerError
from repro.telemetry import get_registry

__all__ = ["CachedResponse", "ResponseCache"]


@dataclass(frozen=True)
class CachedResponse:
    """One rendered response body plus the headers derived from it."""

    body: bytes
    content_type: str
    #: Strong validator: a truncated SHA-256 of the body, quoted per
    #: RFC 9110.  Identical bodies yield identical ETags across
    #: processes and restarts, so clients can revalidate forever.
    etag: str = field(init=False)

    def __post_init__(self) -> None:
        digest = hashlib.sha256(self.body).hexdigest()[:32]
        object.__setattr__(self, "etag", f'"{digest}"')

    def matches(self, if_none_match: str | None) -> bool:
        """Whether an ``If-None-Match`` header revalidates this body.

        ETags here are strong hashes of the exact bytes, so a weak
        comparison (``W/`` prefix stripped) is still exact.
        """
        if not if_none_match:
            return False
        if if_none_match.strip() == "*":
            return True
        for candidate in if_none_match.split(","):
            candidate = candidate.strip()
            if candidate.startswith("W/"):
                candidate = candidate[2:]
            if candidate == self.etag:
                return True
        return False


class ResponseCache:
    """A thread-safe LRU over :class:`CachedResponse` entries.

    Keys are opaque hashables built by the app layer; the cache never
    inspects them.  Hits and misses land in
    ``repro_server_cache_total{endpoint, outcome}`` so the benchmark can
    read its hit rate straight off the registry.
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ServerError(
                f"response cache capacity must be >= 1, got {capacity}"
            )
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: OrderedDict[Hashable, CachedResponse] = OrderedDict()  # repro: guarded-by[_lock]

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, endpoint: str, key: Hashable) -> CachedResponse | None:
        """The cached response for ``key``, refreshing its LRU position."""
        counter = get_registry().counter(
            "repro_server_cache_total",
            "Response-cache lookups by endpoint and outcome",
        )
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
        counter.inc(1, endpoint=endpoint, outcome="hit" if entry else "miss")
        return entry

    def put(
        self, key: Hashable, body: bytes, content_type: str
    ) -> CachedResponse:
        """Store one rendered body, evicting the least-recently-used entry."""
        entry = CachedResponse(body=body, content_type=content_type)
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
        return entry

    def clear(self) -> None:
        """Drop every entry (tests; generation keys make this optional)."""
        with self._lock:
            self._entries.clear()
