"""The threaded HTTP transport: ThreadingHTTPServer over the shared core.

Layering (thin-router → services → data access)::

    WeatherRequestHandler       transport only: read request, write bytes
        └─ core.handle_request      route, validate, render (shared w/ ASGI)
            └─ router.match_route       names the endpoint, extracts the slug
            └─ services.*_payload       dicts computed off the column views
                  └─ EngineCache        one generation-pinned handle per map
                  └─ ResponseCache      rendered bodies keyed by generation
                  └─ GenerationWatcher  the live feed (SSE + long-poll)

Request-path guarantees:

* an ingest checkpoint never 500s a reader — generation changes are
  absorbed by the engine hot-swap, and a mid-swap
  :class:`~repro.errors.SnapshotIndexError` gets one invalidate-and-
  retry before degrading to 503;
* every cacheable response carries a strong ETag (a hash of the exact
  body), and ``If-None-Match`` revalidation answers 304 without
  rendering anything;
* every non-2xx body is the unified error envelope
  ``{"error": {"code", "message", "map"?}}`` rendered through the typed
  mapping in :mod:`repro.server.services`;
* the deprecated unversioned paths serve the same bytes as their
  ``/v1`` successors, plus a ``Deprecation`` header.

SSE responses stream over ``Connection: close`` (self-delimiting for
``EventSource`` and curl alike); a stalled reader is evicted by the
watcher when its bounded queue fills, and a blocked socket write is
bounded by :data:`STREAM_WRITE_TIMEOUT` so the worker thread is
reclaimed either way.
"""

from __future__ import annotations

import logging
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import urlsplit

from repro.dataset.store import DatasetStore
from repro.server.cache import ResponseCache
from repro.server.core import (
    AppState,
    EventStream,
    Response,
    error_response,
    handle_request,
)
from repro.server.engines import EngineCache
from repro.server.feed import SSE_HEARTBEAT, GenerationWatcher, render_sse
from repro.server.options import ServeOptions, ServerConfig, resolve_serve_options
from repro.server.router import match_route
from repro.telemetry import get_registry

logger = logging.getLogger(__name__)

__all__ = [
    "ServerConfig",
    "WeatherRequestHandler",
    "WeatherServer",
    "create_server",
    "serve",
]

#: Upper bound on one blocking socket write during an SSE stream; a
#: reader stalled longer than this loses the connection (the watcher's
#: queue-based eviction usually fires first).
STREAM_WRITE_TIMEOUT = 30.0


class WeatherServer(ThreadingHTTPServer):
    """The threaded read API over one dataset store."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        store: DatasetStore,
        options: ServeOptions | ServerConfig | None = None,
    ) -> None:
        self.state = AppState(store, resolve_serve_options(options))
        self.options = self.state.options
        super().__init__(
            (self.options.host, self.options.port), WeatherRequestHandler
        )
        self.state.start()

    @property
    def engines(self) -> EngineCache:
        """The shared engine cache (introspection and tests)."""
        return self.state.engines

    @property
    def cache(self) -> ResponseCache:
        """The shared response cache (introspection and tests)."""
        return self.state.cache

    @property
    def feed(self) -> GenerationWatcher:
        """The shared generation watcher (introspection and tests)."""
        return self.state.feed

    def server_close(self) -> None:
        super().server_close()
        self.state.close()


class WeatherRequestHandler(BaseHTTPRequestHandler):
    """One GET request: hand to the shared core, write what comes back."""

    server: WeatherServer
    protocol_version = "HTTP/1.1"
    server_version = "repro-weather"
    # Headers and body flush as separate writes; without TCP_NODELAY the
    # second one stalls ~40 ms behind Nagle + the client's delayed ACK.
    disable_nagle_algorithm = True

    def log_message(self, format: str, *args: object) -> None:
        logger.debug("%s %s", self.address_string(), format % args)

    def do_GET(self) -> None:
        parts = urlsplit(self.path)
        match = match_route(parts.path)
        endpoint = match.endpoint if match is not None else "unknown"
        registry = get_registry()
        status = 500
        try:
            with registry.span(
                "repro_server_request",
                "HTTP request wall time by endpoint",
                endpoint=endpoint,
            ):
                headers = {
                    name.lower(): value for name, value in self.headers.items()
                }
                outcome = handle_request(
                    self.server.state, parts.path, parts.query, headers
                )
                if isinstance(outcome, EventStream):
                    status = self._stream_events(outcome)
                else:
                    status = self._write_response(outcome)
        except Exception as exc:
            logger.exception("unhandled error serving %s", self.path)
            try:
                status = self._write_response(error_response(exc))
            except OSError as write_exc:
                logger.debug("client gone before error reply: %s", write_exc)
        registry.counter(
            "repro_server_requests_total",
            "HTTP requests by endpoint and response status",
        ).inc(1, endpoint=endpoint, status=str(status))

    # -- response writing --------------------------------------------------

    def _write_response(self, response: Response) -> int:
        self.send_response(response.status)
        for name, value in response.headers():
            self.send_header(name, value)
        self.end_headers()
        if response.body:
            self.wfile.write(response.body)
        return response.status

    def _stream_events(self, stream: EventStream) -> int:
        """Drain one SSE subscription onto the socket until either side quits."""
        feed = self.server.state.feed
        subscription = stream.subscription
        self.close_connection = True
        try:
            self.send_response(stream.status)
            for name, value in stream.headers():
                self.send_header(name, value)
            self.send_header("Connection", "close")
            self.end_headers()
            self.connection.settimeout(STREAM_WRITE_TIMEOUT)
            for event in stream.replay:
                self.wfile.write(render_sse(event))
                feed.record_delivery(event, subscription.transport)
            self.wfile.flush()
            while True:
                event = subscription.next_event(stream.heartbeat)
                if event is not None:
                    self.wfile.write(render_sse(event))
                    self.wfile.flush()
                    feed.record_delivery(event, subscription.transport)
                elif subscription.closed:
                    break  # evicted as a slow reader, or server shutdown
                else:
                    self.wfile.write(SSE_HEARTBEAT)
                    self.wfile.flush()
        except OSError as exc:
            logger.debug("SSE client went away: %s", exc)
        finally:
            feed.unsubscribe(subscription)
        return stream.status


def create_server(
    store: DatasetStore,
    options: ServeOptions | ServerConfig | None = None,
) -> WeatherServer:
    """Bind (but do not run) a :class:`WeatherServer` over one store."""
    return WeatherServer(store, resolve_serve_options(options))


def serve(
    store: DatasetStore,
    options: ServeOptions | ServerConfig | None = None,
    *,
    host: str | None = None,
    port: int | None = None,
    backend: str | None = None,
    use_mmap: bool | None = None,
    cache_entries: int | None = None,
    watch_interval: float | None = None,
    feed_ring_size: int | None = None,
    asgi: bool | None = None,
) -> None:
    """Run the read API until interrupted (the ``repro-weather serve`` body).

    Accepts one frozen :class:`ServeOptions`; the individual keywords
    (and a legacy :class:`ServerConfig`) still work but are deprecated,
    and mixing them with ``options=`` raises
    :class:`~repro.errors.OptionsError`.  With ``asgi=True`` the same
    router, services, and feed run under uvicorn
    (``pip install repro[asgi]``) instead of the threaded server.
    """
    resolved = resolve_serve_options(
        options,
        host=host,
        port=port,
        backend=backend,
        use_mmap=use_mmap,
        cache_entries=cache_entries,
        watch_interval=watch_interval,
        feed_ring_size=feed_ring_size,
        asgi=asgi,
    )
    if resolved.asgi:
        from repro.server.asgi import serve_asgi

        serve_asgi(store, resolved)
        return
    server = create_server(store, resolved)
    bound_host, bound_port = server.server_address[0], server.server_address[1]
    logger.info(
        "serving weather map read API on http://%s:%s/", bound_host, bound_port
    )
    try:
        server.serve_forever()
    finally:
        server.server_close()
