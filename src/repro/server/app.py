"""The HTTP app: ThreadingHTTPServer workers over the shared engines.

Layering (thin-router → services → data access)::

    WeatherRequestHandler     parses/validates, renders JSON, maps errors
        └─ router.match_route     names the endpoint, extracts the map slug
        └─ services.*_payload     computes dicts off the column views
              └─ EngineCache      one generation-pinned handle per map
              └─ ResponseCache    rendered bodies keyed by generation

Request-path guarantees:

* an ingest checkpoint never 500s a reader — generation changes are
  absorbed by the engine hot-swap, and a mid-swap
  :class:`~repro.errors.SnapshotIndexError` gets one invalidate-and-
  retry before degrading to 503;
* every cacheable response carries a strong ETag (a hash of the exact
  body), and ``If-None-Match`` revalidation answers 304 without
  rendering anything;
* client mistakes are 400 (bad parameters) or 404 (unknown path, map,
  or snapshot), each as a small JSON error body.
"""

from __future__ import annotations

import json
import logging
from dataclasses import dataclass
from datetime import datetime, timezone
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlsplit

from repro.analysis.imbalance import MINIMUM_ACTIVE_LOAD
from repro.constants import MapName
from repro.dataset.handles import ReadHandle, read_generation
from repro.dataset.store import DatasetStore
from repro.errors import (
    AnalysisError,
    QueryError,
    ServerError,
    SnapshotIndexError,
    SnapshotNotFoundError,
)
from repro.server import services
from repro.server.cache import ResponseCache
from repro.server.engines import EngineCache
from repro.server.router import RouteMatch, match_route
from repro.telemetry import get_registry, snapshot_to_prometheus

logger = logging.getLogger(__name__)

__all__ = ["ServerConfig", "WeatherRequestHandler", "WeatherServer", "create_server", "serve"]

#: Query parameters each endpoint accepts; anything else is a 400.
_ENDPOINT_PARAMS: dict[str, frozenset[str]] = {
    "healthz": frozenset(),
    "metrics": frozenset(),
    "maps": frozenset(),
    "snapshot": frozenset({"at"}),
    "series": frozenset({"link", "start", "end"}),
    "imbalance": frozenset({"start", "end", "min_load"}),
    "evolution": frozenset({"start", "end"}),
}


@dataclass(frozen=True)
class ServerConfig:
    """How one :class:`WeatherServer` binds and serves."""

    host: str = "127.0.0.1"
    port: int = 8080
    backend: str = "auto"
    use_mmap: bool = True
    cache_entries: int = 256

    def __post_init__(self) -> None:
        if not 0 <= self.port <= 65535:
            raise ServerError(f"port must lie in [0, 65535], got {self.port}")
        if self.cache_entries < 1:
            raise ServerError(
                f"cache_entries must be >= 1, got {self.cache_entries}"
            )


def _parse_timestamp(text: str | None, name: str) -> datetime | None:
    """An ISO-8601 or epoch-seconds query value, UTC when naive."""
    if text is None:
        return None
    try:
        return datetime.fromtimestamp(float(text), tz=timezone.utc)
    except (ValueError, OverflowError, OSError):
        pass
    try:
        when = datetime.fromisoformat(text)
    except ValueError:
        raise QueryError(
            f"{name} must be an ISO-8601 timestamp or epoch seconds, "
            f"got {text!r}"
        ) from None
    if when.tzinfo is None:
        when = when.replace(tzinfo=timezone.utc)
    return when


def _parse_params(raw_query: str, allowed: frozenset[str]) -> dict[str, str]:
    """The query string as a flat dict; unknown or repeated keys are 400s."""
    params: dict[str, str] = {}
    for name, values in parse_qs(
        raw_query, keep_blank_values=True, strict_parsing=False
    ).items():
        if name not in allowed:
            expected = ", ".join(sorted(allowed)) or "none"
            raise QueryError(
                f"unknown query parameter {name!r} (expected: {expected})"
            )
        if len(values) != 1:
            raise QueryError(
                f"query parameter {name!r} given {len(values)} times"
            )
        params[name] = values[0]
    return params


class WeatherServer(ThreadingHTTPServer):
    """The threaded read API over one dataset store."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, store: DatasetStore, config: ServerConfig) -> None:
        self.config = config
        self.engines = EngineCache(
            store, backend=config.backend, use_mmap=config.use_mmap
        )
        self.cache = ResponseCache(config.cache_entries)
        super().__init__((config.host, config.port), WeatherRequestHandler)

    def server_close(self) -> None:
        super().server_close()
        self.engines.close()


class WeatherRequestHandler(BaseHTTPRequestHandler):
    """One GET request: route, validate, serve from cache, count."""

    server: WeatherServer
    protocol_version = "HTTP/1.1"
    server_version = "repro-weather"
    # Headers and body flush as separate writes; without TCP_NODELAY the
    # second one stalls ~40 ms behind Nagle + the client's delayed ACK.
    disable_nagle_algorithm = True

    def log_message(self, format: str, *args: object) -> None:
        logger.debug("%s %s", self.address_string(), format % args)

    def do_GET(self) -> None:
        parts = urlsplit(self.path)
        match = match_route(parts.path)
        endpoint = match.endpoint if match is not None else "unknown"
        registry = get_registry()
        status = 500
        try:
            with registry.span(
                "repro_server_request",
                "HTTP request wall time by endpoint",
                endpoint=endpoint,
            ):
                status = self._dispatch(match, parts.path, parts.query)
        except Exception as exc:
            logger.exception("unhandled error serving %s", self.path)
            try:
                status = self._send_json(
                    500, {"error": f"internal error: {exc}"}
                )
            except OSError as write_exc:
                logger.debug("client gone before error reply: %s", write_exc)
        registry.counter(
            "repro_server_requests_total",
            "HTTP requests by endpoint and response status",
        ).inc(1, endpoint=endpoint, status=str(status))

    # -- dispatch ----------------------------------------------------------

    def _dispatch(
        self, match: RouteMatch | None, path: str, raw_query: str
    ) -> int:
        if match is None:
            return self._send_json(404, {"error": f"no such path {path!r}"})
        try:
            params = _parse_params(raw_query, _ENDPOINT_PARAMS[match.endpoint])
        except QueryError as exc:
            return self._send_json(400, {"error": str(exc)})
        if match.endpoint == "healthz":
            return self._send_json(200, {"status": "ok"})
        if match.endpoint == "metrics":
            text = snapshot_to_prometheus(get_registry().snapshot())
            return self._send_bytes(
                200, text.encode("utf-8"), "text/plain; version=0.0.4"
            )
        map_name: MapName | None = None
        if match.map_slug is not None:
            try:
                map_name = MapName(match.map_slug)
            except ValueError:
                return self._send_json(
                    404, {"error": f"unknown map {match.map_slug!r}"}
                )
        try:
            return self._serve_cached(match.endpoint, map_name, params)
        except (QueryError, AnalysisError) as exc:
            return self._send_json(400, {"error": str(exc)})
        except SnapshotNotFoundError as exc:
            return self._send_json(404, {"error": str(exc)})

    def _serve_cached(
        self,
        endpoint: str,
        map_name: MapName | None,
        params: dict[str, str],
    ) -> int:
        """Serve one cacheable endpoint, retrying once across a hot-swap."""
        last_error: SnapshotIndexError | None = None
        for attempt in range(2):
            try:
                return self._serve_once(endpoint, map_name, params)
            except SnapshotIndexError as exc:  # includes StaleIndexError
                last_error = exc
                if map_name is not None:
                    self.server.engines.invalidate(map_name)
                logger.info(
                    "engine went stale serving %s (attempt %d): %s",
                    endpoint,
                    attempt + 1,
                    exc,
                )
        return self._send_json(
            503, {"error": f"index unavailable mid-rebuild: {last_error}"}
        )

    def _serve_once(
        self,
        endpoint: str,
        map_name: MapName | None,
        params: dict[str, str],
    ) -> int:
        server = self.server
        canonical = tuple(sorted(params.items()))
        if map_name is None:
            # /maps spans every map: its generation is the tuple of all.
            token: object = tuple(
                read_generation(server.engines.store, name) for name in MapName
            )
            key: tuple = ("*", endpoint, canonical, token)

            def build() -> dict:
                return services.maps_payload(server.engines)

        else:
            pinned = server.engines.handle(map_name)
            key = (map_name.value, endpoint, canonical, pinned.token)
            handle, bound_map = pinned.handle, map_name

            def build() -> dict:
                return self._build_payload(endpoint, handle, bound_map, params)

        cached = server.cache.get(endpoint, key)
        if cached is None:
            body = json.dumps(
                build(), sort_keys=True, separators=(",", ":")
            ).encode("utf-8")
            cached = server.cache.put(key, body, "application/json")
        if cached.matches(self.headers.get("If-None-Match")):
            return self._send_not_modified(cached.etag)
        return self._send_bytes(
            200, cached.body, cached.content_type, etag=cached.etag
        )

    def _build_payload(
        self,
        endpoint: str,
        handle: ReadHandle,
        map_name: MapName,
        params: dict[str, str],
    ) -> dict:
        start = _parse_timestamp(params.get("start"), "start")
        end = _parse_timestamp(params.get("end"), "end")
        if endpoint == "snapshot":
            at = _parse_timestamp(params.get("at"), "at")
            return services.snapshot_payload(handle, map_name, at)
        if endpoint == "series":
            raw_link = params.get("link")
            if raw_link is None:
                raise QueryError("series requires link=<node_a>:<node_b>")
            node_a, sep, node_b = raw_link.partition(":")
            if not sep or not node_a or not node_b:
                raise QueryError(
                    f"link must be <node_a>:<node_b>, got {raw_link!r}"
                )
            return services.series_payload(
                handle, map_name, (node_a, node_b), start, end
            )
        if endpoint == "imbalance":
            minimum = MINIMUM_ACTIVE_LOAD
            raw_minimum = params.get("min_load")
            if raw_minimum is not None:
                try:
                    minimum = float(raw_minimum)
                except ValueError:
                    raise QueryError(
                        f"min_load must be a number, got {raw_minimum!r}"
                    ) from None
                if not 0.0 <= minimum <= 100.0:
                    raise QueryError(
                        f"min_load must lie in [0, 100], got {minimum}"
                    )
            return services.imbalance_payload(
                handle, map_name, start, end, minimum
            )
        if endpoint == "evolution":
            return services.evolution_payload(handle, map_name, start, end)
        raise ServerError(f"no payload builder for endpoint {endpoint!r}")

    # -- response writing --------------------------------------------------

    def _send_json(self, status: int, payload: dict) -> int:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        return self._send_bytes(status, body, "application/json")

    def _send_bytes(
        self,
        status: int,
        body: bytes,
        content_type: str,
        etag: str | None = None,
    ) -> int:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        if etag is not None:
            self.send_header("ETag", etag)
        self.end_headers()
        self.wfile.write(body)
        return status

    def _send_not_modified(self, etag: str) -> int:
        self.send_response(304)
        self.send_header("ETag", etag)
        self.send_header("Content-Length", "0")
        self.end_headers()
        return 304


def create_server(
    store: DatasetStore, config: ServerConfig | None = None
) -> WeatherServer:
    """Bind (but do not run) a :class:`WeatherServer` over one store."""
    return WeatherServer(store, config or ServerConfig())


def serve(store: DatasetStore, config: ServerConfig | None = None) -> None:
    """Run the read API until interrupted (the ``repro-weather serve`` body)."""
    server = create_server(store, config)
    host, port = server.server_address[0], server.server_address[1]
    logger.info("serving weather map read API on http://%s:%s/", host, port)
    try:
        server.serve_forever()
    finally:
        server.server_close()
