"""The tiny router: one regex table from paths to endpoint names.

Routing is deliberately dumb — a literal table plus one pattern for the
per-map views — so the layering stays thin-router → service → data
access: the router names the endpoint and extracts the map slug, the
app layer validates parameters, the services compute.  The endpoint
name doubles as the telemetry label on
``repro_server_requests_total{endpoint, ...}``, which is why unmatched
paths still resolve (to ``None``) rather than raising: unknown-path
counts are worth having.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

__all__ = ["RouteMatch", "match_route"]

#: Endpoint names whose responses are cacheable (immutable given the
#: generation token in the cache key).
CACHEABLE_ENDPOINTS = frozenset(
    {"maps", "snapshot", "series", "imbalance", "evolution"}
)

_MAP_VIEW = re.compile(
    r"^/maps/(?P<map>[a-z0-9-]+)/(?P<view>snapshot|series|imbalance|evolution)$"
)


@dataclass(frozen=True)
class RouteMatch:
    """What the router decided about one request path."""

    endpoint: str
    #: The raw map slug from the path; the app layer resolves it to a
    #: :class:`~repro.constants.MapName` (404 on an unknown value).
    map_slug: str | None = None


def match_route(path: str) -> RouteMatch | None:
    """Resolve a request path to its endpoint, ``None`` when unrouted."""
    if path == "/healthz":
        return RouteMatch(endpoint="healthz")
    if path == "/metrics":
        return RouteMatch(endpoint="metrics")
    if path == "/maps":
        return RouteMatch(endpoint="maps")
    matched = _MAP_VIEW.match(path)
    if matched is not None:
        return RouteMatch(
            endpoint=matched.group("view"), map_slug=matched.group("map")
        )
    return None
