"""The tiny router: one regex table from paths to endpoint names.

Routing is deliberately dumb — a literal table plus one pattern for the
per-map views — so the layering stays thin-router → service → data
access: the router names the endpoint and extracts the map slug, the
app layer validates parameters, the services compute.  The endpoint
name doubles as the telemetry label on
``repro_server_requests_total{endpoint, ...}``, which is why unmatched
paths still resolve (to ``None``) rather than raising: unknown-path
counts are worth having.

The stable surface is **versioned**: every endpoint mounts under
``/v1/...``.  The original unversioned paths from PR 8 keep answering
with identical payloads, but are deprecated — the app layer adds a
``Deprecation`` header and counts them in
``repro_server_deprecated_requests_total``.  Endpoints born after the
versioning (the live feed: ``events`` and ``generation``) exist only
under ``/v1`` — there is no legacy spelling to honour.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

__all__ = ["API_VERSION", "RouteMatch", "match_route"]

#: The mount point of the current stable surface.
API_VERSION = "v1"

#: Endpoint names whose responses are cacheable (immutable given the
#: generation token in the cache key).
CACHEABLE_ENDPOINTS = frozenset(
    {"maps", "snapshot", "series", "imbalance", "evolution"}
)

#: Endpoints that exist only under ``/v1`` (no deprecated alias).
VERSIONED_ONLY_ENDPOINTS = frozenset({"events", "generation"})

_MAP_VIEW = re.compile(
    r"^/maps/(?P<map>[a-z0-9-]+)/"
    r"(?P<view>snapshot|series|imbalance|evolution|events|generation)$"
)


@dataclass(frozen=True)
class RouteMatch:
    """What the router decided about one request path."""

    endpoint: str
    #: The raw map slug from the path; the app layer resolves it to a
    #: :class:`~repro.constants.MapName` (404 on an unknown value).
    map_slug: str | None = None
    #: Whether the request used the ``/v1`` mount.  ``False`` means the
    #: deprecated unversioned alias: same payload, plus a
    #: ``Deprecation`` header and a counter increment.
    versioned: bool = False


def match_route(path: str) -> RouteMatch | None:
    """Resolve a request path to its endpoint, ``None`` when unrouted."""
    versioned = False
    prefix = f"/{API_VERSION}"
    if path == prefix or path.startswith(prefix + "/"):
        versioned = True
        path = path[len(prefix):] or "/"
    if path == "/healthz":
        return RouteMatch(endpoint="healthz", versioned=versioned)
    if path == "/metrics":
        return RouteMatch(endpoint="metrics", versioned=versioned)
    if path == "/maps":
        return RouteMatch(endpoint="maps", versioned=versioned)
    matched = _MAP_VIEW.match(path)
    if matched is not None:
        view = matched.group("view")
        if not versioned and view in VERSIONED_ONLY_ENDPOINTS:
            return None
        return RouteMatch(
            endpoint=view, map_slug=matched.group("map"), versioned=versioned
        )
    return None
