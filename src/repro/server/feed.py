"""The live generation feed: one watcher, many subscribed connections.

The paper's weathermap is a *live* artifact on a 5-minute refresh grid;
PR 8 gave dashboards the pull side (cached reads) and this module gives
them the push side.  One :class:`GenerationWatcher` daemon thread stats
each map's generation token (:func:`repro.dataset.handles.read_generation`
— one ``stat()`` per map per tick, never per client) and, on a change:

1. triggers the :class:`~repro.server.engines.EngineCache` hot-swap, so
   the feed and the cached read path can never disagree about the
   current generation — a client that reacts to an event by fetching
   ``/v1/maps/<m>/snapshot`` is guaranteed the new data;
2. appends a :class:`FeedEvent` to a small bounded ring buffer (the
   ``Last-Event-ID`` replay window for reconnecting SSE clients);
3. fans the event out through per-connection **bounded** queues.  A
   subscriber that cannot drain its queue is evicted (counted in
   ``repro_feed_evictions_total``) instead of buffering without bound —
   a stalled dashboard must never hold the watcher's memory hostage;
4. wakes every long-poll waiter parked in :meth:`wait_for_event`.

Event ids are monotonic per map, which is what makes SSE resume exact:
a client reconnecting with ``Last-Event-ID: n`` replays every ring
event with id > n before going live.  The id is also the long-poll
cursor (``?after=n``).

Telemetry: ``repro_feed_subscribers`` (gauge, by transport),
``repro_feed_events_total{transport}`` (counted at delivery),
``repro_feed_notify_seconds`` (checkpoint → client-delivery latency,
measured against the generation file's mtime) and
``repro_feed_evictions_total{transport}`` — all catalogued in
``docs/observability.md``.
"""

from __future__ import annotations

import json
import queue
import threading
import time
from collections import deque
from dataclasses import dataclass
from datetime import datetime, timezone

from repro.constants import MapName
from repro.dataset.handles import GenerationToken, read_generation
from repro.errors import SnapshotNotFoundError
from repro.server.engines import EngineCache
from repro.telemetry import get_registry

__all__ = [
    "FeedEvent",
    "GenerationWatcher",
    "Subscription",
    "render_sse",
]

#: Checkpoint-to-delivery latency bounds: sub-tick on a quiet host up to
#: a couple of watch intervals under load.
NOTIFY_BUCKETS: tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


@dataclass(frozen=True, slots=True)
class FeedEvent:
    """One observed generation change of one map."""

    map: str
    #: Monotonic per map; the SSE ``Last-Event-ID`` / long-poll cursor.
    id: int
    #: Opaque name of the new generation (stable across transports).
    generation: str
    #: When the checkpoint landed (the generation file's mtime), ISO-8601.
    changed_at: str
    #: The same instant as epoch seconds, for delivery-latency math.
    checkpoint_ts: float

    def payload(self) -> dict:
        """The JSON body shared by both transports."""
        return {
            "map": self.map,
            "id": self.id,
            "generation": self.generation,
            "changed_at": self.changed_at,
        }


def render_sse(event: FeedEvent) -> bytes:
    """One event as Server-Sent-Events wire bytes.

    Both transports (threaded and ASGI) emit exactly these bytes, which
    is what the byte-for-byte parity conformance tests pin.
    """
    data = json.dumps(event.payload(), sort_keys=True, separators=(",", ":"))
    return (
        f"id: {event.id}\nevent: generation\ndata: {data}\n\n"
    ).encode("utf-8")


#: SSE comment line sent on idle so proxies and clients keep the
#: connection alive (and stalled sockets surface as write errors).
SSE_HEARTBEAT = b": keep-alive\n\n"


def _token_signature(token: GenerationToken) -> tuple[str, float]:
    """(opaque generation name, checkpoint epoch seconds) of one token."""
    layout, ino, size, mtime_ns = token
    return f"{layout}-{ino:x}-{size:x}-{mtime_ns:x}", mtime_ns / 1e9


class Subscription:
    """One connection's bounded delivery queue.

    The watcher publishes with a non-blocking put; :meth:`deliver`
    returning ``False`` means the queue was full — the caller (the
    watcher) then evicts by closing the subscription.  The consuming
    transport drains with :meth:`next_event`, which doubles as the
    heartbeat timer: ``None`` with :attr:`closed` unset means "idle,
    send a keep-alive", with it set "the watcher gave up on you".
    """

    def __init__(self, map_name: MapName, transport: str, capacity: int) -> None:
        self.map_name = map_name
        self.transport = transport
        self._queue: queue.Queue[FeedEvent] = queue.Queue(maxsize=capacity)
        self._closed = threading.Event()

    @property
    def closed(self) -> bool:
        return self._closed.is_set()

    def deliver(self, event: FeedEvent) -> bool:
        """Enqueue one event; ``False`` when the subscriber is too slow."""
        if self._closed.is_set():
            return False
        try:
            self._queue.put_nowait(event)
        except queue.Full:
            return False
        return True

    def next_event(self, timeout: float) -> FeedEvent | None:
        """The next queued event, or ``None`` after ``timeout`` seconds."""
        try:
            return self._queue.get(timeout=timeout)
        except queue.Empty:
            return None

    def close(self) -> None:
        self._closed.set()


class _MapFeed:
    """Per-map watcher state: token, ring, subscribers, long-poll wakeup."""

    __slots__ = ("token", "last_id", "latest", "ring", "subscribers", "changed")

    def __init__(self, lock: threading.Lock, ring_size: int) -> None:
        self.token: GenerationToken | None = None  # repro: guarded-by[_lock]
        self.last_id = 0  # repro: guarded-by[_lock]
        self.latest: FeedEvent | None = None  # repro: guarded-by[_lock]
        self.ring: deque[FeedEvent] = deque(maxlen=ring_size)  # repro: guarded-by[_lock]
        self.subscribers: list[Subscription] = []  # repro: guarded-by[_lock]
        self.changed = threading.Condition(lock)


class GenerationWatcher:
    """One daemon thread broadcasting generation changes to all clients.

    The watcher is shared by every connection of a server process: each
    tick costs one ``stat()`` per map however many clients are
    subscribed, and fan-out happens through the subscribers' bounded
    queues.  :meth:`poll_now` runs one synchronous tick, which the
    long-poll path uses for a free immediate check and tests use for
    determinism.
    """

    def __init__(
        self,
        engines: EngineCache,
        *,
        interval: float = 5.0,
        ring_size: int = 256,
    ) -> None:
        self.interval = interval
        self.ring_size = ring_size
        self._engines = engines
        self._lock = threading.Lock()
        self._feeds = {name: _MapFeed(self._lock, ring_size) for name in MapName}
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._started = False  # repro: guarded-by[_lock]

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Prime the per-map tokens and start the watcher thread (idempotent).

        Priming emits a baseline event (id 1) for every map that already
        has a built index, so a client connecting before any checkpoint
        still learns the current generation immediately.
        """
        with self._lock:
            if self._started:
                return
            self._started = True
        self.poll_now()
        self._thread = threading.Thread(
            target=self._run, name="repro-generation-watcher", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop the thread and close every subscription."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None
        with self._lock:
            for feed in self._feeds.values():
                for subscription in list(feed.subscribers):
                    self._drop(feed, subscription, evicted=False)
                feed.changed.notify_all()

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self.poll_now()

    # -- the tick ----------------------------------------------------------

    def poll_now(self) -> None:
        """One synchronous tick: stat every map, broadcast what changed.

        The ``stat()`` runs outside the lock (it never touches feed
        state); the change test and the broadcast run inside it — the
        unchanged case costs one uncontended acquisition per map per
        tick, never per client.
        """
        for map_name, feed in self._feeds.items():
            token = read_generation(self._engines.store, map_name)
            with self._lock:
                if token == feed.token:
                    continue
                feed.token = token
                if token is None:
                    # The index vanished (dataset wiped); nothing to
                    # announce — the next build is a fresh generation.
                    continue
                generation, checkpoint_ts = _token_signature(token)
                feed.last_id += 1
                event = FeedEvent(
                    map=map_name.value,
                    id=feed.last_id,
                    generation=generation,
                    changed_at=datetime.fromtimestamp(
                        checkpoint_ts, tz=timezone.utc
                    ).isoformat(),
                    checkpoint_ts=checkpoint_ts,
                )
                feed.latest = event
                feed.ring.append(event)
                for subscription in list(feed.subscribers):
                    if not subscription.deliver(event):
                        self._drop(subscription=subscription, feed=feed, evicted=True)
                feed.changed.notify_all()
            # Outside the lock: reopening an engine reads the manifest.
            # The read path would hot-swap lazily on its next request
            # anyway; doing it here means an event never races a stale
            # cached engine.
            try:
                self._engines.handle(map_name)
            except SnapshotNotFoundError:
                pass

    # -- subscriptions (SSE) -----------------------------------------------

    def subscribe(
        self,
        map_name: MapName,
        *,
        transport: str = "sse",
        last_event_id: int | None = None,
    ) -> tuple[Subscription, list[FeedEvent]]:
        """Register one connection; returns ``(subscription, replay)``.

        ``replay`` is what the transport must emit before going live:
        with ``last_event_id`` every ring event newer than it (the
        reconnect path), otherwise just the latest event so a fresh
        client learns the current generation.
        """
        subscription = Subscription(map_name, transport, self.ring_size)
        feed = self._feeds[map_name]
        with self._lock:
            if last_event_id is None:
                replay = [feed.latest] if feed.latest is not None else []
            else:
                replay = [
                    event for event in feed.ring if event.id > last_event_id
                ]
            feed.subscribers.append(subscription)
        get_registry().gauge(
            "repro_feed_subscribers",
            "Live feed connections by transport",
        ).inc(1, transport=transport)
        return subscription, replay

    def unsubscribe(self, subscription: Subscription) -> None:
        """Drop one connection (client went away or transport finished)."""
        feed = self._feeds[subscription.map_name]
        with self._lock:
            self._drop(feed, subscription, evicted=False)

    def _drop(  # repro: locked-by-caller[_lock]
        self, feed: _MapFeed, subscription: Subscription, *, evicted: bool
    ) -> None:
        """Remove one subscription (caller holds the lock)."""
        if subscription.closed:
            return
        subscription.close()
        try:
            feed.subscribers.remove(subscription)
        except ValueError:
            return
        registry = get_registry()
        registry.gauge(
            "repro_feed_subscribers",
            "Live feed connections by transport",
        ).dec(1, transport=subscription.transport)
        if evicted:
            registry.counter(
                "repro_feed_evictions_total",
                "Subscribers evicted for not draining their queue",
            ).inc(1, transport=subscription.transport)

    def subscriber_count(self, map_name: MapName | None = None) -> int:
        """Live subscriptions, for one map or all (introspection/tests)."""
        with self._lock:
            if map_name is not None:
                return len(self._feeds[map_name].subscribers)
            return sum(len(feed.subscribers) for feed in self._feeds.values())

    # -- long-poll ---------------------------------------------------------

    def current(self, map_name: MapName) -> FeedEvent | None:
        """The newest event, or ``None`` when the map has no index yet."""
        with self._lock:
            return self._feeds[map_name].latest

    def wait_for_event(
        self, map_name: MapName, after: int, timeout: float
    ) -> FeedEvent | None:
        """Block until an event with id > ``after`` exists, or time out.

        The long-poll body.  Deliberately no synchronous re-stat here —
        the watcher's tick is the only thing that ever stats, so a
        thousand parked long-polls cost the filesystem exactly as much
        as zero; a fresh checkpoint is answered within one interval.
        """
        feed = self._feeds[map_name]
        deadline = time.monotonic() + timeout
        with self._lock:
            while not self._stop.is_set():
                if feed.latest is not None and feed.latest.id > after:
                    return feed.latest
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return None
                feed.changed.wait(remaining)
            return None

    # -- delivery accounting (called by the transports) --------------------

    def record_delivery(self, event: FeedEvent, transport: str) -> None:
        """Count one client delivery and its checkpoint-to-client latency."""
        registry = get_registry()
        registry.counter(
            "repro_feed_events_total",
            "Feed events delivered to clients by transport",
        ).inc(1, transport=transport)
        registry.histogram(
            "repro_feed_notify_seconds",
            "Checkpoint to client-delivery latency",
            buckets=NOTIFY_BUCKETS,
        ).observe(max(0.0, time.time() - event.checkpoint_ts))
