"""The ASGI adapter: the same read API under a production async server.

``create_asgi_app(store)`` returns a plain ASGI-3 callable — no
framework, no dependencies — that serves exactly what the threaded
:class:`~repro.server.app.WeatherServer` serves, because both hand
every request to :func:`repro.server.core.handle_request`: same JSON
bodies, same ETags, same error envelopes, and byte-for-byte identical
SSE event frames (the conformance suite runs against both).

The services layer is synchronous by design (zero-copy column reads
are microseconds; long-poll deliberately blocks), so the adapter runs
each request on a worker thread via :func:`asyncio.to_thread` and
streams SSE by polling the subscription queue the same way.  Client
disconnects are observed through the ASGI ``http.disconnect`` message,
which closes the subscription so the watcher drops the queue.

Running under uvicorn is one extra (``pip install repro[asgi]``)::

    repro-weather serve ./dataset --asgi

or programmatically ``uvicorn.run(create_asgi_app(open_store(...)))``.
The stdlib threaded server remains the zero-dependency default;
:func:`serve_asgi` raises a typed
:class:`~repro.errors.ServerError` when uvicorn is absent instead of
an ImportError from deep inside a stack.
"""

from __future__ import annotations

import asyncio
import json
import logging
from typing import Any, Awaitable, Callable, MutableMapping

from repro.dataset.store import DatasetStore
from repro.errors import ServerError
from repro.server import services
from repro.server.core import AppState, EventStream, Response, handle_request
from repro.server.feed import SSE_HEARTBEAT, render_sse
from repro.server.options import ServeOptions, ServerConfig, resolve_serve_options
from repro.server.router import match_route
from repro.telemetry import get_registry

logger = logging.getLogger(__name__)

__all__ = ["ReadApiAsgiApp", "create_asgi_app", "serve_asgi"]

Scope = MutableMapping[str, Any]
Message = MutableMapping[str, Any]
Receive = Callable[[], Awaitable[Message]]
Send = Callable[[Message], Awaitable[None]]


def _encode_headers(pairs: list[tuple[str, str]]) -> list[tuple[bytes, bytes]]:
    return [
        (name.lower().encode("latin-1"), value.encode("latin-1"))
        for name, value in pairs
    ]


class ReadApiAsgiApp:
    """One ASGI-3 application over one :class:`~repro.server.core.AppState`."""

    def __init__(self, state: AppState) -> None:
        self.state = state

    async def __call__(
        self, scope: Scope, receive: Receive, send: Send
    ) -> None:
        if scope["type"] == "lifespan":
            await self._lifespan(receive, send)
            return
        if scope["type"] != "http":
            raise ServerError(
                f"unsupported ASGI scope type {scope['type']!r}"
            )
        await self._http(scope, receive, send)

    # -- lifespan ----------------------------------------------------------

    async def _lifespan(self, receive: Receive, send: Send) -> None:
        while True:
            message = await receive()
            if message["type"] == "lifespan.startup":
                # start() stats every map and takes the watcher lock —
                # blocking work that belongs on a worker thread.
                await asyncio.to_thread(self.state.start)
                await send({"type": "lifespan.startup.complete"})
            elif message["type"] == "lifespan.shutdown":
                await asyncio.to_thread(self.state.close)
                await send({"type": "lifespan.shutdown.complete"})
                return

    # -- http --------------------------------------------------------------

    async def _http(self, scope: Scope, receive: Receive, send: Send) -> None:
        path = scope["path"]
        raw_query = scope.get("query_string", b"").decode("latin-1")
        match = match_route(path)
        endpoint = match.endpoint if match is not None else "unknown"
        registry = get_registry()
        status = 500
        try:
            with registry.span(
                "repro_server_request",
                "HTTP request wall time by endpoint",
                endpoint=endpoint,
            ):
                if scope["method"] not in ("GET", "HEAD"):
                    payload = services.error_body(
                        "method_not_allowed",
                        f"method {scope['method']} is not allowed; "
                        f"the read API is GET-only",
                    )
                    outcome: Response | EventStream = Response(
                        status=405,
                        body=json.dumps(payload, sort_keys=True).encode("utf-8"),
                        content_type="application/json",
                        extra_headers=(("Allow", "GET, HEAD"),),
                    )
                else:
                    headers = {
                        name.decode("latin-1").lower(): value.decode("latin-1")
                        for name, value in scope.get("headers", [])
                    }
                    # The watcher must run wherever requests are served,
                    # lifespan or not (some test harnesses skip it) — and
                    # its start() stats files, so off the loop it goes.
                    await asyncio.to_thread(self.state.start)
                    outcome = await asyncio.to_thread(
                        handle_request, self.state, path, raw_query, headers
                    )
                if isinstance(outcome, EventStream):
                    status = await self._stream_events(outcome, receive, send)
                else:
                    status = outcome.status
                    body = b"" if scope["method"] == "HEAD" else outcome.body
                    await send(
                        {
                            "type": "http.response.start",
                            "status": outcome.status,
                            "headers": _encode_headers(outcome.headers()),
                        }
                    )
                    await send(
                        {
                            "type": "http.response.body",
                            "body": body,
                            "more_body": False,
                        }
                    )
        except Exception:
            logger.exception("unhandled error serving %s", path)
            raise
        finally:
            registry.counter(
                "repro_server_requests_total",
                "HTTP requests by endpoint and response status",
            ).inc(1, endpoint=endpoint, status=str(status))

    async def _stream_events(
        self, stream: EventStream, receive: Receive, send: Send
    ) -> int:
        """Drain one SSE subscription through ASGI until either side quits."""
        feed = self.state.feed
        subscription = stream.subscription
        disconnected = asyncio.Event()

        async def watch_disconnect() -> None:
            while True:
                message = await receive()
                if message["type"] == "http.disconnect":
                    subscription.close()
                    disconnected.set()
                    return

        watcher_task = asyncio.ensure_future(watch_disconnect())
        try:
            await send(
                {
                    "type": "http.response.start",
                    "status": stream.status,
                    "headers": _encode_headers(stream.headers()),
                }
            )
            for event in stream.replay:
                await send(
                    {
                        "type": "http.response.body",
                        "body": render_sse(event),
                        "more_body": True,
                    }
                )
                feed.record_delivery(event, subscription.transport)
            while not disconnected.is_set():
                event = await asyncio.to_thread(
                    subscription.next_event, stream.heartbeat
                )
                if disconnected.is_set():
                    break
                if event is not None:
                    await send(
                        {
                            "type": "http.response.body",
                            "body": render_sse(event),
                            "more_body": True,
                        }
                    )
                    feed.record_delivery(event, subscription.transport)
                elif subscription.closed:
                    break  # evicted as a slow reader, or server shutdown
                else:
                    await send(
                        {
                            "type": "http.response.body",
                            "body": SSE_HEARTBEAT,
                            "more_body": True,
                        }
                    )
            await send(
                {"type": "http.response.body", "body": b"", "more_body": False}
            )
        except (OSError, ConnectionError) as exc:
            logger.debug("SSE client went away: %s", exc)
        finally:
            watcher_task.cancel()
            feed.unsubscribe(subscription)
        return stream.status


def create_asgi_app(
    store: DatasetStore,
    options: ServeOptions | ServerConfig | None = None,
) -> ReadApiAsgiApp:
    """The read API as a dependency-free ASGI-3 callable over one store.

    The returned app owns its :class:`~repro.server.core.AppState`; the
    generation watcher starts on ASGI lifespan startup (or lazily on
    the first request) and stops on lifespan shutdown.
    """
    return ReadApiAsgiApp(AppState(store, resolve_serve_options(options)))


def serve_asgi(
    store: DatasetStore, options: ServeOptions | ServerConfig | None = None
) -> None:
    """Run the ASGI app under uvicorn (``pip install repro[asgi]``)."""
    resolved = resolve_serve_options(options)
    try:
        import uvicorn
    except ImportError as exc:
        raise ServerError(
            "the ASGI server needs uvicorn; install the extra with "
            "`pip install repro[asgi]` (or drop --asgi for the "
            "zero-dependency threaded server)"
        ) from exc
    app = create_asgi_app(store, resolved)
    uvicorn.run(app, host=resolved.host, port=resolved.port, log_level="info")
