"""``repro.server`` — the versioned HTTP read API + live generation feed.

The paper's weather map was, first and foremost, *served*: operators
watched the network's state continuously for 26 months.  This package
reproduces that serving role behind a stable **``/v1`` surface**: a
stdlib-only threaded HTTP API (and an optional ASGI twin, ``pip
install repro[asgi]``) whose worker threads all share one zero-copy
query engine per (map, shard), with generation-pinned hot-swap across
ingest checkpoints, an ETag-bearing LRU response cache, and a live
generation feed — Server-Sent Events with ``Last-Event-ID`` resume
plus a long-poll fallback — driven by one shared watcher thread.  See
``docs/serving.md`` for the endpoint reference, feed semantics, and
the v1 migration notes.
"""

from repro.server.app import (
    WeatherRequestHandler,
    WeatherServer,
    create_server,
    serve,
)
from repro.server.asgi import ReadApiAsgiApp, create_asgi_app
from repro.server.cache import CachedResponse, ResponseCache
from repro.server.core import AppState, handle_request
from repro.server.engines import EngineCache, PinnedEngine
from repro.server.feed import FeedEvent, GenerationWatcher, Subscription
from repro.server.options import (
    ServeOptions,
    ServerConfig,
    resolve_serve_options,
)
from repro.server.router import API_VERSION, RouteMatch, match_route

__all__ = [
    "API_VERSION",
    "AppState",
    "CachedResponse",
    "EngineCache",
    "FeedEvent",
    "GenerationWatcher",
    "PinnedEngine",
    "ReadApiAsgiApp",
    "ResponseCache",
    "RouteMatch",
    "ServeOptions",
    "ServerConfig",
    "Subscription",
    "WeatherRequestHandler",
    "WeatherServer",
    "create_asgi_app",
    "create_server",
    "handle_request",
    "match_route",
    "resolve_serve_options",
    "serve",
]
