"""``repro.server`` — the cached HTTP read API over the dataset.

The paper's weather map was, first and foremost, *served*: operators
watched the network's state continuously for 26 months.  This package
reproduces that serving role as a stdlib-only threaded HTTP API whose
worker threads all share one zero-copy query engine per (map, shard),
with generation-pinned hot-swap across ingest checkpoints and an
ETag-bearing LRU response cache.  See ``docs/serving.md`` for the
endpoint reference and cache semantics.
"""

from repro.server.app import (
    ServerConfig,
    WeatherRequestHandler,
    WeatherServer,
    create_server,
    serve,
)
from repro.server.cache import CachedResponse, ResponseCache
from repro.server.engines import EngineCache, PinnedEngine
from repro.server.router import RouteMatch, match_route

__all__ = [
    "CachedResponse",
    "EngineCache",
    "PinnedEngine",
    "ResponseCache",
    "RouteMatch",
    "ServerConfig",
    "WeatherRequestHandler",
    "WeatherServer",
    "create_server",
    "match_route",
    "serve",
]
