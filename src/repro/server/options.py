"""Frozen serving configuration — the ``ParseOptions`` pattern for the API.

Every knob the read API grew — bind address, query-engine backend,
response-cache size, and now the generation feed's watch interval and
ring size plus the ASGI toggle — lives in one frozen
:class:`ServeOptions` object, accepted by :func:`repro.server.serve`,
:func:`repro.server.create_server`, and
:func:`repro.server.asgi.create_asgi_app`, and built by the CLI.  The
historical :class:`ServerConfig` (host/port/backend/use_mmap/
cache_entries only) still works everywhere a :class:`ServeOptions` is
accepted, but normalising it emits a single ``DeprecationWarning``;
likewise the individual keyword aliases on :func:`repro.server.serve`.
Mixing ``options=`` with a deprecated keyword is ambiguous and raises
:class:`~repro.errors.OptionsError`, exactly like
:func:`repro.parsing.pipeline.resolve_parse_options`.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, replace

from repro.errors import OptionsError, ServerError

__all__ = [
    "DEFAULT_SERVE_OPTIONS",
    "ServeOptions",
    "ServerConfig",
    "resolve_serve_options",
]


@dataclass(frozen=True, slots=True)
class ServeOptions:
    """How the read API binds, caches, and feeds — one object, passed once.

    Attributes:
        host: bind address.
        port: bind port (0 picks a free one).
        backend: column-view backend for the query engines
            (``"auto"`` / ``"numpy"`` / ``"memoryview"``).
        use_mmap: map the index files instead of buffered reads.
        cache_entries: rendered-response LRU capacity.
        watch_interval: seconds between generation-watcher ticks — one
            ``stat()`` per map per tick, shared by every subscriber.
        feed_ring_size: per-map replay ring capacity (also the bound on
            each subscriber's delivery queue; a slower client is evicted
            rather than buffered without bound).
        asgi: serve through the ASGI adapter under uvicorn
            (``pip install repro[asgi]``) instead of the stdlib
            threaded server.
    """

    host: str = "127.0.0.1"
    port: int = 8080
    backend: str = "auto"
    use_mmap: bool = True
    cache_entries: int = 256
    watch_interval: float = 5.0
    feed_ring_size: int = 256
    asgi: bool = False

    def __post_init__(self) -> None:
        if not 0 <= self.port <= 65535:
            raise ServerError(f"port must lie in [0, 65535], got {self.port}")
        if self.cache_entries < 1:
            raise ServerError(
                f"cache_entries must be >= 1, got {self.cache_entries}"
            )
        if not self.watch_interval > 0:
            raise ServerError(
                f"watch_interval must be > 0 seconds, got {self.watch_interval}"
            )
        if self.feed_ring_size < 1:
            raise ServerError(
                f"feed_ring_size must be >= 1, got {self.feed_ring_size}"
            )


#: The defaults every entry point shares.
DEFAULT_SERVE_OPTIONS = ServeOptions()


@dataclass(frozen=True)
class ServerConfig:
    """Deprecated PR-8 configuration object; use :class:`ServeOptions`.

    Kept so existing embedders keep working: anywhere a
    :class:`ServeOptions` is accepted, a :class:`ServerConfig` is
    normalised into one (with the feed knobs at their defaults) behind a
    ``DeprecationWarning``.
    """

    host: str = "127.0.0.1"
    port: int = 8080
    backend: str = "auto"
    use_mmap: bool = True
    cache_entries: int = 256

    def __post_init__(self) -> None:
        if not 0 <= self.port <= 65535:
            raise ServerError(f"port must lie in [0, 65535], got {self.port}")
        if self.cache_entries < 1:
            raise ServerError(
                f"cache_entries must be >= 1, got {self.cache_entries}"
            )

    def to_serve_options(self) -> ServeOptions:
        """The equivalent :class:`ServeOptions` (feed knobs at defaults)."""
        return ServeOptions(
            host=self.host,
            port=self.port,
            backend=self.backend,
            use_mmap=self.use_mmap,
            cache_entries=self.cache_entries,
        )


def resolve_serve_options(
    options: ServeOptions | ServerConfig | None = None,
    *,
    host: str | None = None,
    port: int | None = None,
    backend: str | None = None,
    use_mmap: bool | None = None,
    cache_entries: int | None = None,
    watch_interval: float | None = None,
    feed_ring_size: int | None = None,
    asgi: bool | None = None,
    stacklevel: int = 3,
) -> ServeOptions:
    """Normalise an ``options=`` object and/or deprecated keywords.

    The boundary every serving entry point funnels through: a
    :class:`ServeOptions` (or ``None`` → the shared default) comes back
    as-is; a legacy :class:`ServerConfig` is converted behind one
    ``DeprecationWarning``; per-knob keywords likewise warn once per
    call and build an equivalent object.  Mixing ``options=`` with a
    keyword is ambiguous and raises
    :class:`~repro.errors.OptionsError` (a :class:`TypeError`).
    """
    overrides: dict[str, object] = {}
    if host is not None:
        overrides["host"] = host
    if port is not None:
        overrides["port"] = port
    if backend is not None:
        overrides["backend"] = backend
    if use_mmap is not None:
        overrides["use_mmap"] = use_mmap
    if cache_entries is not None:
        overrides["cache_entries"] = cache_entries
    if watch_interval is not None:
        overrides["watch_interval"] = watch_interval
    if feed_ring_size is not None:
        overrides["feed_ring_size"] = feed_ring_size
    if asgi is not None:
        overrides["asgi"] = asgi
    if isinstance(options, ServerConfig):
        if overrides:
            names = ", ".join(sorted(overrides))
            raise OptionsError(
                f"pass options=ServeOptions(...) or the deprecated "
                f"keyword(s) {names}, not both"
            )
        warnings.warn(
            "ServerConfig is deprecated; pass ServeOptions(...) instead",
            DeprecationWarning,
            stacklevel=stacklevel,
        )
        return options.to_serve_options()
    if not overrides:
        return options if options is not None else DEFAULT_SERVE_OPTIONS
    names = ", ".join(sorted(overrides))
    if options is not None:
        raise OptionsError(
            f"pass options=ServeOptions(...) or the deprecated "
            f"keyword(s) {names}, not both"
        )
    warnings.warn(
        f"the {names} keyword(s) are deprecated; pass "
        f"options=ServeOptions(...) instead",
        DeprecationWarning,
        stacklevel=stacklevel,
    )
    return replace(DEFAULT_SERVE_OPTIONS, **overrides)
