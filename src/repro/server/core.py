"""Transport-neutral request handling shared by both HTTP surfaces.

The threaded :mod:`repro.server.app` and the async
:mod:`repro.server.asgi` adapter are deliberately thin: each one turns
its transport's request representation into a call to
:func:`handle_request` here and writes back whatever comes out.  That
single code path is what makes the two servers answer **byte-for-byte
identically** — same JSON bodies, same ETags, same error envelopes,
same SSE event bytes — which the conformance tests assert.

``handle_request`` returns one of two shapes:

* :class:`Response` — a fully rendered body plus headers (every JSON
  endpoint, errors, 304 revalidations, long-poll results);
* :class:`EventStream` — a live SSE subscription the transport must
  drain: emit the replay backlog, then loop on the subscription's
  queue, interleaving heartbeats, until the client goes away or the
  watcher evicts it.

The shared :class:`AppState` owns the engines, the response cache, and
the generation watcher, so any number of transports can serve one
store without disagreeing about the current generation.
"""

from __future__ import annotations

import json
import logging
from dataclasses import dataclass
from datetime import datetime, timezone
from typing import Callable, Mapping
from urllib.parse import parse_qs

from repro.analysis.imbalance import MINIMUM_ACTIVE_LOAD
from repro.constants import MapName
from repro.dataset.handles import ReadHandle, read_generation
from repro.dataset.store import DatasetStore
from repro.errors import (
    AnalysisError,
    QueryError,
    ServerError,
    SnapshotIndexError,
    SnapshotNotFoundError,
    UnknownEndpointError,
)
from repro.server import services
from repro.server.cache import ResponseCache
from repro.server.engines import EngineCache
from repro.server.feed import FeedEvent, GenerationWatcher, Subscription
from repro.server.options import ServeOptions, resolve_serve_options
from repro.server.router import API_VERSION, RouteMatch, match_route
from repro.telemetry import get_registry, snapshot_to_prometheus

logger = logging.getLogger(__name__)

__all__ = [
    "AppState",
    "EventStream",
    "Response",
    "error_response",
    "handle_request",
]

#: Query parameters each endpoint accepts; anything else is a 400.
ENDPOINT_PARAMS: dict[str, frozenset[str]] = {
    "healthz": frozenset(),
    "metrics": frozenset(),
    "maps": frozenset(),
    "snapshot": frozenset({"at"}),
    "series": frozenset({"link", "start", "end"}),
    "imbalance": frozenset({"start", "end", "min_load"}),
    "evolution": frozenset({"start", "end"}),
    "events": frozenset({"last_event_id"}),
    "generation": frozenset({"wait", "after"}),
}

#: Longest long-poll hold a client may request, seconds.
MAX_LONG_POLL_WAIT = 300.0


@dataclass(frozen=True)
class Response:
    """One fully rendered response, transport-agnostic."""

    status: int
    body: bytes
    content_type: str
    etag: str | None = None
    extra_headers: tuple[tuple[str, str], ...] = ()

    def headers(self) -> list[tuple[str, str]]:
        """Every header to write, in emission order."""
        names = [
            ("Content-Type", self.content_type),
            ("Content-Length", str(len(self.body))),
        ]
        if self.etag is not None:
            names.append(("ETag", self.etag))
        names.extend(self.extra_headers)
        return names


@dataclass
class EventStream:
    """A live SSE subscription the transport must drain.

    ``replay`` is already rendered history (the ``Last-Event-ID``
    resume window, or the current-generation baseline); the transport
    emits it first, then loops ``subscription.next_event(heartbeat)``:
    an event → :func:`repro.server.feed.render_sse` bytes plus a
    ``state.feed.record_delivery`` call; ``None`` with the subscription
    open → one heartbeat comment; the subscription closed → end the
    response (the watcher evicted a slow reader or is shutting down).
    """

    subscription: Subscription
    replay: list[FeedEvent]
    heartbeat: float
    extra_headers: tuple[tuple[str, str], ...] = ()
    status: int = 200
    content_type: str = "text/event-stream"

    def headers(self) -> list[tuple[str, str]]:
        names = [
            ("Content-Type", self.content_type),
            ("Cache-Control", "no-store"),
            ("X-Accel-Buffering", "no"),
        ]
        names.extend(self.extra_headers)
        return names


class AppState:
    """Everything a transport needs to serve one store: engines, cache, feed."""

    def __init__(
        self, store: DatasetStore, options: ServeOptions | None = None
    ) -> None:
        self.options = resolve_serve_options(options, stacklevel=4)
        self.store = store
        self.engines = EngineCache(
            store,
            backend=self.options.backend,
            use_mmap=self.options.use_mmap,
        )
        self.cache = ResponseCache(self.options.cache_entries)
        self.feed = GenerationWatcher(
            self.engines,
            interval=self.options.watch_interval,
            ring_size=self.options.feed_ring_size,
        )

    def start(self) -> None:
        """Start the generation watcher (idempotent)."""
        self.feed.start()

    def close(self) -> None:
        """Stop the watcher, then release every pinned engine."""
        self.feed.stop()
        self.engines.close()


# -- parameter parsing -----------------------------------------------------


def parse_timestamp(text: str | None, name: str) -> datetime | None:
    """An ISO-8601 or epoch-seconds query value, UTC when naive."""
    if text is None:
        return None
    try:
        return datetime.fromtimestamp(float(text), tz=timezone.utc)
    except (ValueError, OverflowError, OSError):
        pass
    try:
        when = datetime.fromisoformat(text)
    except ValueError:
        raise QueryError(
            f"{name} must be an ISO-8601 timestamp or epoch seconds, "
            f"got {text!r}"
        ) from None
    if when.tzinfo is None:
        when = when.replace(tzinfo=timezone.utc)
    return when


def parse_params(raw_query: str, allowed: frozenset[str]) -> dict[str, str]:
    """The query string as a flat dict; unknown or repeated keys are 400s."""
    params: dict[str, str] = {}
    for name, values in parse_qs(
        raw_query, keep_blank_values=True, strict_parsing=False
    ).items():
        if name not in allowed:
            expected = ", ".join(sorted(allowed)) or "none"
            raise QueryError(
                f"unknown query parameter {name!r} (expected: {expected})"
            )
        if len(values) != 1:
            raise QueryError(
                f"query parameter {name!r} given {len(values)} times"
            )
        params[name] = values[0]
    return params


def _parse_int(text: str, name: str, minimum: int = 0) -> int:
    try:
        value = int(text)
    except ValueError:
        raise QueryError(f"{name} must be an integer, got {text!r}") from None
    if value < minimum:
        raise QueryError(f"{name} must be >= {minimum}, got {value}")
    return value


def _error_message(exc: BaseException) -> str:
    """A clean message even for ``KeyError`` subclasses (which quote)."""
    if isinstance(exc, KeyError) and exc.args:
        return str(exc.args[0])
    return str(exc)


# -- rendering -------------------------------------------------------------


def _json_response(
    status: int,
    payload: dict,
    extra_headers: tuple[tuple[str, str], ...] = (),
) -> Response:
    body = json.dumps(payload, sort_keys=True).encode("utf-8")
    return Response(
        status=status,
        body=body,
        content_type="application/json",
        extra_headers=extra_headers,
    )


def error_response(
    exc: BaseException,
    map_name: MapName | None = None,
    extra_headers: tuple[tuple[str, str], ...] = (),
) -> Response:
    """The envelope for one typed error, through the services mapping."""
    status, code = services.error_status(exc)
    payload = services.error_body(code, _error_message(exc), map_name)
    return _json_response(status, payload, extra_headers)


def _deprecation_headers(match: RouteMatch, path: str) -> tuple[tuple[str, str], ...]:
    """The headers a deprecated (unversioned) request carries."""
    if match.versioned:
        return ()
    get_registry().counter(
        "repro_server_deprecated_requests_total",
        "Requests answered through the deprecated unversioned paths",
    ).inc(1, endpoint=match.endpoint)
    successor = f"/{API_VERSION}{path}"
    return (
        ("Deprecation", "true"),
        ("Link", f'<{successor}>; rel="successor-version"'),
    )


# -- the shared request path ----------------------------------------------


def handle_request(
    state: AppState,
    path: str,
    raw_query: str,
    headers: Mapping[str, str],
) -> Response | EventStream:
    """Route, validate, and serve one GET — every transport's single entry.

    ``headers`` must be lower-cased keys.  Never raises: every failure
    renders as the unified error envelope through the typed mapping in
    :mod:`repro.server.services`.
    """
    match = match_route(path)
    if match is None:
        return error_response(UnknownEndpointError(f"no such path {path!r}"))
    deprecation = _deprecation_headers(match, path)
    try:
        params = parse_params(raw_query, ENDPOINT_PARAMS[match.endpoint])
    except QueryError as exc:
        return error_response(exc, extra_headers=deprecation)
    if match.endpoint == "healthz":
        return _json_response(200, {"status": "ok"}, deprecation)
    if match.endpoint == "metrics":
        text = snapshot_to_prometheus(get_registry().snapshot())
        return Response(
            status=200,
            body=text.encode("utf-8"),
            content_type="text/plain; version=0.0.4",
            extra_headers=deprecation,
        )
    map_name: MapName | None = None
    if match.map_slug is not None:
        try:
            map_name = MapName(match.map_slug)
        except ValueError:
            return error_response(
                UnknownEndpointError(f"unknown map {match.map_slug!r}"),
                extra_headers=deprecation,
            )
    try:
        if match.endpoint == "events":
            assert map_name is not None
            return _serve_events(state, map_name, params, headers, deprecation)
        if match.endpoint == "generation":
            assert map_name is not None
            return _serve_generation(state, map_name, params, deprecation)
        return _serve_cached(state, match.endpoint, map_name, params, headers,
                             deprecation)
    except (QueryError, AnalysisError, SnapshotNotFoundError) as exc:
        return error_response(exc, map_name, deprecation)


# -- the live feed endpoints ----------------------------------------------


def _serve_events(
    state: AppState,
    map_name: MapName,
    params: dict[str, str],
    headers: Mapping[str, str],
    deprecation: tuple[tuple[str, str], ...],
) -> EventStream:
    """``GET /v1/maps/<m>/events`` — subscribe this connection to the feed.

    Resume honours the SSE contract: the ``Last-Event-ID`` header (what
    ``EventSource`` sends on reconnect) wins, with a ``last_event_id``
    query parameter for clients that cannot set headers.
    """
    raw_resume = headers.get("last-event-id") or params.get("last_event_id")
    last_event_id = (
        _parse_int(raw_resume, "last_event_id") if raw_resume else None
    )
    state.feed.start()
    subscription, replay = state.feed.subscribe(
        map_name, transport="sse", last_event_id=last_event_id
    )
    return EventStream(
        subscription=subscription,
        replay=replay,
        heartbeat=max(state.options.watch_interval * 3, 1.0),
        extra_headers=deprecation,
    )


def _serve_generation(
    state: AppState,
    map_name: MapName,
    params: dict[str, str],
    deprecation: tuple[tuple[str, str], ...],
) -> Response:
    """``GET /v1/maps/<m>/generation`` — the long-poll twin of the SSE feed.

    Without ``wait`` it reports the current generation immediately.
    With ``wait=<seconds>`` it blocks until an event newer than
    ``after`` (default: the current id) lands, or the wait expires —
    the response carries ``timed_out`` so clients can tell the two
    apart without comparing ids.
    """
    wait = 0.0
    if "wait" in params:
        try:
            wait = float(params["wait"])
        except ValueError:
            raise QueryError(
                f"wait must be a number of seconds, got {params['wait']!r}"
            ) from None
        if not 0.0 <= wait <= MAX_LONG_POLL_WAIT:
            raise QueryError(
                f"wait must lie in [0, {MAX_LONG_POLL_WAIT:.0f}], got {wait}"
            )
    state.feed.start()
    current = state.feed.current(map_name)
    after = (
        _parse_int(params["after"], "after")
        if "after" in params
        else (current.id if current is not None else 0)
    )
    event = current
    timed_out = False
    if wait > 0:
        fresh = state.feed.wait_for_event(map_name, after, wait)
        if fresh is not None:
            event = fresh
            state.feed.record_delivery(fresh, "longpoll")
        else:
            event = state.feed.current(map_name)
            timed_out = True
    if event is None:
        raise SnapshotNotFoundError(
            f"map {map_name.value!r} has no generation to watch; "
            f"build an index with `repro-weather index build`"
        )
    payload = dict(event.payload())
    payload["timed_out"] = timed_out
    return _json_response(200, payload, deprecation)


# -- the cached read endpoints --------------------------------------------


def _serve_cached(
    state: AppState,
    endpoint: str,
    map_name: MapName | None,
    params: dict[str, str],
    headers: Mapping[str, str],
    deprecation: tuple[tuple[str, str], ...],
) -> Response:
    """Serve one cacheable endpoint, retrying once across a hot-swap."""
    last_error: SnapshotIndexError | None = None
    for attempt in range(2):
        try:
            return _serve_once(
                state, endpoint, map_name, params, headers, deprecation
            )
        except SnapshotIndexError as exc:  # includes StaleIndexError
            last_error = exc
            if map_name is not None:
                state.engines.invalidate(map_name)
            logger.info(
                "engine went stale serving %s (attempt %d): %s",
                endpoint,
                attempt + 1,
                exc,
            )
    assert last_error is not None
    return error_response(last_error, map_name, deprecation)


def _serve_once(
    state: AppState,
    endpoint: str,
    map_name: MapName | None,
    params: dict[str, str],
    headers: Mapping[str, str],
    deprecation: tuple[tuple[str, str], ...],
) -> Response:
    canonical = tuple(sorted(params.items()))
    build: Callable[[], dict]
    if map_name is None:
        # /maps spans every map: its generation is the tuple of all.
        token: object = tuple(
            read_generation(state.engines.store, name) for name in MapName
        )
        key: tuple = ("*", endpoint, canonical, token)

        def build() -> dict:
            return services.maps_payload(state.engines)

    else:
        pinned = state.engines.handle(map_name)
        key = (map_name.value, endpoint, canonical, pinned.token)
        handle, bound_map = pinned.handle, map_name

        def build() -> dict:
            return _build_payload(endpoint, handle, bound_map, params)

    cached = state.cache.get(endpoint, key)
    if cached is None:
        body = json.dumps(
            build(), sort_keys=True, separators=(",", ":")
        ).encode("utf-8")
        cached = state.cache.put(key, body, "application/json")
    if cached.matches(headers.get("if-none-match")):
        return Response(
            status=304,
            body=b"",
            content_type=cached.content_type,
            etag=cached.etag,
            extra_headers=deprecation,
        )
    return Response(
        status=200,
        body=cached.body,
        content_type=cached.content_type,
        etag=cached.etag,
        extra_headers=deprecation,
    )


def _build_payload(
    endpoint: str,
    handle: ReadHandle,
    map_name: MapName,
    params: dict[str, str],
) -> dict:
    start = parse_timestamp(params.get("start"), "start")
    end = parse_timestamp(params.get("end"), "end")
    if endpoint == "snapshot":
        at = parse_timestamp(params.get("at"), "at")
        return services.snapshot_payload(handle, map_name, at)
    if endpoint == "series":
        raw_link = params.get("link")
        if raw_link is None:
            raise QueryError("series requires link=<node_a>:<node_b>")
        node_a, sep, node_b = raw_link.partition(":")
        if not sep or not node_a or not node_b:
            raise QueryError(
                f"link must be <node_a>:<node_b>, got {raw_link!r}"
            )
        return services.series_payload(
            handle, map_name, (node_a, node_b), start, end
        )
    if endpoint == "imbalance":
        minimum = MINIMUM_ACTIVE_LOAD
        raw_minimum = params.get("min_load")
        if raw_minimum is not None:
            try:
                minimum = float(raw_minimum)
            except ValueError:
                raise QueryError(
                    f"min_load must be a number, got {raw_minimum!r}"
                ) from None
            if not 0.0 <= minimum <= 100.0:
                raise QueryError(
                    f"min_load must lie in [0, 100], got {minimum}"
                )
        return services.imbalance_payload(
            handle, map_name, start, end, minimum
        )
    if endpoint == "evolution":
        return services.evolution_payload(handle, map_name, start, end)
    raise ServerError(f"no payload builder for endpoint {endpoint!r}")
