"""Generation-pinned query engines shared by every worker thread.

The whole point of the zero-copy engine (PR 7) is that many readers
share one read-only mapping; this module is where the server cashes
that in.  One :class:`EngineCache` holds at most one open
:data:`~repro.dataset.handles.ReadHandle` per map, pinned to the
generation token that was current when it was opened.  Every request
stats the token (one ``stat()``, no reads) and:

* token unchanged → serve the pinned handle, zero opens;
* token changed → reopen under the swap lock and *hot-swap* the pin.
  The superseded handle is **not** closed — in-flight scans on other
  worker threads may still hold its column views, and a mapped inode
  stays alive under its mapping until the views are garbage collected.
  Dropping the reference is the safe release;
* reopen failed (mid-checkpoint skew, manifest being rewritten) → keep
  serving the pinned generation.  An ingest checkpoint must never turn
  into a reader's 500; a slightly stale answer is the correct trade.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.constants import MapName
from repro.dataset.handles import (
    GenerationToken,
    ReadHandle,
    read_generation,
    resolve_read_handle,
)
from repro.dataset.store import DatasetStore
from repro.errors import SnapshotNotFoundError
from repro.telemetry import get_registry

__all__ = ["EngineCache", "PinnedEngine"]


@dataclass
class PinnedEngine:
    """One map's open read handle and the generation it serves."""

    handle: ReadHandle
    token: GenerationToken | None


class EngineCache:
    """Per-map read handles with generation-pinned hot-swap."""

    def __init__(
        self,
        store: DatasetStore,
        *,
        backend: str = "auto",
        use_mmap: bool = True,
    ) -> None:
        self._store = store
        self._backend = backend
        self._use_mmap = use_mmap
        self._lock = threading.Lock()
        self._pinned: dict[MapName, PinnedEngine] = {}  # repro: guarded-by[_lock]

    @property
    def store(self) -> DatasetStore:
        return self._store

    def pinned(self, map_name: MapName) -> PinnedEngine | None:
        """The current pin, without opening anything (introspection)."""
        with self._lock:
            return self._pinned.get(map_name)

    def handle(self, map_name: MapName) -> PinnedEngine:
        """The map's engine at its current generation, opening if needed.

        The generation ``stat()`` runs outside the lock (it never touches
        the pin table); everything that reads or swaps the pin runs
        inside it.  The common token-unchanged case is one uncontended
        lock acquisition plus a dict lookup — far cheaper than the stat
        that precedes it.

        Raises:
            SnapshotNotFoundError: the map has no openable index at all
                (never raised while a previously-pinned generation can
                still serve).
        """
        token = read_generation(self._store, map_name)
        with self._lock:
            pinned = self._pinned.get(map_name)
            if pinned is not None and (token is None or pinned.token == token):
                # Token vanished mid-checkpoint, or another thread
                # already swapped: the pin is the best truth available.
                return pinned
            handle = resolve_read_handle(
                self._store,
                map_name,
                backend=self._backend,
                use_mmap=self._use_mmap,
                require_fresh=False,
            )
            if handle is None:
                if pinned is not None:
                    return pinned
                raise SnapshotNotFoundError(
                    f"no queryable index for map {map_name.value!r}; "
                    f"build one with `repro-weather index build`"
                )
            if pinned is not None:
                get_registry().counter(
                    "repro_server_hotswaps_total",
                    "Engine hot-swaps after an index generation change",
                ).inc(1, map=map_name.value)
            fresh = PinnedEngine(handle=handle, token=token)
            self._pinned[map_name] = fresh
            return fresh

    def invalidate(self, map_name: MapName) -> None:
        """Drop the pin so the next request reopens from disk.

        The dropped handle is left open for the same in-flight-scan
        reason hot-swap never closes it.
        """
        with self._lock:
            self._pinned.pop(map_name, None)

    def close(self) -> None:
        """Close every pinned handle (server shutdown, tests)."""
        with self._lock:
            for pinned in self._pinned.values():
                pinned.handle.close()
            self._pinned.clear()
