"""The runtime lock sanitizer: instrumented locks for the repro package.

The static rules (:mod:`repro.devtools.concurrency`) check the lock
discipline the source *declares*; this module checks the discipline the
process *executes*.  In the opt-in instrumented mode (``REPRO_TSAN=1``
or ``pytest --repro-tsan``) every ``threading.Lock`` / ``threading.RLock``
constructed **from inside the repro package** is wrapped so the
sanitizer observes each acquisition and release:

* **lock-order inversions** — acquiring B while holding A records the
  directed edge A→B in a process-wide graph; the first acquisition that
  completes a reversed edge is reported with both acquisition sites
  (the lockdep algorithm: the inversion is caught even when the unlucky
  interleaving never happens in the run);
* **same-lock re-entry** — a thread blocking on a non-reentrant lock it
  already holds would deadlock silently; the sanitizer raises
  :class:`~repro.errors.ConcurrencyError` at the faulty ``acquire``
  instead, with the original acquisition site in the message;
* **long-held locks** — a hold longer than
  :attr:`SanitizerConfig.long_hold_ms` is reported as a non-fatal
  warning (slow I/O under a hot lock is a latency bug, not a
  correctness one).

Stdlib internals stay raw: the wrapping decision looks at the *calling
module* of the lock constructor, so ``queue.Queue``'s mutex, executor
plumbing, and test-file locks are untouched and the probe overhead lands
only where the invariants live.  Nonblocking acquires are exempt from
re-entry/inversion checks — they cannot deadlock, and
``threading.Condition``'s ``_is_owned`` fallback legitimately probes a
self-held lock with ``acquire(False)``.

The pytest plugin in ``tests/conftest.py`` installs the sanitizer for
the whole session and fails the run on any fatal finding; unit tests
instrument individual locks through :meth:`LockSanitizer.wrap` without
touching global state.
"""

from __future__ import annotations

import sys
import threading
from dataclasses import dataclass
from time import perf_counter
from typing import Union

from repro.errors import ConcurrencyError

__all__ = [
    "LockSanitizer",
    "SanitizerConfig",
    "SanitizerFinding",
    "SanitizerReport",
    "active_sanitizer",
    "install_sanitizer",
    "is_installed",
    "measure_overhead",
    "uninstall_sanitizer",
]

#: The real factories, captured before any patching can happen.
_REAL_LOCK = threading.Lock
_REAL_RLOCK = threading.RLock

#: Finding kinds that fail a sanitized run.
FATAL_KINDS = frozenset({"lock-order-inversion", "lock-reentry"})


@dataclass(frozen=True)
class SanitizerConfig:
    """Knobs of one sanitizer instance.

    ``long_hold_ms`` is the warning threshold for a single lock hold;
    the default is far above any correct hot-path hold (microseconds)
    but below anything a user would call a stall.
    """

    long_hold_ms: float = 500.0

    def __post_init__(self) -> None:
        if self.long_hold_ms <= 0:
            raise ConcurrencyError(
                f"long_hold_ms must be positive, got {self.long_hold_ms!r}"
            )


@dataclass(frozen=True)
class SanitizerFinding:
    """One observed violation (or warning) with its acquisition sites."""

    kind: str
    message: str

    @property
    def fatal(self) -> bool:
        return self.kind in FATAL_KINDS


class SanitizerReport:
    """Thread-safe accumulator of everything a sanitized run observed."""

    def __init__(self) -> None:
        self._lock = _REAL_LOCK()
        self._findings: list[SanitizerFinding] = []

    def add(self, finding: SanitizerFinding) -> None:
        with self._lock:
            self._findings.append(finding)

    def findings(self) -> list[SanitizerFinding]:
        with self._lock:
            return list(self._findings)

    def fatal(self) -> list[SanitizerFinding]:
        return [finding for finding in self.findings() if finding.fatal]

    def clear(self) -> None:
        with self._lock:
            self._findings.clear()

    def render(self) -> str:
        """The human report: one line per finding plus a verdict."""
        items = self.findings()
        if not items:
            return "repro-tsan: clean — no lock-order inversions or races"
        lines = [f"repro-tsan: {len(items)} finding(s)"]
        for finding in items:
            marker = "FATAL" if finding.fatal else "warn"
            lines.append(f"  [{marker}] {finding.kind}: {finding.message}")
        return "\n".join(lines)


@dataclass
class _Held:
    """One entry of a thread's held-lock stack."""

    lock: "_InstrumentedLock"
    since: float
    site: str


@dataclass(frozen=True)
class _Edge:
    """First-observed acquisition order between two locks."""

    outer_name: str
    inner_name: str
    site: str
    thread: str


def _describe_frame(depth: int) -> str:
    """``file:line in function`` of the nearest non-machinery caller."""
    frame = sys._getframe(depth)
    while frame is not None:
        name = frame.f_globals.get("__name__", "")
        if name != __name__ and name != "threading":
            return (
                f"{frame.f_code.co_filename}:{frame.f_lineno} "
                f"in {frame.f_code.co_name}"
            )
        frame = frame.f_back
    return "<unknown>"


class _InstrumentedLock:
    """One wrapped lock delegating to a real Lock/RLock, reporting to the
    owning :class:`LockSanitizer`.

    Implements the full ``threading.Lock`` protocol (``acquire`` /
    ``release`` / context manager / ``locked``), so it composes with
    ``threading.Condition`` and any code written against the stdlib API.
    """

    __slots__ = (
        "_inner", "_sanitizer", "name", "seq", "reentrant", "_owner", "_depth",
    )

    def __init__(
        self,
        sanitizer: "LockSanitizer",
        seq: int,
        name: str,
        reentrant: bool,
    ) -> None:
        self._inner = _REAL_RLOCK() if reentrant else _REAL_LOCK()
        self._sanitizer = sanitizer
        self.name = name
        self.seq = seq
        self.reentrant = reentrant
        self._owner: int | None = None
        self._depth = 0

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        tid = threading.get_ident()
        if self.reentrant and self._owner == tid:
            # Nested hold of an RLock: legal, and only the outermost
            # acquisition participates in ordering.
            self._inner.acquire(blocking, timeout)
            self._depth += 1
            return True
        if blocking:
            # Nonblocking probes cannot deadlock and are how Condition's
            # _is_owned fallback legitimately touches a self-held lock.
            self._sanitizer._before_blocking_acquire(self, tid)
        if timeout == -1:
            acquired = self._inner.acquire(blocking)
        else:
            acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            if self.reentrant:
                self._owner = tid
                self._depth = 1
            self._sanitizer._on_acquired(self)
        return acquired

    def release(self) -> None:
        if self.reentrant and self._owner == threading.get_ident():
            if self._depth > 1:
                self._depth -= 1
                self._inner.release()
                return
            self._owner = None
            self._depth = 0
        self._sanitizer._on_release(self)
        self._inner.release()

    def locked(self) -> bool:
        locked = getattr(self._inner, "locked", None)
        if locked is not None:
            return bool(locked())
        return self._owner is not None  # RLocks grew .locked() only in 3.12

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    def __repr__(self) -> str:
        kind = "RLock" if self.reentrant else "Lock"
        return f"<sanitized {kind} #{self.seq} {self.name}>"


class LockSanitizer:
    """The observer: wraps locks, tracks per-thread holds, finds trouble.

    One instance owns one report and one acquisition-order graph.
    :func:`install_sanitizer` creates the process-global instance and
    patches the ``threading`` factories; tests build private instances
    and wrap individual locks with :meth:`wrap`.
    """

    def __init__(self, config: SanitizerConfig | None = None) -> None:
        self.config = config if config is not None else SanitizerConfig()
        self.report = SanitizerReport()
        self._state = _REAL_LOCK()  # guards _edges and _seq (raw: never observed)
        self._edges: dict[tuple[int, int], _Edge] = {}
        self._seq = 0
        self._held = threading.local()

    # -- construction --------------------------------------------------------

    def wrap(self, name: str | None = None, reentrant: bool = False) -> _InstrumentedLock:
        """A fresh instrumented lock reporting to this sanitizer."""
        with self._state:
            self._seq += 1
            seq = self._seq
        if name is None:
            name = _describe_frame(1)
        return _InstrumentedLock(self, seq, name, reentrant)

    # -- per-thread held stack ----------------------------------------------

    def _stack(self) -> list[_Held]:
        stack = getattr(self._held, "stack", None)
        if stack is None:
            stack = self._held.stack = []
        return stack

    def held_count(self) -> int:
        """Locks the calling thread currently holds (introspection/tests)."""
        return len(self._stack())

    # -- the three detectors -------------------------------------------------

    def _before_blocking_acquire(
        self, lock: _InstrumentedLock, tid: int
    ) -> None:
        stack = self._stack()
        site = _describe_frame(3)
        thread = threading.current_thread().name
        for held in stack:
            if held.lock is lock:
                finding = SanitizerFinding(
                    kind="lock-reentry",
                    message=(
                        f"thread {thread!r} re-acquires non-reentrant lock "
                        f"{lock.name} at {site}; first acquired at "
                        f"{held.site} — this blocks forever"
                    ),
                )
                self.report.add(finding)
                raise ConcurrencyError(finding.message)
        if not stack:
            return
        with self._state:
            for held in stack:
                key = (held.lock.seq, lock.seq)
                reverse = self._edges.get((lock.seq, held.lock.seq))
                if reverse is not None:
                    self.report.add(
                        SanitizerFinding(
                            kind="lock-order-inversion",
                            message=(
                                f"thread {thread!r} takes {lock.name} while "
                                f"holding {held.lock.name} (at {site}), but "
                                f"thread {reverse.thread!r} took them in the "
                                f"opposite order (at {reverse.site}) — "
                                f"deadlock under the unlucky interleaving"
                            ),
                        )
                    )
                elif key not in self._edges:
                    self._edges[key] = _Edge(
                        outer_name=held.lock.name,
                        inner_name=lock.name,
                        site=site,
                        thread=thread,
                    )

    def _on_acquired(self, lock: _InstrumentedLock) -> None:
        self._stack().append(
            _Held(lock=lock, since=perf_counter(), site=_describe_frame(3))
        )

    def _on_release(self, lock: _InstrumentedLock) -> None:
        stack = self._stack()
        for index in range(len(stack) - 1, -1, -1):
            if stack[index].lock is lock:
                held = stack.pop(index)
                held_ms = (perf_counter() - held.since) * 1000.0
                if held_ms > self.config.long_hold_ms:
                    self.report.add(
                        SanitizerFinding(
                            kind="long-held-lock",
                            message=(
                                f"lock {lock.name} held {held_ms:.0f} ms "
                                f"(> {self.config.long_hold_ms:.0f} ms) by "
                                f"thread "
                                f"{threading.current_thread().name!r}; "
                                f"acquired at {held.site}"
                            ),
                        )
                    )
                return
        # Released by a thread that never acquired it (legal for Lock,
        # e.g. hand-off patterns) or acquired before instrumentation:
        # nothing to account.


# ---------------------------------------------------------------------------
# Global install: patch the threading factories for repro-package callers
# ---------------------------------------------------------------------------

_ACTIVE: LockSanitizer | None = None
_INSTALL_LOCK = _REAL_LOCK()


def _caller_module_name() -> str:
    """``__name__`` of the module calling the patched factory."""
    frame = sys._getframe(2)
    if frame is None:
        return ""
    return str(frame.f_globals.get("__name__", ""))


def install_sanitizer(config: SanitizerConfig | None = None) -> LockSanitizer:
    """Install the process-global sanitizer (idempotent).

    After this call, ``threading.Lock()`` / ``threading.RLock()``
    executed from a module whose name starts with ``repro`` return
    instrumented locks reporting to the returned sanitizer; every other
    caller (stdlib, tests, third-party) gets the real thing.
    """
    global _ACTIVE
    with _INSTALL_LOCK:
        if _ACTIVE is not None:
            return _ACTIVE
        sanitizer = LockSanitizer(config)

        def _lock_factory() -> Union[_InstrumentedLock, threading.Lock]:
            if _caller_module_name().startswith("repro"):
                return sanitizer.wrap(name=_describe_frame(1), reentrant=False)
            return _REAL_LOCK()

        def _rlock_factory() -> Union[_InstrumentedLock, threading.RLock]:
            if _caller_module_name().startswith("repro"):
                return sanitizer.wrap(name=_describe_frame(1), reentrant=True)
            return _REAL_RLOCK()

        setattr(threading, "Lock", _lock_factory)
        setattr(threading, "RLock", _rlock_factory)
        _ACTIVE = sanitizer
        return sanitizer


def uninstall_sanitizer() -> LockSanitizer | None:
    """Restore the real factories; returns the sanitizer that was active.

    Locks created while installed stay instrumented (and functional) —
    only construction reverts.
    """
    global _ACTIVE
    with _INSTALL_LOCK:
        previous = _ACTIVE
        if previous is not None:
            setattr(threading, "Lock", _REAL_LOCK)
            setattr(threading, "RLock", _REAL_RLOCK)
            _ACTIVE = None
        return previous


def is_installed() -> bool:
    """Whether the global instrumented-lock mode is currently on."""
    return _ACTIVE is not None


def active_sanitizer() -> LockSanitizer | None:
    """The installed sanitizer, or ``None`` outside instrumented mode."""
    return _ACTIVE


def measure_overhead(iterations: int = 50_000) -> dict[str, float]:
    """Price one uncontended acquire/release pair, raw vs instrumented.

    Informational only — the tsan lane is a correctness gate, not a
    throughput one — but the number belongs in the docs so nobody
    guesses.  Typical result on this codebase's hosts: a handful of
    microseconds per pair instrumented vs ~0.1 µs raw.
    """
    if iterations < 1:
        raise ConcurrencyError(
            f"iterations must be positive, got {iterations!r}"
        )
    raw = _REAL_LOCK()
    started = perf_counter()
    for _ in range(iterations):
        raw.acquire()
        raw.release()
    raw_seconds = perf_counter() - started

    sanitizer = LockSanitizer()
    wrapped = sanitizer.wrap(name="overhead-probe")
    started = perf_counter()
    for _ in range(iterations):
        wrapped.acquire()
        wrapped.release()
    instrumented_seconds = perf_counter() - started

    return {
        "iterations": float(iterations),
        "raw_ns_per_pair": raw_seconds / iterations * 1e9,
        "instrumented_ns_per_pair": instrumented_seconds / iterations * 1e9,
        "overhead_x": (
            instrumented_seconds / raw_seconds if raw_seconds > 0 else 0.0
        ),
    }
