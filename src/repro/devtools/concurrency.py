"""REP009–REP012 — the concurrency invariant rule pack.

The server (PR 8/9) and the ingestion daemon (PR 7) turned the paper's
offline pipeline into a long-lived threaded system; these rules make its
locking contracts machine-checked instead of comment-enforced:

* **REP009 — guarded-by discipline.**  Shared attributes in the threaded
  modules (``repro.server.*``, ``repro.dataset.ingest``,
  ``repro.telemetry.registry``) carry a declaration on their defining
  assignment::

      self._entries = OrderedDict()  # repro: guarded-by[_lock]

  Every later access of a declared attribute — reads included, because a
  torn read is still a race — must sit lexically inside a
  ``with <lock>:`` whose lock's terminal name matches the declaration.
  Constructor bodies (``__init__`` / ``__post_init__``) are exempt: the
  object is not shared until construction returns.  A helper that is
  only ever called with the lock already held declares that instead::

      def _drop(  # repro: locked-by-caller[_lock]

  A ``guarded-by`` declaration whose attribute is never accessed outside
  its constructor, or a directive on a line that declares nothing, is a
  stale annotation and reported as ``REP000`` — the same ratchet that
  keeps ``noqa`` markers honest.

* **REP010 — no blocking calls on the event loop.**  Inside ``async
  def`` bodies in ``repro.server.asgi``, blocking primitives
  (``time.sleep``, ``socket.*``, builtin ``open`` / ``Path`` file I/O,
  ``Lock.acquire``, queue ``get``/``put`` without a timeout) must route
  through ``asyncio.to_thread`` — one stray call stalls every
  connection the loop is multiplexing.

* **REP011 — acyclic lock order.**  Nested ``with``-lock statements
  across the whole package define a directed acquisition graph; a cycle
  means two threads can each hold what the other wants.  Lock nodes are
  named ``module.Class.attr`` so ``self._lock`` in two classes never
  aliases.

* **REP012 — queue discipline.**  In the daemon/serving modules, every
  ``queue.Queue`` is bounded (an unbounded queue is an unbounded RSS),
  ``SimpleQueue`` (unboundable) and bare ``deque()`` are out, and every
  blocking ``put()`` has a ``timeout=`` so a dead consumer surfaces as
  an error instead of a parked producer — ``put_nowait`` is the other
  sanctioned backpressure path.

The runtime twin of this rule pack is :mod:`repro.devtools.sanitizer`,
which checks the same contracts on live locks under ``--repro-tsan``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterable

from repro.devtools.engine import (
    UNUSED_SUPPRESSION_RULE,
    CheckConfig,
    Finding,
    Rule,
    SourceModule,
)

__all__ = [
    "AsyncBlockingRule",
    "GuardedByRule",
    "LockOrderRule",
    "QueueDisciplineRule",
]

#: Modules whose shared attributes REP009 and REP012 police: everything
#: request-serving plus the ingestion daemon and the metrics registry.
_THREADED_PREFIXES = ("repro.server", "repro.dataset.ingest", "repro.telemetry.registry")

_GUARDED_BY = "guarded-by"
_LOCKED_BY_CALLER = "locked-by-caller"

_CONSTRUCTORS = frozenset({"__init__", "__post_init__"})


def _in_threaded_scope(module: SourceModule) -> bool:
    return any(
        module.name == prefix or module.name.startswith(prefix + ".")
        for prefix in _THREADED_PREFIXES
    )


def _terminal_name(expr: ast.expr) -> str | None:
    """The rightmost identifier of a dotted expression, or ``None``."""
    if isinstance(expr, ast.Attribute):
        return expr.attr
    if isinstance(expr, ast.Name):
        return expr.id
    return None


def _receiver_name(expr: ast.expr) -> str | None:
    """The identifier an attribute hangs off (``self`` in ``self._lock``)."""
    if isinstance(expr, ast.Attribute):
        return _terminal_name(expr.value)
    return None


def _lock_like(name: str | None) -> bool:
    """Whether an identifier names a lock by this project's convention."""
    return name is not None and (name == "lock" or name.endswith("_lock"))


def _enclosing_class(module: SourceModule, node: ast.AST) -> ast.ClassDef | None:
    current = module.parents.get(node)
    while current is not None:
        if isinstance(current, ast.ClassDef):
            return current
        current = module.parents.get(current)
    return None


def _enclosing_functions(
    module: SourceModule, node: ast.AST
) -> list[ast.FunctionDef | ast.AsyncFunctionDef]:
    """Function definitions containing ``node``, innermost first."""
    found: list[ast.FunctionDef | ast.AsyncFunctionDef] = []
    current = module.parents.get(node)
    while current is not None:
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
            found.append(current)
        current = module.parents.get(current)
    return found


def _enclosing_with_names(module: SourceModule, node: ast.AST) -> set[str]:
    """Terminal names of every ``with``-item context lexically around ``node``."""
    names: set[str] = set()
    current = module.parents.get(node)
    while current is not None:
        if isinstance(current, (ast.With, ast.AsyncWith)):
            for item in current.items:
                name = _terminal_name(item.context_expr)
                if name is not None:
                    names.add(name)
        current = module.parents.get(current)
    return names


def _directive_args(module: SourceModule, line: int, directive: str) -> list[str]:
    """Arguments of every ``directive`` occurrence on ``line``."""
    return [
        argument
        for name, argument in module.directives.get(line, [])
        if name == directive
    ]


# ---------------------------------------------------------------------------
# REP009 — guarded-by discipline
# ---------------------------------------------------------------------------


@dataclass
class _Declaration:
    """One ``guarded-by`` declaration: the attribute, its lock, its site."""

    attr: str
    lock: str
    line: int
    used: bool = False


class GuardedByRule(Rule):
    rule_id = "REP009"
    summary = "declared shared attributes are only touched under their lock"

    def begin_module(self, module: SourceModule) -> None:
        self._declarations: dict[str, _Declaration] = {}
        self._dangling: list[tuple[int, str]] = []
        self._caller_locked: dict[ast.AST, str] = {}
        if not _in_threaded_scope(module):
            return
        declared_lines: set[int] = set()
        caller_lines: set[int] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for argument in _directive_args(module, node.lineno, _GUARDED_BY):
                    for target in targets:
                        attr = (
                            target.attr
                            if isinstance(target, ast.Attribute)
                            else None
                        )
                        if attr is None:
                            continue
                        declared_lines.add(node.lineno)
                        self._declarations[attr] = _Declaration(
                            attr=attr, lock=argument, line=node.lineno
                        )
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for argument in _directive_args(
                    module, node.lineno, _LOCKED_BY_CALLER
                ):
                    caller_lines.add(node.lineno)
                    self._caller_locked[node] = argument
        for line, entries in sorted(module.directives.items()):
            for name, _argument in entries:
                if name == _GUARDED_BY and line not in declared_lines:
                    self._dangling.append((line, name))
                elif name == _LOCKED_BY_CALLER and line not in caller_lines:
                    self._dangling.append((line, name))

    def visit_Attribute(
        self, node: ast.Attribute, module: SourceModule
    ) -> Iterable[Finding]:
        declaration = self._declarations.get(node.attr)
        if declaration is None:
            return ()
        if node.lineno == declaration.line:
            return ()  # the declaring assignment is the one sanctioned site
        functions = _enclosing_functions(module, node)
        if functions and functions[0].name in _CONSTRUCTORS:
            return ()
        declaration.used = True
        if declaration.lock in _enclosing_with_names(module, node):
            return ()
        for function in functions:
            if self._caller_locked.get(function) == declaration.lock:
                return ()
        verb = "read" if isinstance(node.ctx, ast.Load) else "mutated"
        return [
            self.finding(
                module,
                node,
                f"attribute {node.attr!r} is declared "
                f"guarded-by[{declaration.lock}] (line {declaration.line}) "
                f"but {verb} outside `with {declaration.lock}:`",
            )
        ]

    def end_module(self, module: SourceModule) -> Iterable[Finding]:
        findings = [
            Finding(
                rule=UNUSED_SUPPRESSION_RULE,
                path=module.relpath,
                line=line,
                col=1,
                message=(
                    f"dangling {name}[...] directive: the line declares no "
                    f"attribute assignment or function — remove it"
                ),
            )
            for line, name in self._dangling
        ]
        for declaration in self._declarations.values():
            if not declaration.used:
                findings.append(
                    Finding(
                        rule=UNUSED_SUPPRESSION_RULE,
                        path=module.relpath,
                        line=declaration.line,
                        col=1,
                        message=(
                            f"unused guarded-by[{declaration.lock}] on "
                            f"{declaration.attr!r}: the attribute is never "
                            f"touched outside its constructor — remove the "
                            f"declaration or the dead state"
                        ),
                    )
                )
        return findings


# ---------------------------------------------------------------------------
# REP010 — no blocking calls inside async def bodies
# ---------------------------------------------------------------------------

#: ``Path`` (or file-like) method names that hit the filesystem.
_FILE_IO_ATTRS = frozenset(
    {"read_text", "read_bytes", "write_text", "write_bytes"}
)


class AsyncBlockingRule(Rule):
    rule_id = "REP010"
    summary = "async bodies in repro.server.asgi never block the event loop"

    def begin_module(self, module: SourceModule) -> None:
        self._blocking_imports: set[str] = set()
        if module.name != "repro.server.asgi":
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom) and node.module in (
                "time",
                "socket",
            ):
                for alias in node.names:
                    self._blocking_imports.add(alias.asname or alias.name)

    def visit_Call(
        self, node: ast.Call, module: SourceModule
    ) -> Iterable[Finding]:
        if module.name != "repro.server.asgi":
            return ()
        functions = _enclosing_functions(module, node)
        if not functions or not isinstance(functions[0], ast.AsyncFunctionDef):
            return ()
        what = self._blocking_call(node)
        if what is None:
            return ()
        return [
            self.finding(
                module,
                node,
                f"{what} inside `async def {functions[0].name}` blocks the "
                f"event loop; route it through asyncio.to_thread",
            )
        ]

    def _blocking_call(self, node: ast.Call) -> str | None:
        func = node.func
        if isinstance(func, ast.Name):
            if func.id == "open":
                return "file I/O (open)"
            if func.id in self._blocking_imports:
                return f"blocking call {func.id}()"
            return None
        if not isinstance(func, ast.Attribute):
            return None
        receiver = _terminal_name(func.value)
        if func.attr == "sleep" and receiver == "time":
            return "time.sleep"
        if receiver == "socket":
            return f"socket.{func.attr}"
        if func.attr == "acquire":
            return "Lock.acquire"
        if func.attr in _FILE_IO_ATTRS:
            return f"file I/O ({func.attr})"
        if (
            func.attr in ("get", "put")
            and receiver is not None
            and "queue" in receiver.lower()
            and not any(kw.arg == "timeout" for kw in node.keywords)
        ):
            return f"queue {func.attr}() without a timeout"
        return None


# ---------------------------------------------------------------------------
# REP011 — the static lock-order graph stays acyclic
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _LockEdge:
    """One observed acquisition order: ``outer`` held while taking ``inner``."""

    outer: str
    inner: str
    path: str
    line: int
    col: int


class LockOrderRule(Rule):
    rule_id = "REP011"
    summary = "the package-wide static lock-order graph is acyclic"

    def __init__(self) -> None:
        self._edges: list[_LockEdge] = []

    def _node_id(
        self, module: SourceModule, site: ast.AST, expr: ast.expr
    ) -> str | None:
        """A stable graph-node name for one lock expression.

        ``self._lock`` resolves through the enclosing class so the same
        attribute name in two classes stays two nodes; other receivers
        keep their variable name, which is as precise as a lexical pass
        can be.
        """
        name = _terminal_name(expr)
        if not _lock_like(name):
            return None
        receiver = _receiver_name(expr)
        if receiver == "self":
            enclosing = _enclosing_class(module, site)
            if enclosing is not None:
                return f"{module.name}.{enclosing.name}.{name}"
        elif receiver is not None:
            return f"{module.name}.{receiver}.{name}"
        return f"{module.name}.{name}"

    def _handle_with(
        self, node: ast.With | ast.AsyncWith, module: SourceModule
    ) -> None:
        held = self._enclosing_lock(module, node)
        for item in node.items:
            inner = self._node_id(module, node, item.context_expr)
            if inner is None:
                continue
            if held is not None:
                self._edges.append(
                    _LockEdge(
                        outer=held,
                        inner=inner,
                        path=module.relpath,
                        line=item.context_expr.lineno,
                        col=item.context_expr.col_offset + 1,
                    )
                )
            held = inner  # `with a, b:` acquires left to right

    def _enclosing_lock(
        self, module: SourceModule, node: ast.With | ast.AsyncWith
    ) -> str | None:
        """The innermost lock already held where ``node`` acquires."""
        current = module.parents.get(node)
        while current is not None:
            if isinstance(current, (ast.With, ast.AsyncWith)):
                for item in reversed(current.items):
                    node_id = self._node_id(module, current, item.context_expr)
                    if node_id is not None:
                        return node_id
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for lock in _directive_args(
                    module, current.lineno, _LOCKED_BY_CALLER
                ):
                    enclosing = _enclosing_class(module, current)
                    if enclosing is not None:
                        return f"{module.name}.{enclosing.name}.{lock}"
                    return f"{module.name}.{lock}"
            current = module.parents.get(current)
        return None

    def visit_With(
        self, node: ast.With, module: SourceModule
    ) -> Iterable[Finding]:
        self._handle_with(node, module)
        return ()

    def visit_AsyncWith(
        self, node: ast.AsyncWith, module: SourceModule
    ) -> Iterable[Finding]:
        self._handle_with(node, module)
        return ()

    def finish(self, config: CheckConfig) -> Iterable[Finding]:
        graph: dict[str, list[_LockEdge]] = {}
        for edge in self._edges:
            graph.setdefault(edge.outer, []).append(edge)
        findings: list[Finding] = []
        reported: set[tuple[str, ...]] = set()
        for start in sorted(graph):
            cycle = self._find_cycle(graph, start)
            if cycle is None:
                continue
            key = tuple(sorted(edge.outer for edge in cycle))
            if key in reported:
                continue
            reported.add(key)
            order = " -> ".join([*(edge.outer for edge in cycle), cycle[0].outer])
            first = cycle[0]
            findings.append(
                Finding(
                    rule=self.rule_id,
                    path=first.path,
                    line=first.line,
                    col=first.col,
                    message=(
                        f"lock-order cycle: {order} — two threads taking "
                        f"these in opposite order deadlock; pick one global "
                        f"order"
                    ),
                )
            )
        return findings

    def _find_cycle(
        self, graph: dict[str, list[_LockEdge]], start: str
    ) -> list[_LockEdge] | None:
        """The first cycle reachable from ``start``, as its edge list."""
        trail: list[_LockEdge] = []
        on_path: list[str] = [start]

        def walk(node: str) -> list[_LockEdge] | None:
            for edge in graph.get(node, ()):
                if edge.inner in on_path:
                    return trail[on_path.index(edge.inner):] + [edge]
                on_path.append(edge.inner)
                trail.append(edge)
                found = walk(edge.inner)
                if found is not None:
                    return found
                trail.pop()
                on_path.pop()
            return None

        return walk(start)


# ---------------------------------------------------------------------------
# REP012 — queue discipline in the daemon/serving modules
# ---------------------------------------------------------------------------

_QUEUE_CLASSES = frozenset({"Queue", "LifoQueue", "PriorityQueue"})


class QueueDisciplineRule(Rule):
    rule_id = "REP012"
    summary = "daemon/feed queues are bounded and puts have backpressure"

    def begin_module(self, module: SourceModule) -> None:
        self._queue_names: set[str] = set()
        if not _in_threaded_scope(module):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                value = node.value
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                is_queue = isinstance(value, ast.Call) and (
                    _terminal_name(value.func) in _QUEUE_CLASSES
                    or _terminal_name(value.func) == "SimpleQueue"
                )
                annotated = isinstance(node, ast.AnnAssign) and self._queue_annotation(
                    node.annotation
                )
                if is_queue or annotated:
                    for target in targets:
                        name = _terminal_name(target)
                        if name is not None:
                            self._queue_names.add(name)
            elif isinstance(node, ast.arg):
                if node.annotation is not None and self._queue_annotation(
                    node.annotation
                ):
                    self._queue_names.add(node.arg)

    def _queue_annotation(self, annotation: ast.expr) -> bool:
        """Whether an annotation (string forms included) names a Queue."""
        if isinstance(annotation, ast.Constant) and isinstance(
            annotation.value, str
        ):
            return "Queue" in annotation.value
        for node in ast.walk(annotation):
            if isinstance(node, (ast.Name, ast.Attribute)):
                terminal = _terminal_name(node)
                if terminal in _QUEUE_CLASSES or terminal == "SimpleQueue":
                    return True
        return False

    def visit_Call(
        self, node: ast.Call, module: SourceModule
    ) -> Iterable[Finding]:
        if not _in_threaded_scope(module):
            return ()
        func = node.func
        terminal = _terminal_name(func)
        if terminal == "SimpleQueue":
            return [
                self.finding(
                    module,
                    node,
                    "SimpleQueue cannot be bounded; use queue.Queue(maxsize)",
                )
            ]
        if terminal in _QUEUE_CLASSES:
            return self._check_bound(node, module, terminal)
        if terminal == "deque" and isinstance(func, (ast.Name, ast.Attribute)):
            has_maxlen = any(kw.arg == "maxlen" for kw in node.keywords)
            if not has_maxlen and len(node.args) < 2:
                return [
                    self.finding(
                        module,
                        node,
                        "unbounded deque in a threaded module; pass maxlen=",
                    )
                ]
            return ()
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "put"
            and _receiver_name(func) in self._queue_names
            and not any(kw.arg == "timeout" for kw in node.keywords)
        ):
            return [
                self.finding(
                    module,
                    node,
                    f"blocking put() on {_receiver_name(func)!r} without "
                    f"timeout=: a dead consumer parks this thread forever; "
                    f"use a timeout loop with an abort check, or put_nowait",
                )
            ]
        return ()

    def _check_bound(
        self, node: ast.Call, module: SourceModule, terminal: str | None
    ) -> Iterable[Finding]:
        bound: ast.expr | None = None
        if node.args:
            bound = node.args[0]
        for keyword in node.keywords:
            if keyword.arg == "maxsize":
                bound = keyword.value
        if bound is None:
            return [
                self.finding(
                    module,
                    node,
                    f"unbounded {terminal}() in a threaded module; a queue "
                    f"without maxsize is an unbounded buffer — bound it",
                )
            ]
        if isinstance(bound, ast.Constant) and isinstance(bound.value, int):
            if bound.value <= 0:
                return [
                    self.finding(
                        module,
                        node,
                        f"{terminal}(maxsize={bound.value}) is unbounded; "
                        f"queue bounds must be positive",
                    )
                ]
        return ()
