"""REP006 — the public API surface drifts only by explicit review.

``repro.__all__`` is the stable public surface (PEP 562 lazy exports).
Because it is assembled from the ``_EXPORTS`` table, a stray edit can
silently widen or shrink the surface without anyone noticing until a
downstream import breaks.  The rule extracts the surface *statically*
from ``src/repro/__init__.py`` — the string keys of the ``_EXPORTS``
dict literal plus any string constants in the ``__all__`` expression —
and compares it against the committed ``api_surface.json`` snapshot.
Changing the surface therefore always shows up as a reviewable two-line
diff: the code change and the snapshot change
(``repro-weather check --update-api-snapshot``).
"""

from __future__ import annotations

import ast
import json
from typing import Iterable

from repro.devtools.engine import CheckConfig, Finding, Rule

_SNAPSHOT_VERSION = 1


def extract_surface(tree: ast.Module) -> list[str]:
    """The public names, read statically from the ``__init__`` AST.

    Understands the repo's idiom: a module-level ``_EXPORTS`` dict with
    literal string keys, and an ``__all__`` assignment whose expression
    may mix ``*_EXPORTS`` with extra string literals (``"__version__"``).
    """
    names: set[str] = set()
    for node in tree.body:
        targets = (
            node.targets
            if isinstance(node, ast.Assign)
            else [node.target]
            if isinstance(node, ast.AnnAssign)
            else []
        )
        target_names = {t.id for t in targets if isinstance(t, ast.Name)}
        value = getattr(node, "value", None)
        if value is None:
            continue
        if "_EXPORTS" in target_names and isinstance(value, ast.Dict):
            for key in value.keys:
                if isinstance(key, ast.Constant) and isinstance(key.value, str):
                    names.add(key.value)
        if "__all__" in target_names:
            for sub in ast.walk(value):
                if isinstance(sub, ast.Constant) and isinstance(sub.value, str):
                    names.add(sub.value)
    return sorted(names)


def write_snapshot(config: CheckConfig, surface: list[str]) -> None:
    """Persist the surface as the committed snapshot."""
    assert config.api_snapshot is not None
    payload = {"version": _SNAPSHOT_VERSION, "names": surface}
    config.api_snapshot.write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )


class ApiSurfaceRule(Rule):
    rule_id = "REP006"
    summary = "repro.__all__ matches the committed api_surface.json"

    def finish(self, config: CheckConfig) -> Iterable[Finding]:
        init = config.api_init
        snapshot_path = config.api_snapshot
        if init is None or snapshot_path is None or not init.is_file():
            return ()
        relpath = init.relative_to(config.root).as_posix()
        surface = extract_surface(
            ast.parse(init.read_text(encoding="utf-8"), filename=str(init))
        )
        if config.update_api_snapshot:
            write_snapshot(config, surface)
            return ()
        snapshot_rel = snapshot_path.relative_to(config.root).as_posix()
        if not snapshot_path.is_file():
            return [
                Finding(
                    rule=self.rule_id,
                    path=relpath,
                    line=1,
                    col=1,
                    message=(
                        f"no {snapshot_rel} snapshot; run "
                        f"'repro-weather check --update-api-snapshot' and "
                        f"commit it"
                    ),
                )
            ]
        try:
            recorded = json.loads(snapshot_path.read_text(encoding="utf-8"))
            names = recorded["names"]
        except (json.JSONDecodeError, KeyError, TypeError):
            return [
                Finding(
                    rule=self.rule_id,
                    path=snapshot_rel,
                    line=1,
                    col=1,
                    message=(
                        "api_surface.json is unreadable; regenerate it with "
                        "'repro-weather check --update-api-snapshot'"
                    ),
                )
            ]
        added = sorted(set(surface) - set(names))
        removed = sorted(set(names) - set(surface))
        if not added and not removed:
            return ()
        details = []
        if added:
            details.append(f"added: {', '.join(added)}")
        if removed:
            details.append(f"removed: {', '.join(removed)}")
        return [
            Finding(
                rule=self.rule_id,
                path=relpath,
                line=1,
                col=1,
                message=(
                    f"public API surface drifted from {snapshot_rel} "
                    f"({'; '.join(details)}) — review the change, then "
                    f"refresh the snapshot with --update-api-snapshot"
                ),
            )
        ]
