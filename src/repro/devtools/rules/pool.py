"""REP004 — pool-submitted callables must be module-level (picklable).

``ProcessPoolExecutor`` pickles the submitted callable by qualified
name.  A lambda or a function defined inside another function pickles
only at submission *time of failure* — the error surfaces deep inside
the pool machinery, long after the code that introduced it.  The bulk
engine's workers (``repro.dataset.engine._process_batch``) are
module-level for exactly this reason; the rule keeps it that way for
every future ``.submit(...)`` site.

Accepted first arguments: a name bound at module level (def, class, or
import), a dotted attribute rooted in an imported module, and
``functools.partial(...)`` of either.  Everything else — lambdas, names
only bound inside the enclosing function, bound methods of local
objects — is flagged.

``ThreadPoolExecutor`` receivers are exempt: threads share the process,
nothing is pickled, and bound methods are the natural way to hand a
worker its shared state (the ingestion daemon's queue workers do exactly
that).  The rule tracks names bound to ``ThreadPoolExecutor(...)`` —
by assignment or ``with ... as name`` — and skips their ``.submit``.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.devtools.engine import Finding, Rule, SourceModule


def _root_name(expr: ast.expr) -> str | None:
    """The leftmost name of a dotted attribute chain, if any."""
    while isinstance(expr, ast.Attribute):
        expr = expr.value
    return expr.id if isinstance(expr, ast.Name) else None


def _leaf_name(expr: ast.expr) -> str | None:
    """The rightmost name of a call target (``x.y.Z`` → ``Z``)."""
    if isinstance(expr, ast.Attribute):
        return expr.attr
    return expr.id if isinstance(expr, ast.Name) else None


def _is_thread_pool_call(expr: ast.expr) -> bool:
    return (
        isinstance(expr, ast.Call)
        and _leaf_name(expr.func) == "ThreadPoolExecutor"
    )


class PicklableSubmitRule(Rule):
    rule_id = "REP004"
    summary = "callables handed to ProcessPoolExecutor.submit are module-level"

    def __init__(self) -> None:
        self._thread_pools: set[str] = set()

    def begin_module(self, module: SourceModule) -> None:
        """Collect the names this file binds to ``ThreadPoolExecutor``s."""
        self._thread_pools = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Assign) and _is_thread_pool_call(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self._thread_pools.add(target.id)
            elif isinstance(node, ast.withitem) and _is_thread_pool_call(
                node.context_expr
            ):
                if isinstance(node.optional_vars, ast.Name):
                    self._thread_pools.add(node.optional_vars.id)

    def visit_Call(
        self, node: ast.Call, module: SourceModule
    ) -> Iterable[Finding]:
        if not (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "submit"
            and node.args
        ):
            return ()
        receiver = _root_name(node.func.value)
        if receiver is not None and receiver in self._thread_pools:
            return ()  # thread pools share the process; nothing pickles
        if _is_thread_pool_call(node.func.value):
            return ()  # ThreadPoolExecutor(...).submit(...) inline
        problem = self._describe_problem(node.args[0], module)
        if problem is None:
            return ()
        return [
            self.finding(
                module,
                node,
                f"{problem} submitted to a process pool — workers must be "
                f"module-level so they pickle",
            )
        ]

    def _describe_problem(
        self, candidate: ast.expr, module: SourceModule
    ) -> str | None:
        """Why ``candidate`` may not pickle; ``None`` when it looks safe."""
        if isinstance(candidate, ast.Lambda):
            return "lambda"
        if isinstance(candidate, ast.Name):
            if candidate.id in module.toplevel_names:
                return None
            return f"locally-bound callable {candidate.id!r}"
        if isinstance(candidate, ast.Attribute):
            root = _root_name(candidate)
            if root is not None and root in module.imported_modules:
                return None
            return f"bound attribute {ast.unparse(candidate)!r}"
        if isinstance(candidate, ast.Call):
            callee = candidate.func
            callee_name = (
                callee.id
                if isinstance(callee, ast.Name)
                else callee.attr
                if isinstance(callee, ast.Attribute)
                else None
            )
            if callee_name == "partial" and candidate.args:
                return self._describe_problem(candidate.args[0], module)
            return "dynamically constructed callable"
        return "non-name callable expression"
