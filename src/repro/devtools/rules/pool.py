"""REP004 — pool-submitted callables must be module-level (picklable).

``ProcessPoolExecutor`` pickles the submitted callable by qualified
name.  A lambda or a function defined inside another function pickles
only at submission *time of failure* — the error surfaces deep inside
the pool machinery, long after the code that introduced it.  The bulk
engine's workers (``repro.dataset.engine._process_batch``) are
module-level for exactly this reason; the rule keeps it that way for
every future ``.submit(...)`` site.

Accepted first arguments: a name bound at module level (def, class, or
import), a dotted attribute rooted in an imported module, and
``functools.partial(...)`` of either.  Everything else — lambdas, names
only bound inside the enclosing function, bound methods of local
objects — is flagged.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.devtools.engine import Finding, Rule, SourceModule


def _root_name(expr: ast.expr) -> str | None:
    """The leftmost name of a dotted attribute chain, if any."""
    while isinstance(expr, ast.Attribute):
        expr = expr.value
    return expr.id if isinstance(expr, ast.Name) else None


class PicklableSubmitRule(Rule):
    rule_id = "REP004"
    summary = "callables handed to ProcessPoolExecutor.submit are module-level"

    def visit_Call(
        self, node: ast.Call, module: SourceModule
    ) -> Iterable[Finding]:
        if not (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "submit"
            and node.args
        ):
            return ()
        problem = self._describe_problem(node.args[0], module)
        if problem is None:
            return ()
        return [
            self.finding(
                module,
                node,
                f"{problem} submitted to a process pool — workers must be "
                f"module-level so they pickle",
            )
        ]

    def _describe_problem(
        self, candidate: ast.expr, module: SourceModule
    ) -> str | None:
        """Why ``candidate`` may not pickle; ``None`` when it looks safe."""
        if isinstance(candidate, ast.Lambda):
            return "lambda"
        if isinstance(candidate, ast.Name):
            if candidate.id in module.toplevel_names:
                return None
            return f"locally-bound callable {candidate.id!r}"
        if isinstance(candidate, ast.Attribute):
            root = _root_name(candidate)
            if root is not None and root in module.imported_modules:
                return None
            return f"bound attribute {ast.unparse(candidate)!r}"
        if isinstance(candidate, ast.Call):
            callee = candidate.func
            callee_name = (
                callee.id
                if isinstance(callee, ast.Name)
                else callee.attr
                if isinstance(callee, ast.Attribute)
                else None
            )
            if callee_name == "partial" and candidate.args:
                return self._describe_problem(candidate.args[0], module)
            return "dynamically constructed callable"
        return "non-name callable expression"
