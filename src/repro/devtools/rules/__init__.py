"""The invariant rule pack.

| id     | invariant                                                      |
|--------|----------------------------------------------------------------|
| REP001 | internal callers pass ``ParseOptions``, not deprecated kwargs  |
| REP002 | telemetry instrument names: convention + documented            |
| REP003 | no nondeterminism inside the byte-identical pure modules       |
| REP004 | pool-submitted callables are module-level (picklable)          |
| REP005 | raises use the typed ``repro.errors`` hierarchy; no bare except|
| REP006 | ``repro.__all__`` matches the committed ``api_surface.json``   |
| REP007 | no mutable default arguments                                   |
| REP008 | ``repro.server`` never parses or materialises snapshots        |
| REP009 | declared shared attributes only touched under their lock       |
| REP010 | no blocking calls inside ``repro.server.asgi`` async bodies    |
| REP011 | the package-wide static lock-order graph is acyclic            |
| REP012 | daemon/feed queues bounded, puts have a backpressure path      |

``REP000`` (unused suppression or stale ``guarded-by`` declaration) and
``REP999`` (unparseable file) are engine-reserved ids.  Each rule
documents its rationale, examples, and suppression syntax in
``docs/static-analysis.md``.
"""

from __future__ import annotations

from repro.devtools.concurrency import (
    AsyncBlockingRule,
    GuardedByRule,
    LockOrderRule,
    QueueDisciplineRule,
)
from repro.devtools.engine import Rule
from repro.devtools.rules.api_surface import ApiSurfaceRule
from repro.devtools.rules.defaults import MutableDefaultRule
from repro.devtools.rules.determinism import DeterminismRule
from repro.devtools.rules.options import ParseOptionsRule
from repro.devtools.rules.pool import PicklableSubmitRule
from repro.devtools.rules.raises import TypedRaiseRule
from repro.devtools.rules.serving import ServingIsolationRule
from repro.devtools.rules.telemetry import TelemetryNameRule

__all__ = [
    "ApiSurfaceRule",
    "AsyncBlockingRule",
    "DeterminismRule",
    "GuardedByRule",
    "LockOrderRule",
    "MutableDefaultRule",
    "ParseOptionsRule",
    "PicklableSubmitRule",
    "QueueDisciplineRule",
    "ServingIsolationRule",
    "TelemetryNameRule",
    "TypedRaiseRule",
    "default_rules",
]


def default_rules() -> list[Rule]:
    """Fresh instances of every rule, in id order."""
    return [
        ParseOptionsRule(),
        TelemetryNameRule(),
        DeterminismRule(),
        PicklableSubmitRule(),
        TypedRaiseRule(),
        ApiSurfaceRule(),
        MutableDefaultRule(),
        ServingIsolationRule(),
        GuardedByRule(),
        AsyncBlockingRule(),
        LockOrderRule(),
        QueueDisciplineRule(),
    ]
