"""REP007 — no mutable default arguments.

A mutable default is evaluated once at definition time and shared by
every call — in a library whose bulk engine re-enters the same functions
from pool workers and long-lived CLI runs, a default ``[]`` or ``{}``
that accumulates state is a correctness bug waiting for the second call.
Use ``None`` plus an in-body default, or ``dataclasses.field`` with a
``default_factory``.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.devtools.engine import Finding, Rule, SourceModule

#: Constructor names whose call as a default is equally shared state.
_MUTABLE_FACTORIES = frozenset(
    {"list", "dict", "set", "bytearray", "deque", "defaultdict", "Counter"}
)

_MUTABLE_NODES = (
    ast.List,
    ast.Dict,
    ast.Set,
    ast.ListComp,
    ast.DictComp,
    ast.SetComp,
)


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(node, _MUTABLE_NODES):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in _MUTABLE_FACTORIES
    return False


class MutableDefaultRule(Rule):
    rule_id = "REP007"
    summary = "no mutable default arguments"

    def _check(
        self,
        node: ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda,
        module: SourceModule,
        label: str,
    ) -> Iterable[Finding]:
        findings = []
        defaults = [*node.args.defaults, *node.args.kw_defaults]
        for default in defaults:
            if default is not None and _is_mutable_default(default):
                findings.append(
                    self.finding(
                        module,
                        default,
                        f"mutable default {ast.unparse(default)!r} in "
                        f"{label} is shared across calls; use None and "
                        f"default inside the body",
                    )
                )
        return findings

    def visit_FunctionDef(
        self, node: ast.FunctionDef, module: SourceModule
    ) -> Iterable[Finding]:
        return self._check(node, module, f"{node.name}()")

    def visit_AsyncFunctionDef(
        self, node: ast.AsyncFunctionDef, module: SourceModule
    ) -> Iterable[Finding]:
        return self._check(node, module, f"{node.name}()")

    def visit_Lambda(
        self, node: ast.Lambda, module: SourceModule
    ) -> Iterable[Finding]:
        return self._check(node, module, "lambda")
