"""REP001 — internal callers must pass ``ParseOptions``.

PR 4 replaced the per-knob keywords (``fast_path``, ``accelerated``,
``label_distance_threshold``) threaded through every pipeline layer with
one frozen :class:`repro.parsing.pipeline.ParseOptions` object.  The old
keywords survive at the public boundary as deprecated aliases, but
*internal* code reaching an entry point through them would re-trigger
the deprecation warning on every call and silently fork the
configuration path the fast-path/DOM byte-identity guarantee depends
on.  This rule pins the invariant: inside ``src/repro`` the deprecated
keywords never appear on a pipeline entry-point call.

``resolve_parse_options`` is exempt by design — it *is* the boundary
that normalises the aliases — as is constructing ``ParseOptions`` itself
(its constructor legitimately takes the same field names).
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.devtools.engine import Finding, Rule, SourceModule

#: The PR-4-deprecated per-knob aliases.
DEPRECATED_KWARGS = frozenset(
    {"fast_path", "accelerated", "label_distance_threshold"}
)

#: Entry points that accept ``options=`` and (deprecated) the aliases.
ENTRY_POINTS = frozenset(
    {
        "parse_svg",
        "parse_svg_file",
        "process_svg_bytes",
        "process_map",
        "process_map_parallel",
        "process_all_parallel",
        "validate_dataset",
        "validate_map",
    }
)


def _callee_name(func: ast.expr) -> str | None:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


class ParseOptionsRule(Rule):
    rule_id = "REP001"
    summary = "internal callers pass ParseOptions, never deprecated kwargs"

    def visit_Call(
        self, node: ast.Call, module: SourceModule
    ) -> Iterable[Finding]:
        name = _callee_name(node.func)
        if name not in ENTRY_POINTS:
            return ()
        offending = sorted(
            keyword.arg
            for keyword in node.keywords
            if keyword.arg in DEPRECATED_KWARGS
        )
        if not offending:
            return ()
        return [
            self.finding(
                module,
                node,
                f"{name}() called with deprecated keyword(s) "
                f"{', '.join(offending)}; pass options=ParseOptions(...)",
            )
        ]
