"""REP005 — typed raises and no blind exception handling.

Table 2's unprocessed-file accounting works because every failure mode
has a class in :mod:`repro.errors`; an ad-hoc ``ValueError`` raised deep
in a pipeline stage would be invisible to that taxonomy.  The rule
requires every ``raise`` in ``src/repro`` to construct an exception
imported from :mod:`repro.errors` (or re-raise what was caught), and
bans handlers that can swallow anything.

Allowed raise forms:

* ``raise`` — bare re-raise inside a handler;
* ``raise name [from ...]`` — re-raising a bound exception object, or a
  module-private control-flow sentinel class (``_Fallback``-style);
* ``raise TypedError(...)`` where ``TypedError`` is imported from
  :mod:`repro.errors` (or accessed through the module:
  ``errors.TypedError(...)``);
* ``raise _Sentinel(...)`` for module-private (underscore) classes —
  internal control flow that never escapes the module;
* a module-level class defined locally whose bases resolve to the typed
  hierarchy;
* ``raise AttributeError(...)`` inside ``__getattr__`` /
  ``__getattribute__`` — the PEP 562 / descriptor protocol requires
  exactly that type.

Handler findings: bare ``except:`` always; ``except Exception:`` (or
``BaseException``) only when the handler neither binds the exception
(``as exc``) nor re-raises — i.e. when it can silently swallow
everything.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.devtools.engine import Finding, Rule, SourceModule

#: Functions whose protocol mandates raising AttributeError.
_ATTR_PROTOCOL_FUNCTIONS = frozenset({"__getattr__", "__getattribute__"})


class TypedRaiseRule(Rule):
    rule_id = "REP005"
    summary = "raises use repro.errors; no bare/blind excepts"

    def visit_Raise(
        self, node: ast.Raise, module: SourceModule
    ) -> Iterable[Finding]:
        exc = node.exc
        if exc is None or isinstance(exc, ast.Name):
            return ()  # bare re-raise / bound variable / sentinel class
        if isinstance(exc, ast.Call):
            if self._call_is_typed(exc, node, module):
                return ()
            return [
                self.finding(
                    module,
                    node,
                    f"raise of untyped exception "
                    f"{ast.unparse(exc.func)!r}; use the repro.errors "
                    f"hierarchy",
                )
            ]
        return [
            self.finding(
                module,
                node,
                f"raise of non-name expression {ast.unparse(exc)!r}; "
                f"construct a repro.errors exception explicitly",
            )
        ]

    def visit_ExceptHandler(
        self, node: ast.ExceptHandler, module: SourceModule
    ) -> Iterable[Finding]:
        if node.type is None:
            return [
                self.finding(
                    module, node, "bare 'except:' hides every failure mode"
                )
            ]
        if (
            isinstance(node.type, ast.Name)
            and node.type.id in ("Exception", "BaseException")
            and node.name is None
            and not any(isinstance(stmt, ast.Raise) for stmt in ast.walk(node))
        ):
            return [
                self.finding(
                    module,
                    node,
                    f"blind 'except {node.type.id}:' swallows failures — "
                    f"bind the exception or re-raise a typed one",
                )
            ]
        return ()

    # -- helpers -----------------------------------------------------------

    def _call_is_typed(
        self, call: ast.Call, raise_node: ast.Raise, module: SourceModule
    ) -> bool:
        func = call.func
        if isinstance(func, ast.Name):
            name = func.id
            if name in module.errors_imports or name.startswith("_"):
                return True
            if self._local_class_is_typed(name, module, seen=set()):
                return True
            if name == "AttributeError":
                enclosing = module.enclosing_function(raise_node)
                return (
                    getattr(enclosing, "name", None) in _ATTR_PROTOCOL_FUNCTIONS
                )
            return False
        if isinstance(func, ast.Attribute):
            base = func.value
            if isinstance(base, ast.Name) and base.id in module.errors_module_aliases:
                return True
            # repro.errors.SomeError(...)
            return (
                isinstance(base, ast.Attribute)
                and base.attr == "errors"
                and isinstance(base.value, ast.Name)
                and base.value.id == "repro"
            )
        return False

    def _local_class_is_typed(
        self, name: str, module: SourceModule, seen: set[str]
    ) -> bool:
        """A module-level class counts when its bases reach repro.errors."""
        if name in seen:
            return False
        seen.add(name)
        definition = module.local_classes.get(name)
        if definition is None:
            return False
        if name.startswith("_"):
            return True
        for base in definition.bases:
            if isinstance(base, ast.Name):
                if base.id in module.errors_imports:
                    return True
                if self._local_class_is_typed(base.id, module, seen):
                    return True
            elif (
                isinstance(base, ast.Attribute)
                and isinstance(base.value, ast.Name)
                and base.value.id in module.errors_module_aliases
            ):
                return True
        return False
