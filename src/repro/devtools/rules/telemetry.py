"""REP002 — telemetry instrument names: convention + documentation.

Every instrument the library creates must follow the naming convention
``repro_[a-z_]+`` with the kind-appropriate unit suffix (counters end in
``_total``, histograms in ``_seconds`` or ``_bytes``; span base names
get ``_seconds`` appended by the registry), and every name created in
code must appear in ``docs/observability.md`` — the instrument catalogue
is a contract, and an undocumented metric is an unreviewed one.

Only calls with a literal string name are checked; the registry's own
internals (which build names like ``f"{name}_seconds"``) live in
``repro.telemetry`` and are exempt.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable

from repro.devtools.engine import CheckConfig, Finding, Rule, SourceModule

#: Method name → required suffixes for the *created* instrument name
#: (``None`` = no suffix requirement beyond the base convention).
INSTRUMENT_METHODS: dict[str, tuple[str, ...] | None] = {
    "counter": ("_total",),
    "gauge": None,
    "histogram": ("_seconds", "_bytes"),
    "span": None,  # base name; the registry appends ``_seconds``
}

#: The base naming convention every instrument must match.
NAME_RE = re.compile(r"repro_[a-z][a-z_]*[a-z]\Z")

#: Token shape used to harvest documented names from the catalogue.
_DOC_TOKEN_RE = re.compile(r"\brepro_[a-z_]+\b")

#: Modules exempt from the rule (the registry machinery itself).
_EXEMPT_PREFIX = "repro.telemetry"


class TelemetryNameRule(Rule):
    rule_id = "REP002"
    summary = "instrument names follow the convention and are documented"

    def __init__(self) -> None:
        #: (relpath, line, effective name) for the cross-file doc check.
        self._created: list[tuple[str, int, str]] = []

    def visit_Call(
        self, node: ast.Call, module: SourceModule
    ) -> Iterable[Finding]:
        if module.name.startswith(_EXEMPT_PREFIX):
            return ()
        if not isinstance(node.func, ast.Attribute):
            return ()
        method = node.func.attr
        suffixes = INSTRUMENT_METHODS.get(method)
        if method not in INSTRUMENT_METHODS or not node.args:
            return ()
        first = node.args[0]
        if not (isinstance(first, ast.Constant) and isinstance(first.value, str)):
            return ()
        name = first.value
        findings = []
        if not NAME_RE.match(name):
            findings.append(
                self.finding(
                    module,
                    node,
                    f"instrument name {name!r} does not match "
                    f"'repro_[a-z_]+' convention",
                )
            )
        effective = name
        if method == "span":
            if name.endswith(("_seconds", "_total", "_bytes")):
                findings.append(
                    self.finding(
                        module,
                        node,
                        f"span base name {name!r} must not carry a unit "
                        f"suffix; the registry appends '_seconds'",
                    )
                )
            effective = f"{name}_seconds"
        elif suffixes is not None and not name.endswith(suffixes):
            findings.append(
                self.finding(
                    module,
                    node,
                    f"{method} name {name!r} must end with "
                    f"{' or '.join(repr(s) for s in suffixes)}",
                )
            )
        self._created.append((module.relpath, node.lineno, effective))
        return findings

    def finish(self, config: CheckConfig) -> Iterable[Finding]:
        doc = config.observability_doc
        if doc is None or not doc.is_file():
            return ()
        documented = set(_DOC_TOKEN_RE.findall(doc.read_text(encoding="utf-8")))
        doc_rel = doc.relative_to(config.root).as_posix()
        findings = []
        for relpath, line, name in self._created:
            if name not in documented:
                findings.append(
                    Finding(
                        rule=self.rule_id,
                        path=relpath,
                        line=line,
                        col=1,
                        message=(
                            f"instrument {name!r} is not documented in "
                            f"{doc_rel} — add it to the catalogue"
                        ),
                    )
                )
        return findings
