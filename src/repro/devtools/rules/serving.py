"""REP008 — the serving layer stays on the zero-copy read path.

The HTTP server's performance contract is that request handling never
re-parses documents or materialises ``MapSnapshot`` object graphs: every
response is computed off the shared column views (PR 7's engine), which
is what lets all worker threads serve from one mapping.  That guarantee
is easy to erode one convenient import at a time, so this rule pins it:
modules under ``repro.server`` must not import the parsing pipeline,
the YAML object codecs, or the snapshot loaders, and must not construct
``MapSnapshot`` anywhere on a request path.

Flagged inside ``repro.server`` modules:

* ``import repro.parsing...`` / ``from repro.parsing... import ...``
  (likewise ``repro.yamlio`` and ``repro.dataset.loader``);
* write-path imports — ``repro.dataset.engine``,
  ``repro.dataset.processor``, ``repro.dataset.ingest``: the live
  feed's watcher observes ingest checkpoints, it must never be able to
  produce one;
* ``from <anywhere> import MapSnapshot`` — the import *is* the intent;
* any ``MapSnapshot(...)`` call, by name or attribute.

Everything outside ``repro.server`` is out of scope: the CLI, the
ingestion daemon, and the analyses legitimately parse and materialise.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.devtools.engine import Finding, Rule, SourceModule

#: Module prefixes the serving layer must never import: the object path
#: (parsing, YAML codecs, snapshot loaders) and — since the live feed
#: joined the package — the write path too (bulk engine, processor,
#: ingestion daemon).  The generation watcher observes checkpoints by
#: ``stat()``; a serving module that could *produce* one would blur the
#: reader/writer split the hot-swap contract depends on.
_FORBIDDEN_PREFIXES = (
    "repro.parsing",
    "repro.yamlio",
    "repro.dataset.loader",
    "repro.dataset.engine",
    "repro.dataset.processor",
    "repro.dataset.ingest",
)

_SNAPSHOT_CLASS = "MapSnapshot"


def _in_scope(module: SourceModule) -> bool:
    return module.name == "repro.server" or module.name.startswith("repro.server.")


def _forbidden(target: str) -> bool:
    return any(
        target == prefix or target.startswith(prefix + ".")
        for prefix in _FORBIDDEN_PREFIXES
    )


class ServingIsolationRule(Rule):
    rule_id = "REP008"
    summary = "repro.server stays off the parsing/object path"

    def visit_Import(
        self, node: ast.Import, module: SourceModule
    ) -> Iterable[Finding]:
        if not _in_scope(module):
            return ()
        return [
            self.finding(
                module,
                node,
                f"serving module imports {alias.name!r}; request paths "
                f"must stay on the columnar read path",
            )
            for alias in node.names
            if _forbidden(alias.name)
        ]

    def visit_ImportFrom(
        self, node: ast.ImportFrom, module: SourceModule
    ) -> Iterable[Finding]:
        if not _in_scope(module):
            return ()
        if node.level:
            return self._relative(node, module)
        findings = []
        if node.module is not None and _forbidden(node.module):
            findings.append(
                self.finding(
                    module,
                    node,
                    f"serving module imports from {node.module!r}; request "
                    f"paths must stay on the columnar read path",
                )
            )
        findings.extend(
            self.finding(
                module,
                node,
                f"serving module imports {_SNAPSHOT_CLASS!r}; responses "
                f"must be computed from column views, not snapshot objects",
            )
            for alias in node.names
            if alias.name == _SNAPSHOT_CLASS
        )
        return findings

    def _relative(
        self, node: ast.ImportFrom, module: SourceModule
    ) -> Iterable[Finding]:
        """Relative imports stay inside ``repro.server`` — only the
        snapshot-class import needs checking."""
        return [
            self.finding(
                module,
                node,
                f"serving module imports {_SNAPSHOT_CLASS!r}; responses "
                f"must be computed from column views, not snapshot objects",
            )
            for alias in node.names
            if alias.name == _SNAPSHOT_CLASS
        ]

    def visit_Call(
        self, node: ast.Call, module: SourceModule
    ) -> Iterable[Finding]:
        if not _in_scope(module):
            return ()
        func = node.func
        constructed = (
            isinstance(func, ast.Name) and func.id == _SNAPSHOT_CLASS
        ) or (isinstance(func, ast.Attribute) and func.attr == _SNAPSHOT_CLASS)
        if constructed:
            return [
                self.finding(
                    module,
                    node,
                    f"serving module constructs {_SNAPSHOT_CLASS}; request "
                    f"paths must not materialise snapshot objects",
                )
            ]
        return ()
