"""REP003 — no nondeterminism inside the byte-identical pure modules.

The fast-path/DOM and serial/parallel byte-identity guarantees (and the
incremental manifest's content-hash skip cache) only hold because the
parse/serialize modules are pure functions of their inputs.  Wall-clock
reads, the global (unseeded) ``random`` state, and entropy sources are
therefore banned inside them.  Explicitly allowed: monotonic timers
(``perf_counter``/``monotonic``) because telemetry timing never alters
outputs, and seeded ``random.Random(seed)`` instances, which are how the
deterministic generators derive reproducible streams.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.devtools.engine import Finding, Rule, SourceModule

#: Dotted prefixes of the modules that must stay pure.
PURE_MODULE_PREFIXES = (
    "repro.parsing",
    "repro.yamlio",
    "repro.svgdoc",
    "repro.geometry",
    "repro.topology",
)

#: ``module_or_class.attribute`` calls that read wall clocks or entropy.
BANNED_ATTRIBUTES = frozenset(
    {
        ("time", "time"),
        ("time", "time_ns"),
        ("datetime", "now"),
        ("datetime", "utcnow"),
        ("datetime", "today"),
        ("date", "today"),
        ("os", "urandom"),
        ("uuid", "uuid4"),
        ("uuid", "uuid1"),
    }
)

#: Names whose import alone marks nondeterminism in a pure module.
_BANNED_FROM_IMPORTS = {
    "time": {"time", "time_ns"},
    "os": {"urandom"},
    "uuid": {"uuid1", "uuid4"},
}

#: The only attribute of the ``random`` module a pure module may touch:
#: an explicitly seeded generator.
_ALLOWED_RANDOM_ATTRS = frozenset({"Random"})


def _is_pure(module: SourceModule) -> bool:
    return module.name.startswith(PURE_MODULE_PREFIXES)


class DeterminismRule(Rule):
    rule_id = "REP003"
    summary = "pure parse/serialize modules read no clocks or entropy"

    def visit_Call(
        self, node: ast.Call, module: SourceModule
    ) -> Iterable[Finding]:
        if not _is_pure(module) or not isinstance(node.func, ast.Attribute):
            return ()
        attribute = node.func
        base = attribute.value
        base_name = None
        if isinstance(base, ast.Name):
            base_name = base.id
        elif isinstance(base, ast.Attribute):  # e.g. datetime.datetime.now
            base_name = base.attr
        if base_name is None:
            return ()
        if (base_name, attribute.attr) in BANNED_ATTRIBUTES:
            return [
                self.finding(
                    module,
                    node,
                    f"{base_name}.{attribute.attr}() is nondeterministic; "
                    f"pure modules must not read clocks or entropy",
                )
            ]
        if base_name == "random" and attribute.attr not in _ALLOWED_RANDOM_ATTRS:
            return [
                self.finding(
                    module,
                    node,
                    f"random.{attribute.attr}() uses the unseeded global "
                    f"RNG; use a seeded random.Random via repro.rng",
                )
            ]
        if base_name == "secrets":
            return [
                self.finding(
                    module, node, "secrets.* is entropy; pure modules ban it"
                )
            ]
        return ()

    def visit_ImportFrom(
        self, node: ast.ImportFrom, module: SourceModule
    ) -> Iterable[Finding]:
        if not _is_pure(module) or node.module is None:
            return ()
        findings = []
        if node.module == "random":
            for alias in node.names:
                if alias.name not in _ALLOWED_RANDOM_ATTRS:
                    findings.append(
                        self.finding(
                            module,
                            node,
                            f"'from random import {alias.name}' pulls the "
                            f"unseeded global RNG into a pure module",
                        )
                    )
        elif node.module == "secrets":
            findings.append(
                self.finding(
                    module, node, "importing secrets into a pure module"
                )
            )
        else:
            banned = _BANNED_FROM_IMPORTS.get(node.module, set())
            for alias in node.names:
                if alias.name in banned:
                    findings.append(
                        self.finding(
                            module,
                            node,
                            f"'from {node.module} import {alias.name}' is "
                            f"nondeterministic in a pure module",
                        )
                    )
        return findings

    def visit_Import(
        self, node: ast.Import, module: SourceModule
    ) -> Iterable[Finding]:
        if not _is_pure(module):
            return ()
        return [
            self.finding(module, node, "importing secrets into a pure module")
            for alias in node.names
            if alias.name == "secrets"
        ]
