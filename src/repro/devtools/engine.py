"""Project-native static analysis: the invariant-linter engine.

The reproduction's credibility rests on invariants no general-purpose
linter knows about — byte-identical fast-path/DOM output, picklable pool
workers, the typed :mod:`repro.errors` hierarchy, ``ParseOptions``-only
internal calls, telemetry naming conventions, a frozen public API
surface.  This module provides the machinery that machine-checks them:

* **file discovery** over one or more source roots (``__pycache__``
  skipped, deterministic order);
* **per-rule visitor dispatch** — each rule declares ``visit_<Node>``
  methods and every file is walked exactly once, with nodes fanned out
  to the rules that care;
* a :class:`Finding` record (rule id, path, line, column, severity,
  message) with stable ordering;
* **suppressions** — ``# repro: noqa[REP001]`` (comma-separated ids) on
  the offending line, with unused suppressions reported as ``REP000``
  findings so stale annotations cannot linger;
* **human and JSON reporters** (:func:`render_human`,
  :func:`render_json`).

The rule pack itself lives in :mod:`repro.devtools.rules`; the CLI front
door is ``repro-weather check``.
"""

from __future__ import annotations

import ast
import io
import json
import re
import tokenize
from dataclasses import dataclass, field
from functools import cached_property
from pathlib import Path
from typing import Callable, Iterable, Iterator

from repro.errors import StaticAnalysisError

#: Rule id reserved for unused-suppression findings.
UNUSED_SUPPRESSION_RULE = "REP000"
#: Rule id reserved for files the engine cannot parse.
UNPARSEABLE_RULE = "REP999"

#: Matches the suppression marker inside a comment token — the text
#: after the hash reads ``repro: noqa[REP001]`` (ids comma-separated).
_NOQA_RE = re.compile(r"#\s*repro:\s*noqa\[([A-Za-z0-9_,\s]+)\]")

#: Matches any ``repro:`` directive — ``guarded-by[_lock]``,
#: ``locked-by-caller[_lock]``, and whatever future rules define.  The
#: ``noqa`` marker also matches; :attr:`SourceModule.directives` filters
#: it out since suppression handling has its own machinery.
_DIRECTIVE_RE = re.compile(r"#\s*repro:\s*([a-z][a-z0-9-]*)\[([^\]]*)\]")

_JSON_SCHEMA_VERSION = 2


@dataclass(frozen=True, slots=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str  # root-relative, POSIX separators
    line: int
    col: int
    message: str
    severity: str = "error"

    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def as_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "severity": self.severity,
            "message": self.message,
        }


@dataclass(frozen=True)
class CheckConfig:
    """Where the checker looks and which cross-file inputs it verifies.

    Attributes:
        root: repository root; every reported path is relative to it.
        src_roots: package directories whose ``*.py`` files are linted.
        observability_doc: the instrument catalogue REP002 cross-checks
            (``None`` or missing file: the documentation half of REP002
            is skipped, the naming half still runs).
        api_init: the ``__init__.py`` whose public surface REP006
            guards (``None`` or missing file: REP006 is skipped).
        api_snapshot: the committed JSON snapshot REP006 compares
            against.
        update_api_snapshot: rewrite ``api_snapshot`` from the current
            surface instead of diffing against it.
    """

    root: Path
    src_roots: tuple[Path, ...]
    observability_doc: Path | None = None
    api_init: Path | None = None
    api_snapshot: Path | None = None
    update_api_snapshot: bool = False


def discover_root(start: Path | None = None) -> Path:
    """Locate the repository root: the directory holding ``src/repro``.

    Walks upward from ``start`` (default: the working directory); falls
    back to the installed package location when it sits in an src
    layout.

    Raises:
        StaticAnalysisError: no plausible root anywhere.
    """
    probe = (start or Path.cwd()).resolve()
    for candidate in (probe, *probe.parents):
        if (candidate / "src" / "repro" / "__init__.py").is_file():
            return candidate
    package_dir = Path(__file__).resolve().parent.parent  # src/repro
    if package_dir.parent.name == "src":
        return package_dir.parent.parent
    raise StaticAnalysisError(
        f"cannot locate a repository root (no src/repro above {probe})"
    )


def default_config(
    root: Path | None = None, update_api_snapshot: bool = False
) -> CheckConfig:
    """The repository's standard check configuration."""
    resolved = discover_root(root) if root is None else Path(root).resolve()
    package = resolved / "src" / "repro"
    if not package.is_dir():
        raise StaticAnalysisError(f"no src/repro package under {resolved}")
    return CheckConfig(
        root=resolved,
        src_roots=(package,),
        observability_doc=resolved / "docs" / "observability.md",
        api_init=package / "__init__.py",
        api_snapshot=resolved / "api_surface.json",
        update_api_snapshot=update_api_snapshot,
    )


class SourceModule:
    """One parsed source file plus the derived views rules share."""

    def __init__(self, path: Path, relpath: str, name: str, text: str) -> None:
        self.path = path
        self.relpath = relpath
        self.name = name  # dotted module name, e.g. "repro.parsing.pipeline"
        self.text = text
        self.tree = ast.parse(text, filename=str(path))

    @cached_property
    def parents(self) -> dict[ast.AST, ast.AST]:
        """Child → parent for every node (rules climb for context)."""
        mapping: dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                mapping[child] = parent
        return mapping

    def enclosing_function(self, node: ast.AST) -> ast.AST | None:
        """The innermost function/lambda definition containing ``node``."""
        current = self.parents.get(node)
        while current is not None:
            if isinstance(
                current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                return current
            current = self.parents.get(current)
        return None

    @cached_property
    def suppressions(self) -> dict[int, set[str]]:
        """Line number → rule ids suppressed on that line.

        Tokenizer-based, so the marker only counts inside real comment
        tokens — a noqa example quoted in a docstring is inert.
        """
        table: dict[int, set[str]] = {}
        try:
            tokens = list(tokenize.generate_tokens(io.StringIO(self.text).readline))
        except tokenize.TokenError:
            return table
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _NOQA_RE.search(token.string)
            if match is None:
                continue
            rules = {
                item.strip().upper()
                for item in match.group(1).split(",")
                if item.strip()
            }
            if rules:
                table.setdefault(token.start[0], set()).update(rules)
        return table

    @cached_property
    def directives(self) -> dict[int, list[tuple[str, str]]]:
        """Line number → ``(directive, argument)`` pairs on that line.

        The generic half of the comment grammar: ``# repro: <name>[<arg>]``
        with a lowercase-kebab name.  Tokenizer-based like
        :attr:`suppressions`, so a directive quoted in a docstring is
        inert.  ``noqa`` markers are excluded — they are suppressions,
        not declarations.
        """
        table: dict[int, list[tuple[str, str]]] = {}
        try:
            tokens = list(tokenize.generate_tokens(io.StringIO(self.text).readline))
        except tokenize.TokenError:
            return table
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            for match in _DIRECTIVE_RE.finditer(token.string):
                name, argument = match.group(1), match.group(2).strip()
                if name == "noqa":
                    continue
                table.setdefault(token.start[0], []).append((name, argument))
        return table

    @cached_property
    def toplevel_names(self) -> set[str]:
        """Names bound at module scope: defs, classes, imports, assignments."""
        names: set[str] = set()
        for node in self.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                names.add(node.name)
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    names.add((alias.asname or alias.name).split(".")[0])
            elif isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    names.add(alias.asname or alias.name)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                names.add(node.target.id)
        return names

    @cached_property
    def imported_modules(self) -> set[str]:
        """Local aliases bound to whole modules (``import x.y as z``)."""
        aliases: set[str] = set()
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    aliases.add((alias.asname or alias.name).split(".")[0])
        return aliases

    @cached_property
    def errors_imports(self) -> set[str]:
        """Local names imported from :mod:`repro.errors`."""
        names: set[str] = set()
        for node in ast.walk(self.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "repro.errors":
                for alias in node.names:
                    names.add(alias.asname or alias.name)
        return names

    @cached_property
    def errors_module_aliases(self) -> set[str]:
        """Local names bound to the :mod:`repro.errors` module itself."""
        aliases: set[str] = set()
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "repro.errors" and alias.asname:
                        aliases.add(alias.asname)
            elif isinstance(node, ast.ImportFrom) and node.module == "repro":
                for alias in node.names:
                    if alias.name == "errors":
                        aliases.add(alias.asname or alias.name)
        return aliases

    @cached_property
    def local_classes(self) -> dict[str, ast.ClassDef]:
        """Module-level class definitions by name."""
        return {
            node.name: node
            for node in self.tree.body
            if isinstance(node, ast.ClassDef)
        }


class Rule:
    """Base class for one invariant check.

    Subclasses set :attr:`rule_id` and :attr:`summary`, implement any
    ``visit_<NodeType>`` methods (called once per matching node during
    the engine's single walk, returning an iterable of findings or
    ``None``), and may override :meth:`end_module` / :meth:`finish` for
    per-file wrap-up and cross-file checks.
    """

    rule_id = "REP???"
    summary = ""

    def begin_module(self, module: SourceModule) -> None:
        """Reset per-file state before ``module`` is walked."""

    def end_module(self, module: SourceModule) -> Iterable[Finding]:
        """Findings that need the whole file to have been walked."""
        return ()

    def finish(self, config: CheckConfig) -> Iterable[Finding]:
        """Cross-file findings, after every module has been walked."""
        return ()

    def finding(
        self, module: SourceModule, node: ast.AST, message: str
    ) -> Finding:
        """A finding of this rule at ``node``'s location."""
        return Finding(
            rule=self.rule_id,
            path=module.relpath,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


@dataclass
class CheckResult:
    """Everything one run produced."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    suppressions_used: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    def counts_by_rule(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for item in self.findings:
            counts[item.rule] = counts.get(item.rule, 0) + 1
        return dict(sorted(counts.items()))


def iter_source_files(config: CheckConfig) -> Iterator[tuple[Path, str, str]]:
    """Yield ``(path, root-relative path, dotted module name)`` for every
    linted file, in deterministic order."""
    for src_root in config.src_roots:
        if not src_root.is_dir():
            raise StaticAnalysisError(f"source root {src_root} is not a directory")
        package_parent = src_root.parent
        for path in sorted(src_root.rglob("*.py")):
            if "__pycache__" in path.parts:
                continue
            relative = path.relative_to(config.root)
            dotted = path.relative_to(package_parent).with_suffix("")
            parts = list(dotted.parts)
            if parts[-1] == "__init__":
                parts.pop()
            yield path, relative.as_posix(), ".".join(parts)


def _dispatch_table(
    rule: Rule,
) -> dict[str, Callable[[ast.AST, SourceModule], Iterable[Finding] | None]]:
    """``visit_<NodeType>`` methods of one rule, keyed by node type name."""
    table = {}
    for attr in dir(rule):
        if attr.startswith("visit_"):
            table[attr[len("visit_"):]] = getattr(rule, attr)
    return table


def run_checks(
    config: CheckConfig, rules: Iterable[Rule] | None = None
) -> CheckResult:
    """Run the rule pack over the configured tree.

    Raises:
        StaticAnalysisError: the configuration is unusable (bad roots);
            individual file problems become findings instead.
    """
    if rules is None:
        from repro.devtools.rules import default_rules

        rules = default_rules()
    active = list(rules)
    tables = [(rule, _dispatch_table(rule)) for rule in active]

    result = CheckResult()
    kept: list[Finding] = []
    for path, relpath, name in iter_source_files(config):
        text = path.read_text(encoding="utf-8")
        try:
            module = SourceModule(path, relpath, name, text)
        except SyntaxError as exc:
            kept.append(
                Finding(
                    rule=UNPARSEABLE_RULE,
                    path=relpath,
                    line=exc.lineno or 1,
                    col=(exc.offset or 0) + 1,
                    message=f"file does not parse: {exc.msg}",
                )
            )
            continue
        result.files_checked += 1
        raw: list[Finding] = []
        for rule in active:
            rule.begin_module(module)
        for node in ast.walk(module.tree):
            node_type = type(node).__name__
            for rule, table in tables:
                visitor = table.get(node_type)
                if visitor is not None:
                    produced = visitor(node, module)
                    if produced:
                        raw.extend(produced)
        for rule in active:
            raw.extend(rule.end_module(module))
        kept.extend(_apply_suppressions(module, raw, result))
    for rule in active:
        kept.extend(rule.finish(config))
    result.findings = sorted(kept, key=Finding.sort_key)
    return result


def _apply_suppressions(
    module: SourceModule, raw: list[Finding], result: CheckResult
) -> list[Finding]:
    """Drop suppressed findings; report suppressions that caught nothing."""
    used: set[tuple[int, str]] = set()
    kept: list[Finding] = []
    for item in raw:
        if item.rule in module.suppressions.get(item.line, set()):
            used.add((item.line, item.rule))
            result.suppressions_used += 1
        else:
            kept.append(item)
    for line, rules in sorted(module.suppressions.items()):
        for rule_id in sorted(rules):
            if (line, rule_id) not in used:
                kept.append(
                    Finding(
                        rule=UNUSED_SUPPRESSION_RULE,
                        path=module.relpath,
                        line=line,
                        col=1,
                        message=(
                            f"unused suppression: no {rule_id} finding on "
                            f"this line — remove the noqa"
                        ),
                    )
                )
    return kept


def render_human(result: CheckResult) -> str:
    """The terminal report: one line per finding plus a summary."""
    lines = [
        f"{item.path}:{item.line}:{item.col} {item.rule} {item.message}"
        for item in result.findings
    ]
    if result.findings:
        by_rule = ", ".join(
            f"{rule}:{count}" for rule, count in result.counts_by_rule().items()
        )
        lines.append(
            f"{len(result.findings)} finding"
            f"{'s' if len(result.findings) != 1 else ''} "
            f"in {result.files_checked} files ({by_rule})"
        )
    else:
        lines.append(f"clean: {result.files_checked} files checked")
    return "\n".join(lines)


def rule_catalogue() -> dict[str, str]:
    """Every rule id → one-line summary, engine-reserved ids included."""
    from repro.devtools.rules import default_rules

    catalogue = {
        UNUSED_SUPPRESSION_RULE: "unused suppression or stale declaration",
        UNPARSEABLE_RULE: "file does not parse",
    }
    for rule in default_rules():
        catalogue[rule.rule_id] = rule.summary
    return dict(sorted(catalogue.items()))


def render_json(result: CheckResult) -> str:
    """The machine report (schema version 2, stable key order).

    Version 2 adds the ``rules`` catalogue (id → summary for every rule
    the engine ships, including the reserved ids) so consumers can label
    the per-rule ``counts`` without a copy of the docs.
    """
    payload = {
        "version": _JSON_SCHEMA_VERSION,
        "files_checked": result.files_checked,
        "ok": result.ok,
        "rules": rule_catalogue(),
        "counts": result.counts_by_rule(),
        "suppressions_used": result.suppressions_used,
        "findings": [item.as_dict() for item in result.findings],
    }
    return json.dumps(payload, indent=2, sort_keys=False) + "\n"
